"""Serve query-layer benchmark: store build plus a 10k-query load run.

Builds a ``serve-store/v1`` snapshot over the bench world's last year
of BGP activity, then replays the deterministic zipf-skewed load plan
against an in-process server.  Three gauges land in the session
metrics snapshot — ``serve.query.p50_us``, ``serve.query.p99_us``,
``serve.query.qps`` — and the perf gate pins them against the
committed baseline alongside the stage wall times the build adds
(``serve:assemble``, ``serve:publish``).

The assertions here pin correctness and sanity only (clean run, every
query answered, latency under an absurdly generous ceiling); the
regression teeth live in ``check_perf_gate.py`` where the bounds are
baseline-relative.
"""

from __future__ import annotations

import asyncio

from repro.runtime import ArtifactCache, PipelineStats, get_metrics
from repro.serve.http import LifetimesServer
from repro.serve.index import StoreIndex
from repro.serve.loadgen import plan_queries, run_load
from repro.serve.store import build_store

from conftest import CACHE_DIR

QUERIES = 10_000
CONCURRENCY = 8


def test_serve_query_layer(bundle, record_result, tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("serve-store")
    config = bundle.world.config
    end = config.end_day
    start = max(config.start_day, end - 364)
    stats = PipelineStats()
    build_store(
        store_dir, bundle.world, bundle.admin_lives,
        start=start, end=end, faults=None, stats=stats,
        cache=ArtifactCache(CACHE_DIR),
    )

    index = StoreIndex.open(store_dir, faults=None)
    assert len(index) > 0
    plan = plan_queries(index.all_asns(), index.meta, QUERIES, seed=2021)

    async def go():
        server = LifetimesServer(index)
        host, port = await server.start()
        try:
            return await run_load(host, port, plan, concurrency=CONCURRENCY)
        finally:
            await server.close()

    report = asyncio.run(go())

    assert report.queries == QUERIES
    assert report.errors == 0
    # sanity ceiling only — the real bound is baseline-relative in the
    # perf gate; a point query over the two-level binary search should
    # never be anywhere near this slow
    assert report.p99_us < 250_000, f"p99 {report.p99_us / 1000:.1f}ms"

    metrics = get_metrics()
    metrics.gauge("serve.query.p50_us").set(report.p50_us)
    metrics.gauge("serve.query.p99_us").set(report.p99_us)
    metrics.gauge("serve.query.qps").set(report.qps)

    # the server's own account of the same run: aggregate the labeled
    # per-route request_us bucket histograms into a server-side p99
    from repro.serve.telemetry import request_quantiles

    server_q = request_quantiles(metrics.snapshot())
    assert server_q, "server recorded no request_us histograms"
    metrics.gauge("serve.http.p99_us").set(server_q["p99_us"])

    build_seconds = sum(
        stage.seconds for stage in stats.stages
        if stage.name.startswith("serve:")
    )
    record_result("serve_query", "\n".join([
        "serve query layer (10k zipf-skewed queries, in-process server)",
        f"  store: {len(index)} ASNs in {len(index._shards)} shards, "
        f"window {index.meta.end - index.meta.start + 1} days",
        f"  assemble+publish: {build_seconds:.3f}s",
        f"  throughput: {report.qps:,.0f} q/s at concurrency {CONCURRENCY}",
        f"  latency: client p50 {report.p50_us / 1000:.2f}ms, "
        f"p99 {report.p99_us / 1000:.2f}ms; "
        f"server p99 {server_q['p99_us'] / 1000:.2f}ms",
        f"  errors: {report.errors}",
    ]))
