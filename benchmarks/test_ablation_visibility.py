"""Ablation — the §3.2 "strictly more than 1 peer" visibility rule.

The paper keeps an ASN-day only when two or more distinct collector
peers corroborate it, to reject spurious data from a single peer.  This
ablation re-segments operational lifetimes with ``min_peers=1`` and
measures what the rule protects against: phantom ASNs and extra
fragmented lifetimes contributed by uncorroborated observations.
"""

from conftest import fmt_table


def run_ablation(bundle):
    return {
        1: bundle.rebuild_op_lives(timeout=30, min_peers=1),
        2: bundle.rebuild_op_lives(timeout=30, min_peers=2),
    }


def test_ablation_visibility(benchmark, bundle, record_result):
    results = benchmark(run_ablation, bundle)
    strict, loose = results[2], results[1]
    strict_asns, loose_asns = set(strict), set(loose)
    phantom = loose_asns - strict_asns
    strict_lives = sum(map(len, strict.values()))
    loose_lives = sum(map(len, loose.values()))

    text = fmt_table(
        ["metric", "min_peers=2", "min_peers=1"],
        [
            ("ASNs with op lives", len(strict_asns), len(loose_asns)),
            ("op lifetimes", strict_lives, loose_lives),
            ("phantom ASNs", 0, len(phantom)),
        ],
    )
    record_result("ablation_visibility", text)

    # dropping the rule only ever adds observations
    assert strict_asns <= loose_asns
    assert loose_lives >= strict_lives
    # the spurious single-peer data creates phantom ASN-days; at the
    # configured spurious rate this is visible but small
    truth_spurious = {
        asn
        for asn, activity in bundle.world.activities.items()
        if activity.single_peer and not activity.observed
    }
    assert phantom == truth_spurious
    # every strictly-visible lifetime survives the rule unchanged or
    # merged (never lost)
    for asn in strict_asns:
        strict_days = sum(l.duration for l in strict[asn])
        loose_days = sum(l.duration for l in loose[asn])
        assert loose_days >= strict_days
