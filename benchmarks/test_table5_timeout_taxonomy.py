"""Table 5 (Appendix C) — taxonomy sensitivity to the inactivity timeout.

Paper: moving the timeout from 30 to 15 or 50 days changes complete
overlap by <0.1%, partial overlap by <2%, and outside-delegation lives
by <5%; the unused category is untouched by construction.
"""

from repro.core import Category, classify

from conftest import fmt_table

TIMEOUTS = (15, 30, 50)


def run_sweep(bundle):
    out = {}
    for timeout in TIMEOUTS:
        op_lives = bundle.rebuild_op_lives(timeout=timeout)
        out[timeout] = classify(bundle.admin_lives, op_lives)
    return out


def test_table5_timeout_taxonomy(benchmark, bundle, record_result):
    results = benchmark(run_sweep, bundle)
    baseline = results[30]

    def count(result, category, op=False):
        source = result.op_counts if op else result.admin_counts
        return source.get(category, 0)

    rows = []
    for timeout in TIMEOUTS:
        r = results[timeout]
        rows.append(
            (
                timeout,
                count(r, Category.COMPLETE_OVERLAP),
                count(r, Category.PARTIAL_OVERLAP),
                count(r, Category.UNUSED),
                count(r, Category.OUTSIDE_DELEGATION, op=True),
            )
        )
    record_result(
        "table5_timeout_taxonomy",
        fmt_table(["timeout", "complete", "partial", "unused", "op outside"], rows),
    )

    base_complete = count(baseline, Category.COMPLETE_OVERLAP)
    base_outside = count(baseline, Category.OUTSIDE_DELEGATION, op=True)
    for timeout in (15, 50):
        r = results[timeout]
        # complete overlap barely moves (paper: ±0.1%)
        delta = abs(count(r, Category.COMPLETE_OVERLAP) - base_complete)
        assert delta / base_complete < 0.02
        # the unused category is exactly unchanged (paper's footnote)
        assert count(r, Category.UNUSED) == count(baseline, Category.UNUSED)
        # outside-delegation fluctuates a few percent, symmetrically:
        # smaller timeout -> more (shorter) op lives -> more outside
        outside = count(r, Category.OUTSIDE_DELEGATION, op=True)
        assert abs(outside - base_outside) / max(base_outside, 1) < 0.25
    assert (
        count(results[15], Category.OUTSIDE_DELEGATION, op=True)
        >= count(results[50], Category.OUTSIDE_DELEGATION, op=True)
    )
