"""Appendix A — 16-bit ASN exhaustion accounting.

Paper: no registry fully used its 16-bit pool; per-RIR 16-bit stocks
peak at different times (AfriNIC 2013 .. ARIN 2019); the global 16-bit
allocated count peaks in January 2019.  At reduced simulation scale the
pool is never *numerically* scarce, so the peaks here are policy-driven
(the switch to 32-bit defaults plus ongoing deallocations), which is
the shape the experiment checks.
"""

from repro.core import bit_class_counts
from repro.timeline import to_iso, year_of

from conftest import fmt_table


def test_appA_16bit_exhaustion(benchmark, bundle, record_result):
    start, end = bundle.world.config.start_day, bundle.world.end_day
    per = benchmark(bit_class_counts, bundle.admin_lives, start, end)

    rows = []
    peaks = {}
    for registry in sorted(per):
        series = per[registry]["16"]
        peak_day, peak_value = series.max()
        peaks[registry] = (peak_day, peak_value)
        rows.append(
            (registry, to_iso(peak_day), peak_value, series.final())
        )
    # IANA-side accounting
    ledger = bundle.world.ledger
    rows.append(("IANA undelegated", "-", "-", ledger.undelegated_16bit()))
    record_result(
        "appA_16bit_exhaustion",
        fmt_table(["RIR", "16-bit peak day", "peak", "final"], rows),
    )

    # every registry's 16-bit stock peaks before the window end and
    # declines afterwards (policy switch to 32-bit + deallocations)
    for registry, (peak_day, peak_value) in peaks.items():
        series = per[registry]["16"]
        assert peak_value >= series.final()
    # ARIN's 16-bit peak comes years after APNIC's: APNIC went 32-bit
    # by policy in mid-2009, ARIN kept allocating 16-bit well past 2013
    # (paper: ARIN peaks in 2019, APNIC in 2016, AfriNIC in 2013)
    assert year_of(peaks["arin"][0]) >= 2013
    assert year_of(peaks["apnic"][0]) <= 2013
    assert year_of(peaks["arin"][0]) > year_of(peaks["apnic"][0])
    # per-registry totals never exceed the IANA delegations they hold
    # plus what inter-RIR/ERX transfers brought in
    from repro.asn import is_16bit

    totals = ledger.sixteen_bit_totals()
    inbound = {}
    for transfer in bundle.world.transfers:
        if is_16bit(transfer.asn):
            inbound[transfer.to_rir] = inbound.get(transfer.to_rir, 0) + 1
    for registry, (_day, peak_value) in peaks.items():
        assert peak_value <= totals.get(registry, 0) + inbound.get(registry, 0)
