"""Figure 11 — quarterly balance between ASN births and deaths.

Paper: RIPE NCC's net allocation volume 2005-2013 is massive; around
2017 APNIC's and LACNIC's net allocations exceed ARIN's; in the last
three years APNIC/LACNIC gain ~4,000 net each vs ARIN's ~3,000 and
RIPE NCC's ~4,400.
"""

from repro.core import quarterly_balance

from conftest import fmt_table


def net_over(balance, registry, year_range):
    return sum(
        count
        for (year, _q), count in balance.get(registry, {}).items()
        if year in year_range
    )


def test_fig11_balance(benchmark, bundle, record_result):
    start, end = bundle.world.config.start_day, bundle.world.end_day
    balance = benchmark(quarterly_balance, bundle.admin_lives, start, end)

    periods = {
        "2005-2013": range(2005, 2014),
        "2014-2017": range(2014, 2018),
        "2018-2021": range(2018, 2022),
    }
    rows = [
        tuple([registry] + [net_over(balance, registry, years)
                            for years in periods.values()])
        for registry in sorted(balance)
    ]
    record_result(
        "fig11_balance", fmt_table(["RIR"] + list(periods), rows)
    )

    # RIPE's 2005-2013 net growth dominates everyone
    ripe_core = net_over(balance, "ripencc", range(2005, 2014))
    for registry in balance:
        if registry != "ripencc":
            assert ripe_core > net_over(balance, registry, range(2005, 2014))
    # around 2017 APNIC and LACNIC net allocations exceed ARIN's
    late = range(2017, 2021)
    arin_late = net_over(balance, "arin", late)
    assert net_over(balance, "apnic", late) > arin_late
    assert net_over(balance, "lacnic", late) > arin_late
    # every registry has positive net growth overall
    for registry in balance:
        assert net_over(balance, registry, range(2004, 2022)) > 0
