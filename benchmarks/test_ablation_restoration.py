"""Ablation — what the §3.1 restoration buys.

Runs lifetime inference twice over the same defect-ridden archive:
once on restored data and once on the raw (unrestored) per-registry
views, then scores both against the simulator's ground truth.  The
restoration should strictly reduce lifetime-boundary errors.
"""

from repro.lifetimes import build_admin_lifetimes
from repro.restoration import RestoredDelegations, build_registry_view

from conftest import fmt_table


def raw_lifetimes(bundle):
    """Lifetime inference over unrestored views (skip all six steps)."""
    views = {
        registry: build_registry_view(bundle.archive, registry)
        for registry in bundle.archive.registries()
    }
    raw = RestoredDelegations(views=views, end_day=bundle.archive.end_day)
    for view in views.values():
        for asn, stints in view.stints.items():
            raw.stints.setdefault(asn, []).extend(stints)
    for stints in raw.stints.values():
        stints.sort(key=lambda s: (s.start, s.end))
    return build_admin_lifetimes(raw)


def score(bundle, admin_lives):
    """Fraction of ASNs whose lifetime count, boundaries, registration
    dates, and final registries all match the ground truth."""
    truth = bundle.world.lives_by_asn()
    exact = 0
    for asn, truth_lives in truth.items():
        recovered = admin_lives.get(asn, [])
        if len(recovered) != len(truth_lives):
            continue
        ok = True
        for t, r in zip(truth_lives, recovered):
            expected_end = t.end if t.end is not None else bundle.world.end_day
            expected_start = r.start if r.left_censored else t.start
            if (r.start, r.end) != (expected_start, expected_end):
                ok = False
                break
            if r.reg_date != t.reg_date or r.registry != t.registry:
                ok = False
                break
        if ok:
            exact += 1
    return exact / len(truth)


def test_ablation_restoration(benchmark, bundle, record_result):
    raw = benchmark(raw_lifetimes, bundle)
    restored_score = score(bundle, bundle.admin_lives)
    raw_score = score(bundle, raw)

    text = fmt_table(
        ["pipeline", "exact lifetime recovery"],
        [
            ("with §3.1 restoration", f"{restored_score:.1%}"),
            ("without restoration", f"{raw_score:.1%}"),
        ],
    )
    record_result("ablation_restoration", text)

    # restoration must help, and the restored pipeline must recover the
    # overwhelming majority of lifetimes exactly
    assert restored_score > raw_score
    assert restored_score > 0.9
    # much of the raw data survives untouched — the §4.1 lifetime rules
    # themselves absorb brief drops — so the gap is real but bounded
    assert raw_score < restored_score - 0.001
