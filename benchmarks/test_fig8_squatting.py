"""Figure 8 and §6.1.2 — squatting of dormant ASNs.

Paper: the two-parameter filter (>1000 days dormant, post-dormant life
<=5% of the admin life) flags 3,051 operational lives; 76 were
confirmed malicious through external sources.  Squatted ASNs suddenly
originate tens of prefixes after years of silence, sharing "hijack
factory" upstreams.
"""

from repro.bgp import SQUAT_DORMANT
from repro.core import detect_dormant_squatting, score_against_truth

from conftest import fmt_table


def test_fig8_squat_detection(benchmark, bundle, record_result):
    candidates = benchmark(
        detect_dormant_squatting, bundle.admin_lives, bundle.op_lives
    )
    score = score_against_truth(candidates, bundle.world.events)
    truth = [e for e in bundle.world.events if e.kind == SQUAT_DORMANT]

    rows = [
        (f"AS{c.asn}", c.dormancy_days, c.op_duration,
         f"{c.relative_duration:.2%}")
        for c in candidates[:15]
    ]
    text = fmt_table(
        ["ASN", "dormant days", "op days", "relative duration"], rows
    )
    text += (
        f"\n\nflagged: {len(candidates)} (paper: 3,051)"
        f"\nground-truth squat events: {len(truth)}"
        f"\nrecall {score['recall']:.2f}  precision {score['precision']:.2f}"
    )
    record_result("fig8_squatting", text)

    # the filter must over-trigger, as in the paper (many legitimate
    # irregular behaviors match), but never miss a planted squat
    assert score["recall"] == 1.0
    assert len(candidates) >= len(truth)
    # every candidate satisfies the filter's definition
    for c in candidates:
        assert c.dormancy_days >= 1000
        assert c.relative_duration <= 0.05
    # the squat events share few upstreams (coordination, Fig. 8)
    factories = {e.announcer for e in truth}
    assert len(factories) <= 3


def test_fig8_prefix_time_series(benchmark, bundle, record_result):
    """The awakening signature: 0 prefixes for years, then a spike."""
    truth = [e for e in bundle.world.events if e.kind == SQUAT_DORMANT]
    assert truth, "bench world must contain squat events"

    def series_for(event):
        lo = event.interval.start - 60
        hi = min(event.interval.end + 60, bundle.world.end_day)
        return [
            len(event.prefixes) if day in event.interval else 0
            for day in range(lo, hi + 1)
        ]

    all_series = benchmark(lambda: [series_for(e) for e in truth])
    rows = []
    for event, series in zip(truth, all_series):
        rows.append(
            (f"AS{event.origin}", f"AS{event.announcer}", max(series),
             sum(1 for v in series if v > 0))
        )
    record_result(
        "fig8_prefix_series",
        fmt_table(["squatted", "upstream", "peak prefixes", "active days"], rows),
    )
    for event, series in zip(truth, all_series):
        assert series[0] == 0 and max(series) >= 2  # silence, then spike
