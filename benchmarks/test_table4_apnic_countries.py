"""Table 4 — evolution of APNIC's top countries.

Paper: Australia/Korea/Japan lead in 2010; China rises by 2015; by
2021 India leads (15.7%), Australia second (14.5%), Indonesia third
(11.1%) just ahead of China (10.6%), Japan fifth (6.1%).  Also §A:
Brazil holds >70% of LACNIC by 2021 and the US >92% of ARIN.
"""

from repro.core import country_shares
from repro.timeline import day as mkday

from conftest import fmt_table

SNAPSHOTS = {"2010": mkday(2010, 3, 1), "2015": mkday(2015, 3, 1),
             "2021": mkday(2021, 3, 1)}


def build(bundle):
    return {
        label: country_shares(bundle.admin_lives, "apnic", as_of=day, top=5)
        for label, day in SNAPSHOTS.items()
    }


def test_table4_apnic_countries(benchmark, bundle, record_result):
    tables = benchmark(build, bundle)
    rows = []
    for rank in range(5):
        row = [f"{rank + 1}"]
        for label in SNAPSHOTS:
            cc, count, share = tables[label][rank]
            row.append(f"{cc}: {count} ({share:.1%})")
        rows.append(tuple(row))
    record_result(
        "table4_apnic_countries", fmt_table(["pos"] + list(SNAPSHOTS), rows)
    )

    def rank_of(label, cc):
        for i, (c, _n, _s) in enumerate(tables[label]):
            if c == cc:
                return i
        return 99

    # 2010: the old guard (AU/KR/JP) occupies the top ranks, India
    # outside the top-5 ("in 2010 it was not even in the top-5!")
    assert rank_of("2010", "AU") <= 2
    assert rank_of("2010", "IN") == 99 or rank_of("2010", "IN") > rank_of("2021", "IN")
    # 2021: India leads, Indonesia has risen into the top 3
    assert tables["2021"][0][0] == "IN"
    assert rank_of("2021", "ID") <= 2
    # India's share near the paper's 15.7%
    in_share = dict((c, s) for c, _n, s in tables["2021"])["IN"]
    assert 0.10 < in_share < 0.25

    # §A cross-checks: Brazil dominates LACNIC, the US dominates ARIN
    lacnic = country_shares(bundle.admin_lives, "lacnic",
                            as_of=SNAPSHOTS["2021"], top=2)
    assert lacnic[0][0] == "BR" and lacnic[0][2] > 0.55
    arin = country_shares(bundle.admin_lives, "arin",
                          as_of=SNAPSHOTS["2021"], top=1)
    assert arin[0][0] == "US" and arin[0][2] > 0.85
