"""Figure 3 — sensitivity of the BGP inactivity timeout.

Paper: the CDF of per-ASN activity gaps has its knee around 30 days
(70.1% of gaps), and a 30-day timeout leaves 83% of administrative
lifetimes with at most one operational life.
"""

from repro.lifetimes import gap_cdf, gap_distribution, sweep_timeouts

from conftest import fmt_table

TIMEOUTS = [1, 5, 10, 20, 30, 50, 90, 180, 365]


def run_sweep(bundle):
    return sweep_timeouts(
        bundle.admin_lives,
        bundle.world.activities,
        TIMEOUTS,
        end_day=bundle.world.end_day,
    )


def test_fig3_timeout_sensitivity(benchmark, bundle, record_result):
    rows = benchmark(run_sweep, bundle)
    text = fmt_table(
        ["timeout", "gap CDF", "<=1 op life", "op lifetimes"],
        [
            (r.timeout, f"{r.gap_coverage:.3f}", f"{r.one_or_less_share:.3f}",
             r.total_op_lifetimes)
            for r in rows
        ],
    )
    record_result("fig3_timeout_sensitivity", text)

    by_timeout = {r.timeout: r for r in rows}
    # the knee: 30 days covers most gaps (paper: 70.1%)
    assert 0.55 < by_timeout[30].gap_coverage < 0.90
    # and leaves most admin lives with <=1 op life (paper: 83%)
    assert 0.70 < by_timeout[30].one_or_less_share < 0.95
    # both curves are monotone in the timeout
    coverages = [r.gap_coverage for r in rows]
    shares = [r.one_or_less_share for r in rows]
    assert coverages == sorted(coverages)
    assert shares == sorted(shares)
    # diminishing returns: the 30->50 improvement is much smaller than
    # the 1->30 improvement (that is why the knee is at 30)
    assert (by_timeout[30].gap_coverage - by_timeout[1].gap_coverage) > 3 * (
        by_timeout[50].gap_coverage - by_timeout[30].gap_coverage
    )


def test_fig3_gap_distribution(benchmark, bundle, record_result):
    gaps = benchmark(gap_distribution, bundle.world.activities)
    points = [(t, f"{gap_cdf(gaps, t):.3f}") for t in TIMEOUTS]
    record_result(
        "fig3_gap_cdf", fmt_table(["gap length <=", "CDF"], points)
    )
    assert gaps == sorted(gaps)
    assert gap_cdf(gaps, 30) > gap_cdf(gaps, 10)
