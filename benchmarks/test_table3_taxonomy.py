"""Table 3 — the four-category taxonomy of joint behavior.

Paper: 99,790 complete-overlap admin lives (78.6%), 4,434 partial
(3.4%), 22,729 unused (17.9%); 2,382 operational lives outside any
delegation.
"""

from repro.core import Category, classify

from conftest import fmt_table

PAPER_SHARES = {
    Category.COMPLETE_OVERLAP: 0.786,
    Category.PARTIAL_OVERLAP: 0.035,
    Category.UNUSED: 0.179,
}


def test_table3_taxonomy(benchmark, bundle, record_result):
    result = benchmark(classify, bundle.admin_lives, bundle.op_lives)
    admin_total, op_total = result.totals()
    rows = [
        (name, admin, f"{admin / admin_total:.1%}", op)
        for name, admin, op in result.table3_rows()
    ]
    rows.append(("total", admin_total, "100.0%", op_total))
    record_result(
        "table3_taxonomy",
        fmt_table(["category", "adm lives", "adm share", "op lives"], rows),
    )

    # every lifetime classified exactly once
    assert admin_total == bundle.joint.total_admin_lifetimes()
    assert op_total == bundle.joint.total_op_lifetimes()

    # shares within a factor of ~1.5 of the paper's
    for category, paper_share in PAPER_SHARES.items():
        share = result.admin_counts.get(category, 0) / admin_total
        assert paper_share / 1.7 < share < paper_share * 1.7, (
            category, share, paper_share
        )

    # ordering: complete >> unused >> partial (the paper's Table 3)
    counts = result.admin_counts
    assert (
        counts[Category.COMPLETE_OVERLAP]
        > counts[Category.UNUSED]
        > counts[Category.PARTIAL_OVERLAP]
    )
    # some operational lives exist outside any delegation (§6.4)
    assert result.op_counts.get(Category.OUTSIDE_DELEGATION, 0) > 0
    # but no admin life can be "outside delegation"
    assert Category.OUTSIDE_DELEGATION not in result.admin_counts
