"""Figures 4 and 13 — daily alive ASNs, administrative vs BGP.

Paper: RIPE NCC grows fastest and passes ARIN in 2012 administratively
but already in 2009 operationally; a large and growing gap separates
the overall allocated and BGP-visible counts (~28% of allocated ASNs
not in BGP by March 2021).
"""

from repro.core import (
    alive_bgp_counts_by_registry,
    alive_counts,
    alive_counts_by_registry,
    crossover_day,
)
from repro.timeline import to_iso, year_of

from conftest import fmt_table


def build_series(bundle):
    start, end = bundle.world.config.start_day, bundle.world.end_day
    return {
        "admin": alive_counts_by_registry(bundle.admin_lives, start, end),
        "bgp": alive_bgp_counts_by_registry(
            bundle.admin_lives, bundle.op_lives, start, end
        ),
        "overall_admin": alive_counts(bundle.admin_lives, start, end),
        "overall_bgp": alive_counts(bundle.op_lives, start, end),
    }


def test_fig4_alive_counts(benchmark, bundle, record_result):
    series = benchmark(build_series, bundle)
    admin, bgp = series["admin"], series["bgp"]

    sample_days = [admin["arin"].start + i * 730 for i in range(9)]
    rows = []
    for day in sample_days:
        row = [to_iso(day)]
        for registry in sorted(admin):
            row.append(admin[registry].at(day))
            row.append(bgp[registry].at(day) if registry in bgp else 0)
        rows.append(tuple(row))
    headers = ["day"]
    for registry in sorted(admin):
        headers += [f"{registry}", f"{registry}-bgp"]
    record_result("fig4_alive_counts", fmt_table(headers, rows))

    # RIPE passes ARIN in both dimensions, earlier operationally
    admin_cross = crossover_day(admin["ripencc"], admin["arin"])
    bgp_cross = crossover_day(bgp["ripencc"], bgp["arin"])
    assert admin_cross is not None and bgp_cross is not None
    assert bgp_cross < admin_cross
    assert year_of(bgp_cross) < year_of(admin_cross) + 1

    # the allocated-vs-BGP gap is large and positive at the end
    overall_admin = series["overall_admin"].final()
    overall_bgp = series["overall_bgp"].final()
    gap_share = (overall_admin - overall_bgp) / overall_admin
    assert 0.10 < gap_share < 0.40  # paper: ~28%

    # every registry grows over the window
    for registry, s in admin.items():
        assert s.final() > s.at(s.start + 365)

    # final-size ordering: RIPE NCC largest, AfriNIC smallest (Fig. 4)
    finals = {registry: s.final() for registry, s in admin.items()}
    assert finals["ripencc"] == max(finals.values())
    assert finals["afrinic"] == min(finals.values())
