"""Table 1 — delegation-file inventory per RIR.

Paper: first regular file 2003-10-09 (APNIC) .. 2005-02-18 (AfriNIC),
first extended file 2008-02-14 (APNIC) .. 2013-03-05 (ARIN), and
5,791-6,345 files per registry over the window.
"""

from repro.rir import EXTENDED, REGULAR
from repro.timeline import to_iso

from conftest import fmt_table


def build_table(bundle):
    rows = []
    for registry in bundle.archive.registries():
        rows.append(
            (
                registry,
                to_iso(bundle.archive.window((registry, REGULAR)).first_day),
                to_iso(bundle.archive.window((registry, EXTENDED)).first_day),
                bundle.archive.day_count(registry),
            )
        )
    return rows


def test_table1_file_inventory(benchmark, bundle, record_result):
    rows = benchmark(build_table, bundle)
    text = fmt_table(
        ["RIR", "first regular", "first extended", "files"], rows
    )
    record_result("table1_archives", text)

    by_registry = {r[0]: r for r in rows}
    # publication start dates are the historical constants
    assert by_registry["apnic"][1] == "2003-10-09"
    assert by_registry["afrinic"][1] == "2005-02-18"
    assert by_registry["arin"][2] == "2013-03-05"
    assert by_registry["ripencc"][2] == "2010-04-22"
    # day coverage: AfriNIC smallest (shortest window), all in the
    # paper's 5,791-6,345 band
    counts = {r[0]: r[3] for r in rows}
    assert counts["afrinic"] == min(counts.values())
    assert all(5500 < c < 6400 for c in counts.values())
    # <1% of days missing (§3.1)
    for registry in bundle.archive.registries():
        for kind in (REGULAR, EXTENDED):
            window = bundle.archive.window((registry, kind))
            missing = len(bundle.archive.unavailable_days((registry, kind)))
            span = window.last_day - window.first_day + 1
            assert missing / span < 0.01
