"""Ablation — origination vs. transit roles over a message-level window.

The paper tracks "ASNs that appear in BGP paths" without separating
roles and lists role-splitting as future work (§9).  This benchmark
runs the role analysis over a message-level window and quantifies what
an origin-only view would miss: the transit-only ASNs that never
originate anything yet are operationally alive.

A dedicated small world keeps the message-level materialization cheap;
the window is long enough for stable counts.
"""

import pytest

from repro.bgp import SyntheticBgpStream, sanitize
from repro.core import Role, collect_role_activity, role_census
from repro.lifetimes import daily_prefixes_from_elements
from repro.simulation import WorldSimulator, tiny
from repro.timeline import from_iso

from conftest import fmt_table

WINDOW_START = from_iso("2014-03-01")
WINDOW_END = from_iso("2014-03-21")

_WORLD = None


@pytest.fixture(scope="module")
def window_elements():
    global _WORLD
    if _WORLD is None:
        _WORLD = WorldSimulator(tiny(seed=8)).run()
    world = _WORLD
    stream = SyntheticBgpStream(
        world.topology, world.collectors, world.announcements_for_day
    )
    return {
        day: list(sanitize(stream.elements_for_day(day)))
        for day in range(WINDOW_START, WINDOW_END + 1)
    }


def test_ablation_roles_window(benchmark, window_elements, record_result):
    activities = benchmark(collect_role_activity, window_elements)
    census = role_census(activities, WINDOW_START, WINDOW_END)
    origin_view = {
        asn for asn, a in activities.items() if a.origin_days
    }
    all_view = set(activities)
    missed = all_view - origin_view

    text = fmt_table(
        ["role", "ASNs"],
        [(role.value, census[role]) for role in Role],
    )
    text += (
        f"\n\nASNs visible in paths: {len(all_view)}"
        f"\nASNs an origin-only view would capture: {len(origin_view)}"
        f"\nmissed by origin-only (transit-only): {len(missed)}"
    )
    record_result("ablation_roles_window", text)

    # transit-only ASNs exist: an origin-only analysis undercounts
    assert census[Role.TRANSIT_ONLY] > 0
    assert missed == {
        asn for asn, a in activities.items()
        if a.role_over(WINDOW_START, WINDOW_END) is Role.TRANSIT_ONLY
    }
    # the transit-only population is the upper tiers, far smaller than
    # the origin population (stubs dominate the Internet)
    assert census[Role.TRANSIT_ONLY] < census[Role.ORIGIN_ONLY]
    # mixed-role ASNs exist too: transits announcing their own space
    assert census[Role.MIXED] > 0


def test_ablation_prefix_aware_segmentation(benchmark, window_elements,
                                            record_result):
    """Prefix-aware segmentation (§8's refinement) agrees with the
    plain timeout on stable announcers inside the window."""
    from repro.lifetimes import segment_prefix_aware

    daily = daily_prefixes_from_elements(window_elements)

    def run():
        return {
            asn: segment_prefix_aware(asn, per_day, timeout=30)
            for asn, per_day in daily.items()
        }

    lives = benchmark(run)
    multi = sum(1 for v in lives.values() if len(v) > 1)
    text = fmt_table(
        ["metric", "value"],
        [
            ("announcing ASNs", len(lives)),
            ("with >1 lifetime in window", multi),
        ],
    )
    record_result("ablation_prefix_segmentation", text)
    assert lives
    # inside a short window with <=30d gaps, stable announcers (one
    # constant prefix set) never fragment
    for asn, segments in lives.items():
        distinct = {s.prefixes for s in segments}
        if len(distinct) == 1:
            assert len(segments) == 1, asn
