#!/usr/bin/env python3
"""Perf-regression gate over the benchmark metrics snapshot.

Compares the per-stage wall-time histograms in
``benchmarks/results/metrics_snapshot.json`` (written by the benchmark
session's ``pytest_sessionfinish`` hook — see ``conftest.py``) against
the committed baseline ``benchmarks/results/baseline.json`` and fails
when any baseline stage, or the stage total, regresses by more than
the tolerance (default 25%).

When the baseline and snapshot disagree on the *set* of stages, the
gate reports the symmetric difference and fails without comparing
timings: a renamed or added stage is a pipeline-shape change that
needs an intentional ``--write-baseline``, not a speed verdict.
A deliberate rename can instead be declared in the baseline's
optional ``"renamed"`` table (``{"old-stage": "new-stage"}``): the
old entry's timing is carried over under the new name, so the
renamed stage keeps being gated against its historic baseline
instead of tripping the stage-set refusal.  ``--write-baseline``
drops the table — a fresh baseline speaks the current names.
A snapshot flagged incomplete (the benchmark session did not exit
cleanly) also fails rather than gating partial timings.

Besides stage wall times, the gate pins the serve query layer's
latency/throughput gauges (``serve.query.p50_us``, ``serve.query.p99_us``,
``serve.query.qps``, written by ``test_serve_query.py``) against the
baseline's ``"serve"`` section: latency may grow by at most
``--serve-tolerance`` relative, throughput may shrink by the same
factor.  Latency tolerances are deliberately looser than stage
tolerances — shared CI runners jitter microbenchmarks far more than
multi-second stage sums.

The gate reads the machine-readable snapshot, never the human-oriented
``.txt`` result tables, so a formatting change can never silently
defeat it.

Usage::

    # in CI, after running the scaling benchmarks
    python benchmarks/check_perf_gate.py

    # refresh the committed baseline after an intentional perf change
    python benchmarks/check_perf_gate.py --write-baseline

Stages faster than ``--min-seconds`` (default 0.05s) are reported but
never gated: at that scale scheduler noise dwarfs any real regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_FORMAT = "perf-baseline/v1"

#: Gauge names the serve benchmark writes, and the direction in which
#: each one regresses ("up" = bigger is worse, "down" = smaller is worse).
SERVE_GAUGES = {
    "serve.query.p50_us": "up",
    "serve.query.p99_us": "up",
    "serve.query.qps": "down",
    # server-side p99 over the request window (head-read → drained),
    # derived from the bucketed request_us histograms — the server's
    # own account of the same load run, gated alongside the client's
    "serve.http.p99_us": "up",
}


def serve_gauges(snapshot: dict) -> dict:
    """The serve benchmark's gauges present in the snapshot."""
    gauges = snapshot.get("gauges", {})
    return {
        name: float(gauges[name]) for name in SERVE_GAUGES if name in gauges
    }


def stage_seconds(snapshot: dict) -> dict:
    """stage name -> total wall seconds, from ``stage.<name>.seconds``."""
    out = {}
    for name, hist in snapshot.get("histograms", {}).items():
        if name.startswith("stage.") and name.endswith(".seconds"):
            out[name[len("stage."):-len(".seconds")]] = float(hist["sum"])
    return out


def load_json(path: Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        sys.exit(f"perf gate: {path} not found — run the scaling benchmarks first")
    except json.JSONDecodeError as exc:
        sys.exit(f"perf gate: {path} is not valid JSON: {exc}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "snapshot", nargs="?", type=Path,
        default=RESULTS_DIR / "metrics_snapshot.json",
        help="metrics snapshot to check (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=RESULTS_DIR / "baseline.json",
        help="committed baseline (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed relative wall-time regression (default: 0.25 = 25%%)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=0.05,
        help="baseline stages faster than this are noise, not gated",
    )
    parser.add_argument(
        "--serve-tolerance", type=float, default=1.0,
        help="allowed relative regression of the serve query gauges "
        "(default: 1.0 = latency may double, throughput may halve)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from the snapshot instead of gating",
    )
    args = parser.parse_args(argv)

    snapshot = load_json(args.snapshot)
    session = snapshot.get("session", {})
    if session.get("incomplete"):
        sys.exit(
            f"perf gate: {args.snapshot} is from an incomplete benchmark "
            f"session (exitstatus {session.get('exitstatus')}) — its "
            f"timings cover only part of the suite; fix the failing "
            f"benchmarks before gating"
        )
    current = stage_seconds(snapshot)
    if not current:
        sys.exit(f"perf gate: no stage.*.seconds histograms in {args.snapshot}")

    gauges = serve_gauges(snapshot)

    if args.write_baseline:
        baseline = {
            "format": BASELINE_FORMAT,
            "stages": {k: round(v, 4) for k, v in sorted(current.items())},
            "total_seconds": round(sum(current.values()), 4),
        }
        if gauges:
            baseline["serve"] = {k: round(v, 1) for k, v in sorted(gauges.items())}
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"perf gate: baseline written to {args.baseline} "
              f"({len(current)} stages, {baseline['total_seconds']:.3f}s total"
              + (f", {len(gauges)} serve gauges)" if gauges else ")"))
        return 0

    baseline_doc = load_json(args.baseline)
    if baseline_doc.get("format") != BASELINE_FORMAT:
        sys.exit(f"perf gate: {args.baseline} is not a {BASELINE_FORMAT} document")
    stages = baseline_doc.get("stages")
    if not isinstance(stages, dict) or not stages:
        sys.exit(
            f"perf gate: {args.baseline} has no stage table — regenerate "
            f"the baseline with --write-baseline"
        )
    baseline = {k: float(v) for k, v in stages.items()}

    # apply declared renames before comparing stage sets: the old
    # baseline timing keeps gating the stage under its new name
    renamed = baseline_doc.get("renamed", {})
    if not isinstance(renamed, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in renamed.items()
    ):
        sys.exit(
            f"perf gate: {args.baseline} 'renamed' must map old stage "
            f"names to new stage names (strings)"
        )
    for old, new in sorted(renamed.items()):
        if old not in baseline:
            sys.exit(
                f"perf gate: renamed entry {old!r} -> {new!r} matches no "
                f"baseline stage — stale mapping?"
            )
        if new in baseline:
            sys.exit(
                f"perf gate: rename target {new!r} collides with an "
                f"existing baseline stage"
            )
        baseline[new] = baseline.pop(old)

    # a stage-set disagreement means the pipeline shape changed, not its
    # speed: report the symmetric difference instead of gating timings
    # that no longer describe the same stages
    removed = sorted(set(baseline) - set(current))
    added = sorted(set(current) - set(baseline))
    if removed or added:
        print("perf gate: baseline and snapshot disagree on the stage set:",
              file=sys.stderr)
        for name in removed:
            print(f"  - {name!r} in baseline but missing from the snapshot",
                  file=sys.stderr)
        for name in added:
            print(f"  + {name!r} in the snapshot but not in baseline",
                  file=sys.stderr)
        print("  if the stage change is intentional, refresh the committed "
              "baseline: python benchmarks/check_perf_gate.py --write-baseline",
              file=sys.stderr)
        return 1

    failures = []
    rows = []
    for name in sorted(baseline):
        base = baseline[name]
        cur = current[name]
        delta = (cur - base) / base if base > 0 else 0.0
        gated = base >= args.min_seconds
        status = "ok" if delta <= args.tolerance else ("FAIL" if gated else "noisy")
        rows.append((name, base, cur, f"{delta:+.1%} {status}"))
        if status == "FAIL":
            failures.append(
                f"stage {name!r} regressed {delta:+.1%} "
                f"({base:.3f}s -> {cur:.3f}s, tolerance {args.tolerance:.0%})"
            )

    base_total = float(baseline_doc.get("total_seconds", sum(baseline.values())))
    cur_total = sum(current.get(name, 0.0) for name in baseline)
    total_delta = (cur_total - base_total) / base_total if base_total > 0 else 0.0
    if total_delta > args.tolerance:
        failures.append(
            f"stage total regressed {total_delta:+.1%} "
            f"({base_total:.3f}s -> {cur_total:.3f}s)"
        )

    # serve query gauges: same stage-set discipline — the baseline and
    # the snapshot must agree on which gauges exist before comparing
    serve_base = baseline_doc.get("serve", {})
    if not isinstance(serve_base, dict):
        sys.exit(f"perf gate: {args.baseline} 'serve' must be an object")
    serve_rows = []
    missing = sorted(set(serve_base) - set(gauges))
    extra = sorted(set(gauges) - set(serve_base))
    if missing or extra:
        print("perf gate: baseline and snapshot disagree on the serve "
              "gauges:", file=sys.stderr)
        for name in missing:
            print(f"  - {name!r} in baseline but missing from the snapshot "
                  f"(did test_serve_query.py run?)", file=sys.stderr)
        for name in extra:
            print(f"  + {name!r} in the snapshot but not in baseline",
                  file=sys.stderr)
        print("  if the change is intentional, refresh the committed "
              "baseline: python benchmarks/check_perf_gate.py --write-baseline",
              file=sys.stderr)
        return 1
    for name in sorted(serve_base):
        base = float(serve_base[name])
        cur = gauges[name]
        delta = (cur - base) / base if base > 0 else 0.0
        worse_up = SERVE_GAUGES.get(name, "up") == "up"
        regressed = (
            cur > base * (1.0 + args.serve_tolerance)
            if worse_up
            else cur * (1.0 + args.serve_tolerance) < base
        )
        status = "FAIL" if regressed else "ok"
        serve_rows.append((name, base, cur, f"{delta:+.1%} {status}"))
        if regressed:
            direction = "regressed" if worse_up else "dropped"
            failures.append(
                f"serve gauge {name!r} {direction} {delta:+.1%} "
                f"({base:,.1f} -> {cur:,.1f}, tolerance "
                f"{args.serve_tolerance:.0%})"
            )

    width = max((len(r[0]) for r in rows), default=8)
    print(f"{'stage':<{width}} {'baseline':>10} {'current':>10}  verdict")
    for name, base, cur, verdict in rows:
        print(f"{name:<{width}} {base:>9.3f}s {cur:>9.3f}s  {verdict}")
    print(f"{'total':<{width}} {base_total:>9.3f}s {cur_total:>9.3f}s  {total_delta:+.1%}")
    if serve_rows:
        gwidth = max(len(r[0]) for r in serve_rows)
        print(f"\n{'serve gauge':<{gwidth}} {'baseline':>12} {'current':>12}  verdict")
        for name, base, cur, verdict in serve_rows:
            print(f"{name:<{gwidth}} {base:>12,.1f} {cur:>12,.1f}  {verdict}")

    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nperf gate passed ({len(baseline)} stages, tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
