"""§6.1.1 — late deallocations, late starts, sporadic/spaced use.

Paper: median last-BGP-day-to-deallocation lag is >6 months for APNIC
and >10 months for the others (AfriNIC ~530 days); the median
allocation-to-first-BGP delay exceeds a month everywhere; 84.1% of
complete-overlap lives hold one operational life; 287 ASNs have more
than 10; 23.9% of multi-op lives have operational lives more than a
year apart.
"""

from repro.core import analyze_utilization

from conftest import fmt_table


def test_sec611_delays(benchmark, bundle, record_result):
    stats = benchmark(analyze_utilization, bundle.admin_lives, bundle.op_lives)
    dealloc = stats.median_late_dealloc()
    start = stats.median_late_start()
    shares = stats.op_count_shares()
    rows = [
        (registry, dealloc.get(registry), start.get(registry))
        for registry in sorted(start)
    ]
    text = fmt_table(["RIR", "median dealloc lag", "median start delay"], rows)
    text += (
        f"\n\nop lives per admin life: 1={shares['1']:.1%} "
        f"2={shares['2']:.1%} >2={shares['>2']:.1%}"
        f"\nsporadic ASNs (>10 op lives): {len(stats.sporadic_asns)}"
        f"\nmulti-op lives spaced >365d: {stats.widely_spaced_admin_lives}"
        f" of {stats.multi_op_admin_lives}"
    )
    record_result("sec611_delays", text)

    # deallocation lags on the order of months (paper: 6-18 months;
    # the observable median is right-truncated by short lives, so the
    # scaled world sits at the lower end of the paper's band)
    for registry, value in dealloc.items():
        assert value is not None and 60 < value < 900, (registry, value)
    # APNIC is the fastest deallocator (paper: >6 months vs >10
    # elsewhere), AfriNIC notably slower than APNIC (paper: ~530 days)
    assert dealloc["apnic"] == min(dealloc.values())
    assert dealloc["afrinic"] > dealloc["apnic"]
    # start delays exceed a month (paper: >1 month for all RIRs)
    for registry, value in start.items():
        assert value is not None and value > 25, (registry, value)
    # single-op lives dominate (paper: 84.1%)
    assert shares["1"] > 0.6
    assert shares["1"] > shares["2"] > shares[">2"] - 0.05
    # sporadic users exist but are rare (paper: 287 of ~127k)
    assert 0 < len(stats.sporadic_asns) < 0.02 * len(bundle.admin_lives)
    # widely spaced lives are a sizable minority of multi-op lives
    if stats.multi_op_admin_lives:
        ratio = stats.widely_spaced_admin_lives / stats.multi_op_admin_lives
        assert 0.02 < ratio < 0.7  # paper: 23.9%
