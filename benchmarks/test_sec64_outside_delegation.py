"""§6.4 — operational lives without allocation.

Paper: 1,667 ASNs announce outside any administrative life — 799 were
allocated at some point (9 confirmed post-deallocation hijacks among
them), 868 never; of the never-allocated, only 427 are active more
than a day, 186 more than a month, 15 more than a year; bogon ASNs are
excluded; misconfigurations (prepend typos 76%, digit typos 24%) and
huge internal ASNs explain most identified cases.
"""

from repro.bgp import SQUAT_POST_DEALLOC
from repro.core import analyze_outside_delegation
from repro.asn import digit_count

from conftest import fmt_table


def test_sec64_outside_delegation(benchmark, bundle, record_result):
    stats = benchmark(
        analyze_outside_delegation, bundle.admin_lives, bundle.op_lives
    )
    text = fmt_table(
        ["metric", "value"],
        [
            ("outside op lives", stats.outside_op_lives),
            ("once-allocated ASNs", len(stats.once_allocated_asns)),
            ("never-allocated ASNs", len(stats.never_allocated_asns)),
            ("never-alloc active > 1 day", stats.never_allocated_active_longer_than(1)),
            ("never-alloc active > 1 month", stats.never_allocated_active_longer_than(31)),
            ("never-alloc active > 1 year", stats.never_allocated_active_longer_than(365)),
            ("post-dealloc squat candidates", len(stats.post_dealloc_candidates)),
            ("bogons excluded", stats.excluded_bogons),
        ],
    )
    record_result("sec64_outside_delegation", text)

    # both sub-populations exist
    assert stats.never_allocated_asns
    assert stats.once_allocated_asns
    # duration skew of never-allocated origins (paper: 868 -> 427 ->
    # 186 -> 15): strictly decreasing with the threshold
    total = len(stats.never_allocated_asns)
    over_day = stats.never_allocated_active_longer_than(1)
    over_month = stats.never_allocated_active_longer_than(31)
    over_year = stats.never_allocated_active_longer_than(365)
    assert total > over_day > over_month > over_year >= 0
    assert over_day / total < 0.8  # about half vanish after one day
    # post-dealloc squats recovered from the injected ground truth
    truth = [e for e in bundle.world.events if e.kind == SQUAT_POST_DEALLOC]
    flagged = {c.asn for c in stats.post_dealloc_candidates}
    for event in truth:
        assert event.origin in flagged
    # huge internal ASNs present among never-allocated (§6.4: 54.4%
    # of the paper's never-allocated have more digits than any
    # allocated ASN — here they come from leak events)
    huge = [a for a in stats.never_allocated_asns if digit_count(a) >= 9]
    assert huge
