"""Figure 7 — utilization of administrative lifetimes.

Paper: among admin lives fully containing their operational lives, 70%
are used more than 75% of their duration, but only 45% exceed 95%
usage; ~10% are under 30% utilized.
"""

from repro.core import analyze_utilization

from conftest import fmt_table

THRESHOLDS = [0.05, 0.1, 0.3, 0.5, 0.75, 0.9, 0.95, 1.0]


def test_fig7_utilization_cdf(benchmark, bundle, record_result):
    stats = benchmark(analyze_utilization, bundle.admin_lives, bundle.op_lives)
    rows = [
        (f"{t:.2f}", f"{stats.utilization_cdf_at(t):.3f}") for t in THRESHOLDS
    ]
    record_result("fig7_utilization_cdf", fmt_table(["usage <=", "CDF"], rows))

    assert stats.utilizations  # the Fig. 7 population exists
    # heavy usage dominates (paper: 70% above 0.75)
    assert stats.share_with_usage_above(0.75) > 0.5
    # full usage is NOT the norm (paper: only 45% above 0.95)
    assert stats.share_with_usage_above(0.95) < stats.share_with_usage_above(0.75) - 0.05
    # an under-utilized tail exists (paper: ~10% below 0.30)
    assert 0.005 < stats.utilization_cdf_at(0.30) < 0.30
    # utilization is a valid ratio
    assert all(0 < u <= 1.0 for u in stats.utilizations)
    # CDF is monotone
    cdf = [stats.utilization_cdf_at(t) for t in THRESHOLDS]
    assert cdf == sorted(cdf)
