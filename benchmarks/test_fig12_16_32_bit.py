"""Figure 12 — 16- vs 32-bit allocated ASNs per day per RIR.

Paper: 32-bit allocations start in 2007 (one RIPE NCC delegation in
Dec 2006); ARIN ramps up 32-bit only around 2014, years after RIPE
NCC, APNIC and LACNIC, and still makes ~30% of its 2020 allocations
from the 16-bit pool, versus 1-1.7% at the younger registries.
"""

from repro.asn import is_16bit
from repro.core import bit_class_counts
from repro.timeline import day as mkday

from conftest import fmt_table


def test_fig12_16_32_bit(benchmark, bundle, record_result):
    start, end = bundle.world.config.start_day, bundle.world.end_day
    per = benchmark(bit_class_counts, bundle.admin_lives, start, end)

    probe_days = [mkday(y, 6, 1) for y in (2006, 2009, 2012, 2015, 2018)]
    probe_days.append(end)
    rows = []
    for registry in sorted(per):
        for cls in ("16", "32"):
            series = per[registry][cls]
            rows.append(
                tuple([f"{registry}_{cls}"] + [series.at(d) for d in probe_days])
            )
    headers = ["series"] + [str(d) for d in (2006, 2009, 2012, 2015, 2018, "end")]
    record_result("fig12_16_32_bit", fmt_table(headers, rows))

    # no 32-bit allocations before 2007 (except RIPE's late-2006 one)
    before_2007 = mkday(2006, 11, 1)
    for registry in per:
        assert per[registry]["32"].at(before_2007) == 0, registry
    # by the end, 32-bit stocks are large at the younger registries
    for registry in ("apnic", "lacnic"):
        assert per[registry]["32"].final() > per[registry]["32"].at(mkday(2012, 1, 1))
    # ARIN lags: in 2012 its 32-bit stock is a much smaller multiple of
    # its 2009 stock than APNIC's
    arin_12 = per["arin"]["32"].at(mkday(2012, 6, 1))
    apnic_12 = per["apnic"]["32"].at(mkday(2012, 6, 1))
    assert apnic_12 > arin_12
    # ARIN retains by far the largest 16-bit stock at the end (its
    # historical mass plus its continued 16-bit allocations)
    finals_16 = {r: per[r]["16"].final() for r in per}
    assert finals_16["arin"] == max(finals_16.values())

    # late-window new allocations: ARIN's 16-bit share ~30%, younger
    # registries' ~1-2% (§5)
    recent = {r: {"16": 0, "32": 0} for r in per}
    for lives in bundle.admin_lives.values():
        for life in lives:
            if life.start >= mkday(2018, 1, 1):
                recent[life.registry]["16" if is_16bit(life.asn) else "32"] += 1
    arin_share = recent["arin"]["16"] / max(1, sum(recent["arin"].values()))
    apnic_share = recent["apnic"]["16"] / max(1, sum(recent["apnic"].values()))
    assert arin_share > 0.15  # paper: ~30%
    assert apnic_share < 0.08  # paper: ~1%
