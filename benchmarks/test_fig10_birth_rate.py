"""Figure 10 — per-RIR quarterly ASN birth rate by registration date.

Paper: allocations date back to 1992; a spike around 2000 marks the
dot-com bubble; RIPE NCC changes pace around 2003; APNIC and LACNIC
explode from 2014.
"""

from repro.core import quarterly_birth_rate

from conftest import fmt_table


def yearly(rates, registry):
    out = {}
    for (year, _q), count in rates.get(registry, {}).items():
        out[year] = out.get(year, 0) + count
    return out


def test_fig10_birth_rate(benchmark, bundle, record_result):
    rates = benchmark(quarterly_birth_rate, bundle.admin_lives)
    years = sorted({y for per in rates.values() for (y, _q) in per})
    rows = []
    for year in years:
        rows.append(
            tuple([year] + [yearly(rates, r).get(year, 0)
                            for r in sorted(rates)])
        )
    record_result(
        "fig10_birth_rate", fmt_table(["year"] + sorted(rates), rows)
    )

    # births date back to the early 1990s (reg dates, Appendix A)
    assert years[0] <= 1993
    # the dot-com bubble: 1999-2001 births dwarf 1995-1997 births
    def total(year_range):
        return sum(
            yearly(rates, registry).get(year, 0)
            for registry in rates
            for year in year_range
        )
    assert total(range(1999, 2002)) > 2 * total(range(1995, 1998))
    # APNIC and LACNIC ramp after 2014
    for registry in ("apnic", "lacnic"):
        per_year = yearly(rates, registry)
        late = sum(per_year.get(y, 0) for y in range(2015, 2020))
        early = sum(per_year.get(y, 0) for y in range(2008, 2013))
        assert late > 1.3 * early, registry
    # RIPE NCC out-births ARIN across the window's core years
    ripe = yearly(rates, "ripencc")
    arin = yearly(rates, "arin")
    assert sum(ripe.get(y, 0) for y in range(2006, 2014)) > sum(
        arin.get(y, 0) for y in range(2006, 2014)
    )
