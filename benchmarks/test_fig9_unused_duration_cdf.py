"""Figure 9 and §6.3 — duration of never-used administrative lives.

Paper: unused lives are *not* predominantly short — only 14.9% (ARIN)
to 45% (LACNIC) last under a year; a significant fraction spans the
whole observation window (the spike at the right edge of each CDF).
"""

from repro.core import analyze_unused_lives, cdf_at

from conftest import fmt_table

YEAR = 365


def test_fig9_unused_duration_cdf(benchmark, bundle, record_result):
    stats = benchmark(analyze_unused_lives, bundle.admin_lives, bundle.op_lives)
    rows = []
    window = bundle.world.end_day - bundle.world.config.start_day + 1
    for registry in sorted(stats.durations_by_registry):
        durations = stats.durations_by_registry[registry]
        rows.append(
            (
                registry,
                len(durations),
                f"{cdf_at(durations, YEAR):.1%}",
                f"{cdf_at(durations, 5 * YEAR):.1%}",
                f"{sum(1 for d in durations if d >= window * 0.95) / len(durations):.1%}",
            )
        )
    record_result(
        "fig9_unused_duration_cdf",
        fmt_table(["RIR", "unused lives", "<1y", "<5y", "full window"], rows),
    )

    assert stats.unused_lives > 0
    # unused lives are mostly multi-year (paper's core Fig. 9 finding)
    for registry, durations in stats.durations_by_registry.items():
        if len(durations) < 20:
            continue
        assert cdf_at(durations, YEAR) < 0.6, registry
    # a visible population spans (almost) the whole window
    all_durations = [
        d for ds in stats.durations_by_registry.values() for d in ds
    ]
    full_window = sum(1 for d in all_durations if d >= window * 0.9)
    assert full_window / len(all_durations) > 0.05
