"""Table 2 — number of administrative and operational lifetimes per ASN.

Paper (Adm. columns): 84.1% of ASNs have one administrative life,
13.4% two, 2.5% more; ARIN re-allocates most (28.1% multi-life),
LACNIC least (1.6%).  Operationally 74.3% / 15.8% / 9.9%.
"""

from repro.core import lives_per_asn_table

from conftest import fmt_table


def build_tables(bundle):
    registry_of = bundle.registry_of()
    return (
        lives_per_asn_table(bundle.admin_lives, registry_of),
        lives_per_asn_table(bundle.op_lives, registry_of),
    )


def test_table2_lives_per_asn(benchmark, bundle, record_result):
    admin_table, op_table = benchmark(build_tables, bundle)
    rows = []
    for registry in sorted(admin_table):
        a = admin_table[registry]
        o = op_table.get(registry, {"1": 0, "2": 0, ">2": 0})
        rows.append(
            (
                registry,
                f"{a['1']:.1%}", f"{o['1']:.1%}",
                f"{a['2']:.1%}", f"{o['2']:.1%}",
                f"{a['>2']:.1%}", f"{o['>2']:.1%}",
            )
        )
    record_result(
        "table2_lives_per_asn",
        fmt_table(
            ["RIR", "1 adm", "1 op", "2 adm", "2 op", ">2 adm", ">2 op"], rows
        ),
    )

    # single-life dominates everywhere
    for registry, table in admin_table.items():
        assert table["1"] > 0.6
    # ARIN re-allocates the most, LACNIC/AfriNIC the least (paper order)
    multi = {
        registry: 1 - table["1"]
        for registry, table in admin_table.items()
        if registry != "total"
    }
    assert multi["arin"] == max(multi.values())
    assert multi["arin"] > 2 * multi["lacnic"]
    assert multi["ripencc"] > multi["apnic"]
    # overall close to the paper's 84.1%
    assert 0.75 < admin_table["total"]["1"] < 0.92
    # operational lives fragment more than administrative ones
    assert op_table["total"]["1"] < admin_table["total"]["1"] + 0.02
