"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper from the
same bench-scale world (built once per session) and

* times the analysis with pytest-benchmark,
* asserts the paper's qualitative shape (who wins, orderings, knees),
* writes the regenerated rows/series to ``benchmarks/results/`` so they
  can be compared against the paper side by side (see EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.runtime import ArtifactCache, reset_metrics, write_json_atomic
from repro.simulation import DatasetBundle, bench, build_datasets

RESULTS_DIR = Path(__file__).parent / "results"

#: Machine-readable session metrics (stage wall histograms, cache and
#: executor counters).  The perf-regression gate parses this file —
#: never the human-oriented ``.txt`` tables.
METRICS_SNAPSHOT = RESULTS_DIR / "metrics_snapshot.json"

#: Content-addressed bundle cache shared across benchmark sessions.
#: The key covers the full config + pipeline version, so a config or
#: pipeline change rebuilds automatically; repeated sessions load the
#: pickled bundle instead of re-simulating the world.  Stores are
#: atomic (temp file + rename), so the fixture is safe under
#: pytest-xdist: racing workers each build at worst once and never
#: observe a torn artifact.
CACHE_DIR = Path(__file__).parent / ".cache"


def pytest_sessionstart(session):
    """Clear the process-global registry up front so a warm pytest
    process never double-counts into the session snapshot."""
    session.config._repro_metrics = reset_metrics()


def pytest_sessionfinish(session, exitstatus):
    """Snapshot the whole session's metrics, even on failure.

    A ``sessionfinish`` hook (unlike the fixture teardown this
    replaces) also runs when the session aborts part-way — e.g. under
    ``-x`` — so a partially-failed session still emits a snapshot
    rather than leaving a stale one from the previous run on disk.
    The snapshot carries the session verdict; the perf gate refuses to
    compare timings from an ``incomplete`` session, whose stage
    histograms cover only the benchmarks that got to run.
    """
    metrics = getattr(session.config, "_repro_metrics", None)
    if metrics is None:  # sessionstart never ran (collection-time crash)
        return
    snapshot = metrics.snapshot()
    snapshot["session"] = {
        "exitstatus": int(exitstatus),
        "incomplete": int(exitstatus) != 0,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    write_json_atomic(METRICS_SNAPSHOT, snapshot)


@pytest.fixture(scope="session")
def bundle() -> DatasetBundle:
    """The bench-scale dataset bundle (warm sessions load it from cache)."""
    return build_datasets(bench(seed=2021), cache=ArtifactCache(CACHE_DIR))


@pytest.fixture(scope="session")
def record_result():
    """Write a regenerated table/figure to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text.rstrip() + "\n", encoding="utf-8")
        return path

    return _record


def fmt_table(headers, rows) -> str:
    """Render rows as a fixed-width text table."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    def line(values):
        return "  ".join(str(v).rjust(w) for v, w in zip(values, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return "\n".join(out)
