"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper from the
same bench-scale world (built once per session) and

* times the analysis with pytest-benchmark,
* asserts the paper's qualitative shape (who wins, orderings, knees),
* writes the regenerated rows/series to ``benchmarks/results/`` so they
  can be compared against the paper side by side (see EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.runtime import ArtifactCache, reset_metrics, write_json_atomic
from repro.simulation import DatasetBundle, bench, build_datasets

RESULTS_DIR = Path(__file__).parent / "results"

#: Machine-readable session metrics (stage wall histograms, cache and
#: executor counters).  The perf-regression gate parses this file —
#: never the human-oriented ``.txt`` tables.
METRICS_SNAPSHOT = RESULTS_DIR / "metrics_snapshot.json"

#: Content-addressed bundle cache shared across benchmark sessions.
#: The key covers the full config + pipeline version, so a config or
#: pipeline change rebuilds automatically; repeated sessions load the
#: pickled bundle instead of re-simulating the world.  Stores are
#: atomic (temp file + rename), so the fixture is safe under
#: pytest-xdist: racing workers each build at worst once and never
#: observe a torn artifact.
CACHE_DIR = Path(__file__).parent / ".cache"


@pytest.fixture(scope="session", autouse=True)
def session_metrics():
    """Aggregate the whole session into one metrics snapshot.

    The process-global registry is cleared up front (so a warm pytest
    process never double-counts) and snapshotted to
    ``benchmarks/results/metrics_snapshot.json`` at session end;
    ``benchmarks/check_perf_gate.py`` compares the per-stage wall
    histograms in it against the committed baseline.
    """
    metrics = reset_metrics()
    yield metrics
    RESULTS_DIR.mkdir(exist_ok=True)
    write_json_atomic(METRICS_SNAPSHOT, metrics.snapshot())


@pytest.fixture(scope="session")
def bundle() -> DatasetBundle:
    """The bench-scale dataset bundle (warm sessions load it from cache)."""
    return build_datasets(bench(seed=2021), cache=ArtifactCache(CACHE_DIR))


@pytest.fixture(scope="session")
def record_result():
    """Write a regenerated table/figure to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text.rstrip() + "\n")
        return path

    return _record


def fmt_table(headers, rows) -> str:
    """Render rows as a fixed-width text table."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    def line(values):
        return "  ".join(str(v).rjust(w) for v, w in zip(values, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return "\n".join(out)
