"""Ablation — what the administrative dimension adds to detection.

§6.1.2: the compound lens "could provide additional classification
features for machine-learning based detection approaches".  This
benchmark extracts the joint-lens feature vectors, ranks operational
lifetimes by the reference suspicion scorer with and without the
administrative features, and measures how early the planted malicious
events surface in each ranking.
"""

from repro.bgp import MALICIOUS_KINDS
from repro.core import extract_features, rank_by_suspicion

from conftest import fmt_table


def recall_at(ranked, malicious_keys, k):
    top = {
        (row.asn, row.op_start)
        for _score, row in ranked[:k]
    }
    hits = sum(1 for key in malicious_keys if key in top)
    return hits / len(malicious_keys) if malicious_keys else 1.0


def test_ablation_detection_features(benchmark, bundle, record_result):
    rows = benchmark(
        extract_features,
        bundle.admin_lives,
        bundle.op_lives,
        end_day=bundle.world.end_day,
    )
    # ground truth: operational lives that contain a malicious event
    malicious_keys = set()
    events = [e for e in bundle.world.events if e.kind in MALICIOUS_KINDS]
    for event in events:
        for op in bundle.op_lives.get(event.origin, ()):
            if op.interval.overlaps(event.interval):
                malicious_keys.add((event.origin, op.start))
    assert malicious_keys, "bench world must contain malicious events"

    joint = rank_by_suspicion(rows, use_admin_dimension=True)
    bgp_only = rank_by_suspicion(rows, use_admin_dimension=False)

    ks = [50, 200, 1000]
    table_rows = []
    for k in ks:
        table_rows.append(
            (
                k,
                f"{recall_at(joint, malicious_keys, k):.2f}",
                f"{recall_at(bgp_only, malicious_keys, k):.2f}",
            )
        )
    text = fmt_table(["top-k", "joint lens", "BGP only"], table_rows)
    text += (
        f"\n\nfeature rows: {len(rows)}"
        f"\nmalicious op lives (truth): {len(malicious_keys)}"
    )
    record_result("ablation_features", text)

    # the joint lens surfaces the malicious lives far earlier
    assert recall_at(joint, malicious_keys, 200) >= recall_at(
        bgp_only, malicious_keys, 200
    )
    assert recall_at(joint, malicious_keys, 200) > 0.7
    # BGP-only features alone cannot isolate them in a short list:
    # thousands of benign short bursts share the same BGP signature
    assert recall_at(bgp_only, malicious_keys, 50) < recall_at(
        joint, malicious_keys, 50
    ) or recall_at(joint, malicious_keys, 50) == 1.0
    # one feature row exists per operational lifetime
    assert len(rows) == bundle.joint.total_op_lifetimes()
