"""§6.2 — partial overlaps: dangling announcements and late allocations.

Paper: 4,434 partial-overlap admin lives (3.4%); 2,840 (64%) are
dangling announcements past deallocation, mostly from networks with no
customers (95% empty customer cone); 1,594 ASNs start announcing
before allocation, 631 even before their registration date.
"""

from repro.core import analyze_partial_overlaps

from conftest import fmt_table


def test_sec62_partial_overlap(benchmark, bundle, record_result):
    stats = benchmark(
        analyze_partial_overlaps,
        bundle.admin_lives,
        bundle.op_lives,
        topology=bundle.world.topology,
    )
    import numpy as np

    tail_median = float(np.median(stats.dangling_tail_days)) if stats.dangling_tail_days else 0
    early_median = float(np.median(stats.early_start_days)) if stats.early_start_days else 0
    text = fmt_table(
        ["metric", "value"],
        [
            ("partial-overlap admin lives", stats.partial_admin_lives),
            ("dangling lives", stats.dangling_lives),
            ("dangling share", f"{stats.dangling_share:.1%}"),
            ("median dangling tail (days)", f"{tail_median:.0f}"),
            ("stub share of dangling ASNs", f"{stats.stub_share_of_dangling():.1%}"),
            ("early-start lives", stats.early_start_lives),
            ("median early start (days)", f"{early_median:.0f}"),
            ("starting before reg date", len(stats.before_reg_date_asns)),
        ],
    )
    record_result("sec62_partial_overlap", text)

    total = bundle.joint.total_admin_lifetimes()
    # partial overlap is a small category (paper: 3.4%)
    assert 0.01 < stats.partial_admin_lives / total < 0.08
    # dangling dominates the category (paper: 64%)
    assert stats.dangling_share > 0.40
    # dangling ASNs are predominantly stubs (paper: 95% no customers;
    # our dangling lives draw uniformly from a topology that is ~85%
    # stubs, so the share sits slightly lower)
    assert stats.stub_share_of_dangling() > 0.6
    # early starts are short (publication lag of days, not months)
    assert 0 < early_median < 30
    # a subset starts even before the registration date (paper: 631)
    assert 0 < len(stats.before_reg_date_asns) <= stats.early_start_lives
    # dangling tails last months (paper: ASNs staying in BGP up to ~2y)
    assert tail_median > 30
