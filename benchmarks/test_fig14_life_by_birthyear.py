"""Figure 14 — administrative life duration by birth year, per RIR.

Paper: early cohorts differ a lot across registries, but from around
2010 life expectancy looks similar for all RIRs; recent cohorts are
right-censored by the window end (the boxplots shrink toward 2021).
"""

import numpy as np

from repro.core import duration_by_birth_year

from conftest import fmt_table


def test_fig14_life_by_birthyear(benchmark, bundle, record_result):
    grouped = benchmark(duration_by_birth_year, bundle.admin_lives)

    years = [2005, 2008, 2011, 2014, 2017, 2020]
    rows = []
    for registry in sorted(grouped):
        medians = []
        for year in years:
            values = grouped[registry].get(year, [])
            medians.append(int(np.median(values)) if values else "-")
        rows.append(tuple([registry] + medians))
    record_result(
        "fig14_life_by_birthyear",
        fmt_table(["RIR"] + [str(y) for y in years], rows),
    )

    # right-censoring: the 2020 cohort's max duration is bounded by the
    # remaining window, the 2008 cohort's is not
    for registry, per_year in grouped.items():
        if 2020 in per_year and 2008 in per_year:
            assert max(per_year[2020]) < max(per_year[2008])

    # from ~2012 the registries' cohort medians converge: relative
    # spread of the per-RIR medians is below 2x for most probe years
    converged = 0
    for year in (2012, 2014, 2016):
        medians = [
            float(np.median(per_year[year]))
            for per_year in grouped.values()
            if year in per_year and len(per_year[year]) >= 10
        ]
        if len(medians) >= 3 and max(medians) < 2.5 * min(medians):
            converged += 1
    assert converged >= 2

    # allocation counts per year exist for every registry after its
    # founding (the bottom panel of Fig. 14)
    for registry, per_year in grouped.items():
        first_year = 2006 if registry == "afrinic" else 2005
        assert any(year >= first_year for year in per_year)
