"""Figure 5 — CDF of administrative lifetime duration per RIR.

Paper: 44% (LACNIC) .. 65% (ARIN) of lives exceed 5 years; a
significant short-life population exists, larger at the smaller RIRs
(LACNIC 13%, APNIC 11%, AfriNIC 9%, RIPE NCC 8%, ARIN 6% under 1 year).
"""

from repro.core import cdf_at

from conftest import fmt_table

YEAR = 365


def durations_by_registry(bundle):
    out = {}
    for lives in bundle.admin_lives.values():
        for life in lives:
            out.setdefault(life.registry, []).append(life.duration)
    return out


def test_fig5_admin_duration_cdf(benchmark, bundle, record_result):
    durations = benchmark(durations_by_registry, bundle)
    rows = []
    for registry in sorted(durations):
        ds = durations[registry]
        rows.append(
            (
                registry,
                len(ds),
                f"{cdf_at(ds, YEAR):.1%}",
                f"{1 - cdf_at(ds, 5 * YEAR):.1%}",
                f"{1 - cdf_at(ds, 10 * YEAR):.1%}",
            )
        )
    record_result(
        "fig5_admin_duration_cdf",
        fmt_table(["RIR", "lives", "<1y", ">5y", ">10y"], rows),
    )

    share_short = {r: cdf_at(d, YEAR) for r, d in durations.items()}
    share_5y = {r: 1 - cdf_at(d, 5 * YEAR) for r, d in durations.items()}
    # short lives are a real population everywhere (§5)
    assert all(0.02 < s < 0.25 for s in share_short.values())
    # the smaller RIRs have more short lives than ARIN (paper ordering)
    assert share_short["lacnic"] > share_short["arin"]
    assert share_short["apnic"] > share_short["arin"]
    # long lives dominate: >5 years for a large fraction everywhere
    assert all(s > 0.35 for s in share_5y.values())
    # ARIN holds one of the longest-lived populations (65% > 5y in
    # the paper), clearly above the youngest RIRs
    assert share_5y["arin"] >= max(share_5y.values()) - 0.02
    assert share_5y["arin"] > share_5y["lacnic"]
    assert share_5y["arin"] > share_5y["afrinic"]
