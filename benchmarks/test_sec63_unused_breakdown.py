"""§6.3 — why allocated ASNs never show up in BGP.

Paper: 22,729 unused lives (17.9%); China is the extreme outlier with
50.6% of its allocated ASNs unobserved (vs <15% for every other top-10
country, Russia unusually low at 8.1%); many unused ASNs belong to
organizations whose *sibling* ASNs are active; among unused lives
shorter than a month, 32-bit ASNs dominate (92.6% APNIC .. 38% LACNIC).
"""

from repro.core import analyze_unused_lives

from conftest import fmt_table


def run(bundle):
    return analyze_unused_lives(
        bundle.admin_lives,
        bundle.op_lives,
        siblings=bundle.world.orgs.sibling_map(),
    )


def test_sec63_unused_breakdown(benchmark, bundle, record_result):
    stats = benchmark(run, bundle)
    country_rows = [
        (cc, count, f"{frac:.1%}")
        for cc, count, frac in stats.top_unused_countries(10)
    ]
    text = fmt_table(["country", "unused lives", "unused fraction"], country_rows)
    bit_rows = [
        (registry, f"{stats.short_unused_32bit_share(registry):.1%}")
        for registry in sorted(stats.short_unused_total_by_registry)
    ]
    text += "\n\n32-bit share of short (<1 month) unused lives:\n"
    text += fmt_table(["RIR", "32-bit share"], bit_rows)
    text += (
        f"\n\nunused share overall: {stats.unused_share:.1%} (paper: 17.9%)"
        f"\nnever-seen ASNs: {len(stats.never_seen_asns)}"
        f"\nunused ASNs in orgs with an active sibling: "
        f"{stats.sibling_share():.1%}"
    )
    record_result("sec63_unused_breakdown", text)

    # overall share near the paper's 17.9%
    assert 0.10 < stats.unused_share < 0.30
    # China's unused fraction stands far above the US/RU baseline
    cn = stats.country_unused_fraction("CN")
    us = stats.country_unused_fraction("US")
    ru = stats.country_unused_fraction("RU")
    assert cn > 0.35  # paper: 50.6%
    assert cn > 2 * us
    assert ru < us  # Russia uses its allocations unusually fully
    # the sibling mechanism is visible: a large share of unused ASNs
    # belong to organizations that announce through other ASNs
    assert stats.sibling_share() > 0.10
    # 32-bit failures dominate short unused lives where data exists
    shares = [
        stats.short_unused_32bit_share(r)
        for r, n in stats.short_unused_total_by_registry.items()
        if n >= 5
    ]
    assert shares
    assert max(shares) > 0.5  # paper: up to 92.6% (APNIC)


def test_sec63_whowas_retry_pattern(benchmark, bundle, record_result):
    """§6.3's WhoWas investigation: organizations behind short unused
    32-bit allocations were handed 16-bit ASNs right after (paper: 86%
    of the inspected ARIN cases)."""
    from repro.rir import WhoWas

    service = WhoWas(bundle.admin_lives)
    findings = benchmark(
        service.find_32bit_retries, max_failed_duration=45, max_gap_days=120
    )
    truth = [l for l in bundle.world.lives if l.failed_32bit]
    text = fmt_table(
        ["org", "failed 32-bit", "days", "16-bit retry", "gap"],
        [
            (f.org_id, f"AS{f.failed_asn}", f.failed_duration,
             f"AS{f.replacement_asn}", f.gap_days)
            for f in findings[:12]
        ],
    )
    text += f"\n\nfindings: {len(findings)}  planted: {len(truth)}"
    record_result("sec63_whowas_retries", text)

    assert truth, "bench world must contain failed 32-bit deployments"
    # the WhoWas query recovers most planted failures (some retries
    # fall outside the 120-day probe window, as in the paper's 86%)
    recovered = {f.failed_asn for f in findings} & {l.asn for l in truth}
    assert len(recovered) / len(truth) > 0.5
    # every finding is a genuine 32-bit-then-16-bit sequence
    from repro.asn import is_16bit, is_32bit_only

    for finding in findings:
        assert is_32bit_only(finding.failed_asn)
        assert is_16bit(finding.replacement_asn)
        assert finding.gap_days >= 0
