"""§3.1 — the archive restoration, scored against injected truth.

Paper: 157 missing-file gap fills, same-day divergence on 1.8% of
days (never AfriNIC), 16 AfriNIC duplicate ASNs, >800 RIPE NCC
placeholder dates traced to ERX, ~450 ASNs with inter-RIR overlaps.
The paper could only *count* its repairs; with ground truth we can
also verify them.
"""

from repro.restoration import restore_archive

from conftest import fmt_table


def run_restoration(bundle):
    return restore_archive(
        bundle.archive,
        erx_reference=bundle.world.erx_reference,
        ledger=bundle.world.ledger,
    )


def test_sec31_restoration(benchmark, bundle, record_result):
    restored, report = benchmark(run_restoration, bundle)
    summary = report.summary()
    injected = {}
    for defect in bundle.injected_defects:
        injected[defect.kind] = injected.get(defect.kind, 0) + 1

    rows = [(k, v) for k, v in sorted(injected.items())]
    text = "Injected defects:\n" + fmt_table(["kind", "count"], rows)
    text += "\n\n" + report.render()
    record_result("sec31_restoration", text)

    # every defect class was injected
    for kind in (
        "missing_file", "corrupt_file", "stale_day", "record_drop",
        "duplicate_record", "future_regdate", "placeholder_regdate",
        "stale_transfer_record", "mistaken_allocation",
    ):
        assert injected.get(kind, 0) > 0, kind

    # and the matching repair steps all fired
    assert any(v > 0 for v in summary["ii-missing-records"].values())
    assert any(v > 0 for v in summary["iii-same-day-divergence"].values())
    assert summary["iv-duplicate-records"].get("afrinic_asns_deduplicated", 0) > 0
    assert summary["v-registration-dates"].get(
        "ripencc_placeholder_dates_fixed", 0
    ) >= injected["placeholder_regdate"] * 0.8
    assert summary["vi-inter-rir"]["mistaken_allocations_removed"] >= (
        injected["mistaken_allocation"] * 0.8
    )
    assert summary["vi-inter-rir"]["stale_transfer_tails_trimmed"] > 0

    # AfriNIC never diverges between its two feeds (§3.1 iii)
    assert "afrinic_divergent_days" not in summary["iii-same-day-divergence"]

    # the duplicate repair hit exactly the paper's defect count scale
    dup_fixed = summary["iv-duplicate-records"]["afrinic_asns_deduplicated"]
    assert dup_fixed >= injected["duplicate_record"] * 0.8

    # no overlapping rows survive restoration
    for asn, stints in restored.stints.items():
        for a, b in zip(stints, stints[1:]):
            assert a.end < b.start or a.record.registry != b.record.registry, asn
