"""Pipeline runtime scaling: stage profile, backend speedup, cache speedup.

Unlike the other benchmarks (which regenerate paper tables/figures),
this one measures the *pipeline itself*: per-stage wall times under the
serial and process-pool backends, the serial/parallel speedup, and the
cold-build vs. warm-cache-hit speedup.  The numbers go to
``benchmarks/results/pipeline_scaling.txt``; the assertions pin the
determinism contract (backends agree exactly) and the cache's reason to
exist (a warm hit is an order of magnitude faster than a rebuild).
"""

from __future__ import annotations

import os
from time import perf_counter

from repro.runtime import ArtifactCache, PipelineStats
from repro.simulation import bench, build_datasets

from conftest import CACHE_DIR


def _timed_build(**kwargs):
    start = perf_counter()
    bundle = build_datasets(bench(seed=2021), **kwargs)
    return bundle, perf_counter() - start


def test_pipeline_scaling(record_result):
    serial_stats = PipelineStats()
    serial_bundle, cold_seconds = _timed_build(stats=serial_stats)

    parallel_stats = PipelineStats()
    parallel_bundle, parallel_seconds = _timed_build(jobs=2, stats=parallel_stats)

    # determinism contract: the process-pool bundle matches serially
    # built output exactly, ordering included
    assert parallel_bundle.restored.stints == serial_bundle.restored.stints
    assert parallel_bundle.admin_lives == serial_bundle.admin_lives
    assert parallel_bundle.op_lives == serial_bundle.op_lives
    assert list(parallel_bundle.admin_lives) == list(serial_bundle.admin_lives)
    assert (
        parallel_bundle.restoration_report.summary()
        == serial_bundle.restoration_report.summary()
    )

    # every pipeline stage shows up in both profiles
    for name in ("simulate", "restore:per-registry", "admin-lifetimes",
                 "bgp-lifetimes"):
        assert serial_stats.seconds_of(name) > 0
        assert parallel_stats.seconds_of(name) > 0

    # warm-cache hit: ensure the entry exists, then time a pure hit.
    # A hit returns a partitioned bundle (components decode on first
    # access), so the hit itself costs file I/O, not graph rebuilding.
    cache = ArtifactCache(CACHE_DIR)
    build_datasets(bench(seed=2021), cache=cache)
    warm_stats = PipelineStats()
    _, warm_seconds = _timed_build(cache=cache, stats=warm_stats)
    assert cache.hits >= 1
    assert [s.name for s in warm_stats.stages] == ["cache:lookup"]
    cache_speedup = cold_seconds / warm_seconds
    assert cache_speedup >= 10, (
        f"warm cache hit only {cache_speedup:.1f}x faster than cold build "
        f"({warm_seconds:.3f}s vs {cold_seconds:.3f}s)"
    )

    backend_speedup = cold_seconds / parallel_seconds
    lines = [
        f"host CPUs: {os.cpu_count()} (speedup >1 needs real cores; "
        "on 1 CPU the pool only adds pickling overhead)",
        "",
        serial_stats.render(),
        "",
        parallel_stats.render(),
        "",
        f"{'cold build (serial)':<28} {cold_seconds:>9.3f}s",
        f"{'build with --jobs 2':<28} {parallel_seconds:>9.3f}s",
        f"{'warm cache hit':<28} {warm_seconds:>9.3f}s",
        f"{'serial/parallel speedup':<28} {backend_speedup:>9.2f}x",
        f"{'cold/warm cache speedup':<28} {cache_speedup:>9.2f}x",
    ]
    record_result("pipeline_scaling", "\n".join(lines))
