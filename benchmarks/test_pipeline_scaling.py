"""Pipeline runtime scaling: stage profile, backend speedup, cache speedup.

Unlike the other benchmarks (which regenerate paper tables/figures),
this one measures the *pipeline itself*: per-stage wall times under the
serial and process-pool backends, the serial/parallel speedup, and the
cold-build vs. warm-cache-hit speedup.  The numbers go to
``benchmarks/results/pipeline_scaling.txt``; the assertions pin the
determinism contract (backends agree exactly) and the cache's reason to
exist (a warm hit is an order of magnitude faster than a rebuild).
"""

from __future__ import annotations

import os
from time import perf_counter

from repro.lifetimes.bgp import build_operational_dataset
from repro.runtime import ArtifactCache, PipelineStats, ledger_disabled
from repro.simulation import bench, build_datasets
from repro.simulation.config import tiny
from repro.simulation.world import WorldSimulator

from conftest import CACHE_DIR


def _timed_build(**kwargs):
    start = perf_counter()
    bundle = build_datasets(bench(seed=2021), **kwargs)
    return bundle, perf_counter() - start


def test_pipeline_scaling(record_result):
    serial_stats = PipelineStats()
    serial_bundle, cold_seconds = _timed_build(stats=serial_stats)

    parallel_stats = PipelineStats()
    parallel_bundle, parallel_seconds = _timed_build(jobs=2, stats=parallel_stats)

    # determinism contract: the process-pool bundle matches serially
    # built output exactly, ordering included
    assert parallel_bundle.restored.stints == serial_bundle.restored.stints
    assert parallel_bundle.admin_lives == serial_bundle.admin_lives
    assert parallel_bundle.op_lives == serial_bundle.op_lives
    assert list(parallel_bundle.admin_lives) == list(serial_bundle.admin_lives)
    assert (
        parallel_bundle.restoration_report.summary()
        == serial_bundle.restoration_report.summary()
    )

    # every pipeline stage shows up in both profiles
    for name in ("simulate", "restore:per-registry", "admin-lifetimes",
                 "bgp-lifetimes"):
        assert serial_stats.seconds_of(name) > 0
        assert parallel_stats.seconds_of(name) > 0

    # warm-cache hit: ensure the entry exists, then time a pure hit.
    # A hit returns a partitioned bundle (components decode on first
    # access), so the hit itself costs file I/O, not graph rebuilding.
    cache = ArtifactCache(CACHE_DIR)
    build_datasets(bench(seed=2021), cache=cache)
    warm_stats = PipelineStats()
    _, warm_seconds = _timed_build(cache=cache, stats=warm_stats)
    assert cache.hits >= 1
    assert [s.name for s in warm_stats.stages] == ["cache:lookup"]
    cache_speedup = cold_seconds / warm_seconds
    assert cache_speedup >= 10, (
        f"warm cache hit only {cache_speedup:.1f}x faster than cold build "
        f"({warm_seconds:.3f}s vs {cold_seconds:.3f}s)"
    )

    backend_speedup = cold_seconds / parallel_seconds
    lines = [
        f"host CPUs: {os.cpu_count()} (speedup >1 needs real cores; "
        "on 1 CPU the pool only adds pickling overhead)",
        "",
        serial_stats.render(),
        "",
        parallel_stats.render(),
        "",
        f"{'cold build (serial)':<28} {cold_seconds:>9.3f}s",
        f"{'build with --jobs 2':<28} {parallel_seconds:>9.3f}s",
        f"{'warm cache hit':<28} {warm_seconds:>9.3f}s",
        f"{'serial/parallel speedup':<28} {backend_speedup:>9.2f}x",
        f"{'cold/warm cache speedup':<28} {cache_speedup:>9.2f}x",
    ]
    record_result("pipeline_scaling", "\n".join(lines))


#: Stages the columnar activity engine replaces (segmentation and cache
#: I/O are shared between engines and excluded from the speedup).
_ACTIVITY_STAGES = ("bgp:stream", "bgp:sanitize", "bgp:visibility")


def _activity_stage_seconds(stats: PipelineStats) -> float:
    return sum(stats.seconds_of(name) for name in _ACTIVITY_STAGES)


def test_bgp_activity_scaling(record_result):
    """Columnar vs. object-stream BGP activity: speed, determinism, cache.

    One tiny-scale world, a ~6-month message-level window.  The
    assertions pin the PR 2 acceptance criteria: the columnar engine's
    stream+sanitize+visibility stages are >= 3x faster than the
    object-stream baseline, both engines (and both executor backends)
    produce byte-identical tables and lifetimes, and a warm
    activity-table cache hit skips the stream stages entirely.
    """
    world = WorldSimulator(tiny(seed=2021)).run()
    end = world.config.end_day
    start = end - 179
    window = dict(start=start, end=end)

    object_stats = PipelineStats()
    t0 = perf_counter()
    object_lives, object_tables = build_operational_dataset(
        world, engine="object", stats=object_stats, **window,
    )
    object_seconds = perf_counter() - t0

    columnar_stats = PipelineStats()
    t0 = perf_counter()
    columnar_lives, columnar_tables = build_operational_dataset(
        world, engine="columnar", stats=columnar_stats, **window,
    )
    columnar_seconds = perf_counter() - t0

    parallel_stats = PipelineStats()
    t0 = perf_counter()
    parallel_lives, parallel_tables = build_operational_dataset(
        world, engine="columnar", executor=2, day_chunk=30,
        stats=parallel_stats, **window,
    )
    parallel_seconds = perf_counter() - t0

    # determinism: engines and backends agree exactly, ordering included
    assert columnar_tables == object_tables
    assert columnar_lives == object_lives
    assert list(columnar_lives) == list(object_lives)
    assert parallel_tables == columnar_tables
    assert parallel_lives == columnar_lives

    stage_speedup = (
        _activity_stage_seconds(object_stats)
        / _activity_stage_seconds(columnar_stats)
    )
    assert stage_speedup >= 3, (
        f"columnar stream+visibility only {stage_speedup:.1f}x faster than "
        f"the object stream"
    )

    # warm activity-table hit: ensure the entry exists, then time a
    # pure hit — it must skip stream/sanitize/visibility entirely
    cache = ArtifactCache(CACHE_DIR)
    build_operational_dataset(world, cache=cache, **window)
    warm_stats = PipelineStats()
    t0 = perf_counter()
    warm_lives, _ = build_operational_dataset(
        world, cache=cache, stats=warm_stats, **window,
    )
    warm_seconds = perf_counter() - t0
    assert cache.hits >= 1
    assert [s.name for s in warm_stats.stages] == [
        "cache:lookup", "bgp:segment",
    ]
    assert warm_lives == columnar_lives

    cache_speedup = columnar_seconds / warm_seconds
    lines = [
        f"window: {end - start + 1} days, {len(columnar_tables)} active ASNs, "
        f"host CPUs: {os.cpu_count()}",
        "",
        columnar_stats.compare(
            object_stats, label="columnar", baseline_label="object",
        ),
        "",
        f"{'object stream (serial)':<28} {object_seconds:>9.3f}s",
        f"{'columnar (serial)':<28} {columnar_seconds:>9.3f}s",
        f"{'columnar (--jobs 2)':<28} {parallel_seconds:>9.3f}s",
        f"{'warm activity-table hit':<28} {warm_seconds:>9.3f}s",
        f"{'stage speedup (col/obj)':<28} {stage_speedup:>9.2f}x",
        f"{'cold/warm cache speedup':<28} {cache_speedup:>9.2f}x",
    ]
    record_result("bgp_activity", "\n".join(lines))


def test_cache_verification_overhead(record_result, tmp_path):
    """Sha256 verification and ledger accounting each cost <= ~5% warm.

    The ISSUE 3 acceptance bound: checksum verification must be cheap
    enough to leave on by default.  Same world, same window, same warm
    activity-table entry — timed under ``verify="off"`` and
    ``verify="sha256"``, min-of-7 to shed scheduler noise.  The same
    bound prices the dataflow ledger: the warm path re-timed under
    :func:`ledger_disabled` must be within 5% of the default
    accounting-on run, or the conservation counters are too hot to
    leave enabled.
    """
    world = WorldSimulator(tiny(seed=2021)).run()
    end = world.config.end_day
    start = end - 179
    window = dict(start=start, end=end)

    # one shared entry directory, populated once
    seed_cache = ArtifactCache(tmp_path, faults=None)
    build_operational_dataset(world, cache=seed_cache, **window)

    def warm_seconds(verify: str) -> float:
        cache = ArtifactCache(tmp_path, verify=verify, faults=None)
        best = float("inf")
        for _ in range(7):
            t0 = perf_counter()
            lives, _ = build_operational_dataset(
                world, cache=cache, **window
            )
            best = min(best, perf_counter() - t0)
            assert lives  # every iteration is a real warm hit
        assert cache.hits == 7
        assert cache.corrupt == 0
        return best

    off_t = warm_seconds("off")
    sha_t = warm_seconds("sha256")
    # the warm path still runs bgp:segment, the ledger's hottest
    # boundary on a cache hit — time it with accounting suppressed
    with ledger_disabled():
        bare_t = warm_seconds("off")

    # 5% relative, plus a 2ms absolute floor so the bound is meaningful
    # even when the whole warm hit is sub-millisecond
    assert sha_t <= off_t * 1.05 + 0.002, (
        f"sha256 verification overhead too high: {sha_t:.4f}s verified "
        f"vs {off_t:.4f}s unverified"
    )
    assert off_t <= bare_t * 1.05 + 0.002, (
        f"ledger accounting overhead too high: {off_t:.4f}s with the "
        f"ledger vs {bare_t:.4f}s without"
    )

    overhead = (sha_t / off_t - 1.0) * 100.0
    ledger_overhead = (off_t / bare_t - 1.0) * 100.0
    lines = [
        "warm activity-table hit, min of 7 runs",
        f"{'verify=off, no ledger':<28} {bare_t:>9.4f}s",
        f"{'verify=off':<28} {off_t:>9.4f}s",
        f"{'verify=sha256':<28} {sha_t:>9.4f}s",
        f"{'verification overhead':<28} {overhead:>8.2f}%",
        f"{'ledger overhead':<28} {ledger_overhead:>8.2f}%",
    ]
    record_result("cache_verification_overhead", "\n".join(lines))
