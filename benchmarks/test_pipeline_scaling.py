"""Pipeline runtime scaling: stage profile, backend speedup, cache speedup.

Unlike the other benchmarks (which regenerate paper tables/figures),
this one measures the *pipeline itself*: per-stage wall times under the
serial and process-pool backends, the serial/parallel speedup, and the
cold-build vs. warm-cache-hit speedup.  The numbers go to
``benchmarks/results/pipeline_scaling.txt``; the assertions pin the
determinism contract (backends agree exactly) and the cache's reason to
exist (a warm hit is an order of magnitude faster than a rebuild).
"""

from __future__ import annotations

import os
from time import perf_counter

import numpy as np

from repro.bgp.records import RecordSet, records_day_classes
from repro.lifetimes.bgp import build_operational_dataset
from repro.runtime import (
    ArtifactCache,
    MetricsRegistry,
    PipelineStats,
    ledger_disabled,
)
from repro.runtime.executor import ProcessPoolBackend
from repro.simulation import bench, build_datasets
from repro.simulation.config import tiny
from repro.simulation.world import WorldSimulator

from conftest import CACHE_DIR


def _timed_build(**kwargs):
    start = perf_counter()
    bundle = build_datasets(bench(seed=2021), **kwargs)
    return bundle, perf_counter() - start


def test_pipeline_scaling(record_result):
    serial_stats = PipelineStats()
    serial_bundle, cold_seconds = _timed_build(stats=serial_stats)

    parallel_stats = PipelineStats()
    parallel_bundle, parallel_seconds = _timed_build(jobs=2, stats=parallel_stats)

    # determinism contract: the process-pool bundle matches serially
    # built output exactly, ordering included
    assert parallel_bundle.restored.stints == serial_bundle.restored.stints
    assert parallel_bundle.admin_lives == serial_bundle.admin_lives
    assert parallel_bundle.op_lives == serial_bundle.op_lives
    assert list(parallel_bundle.admin_lives) == list(serial_bundle.admin_lives)
    assert (
        parallel_bundle.restoration_report.summary()
        == serial_bundle.restoration_report.summary()
    )

    # every pipeline stage shows up in both profiles
    for name in ("simulate", "restore:per-registry", "admin-lifetimes",
                 "bgp-lifetimes"):
        assert serial_stats.seconds_of(name) > 0
        assert parallel_stats.seconds_of(name) > 0

    # warm-cache hit: ensure the entry exists, then time a pure hit.
    # A hit returns a partitioned bundle (components decode on first
    # access), so the hit itself costs file I/O, not graph rebuilding.
    cache = ArtifactCache(CACHE_DIR)
    build_datasets(bench(seed=2021), cache=cache)
    warm_stats = PipelineStats()
    _, warm_seconds = _timed_build(cache=cache, stats=warm_stats)
    assert cache.hits >= 1
    assert [s.name for s in warm_stats.stages] == ["cache:lookup"]
    cache_speedup = cold_seconds / warm_seconds
    assert cache_speedup >= 10, (
        f"warm cache hit only {cache_speedup:.1f}x faster than cold build "
        f"({warm_seconds:.3f}s vs {cold_seconds:.3f}s)"
    )

    # the descriptor fan-out must keep restore:views from regressing
    # under the pool (the pickled-view blowup the table engine removes);
    # small absolute floor so sub-100ms stages don't trip on noise
    serial_views = serial_stats.seconds_of("restore:views")
    parallel_views = parallel_stats.seconds_of("restore:views")
    assert parallel_views <= max(2 * serial_views, serial_views + 0.25), (
        f"restore:views regressed under the process pool: "
        f"{parallel_views:.3f}s with --jobs 2 vs {serial_views:.3f}s serial"
    )

    # Per-stage serial-vs-process deltas instead of one speedup
    # headline: on a 1-CPU host the single number is dominated by pool
    # overhead and reads as a global regression even when individual
    # fan-outs help.  A stage the pool actually hurt is named and
    # flagged; everything else speaks for itself.
    serial_by_stage = serial_stats.as_dict()
    parallel_by_stage = parallel_stats.as_dict()
    stage_lines = [
        f"{'stage':<28} {'serial':>9} {'jobs 2':>9} {'delta':>9}",
    ]
    for name in dict.fromkeys([*serial_by_stage, *parallel_by_stage]):
        a = serial_by_stage.get(name)
        b = parallel_by_stage.get(name)
        if a is None or b is None:
            continue
        flag = "  fanout-regressed" if b > a * 1.25 + 0.05 else ""
        stage_lines.append(
            f"{name:<28} {a:>8.3f}s {b:>8.3f}s {b - a:>+8.3f}s{flag}"
        )

    lines = [
        f"host CPUs: {os.cpu_count()} (parallel wins need real cores; "
        "on 1 CPU the pool only adds pickling overhead)",
        "",
        serial_stats.render(),
        "",
        parallel_stats.render(),
        "",
        "\n".join(stage_lines),
        "",
        f"{'cold build (serial)':<28} {cold_seconds:>9.3f}s",
        f"{'build with --jobs 2':<28} {parallel_seconds:>9.3f}s",
        f"{'warm cache hit':<28} {warm_seconds:>9.3f}s",
        f"{'cold/warm cache speedup':<28} {cache_speedup:>9.2f}x",
    ]
    record_result("pipeline_scaling", "\n".join(lines))


#: Restoration stages the delegation-table engine accelerates; the
#: table path pays ``restore:table`` on top, so the sum is the honest
#: cost either way (inter-rir and merge are shared code, excluded).
_RESTORE_STAGES = ("restore:table", "restore:views", "restore:per-registry")


def _restore_stage_seconds(stats: PipelineStats) -> float:
    return sum(stats.seconds_of(name) for name in _RESTORE_STAGES)


def test_restoration_scaling(record_result, tmp_path):
    """Delegation-table vs object restoration: speed and byte-identity.

    Four bench-scale builds — object and table engines, serial and
    ``--jobs 2`` — compared on output (must match exactly, ordering
    included) and on their restore-stage wall time.  Each build gets a
    private metrics registry: these are comparison rows, and the slow
    object-engine runs must not leak into the session's gated stage
    histograms.  The assertions pin the two ISSUE 7 claims: under a
    process pool the descriptor fan-out beats pickled views by a wide
    margin, and serially the table engine (container encode included)
    stays in the object engine's ballpark.
    """
    def build(**kwargs):
        stats = PipelineStats(metrics=MetricsRegistry())
        bundle = build_datasets(bench(seed=2021), stats=stats, **kwargs)
        return bundle, stats

    container = tmp_path / "bench.dtab"
    object_bundle, object_stats = build(restoration_engine="object")
    cold_bundle, cold_stats = build(
        restoration_engine="table", restoration_table=container
    )
    steady_bundle, steady_stats = build(
        restoration_engine="table", restoration_table=container
    )
    warm_bundle, warm_stats = build(
        restoration_engine="table", restoration_table=container, jobs=2
    )
    pobj_bundle, pobj_stats = build(restoration_engine="object", jobs=2)

    # engines and backends agree exactly, ordering included
    for bundle in (cold_bundle, steady_bundle, warm_bundle, pobj_bundle):
        assert bundle.restored.stints == object_bundle.restored.stints
        assert list(bundle.restored.stints) == list(object_bundle.restored.stints)
        assert bundle.admin_lives == object_bundle.admin_lives
        assert (
            bundle.restoration_report.summary()
            == object_bundle.restoration_report.summary()
        )

    # the cold run encodes + persists; the warm run memory-maps the
    # container and fans out (path, registry) descriptors
    spans = {s.name: s for s in cold_stats.tracer.spans}
    assert spans["restore:table"].attrs["source"] == "encoded"
    spans = {s.name: s for s in warm_stats.tracer.spans}
    assert spans["restore:table"].attrs["source"] == "mmap"
    assert spans["restore:table"].attrs["fanout"] == "path"

    object_t = _restore_stage_seconds(object_stats)
    cold_t = _restore_stage_seconds(cold_stats)
    steady_t = _restore_stage_seconds(steady_stats)
    warm_t = _restore_stage_seconds(warm_stats)
    pobj_t = _restore_stage_seconds(pobj_stats)
    pool_speedup = pobj_t / warm_t if warm_t > 0 else float("inf")
    assert pool_speedup >= 2.5, (
        f"table descriptor fan-out only {pool_speedup:.1f}x faster than "
        f"pickled object views under --jobs 2 ({warm_t:.3f}s vs {pobj_t:.3f}s)"
    )
    # steady state (container already on disk, zero-copy re-open) must
    # stay in the object engine's ballpark serially; the cold encode is
    # a one-time cost the cache amortizes, reported but not gated here
    assert steady_t <= 2.0 * object_t + 0.1, (
        f"table engine too slow serially: {steady_t:.3f}s warm mmap "
        f"vs {object_t:.3f}s object"
    )

    lines = [
        f"bench-scale restore stages (table+views+per-registry), "
        f"host CPUs: {os.cpu_count()}",
        f"{'object serial':<28} {object_t:>9.3f}s",
        f"{'table serial (cold encode)':<28} {cold_t:>9.3f}s",
        f"{'table serial (warm mmap)':<28} {steady_t:>9.3f}s",
        f"{'table jobs 2 (warm mmap)':<28} {warm_t:>9.3f}s",
        f"{'object jobs 2':<28} {pobj_t:>9.3f}s",
        f"{'pool speedup (table/object)':<28} {pool_speedup:>9.2f}x",
    ]
    record_result("restoration_scaling", "\n".join(lines))


#: Stages the columnar activity engine replaces (segmentation and cache
#: I/O are shared between engines and excluded from the speedup).
_ACTIVITY_STAGES = ("bgp:stream", "bgp:sanitize", "bgp:visibility")


def _activity_stage_seconds(stats: PipelineStats) -> float:
    return sum(stats.seconds_of(name) for name in _ACTIVITY_STAGES)


def test_bgp_activity_scaling(record_result, tmp_path):
    """Records vs. columnar vs. object BGP activity: speed, determinism.

    One tiny-scale world.  The object-stream baseline runs over a short
    reference slice (it is the thing being beaten; timing it over the
    full window would spend the session's perf budget re-measuring
    known-slow code), the vectorized engines over the slice and the
    full ~6-month window.  The assertions pin the ISSUE 6 acceptance
    criteria: per day of window, the records engine's stream+sanitize+
    visibility stages beat the object baseline >= 3x even on a cold
    encode and >= 5x once the container is memory-mapped (columnar
    keeps its >= 3x bound); serial and mmap-fan-out parallel runs are
    byte-identical, as are mmap and pickled worker payloads; and a warm
    activity-table cache hit skips the stream stages entirely.
    """
    world = WorldSimulator(tiny(seed=2021)).run()
    end = world.config.end_day
    start = end - 179
    window = dict(start=start, end=end)
    full_days = end - start + 1
    ref_days = 14
    ref_window = dict(start=end - ref_days + 1, end=end)

    # -- reference slice: the object baseline and the columnar engine -
    object_stats = PipelineStats()
    t0 = perf_counter()
    object_lives, object_tables = build_operational_dataset(
        world, engine="object", stats=object_stats, **ref_window,
    )
    object_seconds = perf_counter() - t0

    col_ref_stats = PipelineStats()
    col_ref_lives, col_ref_tables = build_operational_dataset(
        world, engine="columnar", stats=col_ref_stats, **ref_window,
    )
    assert col_ref_tables == object_tables
    assert col_ref_lives == object_lives
    assert list(col_ref_lives) == list(object_lives)

    # -- full window: records cold (encode + persist the container),
    # then the steady state — zero-copy re-open with mmap fan-out.
    # (records == object equivalence is pinned per element by the
    # tier-1 suite; here the serial cold run is the parallel warm
    # run's oracle.)
    container = tmp_path / "bench.bgprec"
    records_stats = PipelineStats()
    t0 = perf_counter()
    records_lives, records_tables = build_operational_dataset(
        world, engine="records", records_path=container,
        stats=records_stats, **window,
    )
    records_seconds = perf_counter() - t0

    cache = ArtifactCache(tmp_path / "cache", faults=None)
    warm_rec_stats = PipelineStats()
    t0 = perf_counter()
    warm_rec_lives, warm_rec_tables = build_operational_dataset(
        world, engine="records", records_path=container, cache=cache,
        records_fanout="mmap", executor=2,
        stats=warm_rec_stats, **window,
    )
    warm_rec_seconds = perf_counter() - t0

    # determinism: serial cold build == parallel mmap re-open, exactly
    assert warm_rec_tables == records_tables
    assert warm_rec_lives == records_lives
    assert list(warm_rec_lives) == list(records_lives)
    spans = {s.name: s for s in records_stats.tracer.spans}
    assert spans["bgp:stream"].attrs["source"] == "encoded"
    spans = {s.name: s for s in warm_rec_stats.tracer.spans}
    assert spans["bgp:stream"].attrs["source"] == "mmap"
    assert spans["bgp:visibility"].attrs["fanout"] == "mmap"

    # warm activity-table hit (stored by the run above): it must skip
    # stream/sanitize/visibility entirely, whichever engine built it
    warm_stats = PipelineStats()
    t0 = perf_counter()
    warm_lives, _ = build_operational_dataset(
        world, cache=cache, stats=warm_stats, **window,
    )
    warm_seconds = perf_counter() - t0
    assert cache.hits == 1
    assert [s.name for s in warm_stats.stages] == [
        "cache:lookup", "bgp:segment",
    ]
    assert warm_lives == records_lives

    # -- mmap vs pickled fan-out payloads, same pool, same chunks -----
    # (timed directly so the comparison rows stay out of the session's
    # gated stage histograms)
    rs = RecordSet.from_file(container)
    with ProcessPoolBackend(2, faults=None) as pool:
        t0 = perf_counter()
        over_mmap = records_day_classes(rs, executor=pool, fanout="mmap")
        mmap_fanout_seconds = perf_counter() - t0
        t0 = perf_counter()
        over_pickle = records_day_classes(rs, executor=pool, fanout="pickle")
        pickle_fanout_seconds = perf_counter() - t0
    assert over_mmap.chunks == over_pickle.chunks
    assert np.array_equal(over_mmap.asns, over_pickle.asns)
    assert np.array_equal(over_mmap.days, over_pickle.days)
    assert np.array_equal(over_mmap.classes, over_pickle.classes)
    assert over_mmap.stats.dropped == over_pickle.stats.dropped

    # -- speedups, per-day normalized against the reference slice -----
    object_rate = _activity_stage_seconds(object_stats) / ref_days
    cold_rate = _activity_stage_seconds(records_stats) / full_days
    warm_rate = _activity_stage_seconds(warm_rec_stats) / full_days
    columnar_rate = _activity_stage_seconds(col_ref_stats) / ref_days
    cold_speedup = object_rate / cold_rate
    warm_speedup = object_rate / warm_rate
    columnar_speedup = object_rate / columnar_rate
    assert cold_speedup >= 3, (
        f"records cold encode only {cold_speedup:.1f}x faster per day "
        f"than the object stream"
    )
    assert warm_speedup >= 5, (
        f"records warm mmap only {warm_speedup:.1f}x faster per day "
        f"than the object stream"
    )
    assert columnar_speedup >= 3, (
        f"columnar stream+visibility only {columnar_speedup:.1f}x faster "
        f"per day than the object stream"
    )

    cache_speedup = records_seconds / warm_seconds
    lines = [
        f"window: {full_days} days (object baseline over the last "
        f"{ref_days}), {len(records_tables)} active ASNs, "
        f"host CPUs: {os.cpu_count()}",
        "",
        records_stats.compare(
            object_stats, label=f"records cold {full_days}d",
            baseline_label=f"object {ref_days}d",
        ),
        "",
        warm_rec_stats.compare(
            records_stats, label="records warm mmap",
            baseline_label="records cold",
        ),
        "",
        f"{f'object stream ({ref_days}d slice)':<28} {object_seconds:>9.3f}s",
        f"{'records cold (180d)':<28} {records_seconds:>9.3f}s",
        f"{'records warm mmap, jobs 2':<28} {warm_rec_seconds:>9.3f}s",
        f"{'warm activity-table hit':<28} {warm_seconds:>9.3f}s",
        f"{'mmap fan-out (jobs 2)':<28} {mmap_fanout_seconds:>9.3f}s",
        f"{'pickled fan-out (jobs 2)':<28} {pickle_fanout_seconds:>9.3f}s",
        f"{'per-day cold (rec/obj)':<28} {cold_speedup:>9.2f}x",
        f"{'per-day warm (rec/obj)':<28} {warm_speedup:>9.2f}x",
        f"{'per-day speedup (col/obj)':<28} {columnar_speedup:>9.2f}x",
        f"{'cold/warm cache speedup':<28} {cache_speedup:>9.2f}x",
    ]
    record_result("bgp_activity", "\n".join(lines))



def test_cache_verification_overhead(record_result, tmp_path):
    """Sha256 verification and ledger accounting each cost <= ~5% warm.

    The ISSUE 3 acceptance bound: checksum verification must be cheap
    enough to leave on by default.  Same world, same window, same warm
    activity-table entry — timed under ``verify="off"`` and
    ``verify="sha256"``, min-of-7 to shed scheduler noise.  The same
    bound prices the dataflow ledger: the warm path re-timed under
    :func:`ledger_disabled` must be within 5% of the default
    accounting-on run, or the conservation counters are too hot to
    leave enabled.
    """
    world = WorldSimulator(tiny(seed=2021)).run()
    end = world.config.end_day
    start = end - 179
    window = dict(start=start, end=end)

    # one shared entry directory, populated once
    seed_cache = ArtifactCache(tmp_path, faults=None)
    build_operational_dataset(world, cache=seed_cache, **window)

    def warm_seconds(verify: str) -> float:
        cache = ArtifactCache(tmp_path, verify=verify, faults=None)
        best = float("inf")
        for _ in range(7):
            t0 = perf_counter()
            lives, _ = build_operational_dataset(
                world, cache=cache, **window
            )
            best = min(best, perf_counter() - t0)
            assert lives  # every iteration is a real warm hit
        assert cache.hits == 7
        assert cache.corrupt == 0
        return best

    off_t = warm_seconds("off")
    sha_t = warm_seconds("sha256")
    # the warm path still runs bgp:segment, the ledger's hottest
    # boundary on a cache hit — time it with accounting suppressed
    with ledger_disabled():
        bare_t = warm_seconds("off")

    # 5% relative, plus a 2ms absolute floor so the bound is meaningful
    # even when the whole warm hit is sub-millisecond
    assert sha_t <= off_t * 1.05 + 0.002, (
        f"sha256 verification overhead too high: {sha_t:.4f}s verified "
        f"vs {off_t:.4f}s unverified"
    )
    assert off_t <= bare_t * 1.05 + 0.002, (
        f"ledger accounting overhead too high: {off_t:.4f}s with the "
        f"ledger vs {bare_t:.4f}s without"
    )

    overhead = (sha_t / off_t - 1.0) * 100.0
    ledger_overhead = (off_t / bare_t - 1.0) * 100.0
    lines = [
        "warm activity-table hit, min of 7 runs",
        f"{'verify=off, no ledger':<28} {bare_t:>9.4f}s",
        f"{'verify=off':<28} {off_t:>9.4f}s",
        f"{'verify=sha256':<28} {sha_t:>9.4f}s",
        f"{'verification overhead':<28} {overhead:>8.2f}%",
        f"{'ledger overhead':<28} {ledger_overhead:>8.2f}%",
    ]
    record_result("cache_verification_overhead", "\n".join(lines))
