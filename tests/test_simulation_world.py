"""Integration tests for the world simulator and dataset builder."""

import pytest

from repro.bgp import NOISE_ORIGIN
from repro.core import Category
from repro.simulation import WorldSimulator, build_datasets, tiny
from repro.timeline import from_iso


@pytest.fixture(scope="module")
def world():
    return WorldSimulator(tiny(seed=11)).run()


@pytest.fixture(scope="module")
def bundle():
    return build_datasets(tiny(seed=11))


class TestWorldInvariants:
    def test_registry_pools_consistent(self, world):
        for registry in world.registries.values():
            registry.check_invariants()

    def test_every_life_has_behavior(self, world):
        assert all(life.behavior is not None for life in world.lives)

    def test_lives_disjoint_per_asn(self, world):
        for asn, lives in world.lives_by_asn().items():
            for a, b in zip(lives, lives[1:]):
                assert a.end is not None
                assert a.end < b.start

    def test_erx_transfers_tracked(self, world):
        erx = [t for t in world.transfers if t.erx]
        assert erx
        assert set(world.erx_reference) == {t.asn for t in erx}
        for t in erx:
            assert t.from_rir == "arin"
            assert t.day <= from_iso("2005-12-31")

    def test_historical_reg_dates_reach_back(self, world):
        years = {
            from_iso(f"{y}-01-01")
            for y in (1992, 1993)
        }
        earliest = min(life.reg_date for life in world.lives)
        assert earliest < from_iso("1994-01-01")

    def test_hoarders_exist_and_hold_many(self, world):
        hoarders = world.orgs.hoarders()
        assert hoarders
        assert all(len(h.asns) >= 5 for h in hoarders)

    def test_anomaly_origins_have_activity(self, world):
        for event in world.events:
            activity = world.activities.get(event.origin)
            assert activity is not None
            overlap = activity.observed.overlap_days(event.interval)
            assert overlap == event.interval.duration

    def test_determinism(self):
        a = WorldSimulator(tiny(seed=5)).run()
        b = WorldSimulator(tiny(seed=5)).run()
        assert len(a.lives) == len(b.lives)
        assert [(l.asn, l.start, l.end) for l in a.lives] == [
            (l.asn, l.start, l.end) for l in b.lives
        ]
        assert len(a.events) == len(b.events)

    def test_seeds_differ(self):
        a = WorldSimulator(tiny(seed=5)).run()
        b = WorldSimulator(tiny(seed=6)).run()
        assert [(l.asn, l.start) for l in a.lives] != [
            (l.asn, l.start) for l in b.lives
        ]


class TestDatasetBundle:
    def test_admin_lives_recover_truth_lives(self, bundle):
        """Restored lifetime count should track the ground truth within
        a small tolerance (boundary degradations, window censoring)."""
        truth = len(bundle.world.lives)
        recovered = bundle.joint.total_admin_lifetimes()
        assert abs(recovered - truth) / truth < 0.05

    def test_admin_life_boundaries_match_truth(self, bundle):
        """For a sample of single-life ASNs the recovered boundaries
        must match the truth exactly (restoration undid the defects)."""
        truth_by_asn = bundle.world.lives_by_asn()
        checked = 0
        for asn, truth_lives in truth_by_asn.items():
            if len(truth_lives) != 1 or truth_lives[0].erx:
                continue
            truth_life = truth_lives[0]
            recovered = bundle.admin_lives.get(asn)
            if recovered is None or len(recovered) != 1:
                continue
            life = recovered[0]
            if life.left_censored:
                continue
            expected_end = (
                truth_life.end if truth_life.end is not None
                else bundle.world.end_day
            )
            if life.start == truth_life.start and life.end == expected_end:
                checked += 1
        assert checked > len(truth_by_asn) * 0.5

    def test_erx_dates_restored(self, bundle):
        """The placeholder defect must be gone: ERX lifetimes carry
        their original registration dates again."""
        for asn, original in bundle.world.erx_reference.items():
            for life in bundle.admin_lives.get(asn, []):
                from repro.rir import ERX_PLACEHOLDER_DATE

                assert life.reg_date != ERX_PLACEHOLDER_DATE

    def test_taxonomy_covers_all_lives(self, bundle):
        admin_total, op_total = bundle.joint.taxonomy.totals()
        assert admin_total == bundle.joint.total_admin_lifetimes()
        assert op_total == bundle.joint.total_op_lifetimes()

    def test_unused_share_near_paper(self, bundle):
        share = bundle.joint.category_share_admin(Category.UNUSED)
        assert 0.10 < share < 0.30  # paper: 17.9%

    def test_complete_overlap_dominates(self, bundle):
        share = bundle.joint.category_share_admin(Category.COMPLETE_OVERLAP)
        assert share > 0.6  # paper: 78.6%

    def test_squat_detector_full_recall(self, bundle):
        score = bundle.joint.squatting_score()
        if score["truth_events"]:
            assert score["recall"] == 1.0

    def test_never_allocated_from_events(self, bundle):
        outside = bundle.joint.outside
        event_origins = {
            e.origin for e in bundle.world.events if e.kind == NOISE_ORIGIN
        }
        assert event_origins & outside.never_allocated_asns

    def test_rebuild_op_lives_timeout(self, bundle):
        shorter = bundle.rebuild_op_lives(timeout=5)
        longer = bundle.rebuild_op_lives(timeout=300)
        assert sum(map(len, shorter.values())) >= sum(map(len, longer.values()))

    def test_pitfall_free_run_matches_better(self):
        clean = build_datasets(tiny(seed=11), inject_pitfalls=False)
        total = sum(
            step.total() for step in clean.restoration_report.steps
            if step.step != "vi-inter-rir"
        )
        assert total == 0  # nothing to repair in a pristine archive

    def test_registry_of_mapping(self, bundle):
        registry_of = bundle.registry_of()
        assert set(registry_of.values()) <= {
            "afrinic", "apnic", "arin", "lacnic", "ripencc"
        }
        assert len(registry_of) == len(bundle.admin_lives)
