"""Tests for joint-lens feature extraction and restoration scoring."""

import pytest

from repro.core import (
    FEATURE_NAMES,
    extract_features,
    rank_by_suspicion,
    suspicion_score,
)
from repro.lifetimes import AdminLifetime, BgpLifetime
from repro.restoration import render_scores, score_restoration
from repro.timeline import from_iso

D = from_iso("2005-01-01")
END = from_iso("2021-03-01")


def admin(asn, start, end, open_ended=False):
    return AdminLifetime(asn, D + start, D + end, D + start, ("ripencc",),
                         open_ended=open_ended)


def op(asn, start, end):
    return BgpLifetime(asn, D + start, D + end)


class TestFeatureExtraction:
    def test_vector_matches_names(self):
        rows = extract_features(
            {1: [admin(1, 0, 2000)]}, {1: [op(1, 50, 1800)]}, end_day=END
        )
        assert len(rows) == 1
        assert len(rows[0].vector()) == len(FEATURE_NAMES)

    def test_contained_life_features(self):
        rows = extract_features(
            {1: [admin(1, 0, 2000)]}, {1: [op(1, 50, 100)]}, end_day=END
        )
        row = rows[0]
        assert row.inside_allocation
        assert row.dormancy_before == 50
        assert row.days_from_admin_start == 50
        assert row.days_to_admin_end == 1900
        assert row.relative_duration == pytest.approx(51 / 2001)

    def test_dormancy_between_op_lives(self):
        rows = extract_features(
            {1: [admin(1, 0, 5000)]},
            {1: [op(1, 0, 100), op(1, 2000, 2050)]},
            end_day=END,
        )
        second = rows[1]
        assert second.op_life_index == 1
        assert second.dormancy_before == 2000 - 101

    def test_post_dealloc_features(self):
        rows = extract_features(
            {1: [admin(1, 0, 1000)]}, {1: [op(1, 3000, 3010)]}, end_day=END
        )
        row = rows[0]
        assert row.after_deallocation
        assert not row.inside_allocation
        assert row.dormancy_before == 2000

    def test_never_allocated_features(self):
        rows = extract_features({}, {9: [op(9, 0, 10)]}, end_day=END)
        assert rows[0].never_allocated

    def test_32bit_flag(self):
        rows = extract_features({}, {70000: [op(70000, 0, 1)]}, end_day=END)
        assert rows[0].is_32bit


class TestSuspicionScoring:
    def make_rows(self):
        admin_lives = {
            1: [admin(1, 0, 5500, open_ended=True)],   # squat target
            2: [admin(2, 0, 5500, open_ended=True)],   # normal long user
        }
        op_lives = {
            1: [op(1, 4000, 4020)],     # dormant 4000d then 21d burst
            2: [op(2, 30, 5400)],       # ordinary
            9: [op(9, 100, 101)],       # never allocated
        }
        return extract_features(admin_lives, op_lives, end_day=END)

    def test_squat_scores_highest(self):
        ranked = rank_by_suspicion(self.make_rows())
        assert ranked[0][1].asn == 1
        assert ranked[-1][1].asn == 2

    def test_admin_dimension_adds_signal(self):
        rows = self.make_rows()
        squat = next(r for r in rows if r.asn == 1)
        with_admin = suspicion_score(squat, use_admin_dimension=True)
        without = suspicion_score(squat, use_admin_dimension=False)
        assert with_admin > without

    def test_scores_bounded(self):
        for row in self.make_rows():
            assert 0.0 <= suspicion_score(row) <= 1.0


class TestRestorationScoring:
    def test_scores_on_pipeline_output(self):
        from repro.simulation import build_datasets, tiny

        bundle = build_datasets(tiny(seed=9))
        scores = score_restoration(
            bundle.restored,
            bundle.injected_defects,
            erx_reference=bundle.world.erx_reference,
        )
        # the verifiable classes all got repaired with high recall
        for kind in ("duplicate_record", "placeholder_regdate",
                     "future_regdate", "mistaken_allocation"):
            if kind in scores:
                assert scores[kind].recall > 0.8, (kind, scores[kind])
        text = render_scores(scores)
        assert "duplicate_record" in text
        assert "recall" in text
