"""Unit tests for the Registry state machine and policies."""

import pytest

from repro.asn import IanaLedger
from repro.rir import (
    DEFAULT_POLICIES,
    Registry,
    RegistryError,
    Status,
    default_policy,
)
from repro.timeline import from_iso

D0 = from_iso("2004-01-01")


def make_registry(name="ripencc", **overrides):
    policy = default_policy(name)
    if overrides:
        policy = policy.with_overrides(**overrides)
    return Registry(name=name, policy=policy, ledger=IanaLedger())


class TestPolicies:
    def test_all_five_present(self):
        assert set(DEFAULT_POLICIES) == {"afrinic", "apnic", "arin", "lacnic", "ripencc"}

    def test_afrinic_is_the_regdate_exception(self):
        assert not DEFAULT_POLICIES["afrinic"].keeps_regdate_on_return
        for other in ("apnic", "arin", "lacnic", "ripencc"):
            assert DEFAULT_POLICIES[other].keeps_regdate_on_return

    def test_internal_transfer_date_keepers(self):
        keepers = {n for n, p in DEFAULT_POLICIES.items()
                   if p.keeps_regdate_on_internal_transfer}
        assert keepers == {"ripencc", "apnic"}

    def test_only_apnic_uses_nirs(self):
        assert DEFAULT_POLICIES["apnic"].uses_nir_blocks
        assert sum(p.uses_nir_blocks for p in DEFAULT_POLICIES.values()) == 1

    def test_unknown_registry_rejected(self):
        with pytest.raises(ValueError):
            default_policy("internic")

    def test_with_overrides(self):
        p = default_policy("arin").with_overrides(quarantine_days=42)
        assert p.quarantine_days == 42
        assert default_policy("arin").quarantine_days != 42

    def test_validation(self):
        with pytest.raises(ValueError):
            default_policy("arin").with_overrides(quarantine_days=0)
        with pytest.raises(ValueError):
            default_policy("arin").with_overrides(same_or_next_day_share=1.5)


class TestAllocationLifecycle:
    def test_allocate_pulls_iana_block(self):
        reg = make_registry()
        alloc = reg.allocate(D0, "ORG-1", "IT", thirty_two_bit=False)
        assert alloc.asn == 1  # lowest ASN of the first block
        assert reg.alive_count() == 1
        assert reg.ledger.blocks_of("ripencc")

    def test_allocate_sets_regdate_default(self):
        reg = make_registry()
        alloc = reg.allocate(D0, "ORG-1", "IT", thirty_two_bit=False)
        assert alloc.reg_date == D0

    def test_allocate_32bit(self):
        reg = make_registry()
        alloc = reg.allocate(D0, "ORG-1", "IT", thirty_two_bit=True)
        assert alloc.asn >= 65536

    def test_deallocate_enters_quarantine(self):
        reg = make_registry()
        alloc = reg.allocate(D0, "ORG-1", "IT", thirty_two_bit=False)
        res = reg.deallocate(D0 + 100, alloc.asn)
        assert res.release_day == D0 + 100 + reg.policy.quarantine_days
        assert alloc.asn in reg.reserved
        assert reg.alive_count() == 0

    def test_deallocate_unallocated_rejected(self):
        reg = make_registry()
        with pytest.raises(RegistryError):
            reg.deallocate(D0, 9999)

    def test_tick_releases_after_quarantine(self):
        reg = make_registry()
        alloc = reg.allocate(D0, "ORG-1", "IT", thirty_two_bit=False)
        reg.deallocate(D0 + 10, alloc.asn)
        release = D0 + 10 + reg.policy.quarantine_days
        assert reg.tick(release - 1) == []
        assert reg.tick(release) == [alloc.asn]
        assert alloc.asn not in reg.reserved
        reg.check_invariants()

    def test_released_asn_reallocated_when_reuse_preferred(self):
        reg = make_registry()
        a1 = reg.allocate(D0, "ORG-1", "IT", thirty_two_bit=False)
        reg.allocate(D0, "ORG-2", "FR", thirty_two_bit=False)
        reg.deallocate(D0 + 10, a1.asn)
        reg.tick(D0 + 10 + reg.policy.quarantine_days)
        a3 = reg.allocate(
            D0 + 500, "ORG-3", "DE", thirty_two_bit=False, prefer_recycled=True
        )
        assert a3.asn == a1.asn  # reuse (the paper's re-allocation)
        assert a3.reg_date == D0 + 500  # new life, new date

    def test_fresh_pool_preferred_by_default(self):
        reg = make_registry()
        a1 = reg.allocate(D0, "ORG-1", "IT", thirty_two_bit=False)
        reg.deallocate(D0 + 10, a1.asn)
        reg.tick(D0 + 10 + reg.policy.quarantine_days)
        a2 = reg.allocate(D0 + 500, "ORG-2", "DE", thirty_two_bit=False)
        assert a2.asn != a1.asn  # a fresh number, not the recycled one

    def test_recycled_preference_falls_back_to_fresh(self):
        reg = make_registry()
        alloc = reg.allocate(
            D0, "ORG-1", "IT", thirty_two_bit=False, prefer_recycled=True
        )
        assert alloc.asn == 1  # nothing recycled yet: fresh pool used

    def test_days_must_not_go_backwards(self):
        reg = make_registry()
        reg.allocate(D0 + 5, "ORG-1", "IT", thirty_two_bit=False)
        with pytest.raises(RegistryError):
            reg.allocate(D0, "ORG-2", "FR", thirty_two_bit=False)


class TestReturnToOwner:
    def test_keeps_regdate_for_most_rirs(self):
        reg = make_registry("ripencc")
        alloc = reg.allocate(D0, "ORG-1", "IT", thirty_two_bit=False)
        reg.reserve_for_issue(D0 + 100, alloc.asn)
        back = reg.return_to_owner(D0 + 130, alloc.asn)
        assert back.org_id == "ORG-1"
        assert back.reg_date == D0  # original date kept

    def test_afrinic_issues_new_date(self):
        reg = make_registry("afrinic")
        alloc = reg.allocate(D0, "ORG-1", "ZA", thirty_two_bit=False)
        reg.reserve_for_issue(D0 + 100, alloc.asn)
        back = reg.return_to_owner(D0 + 130, alloc.asn)
        assert back.org_id == "ORG-1"
        assert back.reg_date == D0 + 130  # the AfriNIC exception

    def test_requires_previous_holder(self):
        reg = make_registry()
        with pytest.raises(RegistryError):
            reg.return_to_owner(D0, 1)


class TestTransfers:
    def test_internal_transfer_date_policy(self):
        ripe = make_registry("ripencc")
        a = ripe.allocate(D0, "ORG-1", "IT", thirty_two_bit=False)
        moved = ripe.internal_transfer(D0 + 50, a.asn, "ORG-2", "NL")
        assert moved.reg_date == D0  # RIPE keeps the date

        arin = make_registry("arin")
        b = arin.allocate(D0, "ORG-1", "US", thirty_two_bit=False)
        moved2 = arin.internal_transfer(D0 + 50, b.asn, "ORG-2", "CA")
        assert moved2.reg_date == D0 + 50  # ARIN resets it

    def test_inter_rir_transfer(self):
        ledger = IanaLedger()
        arin = Registry("arin", default_policy("arin"), ledger)
        ripe = Registry("ripencc", default_policy("ripencc"), ledger)
        alloc = arin.allocate(D0, "ORG-1", "US", thirty_two_bit=False)
        out = arin.transfer_out(D0 + 300, alloc.asn)
        moved = ripe.transfer_in(D0 + 300, out, keep_regdate=True)
        assert moved.reg_date == D0
        assert alloc.asn in ripe.allocated
        assert alloc.asn not in arin.allocated
        # origin history records the departure
        assert arin.history[alloc.asn][-1][1] is None

    def test_transfer_in_date_override(self):
        ledger = IanaLedger()
        arin = Registry("arin", default_policy("arin"), ledger)
        ripe = Registry("ripencc", default_policy("ripencc"), ledger)
        alloc = arin.allocate(D0, "ORG-1", "US", thirty_two_bit=False)
        out = arin.transfer_out(D0 + 10, alloc.asn)
        placeholder = from_iso("1993-09-01")
        moved = ripe.transfer_in(D0 + 10, out, reg_date_override=placeholder)
        assert moved.reg_date == placeholder

    def test_transfer_in_rejects_duplicate(self):
        reg = make_registry()
        alloc = reg.allocate(D0, "ORG-1", "IT", thirty_two_bit=False)
        with pytest.raises(RegistryError):
            reg.transfer_in(D0 + 1, alloc)

    def test_correct_regdate(self):
        reg = make_registry()
        alloc = reg.allocate(D0, "ORG-1", "IT", thirty_two_bit=False)
        fixed = reg.correct_regdate(D0 + 10, alloc.asn, D0 - 100)
        assert fixed.reg_date == D0 - 100
        assert reg.allocated[alloc.asn].reg_date == D0 - 100


class TestNirBlocks:
    def test_apnic_nir_block(self):
        reg = make_registry("apnic")
        allocs = reg.allocate_nir_block(D0, "NIR-JPNIC", "JP", 10)
        assert len(allocs) == 10
        assert all(a.via_nir for a in allocs)
        assert all(a.org_id == "NIR-JPNIC" for a in allocs)

    def test_non_apnic_rejects(self):
        reg = make_registry("ripencc")
        with pytest.raises(RegistryError):
            reg.allocate_nir_block(D0, "NIR-X", "JP", 5)


class TestSnapshots:
    def test_extended_snapshot_lists_pool(self):
        reg = make_registry()
        alloc = reg.allocate(D0, "ORG-1", "IT", thirty_two_bit=False)
        reg.allocate(D0, "ORG-2", "FR", thirty_two_bit=False)
        reg.deallocate(D0 + 5, alloc.asn)
        snap = reg.snapshot(D0 + 5, extended=True)
        counts = snap.count_by_status()
        assert counts[Status.ALLOCATED] == 1
        assert counts[Status.RESERVED] == 1
        assert counts[Status.AVAILABLE] > 0

    def test_regular_snapshot_lists_only_delegated(self):
        reg = make_registry()
        reg.allocate(D0, "ORG-1", "IT", thirty_two_bit=False)
        snap = reg.snapshot(D0, extended=False)
        assert len(snap.records) == 1
        assert snap.records[0].status is Status.ALLOCATED
        assert snap.records[0].opaque_id is None  # regular rows carry no org id

    def test_history_change_points(self):
        reg = make_registry()
        alloc = reg.allocate(D0, "ORG-1", "IT", thirty_two_bit=False)
        reg.deallocate(D0 + 5, alloc.asn)
        reg.tick(D0 + 5 + reg.policy.quarantine_days)
        statuses = [r.status for _, r in reg.history[alloc.asn] if r is not None]
        assert statuses == [
            Status.AVAILABLE,
            Status.ALLOCATED,
            Status.RESERVED,
            Status.AVAILABLE,
        ]
