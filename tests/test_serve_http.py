"""Tests for the serve query layer: StoreIndex, HTTP server, loadgen.

Query results are checked against brute-force scans over the decoded
records — the index's binary searches must agree with the obvious
O(n) answer on every ASN, including the ones between shards.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.http import LifetimesServer
from repro.serve.index import DEFAULT_RANGE_LIMIT, StoreIndex
from repro.serve.loadgen import plan_queries, run_load
from repro.serve.store import ServeStoreError, build_store
from repro.simulation.config import tiny
from repro.simulation.datasets import build_datasets


@pytest.fixture(scope="module")
def bundle():
    return build_datasets(tiny(seed=11))


@pytest.fixture(scope="module")
def store_dir(bundle, tmp_path_factory):
    out = tmp_path_factory.mktemp("serve-store")
    end = bundle.world.config.end_day
    # small shards force multi-shard stores so the two-level binary
    # search actually crosses shard boundaries in these tests
    build_store(out, bundle.world, bundle.admin_lives,
                start=end - 59, end=end, shard_size=100, faults=None)
    return out


@pytest.fixture(scope="module")
def index(store_dir):
    return StoreIndex.open(store_dir, faults=None)


def _get(host, port, path, *, version="HTTP/1.1", headers=()):
    """One blocking GET against the running server; returns (status, doc)."""

    async def go():
        reader, writer = await asyncio.open_connection(host, port)
        head = f"GET {path} {version}\r\n"
        for line in headers:
            head += line + "\r\n"
        writer.write((head + "\r\n").encode("latin-1"))
        await writer.drain()
        status = int((await reader.readline()).split()[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b""):
                break
            name, _sep, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value.strip())
        body = await reader.readexactly(length)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        return status, json.loads(body)

    return asyncio.run(go())


class TestStoreIndex:
    def test_every_asn_resolves_to_its_record(self, index):
        for asns, records in index._shards:
            for asn, record in zip(asns, records):
                assert index.record(asn) is record

    def test_absent_asns_return_none(self, index):
        universe = set(index.all_asns())
        probes = [min(universe) - 1, max(universe) + 1]
        probes += [a + 1 for a in sorted(universe)[:50] if a + 1 not in universe]
        for asn in probes:
            if asn >= 0 and asn not in universe:
                assert index.record(asn) is None
                assert index.lives(asn) is None
                assert index.taxonomy(asn) is None

    def test_all_asns_sorted_and_complete(self, index):
        asns = index.all_asns()
        assert asns == sorted(asns)
        assert len(asns) == len(index)

    def test_lives_carries_both_datasets_and_snapshot(self, index):
        asn = next(a for a in index.all_asns()
                   if index.record(a).admin and index.record(a).op)
        doc = index.lives(asn)
        assert doc["snapshot"] == index.digest
        assert len(doc["admin"]) == len(index.record(asn).admin)
        assert len(doc["op"]) == len(index.record(asn).op)
        assert doc["admin"][0]["ASN"] == asn
        assert "category" in doc["admin"][0]

    def test_taxonomy_counts_match_assignments(self, index):
        for asn in index.all_asns()[:100]:
            doc = index.taxonomy(asn)
            record = index.record(asn)
            assert doc["admin"] == [c.value for c in record.admin_cats]
            assert doc["op"] == [c.value for c in record.op_cats]
            assert sum(doc["counts"].values()) == (
                len(record.admin_cats) + len(record.op_cats))

    def test_as_of_matches_brute_force(self, index):
        meta = index.meta
        days = [meta.start, (meta.start + meta.end) // 2, meta.end]
        for asn in index.all_asns()[:50]:
            record = index.record(asn)
            for day in days:
                doc = index.as_of(asn, day)
                assert doc["allocated"] == any(
                    life.start <= day <= life.end for life in record.admin)
                assert doc["observed"] == any(
                    iv.start <= day <= iv.end for iv in record.observed)
                assert doc["single_peer"] == any(
                    iv.start <= day <= iv.end for iv in record.single)

    def test_range_summary_matches_brute_force(self, index):
        asns = index.all_asns()
        lo, hi = asns[3], asns[min(len(asns) - 1, 250)]  # spans shards
        doc = index.range_summary(lo, hi)
        expected = [a for a in asns if lo <= a <= hi]
        assert doc["count"] == len(expected)
        assert [row["asn"] for row in doc["asns"]] == expected[:DEFAULT_RANGE_LIMIT]

    def test_range_limit_truncates_but_counts_all(self, index):
        asns = index.all_asns()
        doc = index.range_summary(asns[0], asns[-1], limit=5)
        assert len(doc["asns"]) == 5
        assert doc["truncated"]
        assert doc["count"] == len(asns)

    def test_range_as_of_counts_match_brute_force(self, index):
        day = (index.meta.start + index.meta.end) // 2
        asns = index.all_asns()
        doc = index.range_as_of(asns[0], asns[-1], day)
        allocated = sum(
            any(life.start <= day <= life.end for life in index.record(a).admin)
            for a in asns)
        assert doc["allocated"] == allocated

    def test_open_rejects_missing_store(self, tmp_path):
        with pytest.raises(ServeStoreError):
            StoreIndex.open(tmp_path, faults=None)

    def test_open_rejects_shard_index_mismatch(self, store_dir, tmp_path):
        import shutil

        broken = tmp_path / "broken"
        shutil.copytree(store_dir, broken)
        index_doc = json.loads((broken / "store.json").read_text())
        index_doc["shards"][0]["lo"] += 1
        blob = (json.dumps(index_doc, sort_keys=True,
                           separators=(",", ":")) + "\n").encode()
        # rewrite through the cache so the sidecar manifest stays valid
        from repro.serve.store import store_bytes_verified, store_publisher

        store_bytes_verified(store_publisher(broken, faults=None),
                             "store.json", blob)
        with pytest.raises(ServeStoreError, match="does not match its index"):
            StoreIndex.open(broken, faults=None)


class TestHttpServer:
    @pytest.fixture()
    def served(self, index):
        """A running server; yields (host, port) inside a fresh loop."""
        # each test drives its own asyncio.run; the server lives in a
        # dedicated background loop to survive across them
        import threading

        loop = asyncio.new_event_loop()
        server = LifetimesServer(index)
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        host, port = asyncio.run_coroutine_threadsafe(
            server.start(), loop).result(10)
        yield host, port
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)

    def test_healthz_and_snapshot(self, served, index):
        status, doc = _get(*served, "/healthz")
        assert (status, doc["status"]) == (200, "ok")
        status, doc = _get(*served, "/snapshot")
        assert doc["snapshot"] == index.digest
        assert doc["counts"]["asns"] == len(index)

    def test_point_routes_match_index(self, served, index):
        asn = index.all_asns()[0]
        for path, expected in [
            (f"/asn/{asn}/lives", index.lives(asn)),
            (f"/asn/{asn}/taxonomy", index.taxonomy(asn)),
        ]:
            status, doc = _get(*served, path)
            assert (status, doc) == (200, expected)

    def test_as_of_route(self, served, index):
        from repro.timeline.dates import to_iso

        asn = index.all_asns()[0]
        day = index.meta.end
        status, doc = _get(*served, f"/asn/{asn}/as-of/{to_iso(day)}")
        assert status == 200
        assert doc == index.as_of(asn, day)

    def test_range_routes(self, served, index):
        asns = index.all_asns()
        status, doc = _get(*served, f"/range/{asns[0]}-{asns[9]}?limit=3")
        assert status == 200
        assert doc == index.range_summary(asns[0], asns[9], limit=3)

    def test_unknown_asn_404(self, served, index):
        status, doc = _get(*served, f"/asn/{max(index.all_asns()) + 7}/lives")
        assert (status, doc["error"]) == (404, "unknown asn")

    def test_bad_inputs_400(self, served):
        for path in ("/asn/xyz/lives", "/asn/12/as-of/not-a-date",
                     "/range/9-5", "/range/abc-def", "/asn/5/unknown"):
            status, _doc = _get(*served, path)
            assert status == 400, path

    def test_unknown_route_404(self, served):
        status, _doc = _get(*served, "/utterly/unknown")
        assert status == 404

    def test_post_is_405(self, served):
        async def go():
            host, port = served
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"POST /healthz HTTP/1.1\r\n\r\n")
            await writer.drain()
            status = int((await reader.readline()).split()[1])
            writer.close()
            return status

        assert asyncio.run(go()) == 405

    def test_keep_alive_serves_many_requests_per_connection(self, served, index):
        async def go():
            host, port = served
            reader, writer = await asyncio.open_connection(host, port)
            statuses = []
            for _ in range(5):
                writer.write(b"GET /healthz HTTP/1.1\r\n\r\n")
                await writer.drain()
                statuses.append(int((await reader.readline()).split()[1]))
                length = 0
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b""):
                        break
                    if line.lower().startswith(b"content-length"):
                        length = int(line.split(b":")[1])
                await reader.readexactly(length)
            writer.close()
            return statuses

        assert asyncio.run(go()) == [200] * 5

    def test_connection_close_is_honored(self, served):
        async def go():
            host, port = served
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            await writer.drain()
            raw = await reader.read()  # server closes after one response
            writer.close()
            return raw

        raw = asyncio.run(go())
        assert b"Connection: close" in raw

    def test_http10_defaults_to_close(self, served):
        status, doc = _get(*served, "/healthz", version="HTTP/1.0")
        assert (status, doc["status"]) == (200, "ok")

    def test_healthz_carries_slo_window(self, served):
        status, doc = _get(*served, "/healthz")
        assert status == 200
        assert doc["slo"]["window_seconds"] == 60.0
        assert "error_rate" in doc["slo"]


def _serve_raw(index, interact, *, telemetry=None):
    """Run ``interact(host, port)`` against a fresh private server."""

    async def go():
        from repro.runtime.observability import MetricsRegistry
        from repro.serve.telemetry import ServerTelemetry

        server = LifetimesServer(
            index,
            telemetry=telemetry or ServerTelemetry(metrics=MetricsRegistry()),
        )
        host, port = await server.start()
        try:
            return await interact(server, host, port), server
        finally:
            await server.close()

    return asyncio.run(go())


async def _raw_exchange(host, port, payload):
    """Write raw bytes, read everything until the server closes."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return raw


async def _aget(host, port, path):
    """One keep-alive GET on a fresh connection → (status, body bytes)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n".encode())
    await writer.drain()
    status = int((await reader.readline()).split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b""):
            break
        name, _sep, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    body = await reader.readexactly(length)
    writer.close()
    return status, body


class TestTelemetryRoutes:
    def test_metrics_exposition_parses_and_counts_routes(self, index):
        from repro.serve.telemetry import parse_exposition

        asn = index.all_asns()[0]

        async def interact(server, host, port):
            await _aget(host, port, f"/asn/{asn}/lives")
            await _aget(host, port, f"/asn/{asn}/lives")
            await _aget(host, port, "/range/0-9999999?limit=3")
            return await _aget(host, port, "/metrics")

        (status, body), _server = _serve_raw(index, interact)
        assert status == 200
        samples = parse_exposition(body.decode("utf-8"))
        assert samples[(
            "repro_serve_http_requests_total",
            (("route", "/asn/{n}/lives"), ("status", "200")),
        )] == 2
        assert samples[(
            "repro_serve_http_requests_total",
            (("route", "/range/{lo}-{hi}"), ("status", "200")),
        )] == 1
        assert samples[(
            "repro_serve_http_request_us_count", (("route", "/asn/{n}/lives"),),
        )] == 2

    def test_status_document_over_http(self, index):
        asn = index.all_asns()[0]

        async def interact(server, host, port):
            await _aget(host, port, f"/asn/{asn}/taxonomy")
            return await _aget(host, port, "/status")

        (status, body), _server = _serve_raw(index, interact)
        assert status == 200
        doc = json.loads(body)
        assert doc["snapshot"] == index.digest
        assert doc["uptime_seconds"] >= 0.0
        row = doc["routes"]["/asn/{n}/taxonomy"]
        assert row["requests"] == 1 and row["errors"] == 0
        assert "p99_us" in row
        assert doc["slo"]["requests"] >= 1

    def test_route_template_bounds_cardinality(self):
        from repro.serve.http import route_template

        cases = {
            "/healthz": "/healthz",
            "/metrics": "/metrics",
            "/asn/5/lives": "/asn/{n}/lives",
            "/asn/xyz/lives": "/asn/{n}/lives",
            "/asn/5/taxonomy": "/asn/{n}/taxonomy",
            "/asn/5/as-of/2021-01-01": "/asn/{n}/as-of/{date}",
            "/asn/5/unknown": "/asn/*",
            "/range/1-2": "/range/{lo}-{hi}",
            "/range/1-2/as-of/2021-01-01": "/range/{lo}-{hi}/as-of/{date}",
            "/range/1-2/bogus": "/range/*",
            "/utterly/unknown": "unmatched",
        }
        for path, expected in cases.items():
            assert route_template(path) == expected, path


class TestRequestHardening:
    def _dropped(self, server):
        counters = server.metrics.snapshot()["counters"]
        return {
            name.split("reason=")[1]: value
            for name, value in counters.items()
            if name.startswith("serve.http.dropped|")
        }

    def test_malformed_head_answers_400_and_counts(self, index):
        async def interact(server, host, port):
            return await _raw_exchange(host, port, b"NOT-AN-HTTP-HEAD\r\n\r\n")

        raw, server = _serve_raw(index, interact)
        assert b"400 Bad Request" in raw
        assert b"Connection: close" in raw
        assert b"malformed-head" in raw
        assert self._dropped(server) == {"malformed-head": 1}

    def test_oversized_request_line_answers_400(self, index):
        async def interact(server, host, port):
            head = b"GET /" + b"a" * 8000 + b" HTTP/1.1\r\n\r\n"
            return await _raw_exchange(host, port, head)

        raw, server = _serve_raw(index, interact)
        assert b"400 Bad Request" in raw
        assert self._dropped(server) == {"oversized-line": 1}

    def test_header_flood_answers_400(self, index):
        async def interact(server, host, port):
            payload = b"GET /healthz HTTP/1.1\r\n"
            payload += b"X-Flood: y\r\n" * 200 + b"\r\n"
            return await _raw_exchange(host, port, payload)

        raw, server = _serve_raw(index, interact)
        assert b"400 Bad Request" in raw
        assert self._dropped(server) == {"header-flood": 1}

    def test_dropped_requests_never_count_as_served(self, index):
        async def interact(server, host, port):
            await _raw_exchange(host, port, b"junk\r\n\r\n")
            return None

        _none, server = _serve_raw(index, interact)
        counters = server.metrics.snapshot()["counters"]
        assert counters.get("serve.http.requests", 0) == 0
        assert counters["serve.http.dropped"] == 1


class _PoisonedIndex:
    """Delegates to a real index, but point lookups hit rotted shards."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def lives(self, asn):
        raise RuntimeError("shard rot")


class TestInternalErrors:
    def test_poisoned_index_is_a_500_json_body(self, index):
        poisoned = _PoisonedIndex(index)
        asn = index.all_asns()[0]

        async def interact(server, host, port):
            # the connection survives the 500: a second request answers
            reader, writer = await asyncio.open_connection(host, port)
            results = []
            for path in (f"/asn/{asn}/lives", f"/asn/{asn}/taxonomy"):
                writer.write(f"GET {path} HTTP/1.1\r\n\r\n".encode())
                await writer.drain()
                status = int((await reader.readline()).split()[1])
                length = 0
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b""):
                        break
                    name, _sep, value = line.partition(b":")
                    if name.strip().lower() == b"content-length":
                        length = int(value.strip())
                results.append((status, await reader.readexactly(length)))
            writer.close()
            return results

        results, server = _serve_raw(poisoned, interact)
        assert results[0][0] == 500
        assert json.loads(results[0][1]) == {"error": "internal server error"}
        assert results[1][0] == 200  # keep-alive survived the failure
        counters = server.metrics.snapshot()["counters"]
        assert counters["serve.http.errors"] == 1
        assert counters["serve.http.exceptions"] == 1
        from repro.serve.telemetry import labeled

        assert counters[labeled(
            "serve.http.exceptions", route="/asn/{n}/lives", type="RuntimeError",
        )] == 1


class TestLoadGen:
    def test_plan_is_deterministic(self, index):
        meta = index.meta
        asns = index.all_asns()
        a = plan_queries(asns, meta, 500, seed=3)
        b = plan_queries(asns, meta, 500, seed=3)
        assert a.paths == b.paths
        assert plan_queries(asns, meta, 500, seed=4).paths != a.paths

    def test_plan_mixes_all_query_kinds(self, index):
        plan = plan_queries(index.all_asns(), index.meta, 1000, seed=0)
        assert sum("/lives" in p for p in plan.paths) > 0
        assert sum("/taxonomy" in p for p in plan.paths) > 0
        assert sum("/as-of/" in p for p in plan.paths) > 0
        assert sum(p.startswith("/range/") for p in plan.paths) > 0

    def test_plan_is_zipf_skewed(self, index):
        from collections import Counter

        plan = plan_queries(index.all_asns(), index.meta, 4000, seed=0)
        hits = Counter()
        for path in plan.paths:
            if path.startswith("/asn/"):
                hits[int(path.split("/")[2])] += 1
        top, total = hits.most_common(1)[0][1], sum(hits.values())
        # the hottest ASN dominates far beyond a uniform draw
        assert top / total > 5.0 / len(index.all_asns())

    def test_plan_rejects_empty_universe(self, index):
        with pytest.raises(ServeStoreError):
            plan_queries([], index.meta, 10)

    def test_run_load_checked_counters_match_exactly(self, index):
        from repro.serve.loadgen import run_load_checked

        plan = plan_queries(index.all_asns(), index.meta, 400, seed=5)

        async def go():
            from repro.runtime.observability import MetricsRegistry
            from repro.serve.telemetry import ServerTelemetry

            server = LifetimesServer(
                index, telemetry=ServerTelemetry(metrics=MetricsRegistry())
            )
            host, port = await server.start()
            try:
                return await run_load_checked(host, port, plan, concurrency=2)
            finally:
                await server.close()

        report, consistency = asyncio.run(go())
        assert report.queries == 400
        assert consistency["sent"] == 400
        assert consistency["server_requests"] == 400
        assert consistency["requests_match"] is True
        # server-side estimates exist and carry the run's latency scale
        assert consistency["server"]["p50_us"] > 0
        assert consistency["server"]["p99_us"] >= consistency["server"]["p50_us"]
        assert consistency["bucket_offsets"]["p99"] is not None

    def test_load_run_reports_clean_numbers(self, index):
        async def go():
            server = LifetimesServer(index)
            host, port = await server.start()
            try:
                plan = plan_queries(index.all_asns(), index.meta, 400, seed=1)
                return await run_load(host, port, plan, concurrency=4)
            finally:
                await server.close()

        report = asyncio.run(go())
        assert report.queries == 400
        assert report.errors == 0
        assert report.qps > 0
        assert 0 < report.p50_us <= report.p99_us
        doc = report.to_json_dict()
        assert doc["concurrency"] == 4
