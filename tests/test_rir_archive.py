"""Tests for DelegationArchive: timelines, snapshots, overlay effects,
and the equivalence of the fast (timeline) and slow (file) paths."""

import pytest

from repro.asn import IanaLedger
from repro.rir import (
    EXTENDED,
    REGULAR,
    ArchiveOverlay,
    DelegationArchive,
    DelegationFileError,
    DelegationRecord,
    FileState,
    Registry,
    Status,
    default_policy,
    parse_snapshot,
)
from repro.timeline import Interval, from_iso

START = from_iso("2010-05-01")
END = from_iso("2011-05-01")


@pytest.fixture
def world():
    """A tiny RIPE registry with three lives and one dealloc/realloc."""
    ledger = IanaLedger()
    ripe = Registry("ripencc", default_policy("ripencc"), ledger)
    a1 = ripe.allocate(START, "ORG-1", "IT", thirty_two_bit=False)
    a2 = ripe.allocate(START + 10, "ORG-2", "FR", thirty_two_bit=False)
    ripe.deallocate(START + 100, a1.asn)
    ripe.tick(START + 100 + ripe.policy.quarantine_days)
    a3 = ripe.allocate(
        START + 300, "ORG-3", "DE", thirty_two_bit=False, prefer_recycled=True
    )
    return {"registry": ripe, "asns": (a1.asn, a2.asn, a3.asn)}


def make_archive(world, overlay=None):
    return DelegationArchive({"ripencc": world["registry"]}, END, overlay)


class TestWindows:
    def test_sources(self, world):
        archive = make_archive(world)
        keys = [w.source for w in archive.sources()]
        assert ("ripencc", REGULAR) in keys
        assert ("ripencc", EXTENDED) in keys

    def test_extended_window_starts_2010(self, world):
        archive = make_archive(world)
        w = archive.window(("ripencc", EXTENDED))
        assert w.first_day == from_iso("2010-04-22")
        assert w.last_day == END

    def test_arin_regular_stops_2013(self):
        ledger = IanaLedger()
        arin = Registry("arin", default_policy("arin"), ledger)
        arin.allocate(from_iso("2004-01-05"), "ORG-1", "US", thirty_two_bit=False)
        archive = DelegationArchive({"arin": arin}, from_iso("2020-01-01"))
        w = archive.window(("arin", REGULAR))
        assert w.last_day == from_iso("2013-08-12")

    def test_file_count_excludes_missing(self, world):
        overlay = ArchiveOverlay()
        overlay.mark_missing(("ripencc", REGULAR), START + 5)
        clean = make_archive(world)
        dirty = make_archive(world, overlay)
        assert dirty.file_count("ripencc") == clean.file_count("ripencc") - 1


class TestTimelines:
    def test_allocation_stints(self, world):
        archive = make_archive(world)
        tl = archive.timeline(("ripencc", EXTENDED))
        asn1 = world["asns"][0]
        stints = tl[asn1]
        statuses = [s.record.status for s in stints]
        # the pool intake happens the same day as the first allocation, so
        # no file ever shows AS1 as available before its first life
        assert statuses == [
            Status.ALLOCATED,
            Status.RESERVED,
            Status.AVAILABLE,
            Status.ALLOCATED,
        ]
        alloc_stint = stints[0]
        assert alloc_stint.start == START
        assert alloc_stint.end == START + 99

    def test_regular_timeline_only_delegated(self, world):
        archive = make_archive(world)
        tl = archive.timeline(("ripencc", REGULAR))
        for stints in tl.values():
            assert all(s.record.is_delegated for s in stints)
            assert all(s.record.opaque_id is None for s in stints)

    def test_never_touched_asn_absent(self, world):
        archive = make_archive(world)
        tl = archive.timeline(("ripencc", EXTENDED))
        assert 99999 not in tl

    def test_timeline_cached(self, world):
        archive = make_archive(world)
        assert archive.timeline(("ripencc", EXTENDED)) is archive.timeline(
            ("ripencc", EXTENDED)
        )


class TestOverlayEffects:
    def test_missing_day_state(self, world):
        overlay = ArchiveOverlay()
        overlay.mark_missing(("ripencc", EXTENDED), START + 50)
        archive = make_archive(world, overlay)
        assert (
            archive.file_state(("ripencc", EXTENDED), START + 50) == FileState.MISSING
        )
        assert archive.snapshot(("ripencc", EXTENDED), START + 50) is None
        assert archive.file_text(("ripencc", EXTENDED), START + 50) is None

    def test_corrupt_day_text_unparsable(self, world):
        overlay = ArchiveOverlay()
        overlay.mark_corrupt(("ripencc", EXTENDED), START + 50)
        archive = make_archive(world, overlay)
        text = archive.file_text(("ripencc", EXTENDED), START + 50)
        assert text is not None
        with pytest.raises(DelegationFileError):
            parse_snapshot(text)

    def test_boundary_degraded_by_missing_day(self, world):
        # ASN 3's allocation starts at START+300; if that file is missing,
        # the stint is first observed the next day.
        overlay = ArchiveOverlay()
        overlay.mark_missing(("ripencc", EXTENDED), START + 300)
        archive = make_archive(world, overlay)
        asn3 = world["asns"][2]
        stints = archive.timeline(("ripencc", EXTENDED))[asn3]
        alloc = [s for s in stints if s.record.status is Status.ALLOCATED][-1]
        assert alloc.start == START + 301

    def test_record_drop_punches_hole(self, world):
        overlay = ArchiveOverlay()
        asn2 = world["asns"][1]
        overlay.drop_record(("ripencc", EXTENDED), asn2, Interval(START + 20, START + 22))
        archive = make_archive(world, overlay)
        stints = [
            s
            for s in archive.timeline(("ripencc", EXTENDED))[asn2]
            if s.record.status is Status.ALLOCATED
        ]
        assert len(stints) == 2
        assert stints[0].end == START + 19
        assert stints[1].start == START + 23

    def test_date_override(self, world):
        overlay = ArchiveOverlay()
        asn2 = world["asns"][1]
        wrong = from_iso("1993-09-01")
        overlay.override_date(("ripencc", EXTENDED), asn2, Interval(START + 20, END), wrong)
        archive = make_archive(world, overlay)
        stints = [
            s
            for s in archive.timeline(("ripencc", EXTENDED))[asn2]
            if s.record.status is Status.ALLOCATED
        ]
        assert stints[0].record.reg_date == START + 10
        assert stints[-1].record.reg_date == wrong

    def test_extra_record_appears(self, world):
        overlay = ArchiveOverlay()
        ghost = DelegationRecord("ripencc", "", 7777, None, Status.RESERVED)
        overlay.add_record(("ripencc", EXTENDED), Interval(START + 5, START + 9), ghost)
        archive = make_archive(world, overlay)
        tl = archive.timeline(("ripencc", EXTENDED))
        assert 7777 in tl
        snap = archive.snapshot(("ripencc", EXTENDED), START + 6)
        assert 7777 in snap.asns()
        snap2 = archive.snapshot(("ripencc", EXTENDED), START + 10)
        assert 7777 not in snap2.asns()

    def test_stale_day_repeats_previous_content(self, world):
        overlay = ArchiveOverlay()
        # the day ORG-3's allocation happens, the regular file is stale
        overlay.mark_stale(("ripencc", REGULAR), START + 300)
        archive = make_archive(world, overlay)
        asn3 = world["asns"][2]
        reg_snap = archive.snapshot(("ripencc", REGULAR), START + 300)
        ext_snap = archive.snapshot(("ripencc", EXTENDED), START + 300)
        assert asn3 not in reg_snap.asns()  # stale: yesterday's content
        assert asn3 in ext_snap.asns()
        assert reg_snap.serial < ext_snap.serial  # newest header wins (§3.1 iii)
        next_reg = archive.snapshot(("ripencc", REGULAR), START + 301)
        assert asn3 in next_reg.asns()


class TestPathEquivalence:
    def test_snapshot_matches_timeline_membership(self, world):
        """The slow file path and fast timeline path must agree on every
        sampled day about which rows exist."""
        overlay = ArchiveOverlay()
        overlay.mark_missing(("ripencc", EXTENDED), START + 40)
        asn1 = world["asns"][0]
        overlay.drop_record(("ripencc", EXTENDED), asn1, Interval(START + 60, START + 61))
        archive = make_archive(world, overlay)
        source = ("ripencc", EXTENDED)
        tl = archive.timeline(source)
        for day in range(START, START + 120, 7):
            if archive.file_state(source, day) != FileState.PRESENT:
                continue
            snap = archive.snapshot(source, day)
            file_rows = {(r.asn, r.status) for r in snap.records}
            tl_rows = {
                (asn, s.record.status)
                for asn, stints in tl.items()
                for s in stints
                if s.start <= day <= s.end
            }
            assert file_rows == tl_rows

    def test_file_text_roundtrip(self, world):
        archive = make_archive(world)
        source = ("ripencc", EXTENDED)
        text = archive.file_text(source, START + 15)
        snap = parse_snapshot(text)
        direct = archive.snapshot(source, START + 15)
        assert sorted(snap.records, key=lambda r: (r.asn, r.status.value)) == sorted(
            direct.records, key=lambda r: (r.asn, r.status.value)
        )
