"""Tests for the Appendix-A country-expansion analysis."""

import pytest

from repro.core import (
    alive_counts_by_country,
    country_growth,
    fastest_growing_countries,
)
from repro.lifetimes import AdminLifetime
from repro.timeline import from_iso

D = from_iso("2010-01-01")
END = from_iso("2020-01-01")


def admin(asn, start, end, cc, registry="apnic"):
    return AdminLifetime(asn, D + start, D + end, D + start, (registry,), cc=cc)


@pytest.fixture
def lives():
    return {
        1: [admin(1, 0, 3650, "AU")],
        2: [admin(2, 0, 3650, "AU")],
        3: [admin(3, 1800, 3650, "IN")],          # India arrives late
        4: [admin(4, 2000, 3650, "IN")],
        5: [admin(5, 2200, 3650, "IN")],
        6: [admin(6, 0, 3650, "US", registry="arin")],
        7: [admin(7, 0, 100, "JP")],               # short life, dies early
    }


class TestCountrySeries:
    def test_per_country_counts(self, lives):
        series = alive_counts_by_country(lives, D, D + 3650)
        assert series["AU"].at(D) == 2
        assert series["IN"].at(D) == 0
        assert series["IN"].at(D + 2500) == 3
        assert series["JP"].at(D + 200) == 0

    def test_registry_filter(self, lives):
        series = alive_counts_by_country(lives, D, D + 3650, registry="apnic")
        assert "US" not in series
        assert "AU" in series

    def test_min_lives_filter(self, lives):
        series = alive_counts_by_country(lives, D, D + 3650, min_lives=2)
        assert "JP" not in series
        assert "IN" in series

    def test_empty_cc_skipped(self):
        lives = {1: [admin(1, 0, 10, "")]}
        assert alive_counts_by_country(lives, D, D + 20) == {}


class TestGrowth:
    def test_growth_factors(self, lives):
        series = alive_counts_by_country(lives, D, D + 3650)
        growth = country_growth(series, D + 100, D + 3000)
        au_a, au_b, au_factor = growth["AU"]
        assert (au_a, au_b) == (2, 2) and au_factor == 1.0
        in_a, in_b, in_factor = growth["IN"]
        assert in_a == 0 and in_b == 3 and in_factor == float("inf")

    def test_fastest_growing(self, lives):
        rows = fastest_growing_countries(
            lives, D + 100, D + 3000, registry="apnic", min_final=1
        )
        assert rows[0][0] == "IN"  # the new entrant leads

    def test_min_final_filter(self, lives):
        rows = fastest_growing_countries(
            lives, D + 100, D + 3000, min_final=10
        )
        assert rows == []


class TestOnSimulatedWorld:
    def test_india_rises_in_apnic(self):
        from repro.simulation import build_datasets, tiny

        bundle = build_datasets(tiny(seed=31))
        start = bundle.world.config.start_day
        end = bundle.world.end_day
        rows = fastest_growing_countries(
            bundle.admin_lives, start + 2500, end,
            registry="apnic", top=8, min_final=3,
        )
        assert rows, "APNIC must have growing countries"
        leaders = [cc for cc, *_ in rows]
        # the Appendix-A story: India and Indonesia are among the
        # fastest-growing APNIC countries in the 2010s
        assert {"IN", "ID"} & set(leaders)
