"""Tests for BGP messages, stream generation, sanitization, visibility."""

import pytest

from repro.bgp import (
    ANNOUNCE,
    RIB,
    WITHDRAW,
    Announcement,
    AnomalyEvent,
    AsTopology,
    BgpElement,
    Collector,
    SQUAT_DORMANT,
    SanitizeStats,
    SyntheticBgpStream,
    active_asns,
    path_has_loop,
    peer_visibility,
    sanitize,
)
from repro.net import Prefix
from repro.timeline import Interval

P1 = Prefix.parse("10.0.0.0/16")
P2 = Prefix.parse("10.1.0.0/16")
BAD_LEN = Prefix.parse("10.2.0.0/25")


@pytest.fixture
def small_world():
    topo = AsTopology()
    topo.add_p2p(10, 20)
    topo.add_p2c(10, 100)
    topo.add_p2c(20, 200)
    topo.add_p2c(100, 1001)
    topo.add_p2c(200, 2001)
    collectors = [
        Collector("route-views", "routeviews", (10, 100)),
        Collector("rrc00", "ris", (20, 200)),
    ]
    return topo, collectors


def elem(peer=10, path=(10, 100, 1001), prefix=P1, etype=RIB, day=100):
    return BgpElement(
        elem_type=etype, day=day, sequence=0, project="ris",
        collector="rrc00", peer_asn=peer, prefix=prefix, as_path=path,
    )


class TestMessages:
    def test_origin(self):
        assert elem().origin == 1001

    def test_withdraw_has_no_origin(self):
        w = BgpElement(WITHDRAW, 100, 0, "ris", "rrc00", 10, P1)
        assert w.origin is None

    def test_rib_requires_path(self):
        with pytest.raises(ValueError):
            BgpElement(RIB, 100, 0, "ris", "rrc00", 10, P1, ())

    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            BgpElement("X", 100, 0, "ris", "rrc00", 10, P1, (10,))

    def test_path_asns_dedup_in_order(self):
        e = elem(path=(10, 100, 100, 1001))
        assert e.path_asns() == (10, 100, 1001)

    def test_loop_detection(self):
        assert not path_has_loop((10, 100, 1001))
        assert not path_has_loop((10, 100, 1001, 1001, 1001))  # prepend
        assert path_has_loop((10, 100, 10, 1001))  # true loop


class TestSanitize:
    def test_drops_bad_prefix_lengths(self):
        stats = SanitizeStats()
        kept = list(sanitize([elem(), elem(prefix=BAD_LEN)], stats))
        assert len(kept) == 1
        assert stats.kept == 1
        assert stats.dropped["prefix_length"] == 1

    def test_drops_loops(self):
        stats = SanitizeStats()
        kept = list(sanitize([elem(path=(10, 100, 10, 1001))], stats))
        assert kept == []
        assert stats.dropped["as_path_loop"] == 1

    def test_keeps_prepends(self):
        kept = list(sanitize([elem(path=(10, 100, 1001, 1001))]))
        assert len(kept) == 1

    def test_withdraw_passes_without_path(self):
        w = BgpElement(WITHDRAW, 100, 0, "ris", "rrc00", 10, P1)
        assert list(sanitize([w])) == [w]

    def test_stats_totals(self):
        stats = SanitizeStats()
        list(sanitize([elem(), elem(prefix=BAD_LEN)], stats))
        assert stats.total_seen == 2
        assert stats.total_dropped == 1


class TestVisibility:
    def test_counts_distinct_peers_per_path_asn(self):
        elems = [elem(peer=10), elem(peer=20)]
        vis = peer_visibility(elems)
        assert vis[1001] == {10, 20}
        assert vis[100] == {10, 20}

    def test_active_requires_two_peers(self):
        elems = [elem(peer=10)]
        assert active_asns(elems) == set()
        assert active_asns(elems, min_peers=1) == {10, 100, 1001}

    def test_withdraws_do_not_count(self):
        w = BgpElement(WITHDRAW, 100, 0, "ris", "rrc00", 10, P1)
        assert peer_visibility([w]) == {}

    def test_rejects_zero_threshold(self):
        with pytest.raises(ValueError):
            active_asns([], min_peers=0)


class TestStream:
    def day_source_factory(self, per_day):
        return lambda day: per_day.get(day, [])

    def test_rib_elements_at_every_peer_with_route(self, small_world):
        topo, collectors = small_world
        source = self.day_source_factory({5: [Announcement(1001, P1)]})
        stream = SyntheticBgpStream(topo, collectors, source)
        elems = list(stream.elements_for_day(5))
        peers = {e.peer_asn for e in elems}
        assert peers == {10, 100, 20, 200}
        assert all(e.elem_type == RIB for e in elems)
        assert all(e.as_path[-1] == 1001 for e in elems)

    def test_updates_on_day_change(self, small_world):
        topo, collectors = small_world
        per_day = {
            5: [Announcement(1001, P1)],
            6: [Announcement(1001, P1), Announcement(2001, P2)],
            7: [Announcement(2001, P2)],
        }
        stream = SyntheticBgpStream(topo, collectors, self.day_source_factory(per_day))
        elems = list(stream.elements(5, 7))
        announces = [e for e in elems if e.elem_type == ANNOUNCE]
        withdraws = [e for e in elems if e.elem_type == WITHDRAW]
        assert {e.origin for e in announces} == {2001}  # new on day 6
        assert {e.prefix for e in withdraws} == {P1}  # gone on day 7

    def test_forged_origin_appends(self, small_world):
        topo, collectors = small_world
        ann = Announcement(1001, P1, forged_origin=65001)
        stream = SyntheticBgpStream(topo, collectors, lambda d: [ann])
        elems = list(stream.elements_for_day(5))
        assert all(e.as_path[-1] == 65001 for e in elems)
        assert all(e.as_path[-2] == 1001 for e in elems)

    def test_only_peer_restricts_visibility(self, small_world):
        topo, collectors = small_world
        ann = Announcement(1001, P1, only_peer=10)
        stream = SyntheticBgpStream(topo, collectors, lambda d: [ann])
        elems = list(stream.elements_for_day(5))
        assert {e.peer_asn for e in elems} == {10}
        # and the 2-peer rule correctly rejects the ASN
        assert 1001 not in active_asns(elems)

    def test_corrupt_loop_gets_sanitized(self, small_world):
        topo, collectors = small_world
        ann = Announcement(1001, P1, corrupt_loop=True)
        stream = SyntheticBgpStream(topo, collectors, lambda d: [ann])
        elems = list(stream.elements_for_day(5))
        assert all(e.has_loop for e in elems)
        assert list(sanitize(elems)) == []

    def test_prepend(self, small_world):
        topo, collectors = small_world
        ann = Announcement(1001, P1, prepend=2)
        stream = SyntheticBgpStream(topo, collectors, lambda d: [ann])
        e = next(iter(stream.elements_for_day(5)))
        assert e.as_path[-3:] == (1001, 1001, 1001)


class TestAnomalyEvents:
    def test_announcements_only_inside_interval(self):
        event = AnomalyEvent(
            kind=SQUAT_DORMANT,
            interval=Interval(100, 110),
            origin=65001,
            announcer=203040,
            prefixes=(P1, P2),
        )
        assert event.is_forged and event.is_malicious
        assert len(event.announcements(105)) == 2
        assert event.announcements(99) == []
        ann = event.announcements(100)[0]
        assert ann.forged_origin == 65001
        assert ann.announcer == 203040

    def test_non_forged_event(self):
        event = AnomalyEvent(
            kind="dangling", interval=Interval(1, 2), origin=7, announcer=7,
            prefixes=(P1,),
        )
        assert not event.is_forged
        assert event.announcements(1)[0].forged_origin is None

    def test_requires_prefixes(self):
        with pytest.raises(ValueError):
            AnomalyEvent("dangling", Interval(1, 2), 7, 7, ())
