"""Fault-matrix tests: every injector × every hardened runtime path.

The contract under test is ISSUE 3's acceptance criterion: every
injected failure — torn write, truncated entry, manifest mismatch,
read/write/replace ``OSError``, disk full, read-only directory, worker
death — must end in either a correct rebuilt artifact or a clean,
typed error.  Never a silent wrong answer, and never an infinite
rebuild loop.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.runtime import (
    ArtifactCache,
    CacheStoreError,
    FaultInjector,
    FaultSpec,
    PipelineStats,
    ProcessPoolBackend,
    SerialExecutor,
    WorkerPoolError,
)
from repro.runtime.faults import from_env
from repro.simulation import build_datasets
from repro.simulation.config import tiny


def _always(site: str, kind: str) -> FaultInjector:
    """An injector that fires one fault kind at one site, forever."""
    return FaultInjector([FaultSpec(site, kind, max_fires=None)], seed=0)


def _once(site: str, kind: str) -> FaultInjector:
    """An injector that fires exactly once (a transient failure)."""
    return FaultInjector([FaultSpec(site, kind, max_fires=1)], seed=0)


class TestFaultSpec:
    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError):
            FaultSpec("cache:fsync", "oserror")

    def test_rejects_kind_at_wrong_site(self):
        with pytest.raises(ValueError):
            FaultSpec("worker", "torn-write")
        with pytest.raises(ValueError):
            FaultSpec("cache:read", "worker-death")

    def test_rejects_bad_rate_and_fires(self):
        with pytest.raises(ValueError):
            FaultSpec("cache:read", "oserror", rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec("cache:read", "oserror", max_fires=0)


class TestInjectorDeterminism:
    def test_same_seed_same_fault_sequence(self):
        def run(seed):
            inj = FaultInjector(
                [FaultSpec("cache:read", "oserror", rate=0.5, max_fires=None)],
                seed=seed,
            )
            fired = []
            for i in range(50):
                try:
                    inj.on_read(f"entry-{i}")
                    fired.append(False)
                except OSError:
                    fired.append(True)
            return fired

        assert run(7) == run(7)
        assert run(7) != run(8)  # astronomically unlikely to collide
        assert any(run(7)) and not all(run(7))

    def test_max_fires_bounds_total(self):
        inj = _once("cache:read", "oserror")
        with pytest.raises(OSError):
            inj.on_read("a")
        inj.on_read("b")  # budget spent: no further faults
        assert inj.fired() == 1

    def test_event_log_records_site_and_kind(self):
        inj = _once("worker", "worker-death")
        with pytest.raises(Exception):
            inj.on_worker_dispatch()
        assert inj.events[0].site == "worker"
        assert inj.events[0].kind == "worker-death"


class TestCacheFaultMatrix:
    """Every cache-side injector ends in rebuild-or-typed-error."""

    PAYLOAD = {"rows": list(range(500)), "tag": "fault-matrix"}

    def _rebuilds_correctly(self, cache: ArtifactCache, key: str) -> None:
        """The invariant every fault must uphold: get_or_build returns
        the correct artifact afterwards."""
        assert cache.get_or_build(key, lambda: self.PAYLOAD) == self.PAYLOAD

    def test_torn_write_detected_and_quarantined(self, tmp_path):
        cache = ArtifactCache(tmp_path, faults=_once("cache:write", "torn-write"))
        key = cache.key_for(artifact="torn")
        cache.store(key, self.PAYLOAD)
        assert cache.load(key) is None  # checksum catches the torn bytes
        assert cache.corrupt == 1
        assert cache.quarantined == 1
        assert list(cache.quarantine_dir.iterdir())  # bytes kept for forensics
        self._rebuilds_correctly(cache, key)
        assert cache.load(key) == self.PAYLOAD

    def test_torn_write_unverified_still_degrades_to_miss(self, tmp_path):
        # with verify=off a torn pickle fails to unpickle — degraded to
        # a miss + quarantine, never a wrong artifact
        cache = ArtifactCache(
            tmp_path, verify="off", faults=_once("cache:write", "torn-write")
        )
        key = cache.key_for(artifact="torn-off")
        cache.store(key, self.PAYLOAD)
        assert cache.load(key) is None
        self._rebuilds_correctly(cache, key)

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path, faults=_once("cache:write", "truncate"))
        key = cache.key_for(artifact="trunc")
        cache.store(key, self.PAYLOAD)
        assert cache.path_for(key).stat().st_size == 0
        assert cache.load(key) is None
        self._rebuilds_correctly(cache, key)

    def test_manifest_mismatch_quarantines(self, tmp_path):
        cache = ArtifactCache(tmp_path, faults=None)
        key = cache.key_for(artifact="tamper")
        cache.store(key, self.PAYLOAD)
        # bit rot: valid pickle, wrong bytes for the manifest
        cache.path_for(key).write_bytes(pickle.dumps("impostor"))
        assert cache.load(key) is None  # never returns the impostor
        assert cache.corrupt == 1 and cache.quarantined == 1
        self._rebuilds_correctly(cache, key)

    def test_missing_manifest_is_miss_without_quarantine(self, tmp_path):
        cache = ArtifactCache(tmp_path, faults=None)
        key = cache.key_for(artifact="legacy")
        cache.store(key, self.PAYLOAD)
        cache.manifest_path_for(key).unlink()
        assert cache.load(key) is None  # unverifiable → miss
        assert cache.quarantined == 0  # ... but not proof of corruption
        assert key in cache  # payload left for the rebuild to overwrite
        self._rebuilds_correctly(cache, key)

    def test_read_oserror_is_miss_then_rebuild(self, tmp_path):
        clean = ArtifactCache(tmp_path, faults=None)
        key = clean.key_for(artifact="read-fault")
        clean.store(key, self.PAYLOAD)
        cache = ArtifactCache(tmp_path, faults=_once("cache:read", "oserror"))
        assert cache.load(key) is None
        assert cache.load(key) == self.PAYLOAD  # transient: next read hits

    def test_disk_full_store_degrades_and_cleans_up(self, tmp_path):
        cache = ArtifactCache(tmp_path, faults=_always("cache:write", "disk-full"))
        key = cache.key_for(artifact="full")
        assert cache.store(key, self.PAYLOAD) is None
        assert cache.store_failures == 1
        assert cache.events  # degradation is surfaced, not swallowed
        assert not [p for p in tmp_path.iterdir() if ".tmp" in p.name]
        # the artifact is still produced, merely uncached
        assert cache.get_or_build(key, lambda: self.PAYLOAD) == self.PAYLOAD

    def test_read_only_store_degrades(self, tmp_path):
        cache = ArtifactCache(tmp_path, faults=_always("cache:write", "read-only"))
        key = cache.key_for(artifact="rofs")
        assert cache.store(key, self.PAYLOAD) is None
        assert cache.get_or_build(key, lambda: self.PAYLOAD) == self.PAYLOAD
        assert not [p for p in tmp_path.iterdir() if ".tmp" in p.name]

    def test_replace_failure_degrades_and_cleans_up(self, tmp_path):
        cache = ArtifactCache(tmp_path, faults=_always("cache:replace", "oserror"))
        key = cache.key_for(artifact="replace")
        assert cache.store(key, self.PAYLOAD) is None
        assert key not in cache
        assert not [p for p in tmp_path.iterdir() if ".tmp" in p.name]

    def test_strict_store_raises_typed_error(self, tmp_path):
        cache = ArtifactCache(
            tmp_path,
            faults=_always("cache:write", "disk-full"),
            strict_store=True,
        )
        with pytest.raises(CacheStoreError):
            cache.store(cache.key_for(artifact="strict"), self.PAYLOAD)

    def test_unpicklable_artifact_always_raises(self, tmp_path):
        cache = ArtifactCache(tmp_path, faults=None)
        with pytest.raises(CacheStoreError):
            cache.store(cache.key_for(artifact="bad"), lambda: None)

    def test_quarantine_restores_entry_replaced_by_racing_builder(self, tmp_path):
        # the unlink-race fix: quarantining on the evidence of *stale*
        # bytes must not destroy a fresh entry another builder renamed in
        cache = ArtifactCache(tmp_path, faults=None)
        key = cache.key_for(artifact="race")
        cache.store(key, self.PAYLOAD)
        path = cache.path_for(key)
        stale_observation = b"the corrupt bytes some reader saw earlier"
        cache._quarantine(path, stale_observation)
        assert cache.quarantined == 0
        assert cache.load(key) == self.PAYLOAD  # fresh entry survived

    def test_quarantine_keeps_genuinely_corrupt_bytes(self, tmp_path):
        cache = ArtifactCache(tmp_path, faults=None)
        key = cache.key_for(artifact="bad-bytes")
        path = cache.path_for(key)
        tmp_path.mkdir(exist_ok=True)
        path.write_bytes(b"definitely corrupt")
        cache._quarantine(path, b"definitely corrupt")
        assert cache.quarantined == 1
        assert not path.exists()
        moved = list(cache.quarantine_dir.iterdir())
        assert len(moved) == 1
        assert moved[0].read_bytes() == b"definitely corrupt"


_MAIN_PID = os.getpid()


def _die_in_worker(payload):
    """Kill the hosting process — unless it is the main test process.

    Dispatched to a pool worker this reproduces a genuine abrupt worker
    death (``BrokenProcessPool``); run inline after degradation it
    simply computes, which is exactly the degraded path's promise.
    """
    main_pid, x = payload
    if os.getpid() != main_pid:
        os._exit(3)
    return x * 2


def _double(x):
    return x * 2


class TestExecutorFaultMatrix:
    def test_transient_worker_death_survived_by_retry(self):
        inj = _once("worker", "worker-death")
        with ProcessPoolBackend(2, retries=2, backoff=0.0, faults=inj) as ex:
            assert ex.map(_double, [1, 2, 3]) == [2, 4, 6]
            assert ex.retry_count == 1
            assert not ex.degraded
            assert ex.events  # the retry is surfaced

    def test_persistent_failure_degrades_to_serial(self):
        inj = _always("worker", "worker-death")
        with ProcessPoolBackend(
            2, retries=1, backoff=0.0, on_failure="serial", faults=inj
        ) as ex:
            assert ex.map(_double, [1, 2]) == [2, 4]
            assert ex.degraded
            assert any("degraded" in e for e in ex.events)
            # degradation is permanent and stays correct
            assert ex.map(_double, [3, 4]) == [6, 8]

    def test_persistent_failure_raises_typed_error(self):
        inj = _always("worker", "worker-death")
        with ProcessPoolBackend(2, retries=1, backoff=0.0, faults=inj) as ex:
            with pytest.raises(WorkerPoolError) as err:
                ex.map(_double, [1, 2])
            assert err.value.attempts == 2

    def test_real_worker_death_mid_stage(self):
        # not an injected exception: the worker process genuinely dies
        # (os._exit) and concurrent.futures reports BrokenProcessPool
        payloads = [(_MAIN_PID, x) for x in (1, 2, 3)]
        with ProcessPoolBackend(
            2, retries=1, backoff=0.0, on_failure="serial", faults=None
        ) as ex:
            assert ex.map(_die_in_worker, payloads) == [2, 4, 6]
            assert ex.degraded

    def test_task_errors_are_not_retried(self):
        calls = {"n": 0}

        def count_calls(_):
            calls["n"] += 1
            raise KeyError("task bug")

        with ProcessPoolBackend(2, retries=3, backoff=0.0, faults=None) as ex:
            ex.degraded = True  # run inline so the counter is shared
            with pytest.raises(KeyError):
                ex.map(count_calls, [1])
        assert calls["n"] == 1


class TestPipelineUnderFaults:
    """End-to-end: faults anywhere, identical datasets everywhere."""

    def test_faulty_cache_never_changes_results(self, tmp_path):
        clean = build_datasets(tiny(seed=11))
        cache = ArtifactCache(
            tmp_path,
            faults=FaultInjector(
                [
                    # the first build writes two entries (delegation
                    # table, then bundle); tear both so the warm path
                    # has to reject each kind
                    FaultSpec("cache:write", "torn-write", max_fires=2),
                    FaultSpec("cache:read", "oserror", max_fires=1),
                ],
                seed=3,
            ),
        )
        # first build stores torn entries; the verified warm path must
        # reject them and rebuild rather than serve them
        first = build_datasets(tiny(seed=11), cache=cache)
        second = build_datasets(tiny(seed=11), cache=cache)
        for bundle in (first, second):
            assert bundle.admin_lives == clean.admin_lives
            assert bundle.op_lives == clean.op_lives
        assert cache.hits == 0  # every lookup degraded to a miss

    def test_degraded_executor_surfaces_in_stats(self):
        stats = PipelineStats()
        executor = ProcessPoolBackend(
            2,
            retries=0,
            backoff=0.0,
            on_failure="serial",
            faults=_always("worker", "worker-death"),
        )
        with executor:
            bundle = build_datasets(tiny(seed=11), executor=executor, stats=stats)
        assert stats.backend == "process/degraded-serial"
        assert any("degraded" in event for event in stats.events)
        assert bundle.admin_lives == build_datasets(tiny(seed=11)).admin_lives

    def test_stats_render_includes_events(self):
        stats = PipelineStats()
        stats.record("simulate", 1.0)
        stats.note("cache: quarantined corrupt entry deadbeef")
        text = stats.render()
        assert "runtime events (1):" in text
        assert "quarantined" in text


class TestEnvInjection:
    def test_from_env_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_SEED", raising=False)
        assert from_env() is None

    def test_from_env_builds_shared_injector(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SEED", "42")
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.25")
        first = from_env()
        assert first is not None
        assert first.seed == 42
        assert from_env() is first  # one ambient injector per process

    def test_default_cache_picks_up_env_injector(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FAULT_SEED", "42")
        cache = ArtifactCache(tmp_path)
        assert cache.faults is from_env()
        explicit = ArtifactCache(tmp_path, faults=None)
        assert explicit.faults is None

    def test_serial_executor_untouched_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SEED", "42")
        ex = SerialExecutor()
        assert ex.map(_double, [1]) == [2]
