"""Deeper checks of archive accounting and restoration views."""

import pytest

from repro.asn import IanaLedger
from repro.rir import (
    REGULAR,
    ArchiveOverlay,
    DelegationArchive,
    Registry,
    default_policy,
)
from repro.restoration import build_registry_view
from repro.timeline import from_iso


def make_world(end="2015-01-01"):
    ledger = IanaLedger()
    regs = {}
    for name, cc in (("arin", "US"), ("afrinic", "ZA")):
        reg = Registry(name, default_policy(name), ledger)
        start = from_iso("2005-03-01") if name == "afrinic" else from_iso("2004-01-05")
        for i in range(5):
            reg.allocate(start + i * 30, f"ORG-{name}-{i}", cc,
                         thirty_two_bit=False)
        regs[name] = reg
    return regs, from_iso(end)


class TestArchiveAccounting:
    def test_day_count_spans_both_kinds(self):
        regs, end = make_world()
        archive = DelegationArchive(regs, end)
        # ARIN: regular 2003-11-20..2013-08-12, extended 2013-03-05..end
        expected = end - from_iso("2003-11-20") + 1
        assert archive.day_count("arin") == expected

    def test_day_count_drops_fully_missing_days(self):
        regs, end = make_world()
        overlay = ArchiveOverlay()
        probe = from_iso("2006-06-06")
        overlay.mark_missing(("arin", REGULAR), probe)
        archive = DelegationArchive(regs, end, overlay)
        clean = DelegationArchive(regs, end)
        # the day only has the regular feed in 2006: coverage drops
        assert archive.day_count("arin") == clean.day_count("arin") - 1

    def test_day_count_survives_one_sided_missing(self):
        regs, end = make_world()
        overlay = ArchiveOverlay()
        probe = from_iso("2013-06-06")  # both feeds exist for ARIN here
        overlay.mark_missing(("arin", REGULAR), probe)
        archive = DelegationArchive(regs, end, overlay)
        clean = DelegationArchive(regs, end)
        assert archive.day_count("arin") == clean.day_count("arin")

    def test_iter_days_matches_window(self):
        regs, end = make_world()
        archive = DelegationArchive(regs, end)
        days = list(archive.iter_days(("afrinic", REGULAR)))
        assert days[0] == from_iso("2005-02-18")
        assert days[-1] == end

    def test_file_state_outside_window_rejected(self):
        regs, end = make_world()
        archive = DelegationArchive(regs, end)
        with pytest.raises(ValueError):
            archive.file_state(("afrinic", REGULAR), from_iso("2004-01-01"))


class TestRegistryViews:
    def test_arin_era_boundary(self):
        regs, end = make_world()
        archive = DelegationArchive(regs, end)
        view = build_registry_view(archive, "arin")
        boundary = view.extended_start
        assert boundary == from_iso("2013-03-05")
        # stints on either side of the boundary join seamlessly for a
        # continuously allocated ASN
        asn = next(iter(view.stints))
        stints = sorted(view.stints[asn], key=lambda s: s.start)
        delegated = [s for s in stints if s.record.is_delegated]
        for a, b in zip(delegated, delegated[1:]):
            assert b.start == a.end + 1

    def test_regular_metadata_populated(self):
        regs, end = make_world()
        overlay = ArchiveOverlay()
        overlay.mark_missing(("arin", REGULAR), from_iso("2010-04-04"))
        archive = DelegationArchive(regs, end, overlay)
        view = build_registry_view(archive, "arin")
        assert from_iso("2010-04-04") in view.regular_unavailable_days
        assert view.regular_first_day == from_iso("2003-11-20")
        assert view.regular_last_day == from_iso("2013-08-12")

    def test_afrinic_single_feed_before_extended(self):
        regs, _ = make_world()
        archive = DelegationArchive(regs, from_iso("2010-01-01"))
        view = build_registry_view(archive, "afrinic")
        # AfriNIC extended starts 2012: outside this window
        assert view.extended_start is None
        assert view.stints  # the regular era alone carries the data

    def test_unknown_registry_rejected(self):
        regs, end = make_world()
        archive = DelegationArchive(regs, end)
        with pytest.raises(ValueError, match="publishes no delegation files"):
            build_registry_view(archive, "lacnic")
