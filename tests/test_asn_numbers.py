"""Unit tests for repro.asn.numbers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asn import (
    AS16_MAX,
    AS32_MAX,
    digit_count,
    from_asdot,
    is_16bit,
    is_32bit_only,
    looks_like_prepend_typo,
    one_digit_apart,
    to_asdot,
    validate_asn,
)


class TestValidation:
    def test_accepts_bounds(self):
        assert validate_asn(0) == 0
        assert validate_asn(AS32_MAX) == AS32_MAX

    @pytest.mark.parametrize("bad", [-1, AS32_MAX + 1])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ValueError):
            validate_asn(bad)

    @pytest.mark.parametrize("bad", ["3356", 3.14, True])
    def test_rejects_non_int(self, bad):
        with pytest.raises(ValueError):
            validate_asn(bad)


class TestBitClasses:
    def test_boundary(self):
        assert is_16bit(AS16_MAX)
        assert not is_16bit(AS16_MAX + 1)
        assert is_32bit_only(AS16_MAX + 1)
        assert not is_32bit_only(AS16_MAX)

    @given(st.integers(min_value=0, max_value=AS32_MAX))
    def test_partition_complete(self, asn):
        assert is_16bit(asn) != is_32bit_only(asn)


class TestAsdot:
    def test_16bit_renders_plain(self):
        assert to_asdot(3356) == "3356"

    def test_32bit_renders_dotted(self):
        assert to_asdot(196622) == "3.14"

    def test_parse_plain(self):
        assert from_asdot("3356") == 3356

    def test_parse_dotted(self):
        assert from_asdot("3.14") == 196622

    def test_parse_rejects_bad_dotted(self):
        with pytest.raises(ValueError):
            from_asdot("70000.1")

    @given(st.integers(min_value=0, max_value=AS32_MAX))
    def test_roundtrip(self, asn):
        assert from_asdot(to_asdot(asn)) == asn


class TestDigitHeuristics:
    def test_digit_count(self):
        assert digit_count(7) == 1
        assert digit_count(290012147) == 9

    def test_prepend_typo_exact_repetition(self):
        # the paper's example: AS3202632026 repeats AS32026 twice
        assert looks_like_prepend_typo(3202632026, 32026)

    def test_prepend_typo_triple_repetition(self):
        assert looks_like_prepend_typo(121212, 12)

    def test_prepend_typo_rejects_unrelated(self):
        assert not looks_like_prepend_typo(41933, 3356)

    def test_prepend_typo_rejects_same(self):
        assert not looks_like_prepend_typo(32026, 32026)

    def test_prepend_typo_rejects_shorter_origin(self):
        assert not looks_like_prepend_typo(32, 32026)

    def test_one_digit_substitution(self):
        assert one_digit_apart(41933, 41930)

    def test_one_digit_insertion(self):
        # the paper's example: AS419333 vs AS41933
        assert one_digit_apart(419333, 41933)
        assert one_digit_apart(41933, 419333)

    def test_one_digit_moas_example_2(self):
        # AS363690 vs AS393690 (§6.4)
        assert one_digit_apart(363690, 393690)

    def test_one_digit_rejects_equal(self):
        assert not one_digit_apart(41933, 41933)

    def test_one_digit_rejects_two_edits(self):
        assert not one_digit_apart(41933, 42934)
        assert not one_digit_apart(12, 1234)

    @given(st.integers(min_value=0, max_value=AS32_MAX), st.integers(min_value=0, max_value=AS32_MAX))
    def test_one_digit_symmetric(self, a, b):
        assert one_digit_apart(a, b) == one_digit_apart(b, a)
