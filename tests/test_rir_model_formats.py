"""Unit tests for repro.rir.model and repro.rir.formats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rir import (
    DelegationFileError,
    DelegationRecord,
    DelegationSnapshot,
    Status,
    compress_records,
    parse_snapshot,
    serialize_snapshot,
)
from repro.timeline import from_iso


def rec(asn, status=Status.ALLOCATED, cc="IT", date="2010-05-01", opaque="ORG-1",
        registry="ripencc"):
    return DelegationRecord(
        registry=registry,
        cc=cc,
        asn=asn,
        reg_date=from_iso(date) if date else None,
        status=status,
        opaque_id=opaque,
    )


class TestStatus:
    def test_parse(self):
        assert Status.parse("ALLOCATED") is Status.ALLOCATED
        assert Status.parse(" reserved ") is Status.RESERVED

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            Status.parse("squatted")

    def test_is_delegated(self):
        assert Status.ALLOCATED.is_delegated
        assert Status.ASSIGNED.is_delegated
        assert not Status.AVAILABLE.is_delegated
        assert not Status.RESERVED.is_delegated


class TestDelegationRecord:
    def test_rejects_unknown_registry(self):
        with pytest.raises(ValueError):
            rec(1, registry="internic")

    def test_rejects_delegated_without_date(self):
        with pytest.raises(ValueError):
            DelegationRecord("arin", "US", 7, None, Status.ALLOCATED)

    def test_available_without_date_ok(self):
        r = DelegationRecord("arin", "", 7, None, Status.AVAILABLE)
        assert not r.is_delegated

    def test_with_date(self):
        r = rec(1)
        r2 = r.with_date(from_iso("1999-01-01"))
        assert r2.reg_date == from_iso("1999-01-01")
        assert r.reg_date == from_iso("2010-05-01")  # original untouched

    def test_describe_mentions_asn(self):
        assert "AS42" in rec(42).describe()


class TestSnapshot:
    def test_by_asn_preserves_duplicates(self):
        snap = DelegationSnapshot(
            "afrinic", from_iso("2015-01-01"), True,
            [rec(5, registry="afrinic"),
             rec(5, registry="afrinic", status=Status.RESERVED, date=None,
                 cc="", opaque=None)],
        )
        assert len(snap.by_asn()[5]) == 2

    def test_delegated_records_filter(self):
        snap = DelegationSnapshot(
            "ripencc", from_iso("2015-01-01"), True,
            [rec(1), rec(2, status=Status.AVAILABLE, date=None, cc="", opaque=None)],
        )
        assert [r.asn for r in snap.delegated_records()] == [1]

    def test_count_by_status(self):
        snap = DelegationSnapshot(
            "ripencc", from_iso("2015-01-01"), True,
            [rec(1), rec(2), rec(3, status=Status.AVAILABLE, date=None, cc="", opaque=None)],
        )
        counts = snap.count_by_status()
        assert counts[Status.ALLOCATED] == 2
        assert counts[Status.AVAILABLE] == 1


class TestCompression:
    def test_contiguous_same_fields_collapse(self):
        records = [rec(10), rec(11), rec(12)]
        runs = compress_records(records)
        assert len(runs) == 1
        assert runs[0][1] == 3

    def test_gap_breaks_run(self):
        runs = compress_records([rec(10), rec(12)])
        assert len(runs) == 2

    def test_field_change_breaks_run(self):
        runs = compress_records([rec(10), rec(11, cc="FR")])
        assert len(runs) == 2


class TestRoundTrip:
    def make_snapshot(self, extended=True):
        records = [
            rec(64, date="2004-03-02", cc="DE", opaque="ORG-A"),
            rec(65, date="2004-03-02", cc="DE", opaque="ORG-A"),
            rec(100, status=Status.ASSIGNED, cc="IT", opaque="ORG-B"),
        ]
        if extended:
            records += [
                DelegationRecord("ripencc", "", 200, None, Status.AVAILABLE),
                DelegationRecord("ripencc", "", 201, None, Status.AVAILABLE),
                DelegationRecord("ripencc", "", 300, None, Status.RESERVED),
            ]
        else:
            records = [r.with_status(r.status) for r in records]
            records = [
                DelegationRecord(r.registry, r.cc, r.asn, r.reg_date, r.status)
                for r in records
            ]
        return DelegationSnapshot(
            "ripencc", from_iso("2015-06-01"), extended, records, serial=1234
        )

    def test_extended_roundtrip(self):
        snap = self.make_snapshot(extended=True)
        parsed = parse_snapshot(serialize_snapshot(snap))
        assert parsed.registry == "ripencc"
        assert parsed.extended
        assert parsed.serial == 1234
        assert parsed.file_day == snap.file_day
        assert sorted(parsed.records, key=lambda r: (r.asn, r.status.value)) == sorted(
            snap.records, key=lambda r: (r.asn, r.status.value)
        )

    def test_regular_roundtrip(self):
        snap = self.make_snapshot(extended=False)
        parsed = parse_snapshot(serialize_snapshot(snap))
        assert not parsed.extended
        assert len(parsed.records) == 3
        assert all(r.opaque_id is None for r in parsed.records)

    def test_serialized_text_shape(self):
        text = serialize_snapshot(self.make_snapshot())
        lines = text.strip().splitlines()
        assert lines[0].startswith("2.3|ripencc|1234|")
        assert lines[1].endswith("|summary")
        assert "|asn|64|2|20040302|allocated|ORG-A" in text


class TestParserRobustness:
    GOOD = (
        "2|arin|20150601|2|20150601|20150601|+0000\n"
        "arin|*|asn|*|2|summary\n"
        "arin|US|asn|701|1|19900101|allocated\n"
        "arin|US|asn|702|1|19900101|assigned\n"
    )

    def test_parses_good(self):
        snap = parse_snapshot(self.GOOD)
        assert [r.asn for r in snap.records] == [701, 702]

    def test_skips_comments_and_blanks(self):
        text = "# hello\n\n" + self.GOOD
        assert len(parse_snapshot(text).records) == 2

    def test_skips_ipv4_rows(self):
        text = self.GOOD.replace(
            "|2|summary", "|3|summary"
        ).replace(
            "20150601|2|2015", "20150601|3|2015"
        ) + "arin|US|ipv4|192.0.2.0|256|19900101|allocated\n"
        snap = parse_snapshot(text)
        assert len(snap.records) == 2

    def test_rejects_empty(self):
        with pytest.raises(DelegationFileError):
            parse_snapshot("")

    def test_rejects_bad_header(self):
        with pytest.raises(DelegationFileError):
            parse_snapshot("oops\n" + self.GOOD)

    def test_rejects_unknown_version(self):
        with pytest.raises(DelegationFileError):
            parse_snapshot(self.GOOD.replace("2|arin", "9|arin"))

    def test_rejects_truncation(self):
        truncated = "\n".join(self.GOOD.splitlines()[:-1]) + "\n"
        with pytest.raises(DelegationFileError, match="truncated"):
            parse_snapshot(truncated)

    def test_rejects_bad_date(self):
        with pytest.raises(DelegationFileError):
            parse_snapshot(self.GOOD.replace("19900101", "1990-01-0"))

    def test_rejects_reserved_in_regular(self):
        with pytest.raises(DelegationFileError):
            parse_snapshot(self.GOOD.replace("|assigned", "|reserved"))

    def test_rejects_bad_asn_range(self):
        with pytest.raises(DelegationFileError):
            parse_snapshot(self.GOOD.replace("|701|1|", "|4294967295|2|"))

    def test_expands_value_runs(self):
        text = (
            "2.3|apnic|1|1|20150601|20150601|+0000\n"
            "apnic|*|asn|*|1|summary\n"
            "apnic||asn|64000|512||available|\n"
        )
        snap = parse_snapshot(text)
        assert len(snap.records) == 512
        assert snap.records[0].asn == 64000
        assert snap.records[-1].asn == 64511


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=5000),
            st.sampled_from(["IT", "FR", "US"]),
        ),
        min_size=1,
        max_size=30,
        unique_by=lambda t: t[0],
    )
)
def test_roundtrip_property(pairs):
    records = [rec(asn, cc=cc) for asn, cc in pairs]
    snap = DelegationSnapshot("ripencc", from_iso("2016-02-03"), True, records)
    parsed = parse_snapshot(serialize_snapshot(snap))
    assert sorted(parsed.records, key=lambda r: r.asn) == sorted(
        records, key=lambda r: r.asn
    )
