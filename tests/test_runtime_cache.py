"""Tests for the content-addressed artifact cache (repro.runtime.cache).

The properties under test are the ones the pipeline relies on: equal
inputs address the same entry, *any* changed input (including the
pipeline version tag) addresses a different one, and corrupt entries
degrade to misses instead of poisoning later runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.rir.pitfalls import PitfallConfig
from repro.runtime import PIPELINE_VERSION, ArtifactCache, cache_key, fingerprint
from repro.simulation.config import tiny


@dataclass
class _Cfg:
    x: int = 1
    tag: str = "a"


class TestFingerprint:
    def test_dataclass_includes_class_name(self):
        fp = fingerprint(_Cfg())
        assert fp["__class__"] == "_Cfg"
        assert fp["x"] == 1

    def test_dict_key_order_is_canonical(self):
        assert fingerprint({"b": 2, "a": 1}) == fingerprint({"a": 1, "b": 2})

    def test_tuples_and_sets_canonicalize(self):
        assert fingerprint((1, 2)) == [1, 2]
        assert fingerprint({3, 1, 2}) == [1, 2, 3]

    def test_world_config_is_fingerprintable(self):
        fp = fingerprint(tiny())
        assert fp["__class__"] == "WorldConfig"

    def test_pitfall_config_is_fingerprintable(self):
        assert fingerprint(PitfallConfig())["__class__"] == "PitfallConfig"

    def test_rejects_non_canonical_values(self):
        with pytest.raises(TypeError):
            fingerprint(lambda: None)


class TestCacheKey:
    def test_stable_across_kwarg_order(self):
        assert cache_key(a=1, b=2) == cache_key(b=2, a=1)

    def test_differs_on_value_change(self):
        assert cache_key(a=1) != cache_key(a=2)

    def test_differs_on_config_change(self):
        assert cache_key(config=_Cfg(x=1)) != cache_key(config=_Cfg(x=2))


def _clean_cache(root, **kwargs) -> ArtifactCache:
    """A cache with fault injection off, for tests pinning exact
    hit/miss bookkeeping (the CI suite also runs under ambient
    REPRO_FAULT_SEED injection, which would skew the counters)."""
    return ArtifactCache(root, faults=None, **kwargs)


class TestArtifactCache:
    def test_miss_then_hit(self, tmp_path):
        cache = _clean_cache(tmp_path)
        key = cache.key_for(artifact="t", n=1)
        assert cache.load(key) is None
        cache.store(key, {"payload": [1, 2, 3]})
        assert key in cache
        assert cache.load(key) == {"payload": [1, 2, 3]}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_key_for_includes_version_tag(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        implicit = cache.key_for(artifact="t")
        explicit = cache.key_for(artifact="t", pipeline_version=PIPELINE_VERSION)
        bumped = cache.key_for(artifact="t", pipeline_version="9999.99-1")
        assert implicit == explicit
        assert implicit != bumped

    def test_config_change_invalidates(self, tmp_path):
        cache = _clean_cache(tmp_path)
        base = tiny()
        key = cache.key_for(artifact="bundle", config=base)
        cache.store(key, "built-for-base")
        changed = tiny(seed=base.seed + 1)
        assert cache.load(cache.key_for(artifact="bundle", config=changed)) is None
        assert cache.load(key) == "built-for-base"

    def test_get_or_build_builds_once(self, tmp_path):
        cache = _clean_cache(tmp_path)
        key = cache.key_for(artifact="t")
        calls = []

        def builder():
            calls.append(1)
            return "artifact"

        assert cache.get_or_build(key, builder) == "artifact"
        assert cache.get_or_build(key, builder) == "artifact"
        assert len(calls) == 1

    def test_get_or_build_caches_none(self, tmp_path):
        # a builder legitimately returning None must hit on the second
        # call, not rebuild forever (the envelope distinguishes a
        # cached None from a miss)
        cache = _clean_cache(tmp_path)
        key = cache.key_for(artifact="maybe-empty")
        calls = []

        def builder():
            calls.append(1)
            return None

        assert cache.get_or_build(key, builder) is None
        assert cache.get_or_build(key, builder) is None
        assert len(calls) == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_get_or_build_caches_falsy_values(self, tmp_path):
        cache = _clean_cache(tmp_path)
        for i, value in enumerate(([], {}, 0, "")):
            key = cache.key_for(artifact="falsy", n=i)
            assert cache.get_or_build(key, lambda v=value: v) == value
            assert cache.get_or_build(key, lambda: pytest.fail("rebuilt")) == value

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = _clean_cache(tmp_path)
        key = cache.key_for(artifact="t")
        cache.store(key, "ok")
        cache.path_for(key).write_bytes(b"not a pickle")
        assert cache.load(key) is None
        assert key not in cache
        # removed from the entry directory, but preserved in quarantine
        assert cache.quarantined == 1
        assert list(cache.quarantine_dir.iterdir())

    def test_store_writes_sidecar_manifest(self, tmp_path):
        import hashlib
        import json

        from repro.runtime import MANIFEST_FORMAT

        cache = _clean_cache(tmp_path)
        key = cache.key_for(artifact="t")
        cache.store(key, "payload")
        manifest = json.loads(cache.manifest_path_for(key).read_text())
        blob = cache.path_for(key).read_bytes()
        assert manifest["format"] == MANIFEST_FORMAT
        assert manifest["length"] == len(blob)
        assert manifest["sha256"] == hashlib.sha256(blob).hexdigest()
        assert manifest["pipeline_version"] == PIPELINE_VERSION

    def test_verify_off_round_trips(self, tmp_path):
        cache = _clean_cache(tmp_path, verify="off")
        key = cache.key_for(artifact="t")
        cache.store(key, [1, 2, 3])
        assert cache.load(key) == [1, 2, 3]
        # manifests are still written, so re-opening verified works
        assert _clean_cache(tmp_path).load(key) == [1, 2, 3]

    def test_rejects_unknown_verify_mode(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactCache(tmp_path, verify="md5")

    def test_store_leaves_no_temp_files(self, tmp_path):
        cache = _clean_cache(tmp_path)
        cache.store(cache.key_for(artifact="t"), list(range(100)))
        leftovers = [p for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_store_overwrites_atomically(self, tmp_path):
        cache = _clean_cache(tmp_path)
        key = cache.key_for(artifact="t")
        cache.store(key, "v1")
        cache.store(key, "v2")
        assert cache.load(key) == "v2"

    def test_concurrent_threaded_stores_cannot_collide(self, tmp_path):
        # pid-only temp names collide across threads of one process;
        # the uniquifier makes every store's temp files distinct, so
        # racing stores of the same key leave one valid winner
        from concurrent.futures import ThreadPoolExecutor

        cache = _clean_cache(tmp_path)
        key = cache.key_for(artifact="racy")
        payload = list(range(2000))
        with ThreadPoolExecutor(max_workers=8) as pool:
            for result in pool.map(
                lambda _: cache.store(key, payload), range(32)
            ):
                assert result is not None
        assert cache.store_failures == 0
        assert cache.load(key) == payload
        assert not [p for p in tmp_path.iterdir() if ".tmp" in p.name]
