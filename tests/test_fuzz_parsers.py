"""Fuzz tests: the parsers must fail *cleanly* on arbitrary input.

A pipeline that ingests 17 years of third-party files cannot afford
parser crashes: malformed input must raise the module's typed error
(``DelegationFileError`` / ``MrtError``), never an arbitrary exception.
"""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp import BgpElement, MrtError, RIB, read_elements, write_elements
from repro.net import Prefix
from repro.rir import DelegationFileError, parse_snapshot
from repro.timeline import from_iso

D = from_iso("2015-06-01")


class TestDelegationParserFuzz:
    @settings(max_examples=300)
    @given(st.text(max_size=400))
    def test_arbitrary_text_never_crashes(self, text):
        try:
            parse_snapshot(text)
        except DelegationFileError:
            pass  # the only acceptable failure mode

    @settings(max_examples=200)
    @given(st.binary(max_size=300))
    def test_arbitrary_latin1_never_crashes(self, blob):
        try:
            parse_snapshot(blob.decode("latin-1"))
        except DelegationFileError:
            pass

    GOOD = (
        "2.3|ripencc|1|2|20150601|20150601|+0000\n"
        "ripencc|*|asn|*|2|summary\n"
        "ripencc|IT|asn|100|1|20100501|allocated|ORG-1\n"
        "ripencc||asn|200|1||available|\n"
    )

    @settings(max_examples=200)
    @given(
        st.integers(min_value=0, max_value=len(GOOD) - 1),
        st.characters(blacklist_categories=("Cs",)),
    )
    def test_single_character_mutations(self, position, replacement):
        mutated = self.GOOD[:position] + replacement + self.GOOD[position + 1 :]
        try:
            snapshot = parse_snapshot(mutated)
        except DelegationFileError:
            return
        # if it still parses, the result must be structurally sound
        assert snapshot.registry
        for record in snapshot.records:
            assert record.asn >= 0

    @settings(max_examples=100)
    @given(st.integers(min_value=1, max_value=len(GOOD) - 1))
    def test_truncations(self, cut):
        try:
            parse_snapshot(self.GOOD[:-cut])
        except DelegationFileError:
            pass


class TestMrtFuzz:
    def _valid_bytes(self):
        buf = io.BytesIO()
        elems = [
            BgpElement(RIB, D, i, "ris", "rrc00", 10,
                       Prefix.parse("10.0.0.0/16"), (10, 20, 30))
            for i in range(3)
        ]
        write_elements(elems, buf)
        return buf.getvalue()

    @settings(max_examples=200)
    @given(st.binary(max_size=200))
    def test_arbitrary_bytes_never_crash(self, blob):
        try:
            list(read_elements(io.BytesIO(blob), project="x", collector="y"))
        except MrtError:
            pass
        except ValueError:
            pass  # Prefix validation errors are ValueErrors too

    @settings(max_examples=200)
    @given(st.data())
    def test_bit_flips_never_crash(self, data):
        raw = bytearray(self._valid_bytes())
        position = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
        raw[position] ^= data.draw(st.integers(min_value=1, max_value=255))
        try:
            decoded = list(
                read_elements(io.BytesIO(bytes(raw)), project="x", collector="y")
            )
        except (MrtError, ValueError):
            return
        for element in decoded:
            assert element.peer_asn >= 0

    @settings(max_examples=100)
    @given(st.integers(min_value=1, max_value=40))
    def test_truncations_fail_cleanly_or_shorten(self, cut):
        raw = self._valid_bytes()
        cut = min(cut, len(raw) - 1)
        try:
            decoded = list(
                read_elements(io.BytesIO(raw[:-cut]), project="x", collector="y")
            )
        except MrtError:
            return
        # a cut landing exactly on a record boundary yields a valid,
        # shorter stream — never a full-length one
        assert len(decoded) < 3
