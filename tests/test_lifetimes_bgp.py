"""Tests for §4.2 BGP lifetimes, sensitivity sweep, and dataset I/O."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lifetimes import (
    AdminLifetime,
    BgpLifetime,
    OperationalActivity,
    build_bgp_lifetimes,
    dump_admin_dataset,
    dump_bgp_dataset,
    fraction_one_or_less_op_life,
    gap_cdf,
    gap_distribution,
    lifetimes_from_activity,
    load_admin_dataset,
    load_bgp_dataset,
    sweep_timeouts,
)
from repro.timeline import Interval, IntervalSet, from_iso

D = from_iso("2010-01-01")
END = from_iso("2020-01-01")


def activity(observed_intervals, single=()):
    return OperationalActivity(
        asn=100,
        observed=IntervalSet([Interval(*p) for p in observed_intervals]),
        single_peer=IntervalSet([Interval(*p) for p in single]),
    )


class TestSegmentation:
    def test_short_gap_bridged(self):
        act = activity([(D, D + 10), (D + 31, D + 40)])  # gap of 20 days
        lives = lifetimes_from_activity(100, act.active_days(), timeout=30, end_day=END)
        assert len(lives) == 1
        assert (lives[0].start, lives[0].end) == (D, D + 40)

    def test_long_gap_splits(self):
        act = activity([(D, D + 10), (D + 42, D + 50)])  # gap of 31 days
        lives = lifetimes_from_activity(100, act.active_days(), timeout=30, end_day=END)
        assert len(lives) == 2

    def test_gap_exactly_timeout_bridged(self):
        # "reappears after > 30 days of inactivity" -> 30 itself merges
        act = activity([(D, D + 10), (D + 41, D + 50)])  # gap of exactly 30
        lives = lifetimes_from_activity(100, act.active_days(), timeout=30, end_day=END)
        assert len(lives) == 1

    def test_open_ended_near_window_end(self):
        act = activity([(END - 10, END - 5)])
        lives = lifetimes_from_activity(100, act.active_days(), timeout=30, end_day=END)
        assert lives[0].open_ended

    def test_closed_when_far_from_window_end(self):
        act = activity([(D, D + 10)])
        lives = lifetimes_from_activity(100, act.active_days(), timeout=30, end_day=END)
        assert not lives[0].open_ended


class TestVisibilityThreshold:
    def test_single_peer_days_excluded_by_default(self):
        act = activity([(D, D + 10)], single=[(D + 100, D + 105)])
        lives = build_bgp_lifetimes({100: act}, end_day=END)
        assert len(lives[100]) == 1

    def test_min_peers_1_includes_spurious(self):
        act = activity([(D, D + 10)], single=[(D + 100, D + 105)])
        lives = build_bgp_lifetimes({100: act}, min_peers=1, end_day=END)
        assert len(lives[100]) == 2

    def test_silent_asn_absent(self):
        act = OperationalActivity(asn=100)
        assert build_bgp_lifetimes({100: act}, end_day=END) == {}

    def test_rejects_bad_threshold(self):
        act = activity([(D, D)])
        with pytest.raises(ValueError):
            act.active_days(min_peers=0)


class TestSensitivity:
    def make_world(self):
        activities = {
            1: OperationalActivity(
                1, IntervalSet([Interval(D, D + 9), Interval(D + 30, D + 39),
                                Interval(D + 400, D + 420)])
            ),
            2: OperationalActivity(2, IntervalSet([Interval(D, D + 500)])),
        }
        admin = {
            1: [AdminLifetime(1, D - 10, D + 600, D - 10, ("ripencc",))],
            2: [AdminLifetime(2, D - 10, D + 600, D - 10, ("arin",))],
        }
        return admin, activities

    def test_gap_distribution(self):
        _, activities = self.make_world()
        gaps = gap_distribution(activities)
        assert gaps == [20, 360]

    def test_gap_cdf(self):
        assert gap_cdf([20, 360], 30) == pytest.approx(0.5)
        assert gap_cdf([20, 360], 360) == 1.0
        assert gap_cdf([], 30) == 1.0

    def test_fraction_one_or_less(self):
        admin, activities = self.make_world()
        # timeout 30: ASN1 has 2 op lives inside its admin life
        low = fraction_one_or_less_op_life(admin, activities, timeout=30, end_day=END)
        # timeout 365: everything merges to 1 op life
        high = fraction_one_or_less_op_life(admin, activities, timeout=365, end_day=END)
        assert low == pytest.approx(0.5)
        assert high == 1.0

    def test_sweep_monotone(self):
        admin, activities = self.make_world()
        rows = sweep_timeouts(admin, activities, [5, 30, 365], end_day=END)
        coverages = [r.gap_coverage for r in rows]
        assert coverages == sorted(coverages)
        totals = [r.total_op_lifetimes for r in rows]
        assert totals == sorted(totals, reverse=True)


class TestIO:
    def test_admin_roundtrip(self, tmp_path):
        lives = {
            205334: [
                AdminLifetime(
                    205334,
                    from_iso("2017-09-20"),
                    from_iso("2021-02-11"),
                    from_iso("2017-09-20"),
                    ("ripencc",),
                )
            ]
        }
        path = tmp_path / "admin.json"
        assert dump_admin_dataset(lives, path) == 1
        loaded = load_admin_dataset(path)
        life = loaded[205334][0]
        assert life.start == from_iso("2017-09-20")
        assert life.end == from_iso("2021-02-11")
        assert life.registry == "ripencc"

    def test_bgp_roundtrip(self, tmp_path):
        lives = {
            205334: [
                BgpLifetime(205334, from_iso("2017-10-05"), from_iso("2017-10-23"))
            ]
        }
        path = tmp_path / "bgp.json"
        assert dump_bgp_dataset(lives, path) == 1
        loaded = load_bgp_dataset(path)
        assert loaded[205334][0].duration == 19

    def test_listing1_exact_schema(self, tmp_path):
        import json

        lives = {
            205334: [
                AdminLifetime(
                    205334,
                    from_iso("2017-09-20"),
                    from_iso("2021-02-11"),
                    from_iso("2017-09-20"),
                    ("ripencc",),
                )
            ]
        }
        path = tmp_path / "admin.json"
        dump_admin_dataset(lives, path)
        row = json.loads(path.read_text())[0]
        assert row == {
            "ASN": 205334,
            "regDate": "2017-09-20",
            "startdate": "2017-09-20",
            "enddate": "2021-02-11",
            "status": "allocated",
            "registry": "ripencc",
        }


@settings(max_examples=100)
@given(
    st.sets(st.integers(min_value=0, max_value=500), min_size=1, max_size=60),
    st.integers(min_value=0, max_value=60),
)
def test_lifetime_segmentation_properties(days, timeout):
    act = OperationalActivity(7, IntervalSet.from_days({D + d for d in days}))
    lives = lifetimes_from_activity(7, act.active_days(), timeout=timeout, end_day=END)
    # every active day falls inside exactly one lifetime
    covered = IntervalSet([l.interval for l in lives])
    assert set(act.observed.days()) <= set(covered.days())
    # lifetimes are separated by more than the timeout
    for a, b in zip(lives, lives[1:]):
        assert b.start - a.end - 1 > timeout
