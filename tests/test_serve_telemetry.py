"""Tests for the serve telemetry layer.

Labeled metric names, Prometheus exposition render/parse round trips,
the structured access log (sampling, rotation, atomic lines), the
sliding-window SLO tracker, and the ServerTelemetry facade.
"""

from __future__ import annotations

import json

import pytest

from repro.runtime.observability import (
    HISTOGRAM_BUCKET_BOUNDS,
    OVERFLOW_BUCKET,
    MetricsRegistry,
    bucket_index,
)
from repro.serve.telemetry import (
    ACCESS_LOG_FORMAT,
    AccessLog,
    ServerTelemetry,
    SloWindow,
    labeled,
    le_label,
    parse_exposition,
    render_exposition,
    request_quantiles,
    split_labeled,
)


class TestLabeledNames:
    def test_round_trip(self):
        name = labeled("serve.http.requests", route="/asn/{n}/lives", status=200)
        assert name == "serve.http.requests|route=/asn/{n}/lives|status=200"
        base, labels = split_labeled(name)
        assert base == "serve.http.requests"
        assert labels == {"route": "/asn/{n}/lives", "status": "200"}

    def test_keys_are_sorted_for_canonical_names(self):
        assert labeled("m", b="2", a="1") == labeled("m", a="1", b="2")

    def test_unlabeled_name_passes_through(self):
        assert labeled("serve.http.requests") == "serve.http.requests"
        assert split_labeled("serve.http.requests") == (
            "serve.http.requests", {},
        )


class TestExposition:
    def test_counters_and_gauges_round_trip(self):
        metrics = MetricsRegistry()
        metrics.inc("serve.http.requests", 7)
        metrics.inc(labeled("serve.http.requests", route="/healthz", status=200), 3)
        metrics.gauge("serve.query.qps").set(123.5)
        text = render_exposition(metrics.snapshot())
        assert "# TYPE repro_serve_http_requests counter" in text
        samples = parse_exposition(text)
        assert samples[("repro_serve_http_requests_total", ())] == 7
        assert samples[(
            "repro_serve_http_requests_total",
            (("route", "/healthz"), ("status", "200")),
        )] == 3
        assert samples[("repro_serve_query_qps", ())] == 123.5

    def test_histogram_buckets_are_cumulative(self):
        metrics = MetricsRegistry()
        name = labeled("serve.http.request_us", route="/healthz")
        for value in (5.0, 50.0, 50.0, 5000.0):
            metrics.observe(name, value)
        samples = parse_exposition(render_exposition(metrics.snapshot()))

        def bucket(le):
            return samples[(
                "repro_serve_http_request_us_bucket",
                (("le", le), ("route", "/healthz")),
            )]

        assert bucket(le_label(bucket_index(5.0))) == 1
        assert bucket(le_label(bucket_index(50.0))) == 3
        assert bucket(le_label(bucket_index(5000.0))) == 4
        assert bucket("+Inf") == 4
        assert samples[(
            "repro_serve_http_request_us_count", (("route", "/healthz"),),
        )] == 4
        assert samples[(
            "repro_serve_http_request_us_sum", (("route", "/healthz"),),
        )] == pytest.approx(5105.0)

    def test_label_values_are_escaped(self):
        metrics = MetricsRegistry()
        metrics.inc(labeled("odd.metric", what='say "hi"\\now'))
        samples = parse_exposition(render_exposition(metrics.snapshot()))
        assert samples[(
            "repro_odd_metric_total", (("what", 'say "hi"\\now'),),
        )] == 1

    def test_parse_rejects_malformed_lines(self):
        for text in ("repro_x", 'repro_x{le="} 1', "repro x 1", "repro_x notanum"):
            with pytest.raises(ValueError):
                parse_exposition(text)

    def test_overflow_values_render_under_inf_only(self):
        metrics = MetricsRegistry()
        metrics.observe("huge", 10.0 ** 9)  # past the last bound
        samples = parse_exposition(render_exposition(metrics.snapshot()))
        last = le_label(len(HISTOGRAM_BUCKET_BOUNDS) - 1)
        assert samples[("repro_huge_bucket", (("le", last),))] == 0
        assert samples[("repro_huge_bucket", (("le", "+Inf"),))] == 1


class TestAccessLog:
    def test_sampling_is_deterministic(self, tmp_path):
        log = AccessLog(tmp_path / "a.jsonl", sample=3)
        written = [log.log({"format": ACCESS_LOG_FORMAT, "i": i}) for i in range(10)]
        log.close()
        assert written == [i % 3 == 0 for i in range(10)]
        lines = (tmp_path / "a.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["seq"] for r in records] == [0, 3, 6, 9]
        assert all(r["sample"] == 3 for r in records)

    def test_rotation_keeps_one_backup(self, tmp_path):
        path = tmp_path / "b.jsonl"
        log = AccessLog(path, max_bytes=200)
        for i in range(50):
            log.log({"format": ACCESS_LOG_FORMAT, "i": i})
        log.close()
        backup = tmp_path / "b.jsonl.1"
        assert path.exists() and backup.exists()
        assert backup.stat().st_size <= 200
        # no third file ever appears
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "b.jsonl", "b.jsonl.1",
        ]

    def test_every_line_is_complete_json(self, tmp_path):
        path = tmp_path / "c.jsonl"
        log = AccessLog(path, max_bytes=150)
        for i in range(40):
            log.log({"format": ACCESS_LOG_FORMAT, "i": i})
        log.close()
        assert log.written == 40
        survived = 0
        for source in (path.with_name("c.jsonl.1"), path):
            for line in source.read_text().splitlines():
                json.loads(line)  # a torn line would explode here
                survived += 1
        # rotation keeps exactly one backup: older lines are gone, but
        # whatever survives is whole lines, never fragments
        assert 0 < survived <= log.written


class TestSloWindow:
    def test_rolling_quantiles_and_error_rate(self):
        now = [100.0]
        slo = SloWindow(window_seconds=60, slices=12, clock=lambda: now[0])
        for _ in range(98):
            slo.observe(100.0)
        slo.observe(100_000.0, error=True)
        slo.observe(100_000.0, error=True)
        doc = slo.summary()
        assert doc["requests"] == 100
        assert doc["errors"] == 2
        assert doc["error_rate"] == pytest.approx(0.02)
        assert bucket_index(doc["p50_us"]) == bucket_index(100.0)
        assert bucket_index(doc["p99_us"]) == bucket_index(100_000.0)

    def test_old_slices_expire(self):
        now = [0.0]
        slo = SloWindow(window_seconds=60, slices=12, clock=lambda: now[0])
        slo.observe(50.0, error=True)
        assert slo.summary()["requests"] == 1
        now[0] = 59.0  # still inside the window
        slo.observe(50.0)
        assert slo.summary()["requests"] == 2
        now[0] = 70.0  # the first slice has rolled out
        assert slo.summary() ["requests"] == 1
        assert slo.summary()["errors"] == 0

    def test_empty_window_is_all_zero(self):
        slo = SloWindow(clock=lambda: 42.0)
        doc = slo.summary()
        assert doc["requests"] == 0
        assert doc["p99_us"] == 0.0
        assert doc["error_rate"] == 0.0


class TestServerTelemetry:
    def _record(self, telemetry, status=200, route="/asn/{n}/lives", us=80.0):
        telemetry.record_request(
            method="GET", route=route, path="/asn/5/lives", status=status,
            request_us=us, handler_us=us / 2, bytes_out=64, asn=5,
        )

    def test_back_compat_totals_and_labeled_series(self):
        metrics = MetricsRegistry()
        telemetry = ServerTelemetry(metrics=metrics)
        self._record(telemetry)
        self._record(telemetry, status=404)
        snap = metrics.snapshot()
        assert snap["counters"]["serve.http.requests"] == 2
        assert snap["counters"]["serve.http.errors"] == 1
        assert snap["counters"][
            labeled("serve.http.requests", route="/asn/{n}/lives", status=200)
        ] == 1
        assert snap["histograms"]["serve.http.latency_us"]["count"] == 2
        assert snap["histograms"][
            labeled("serve.http.request_us", route="/asn/{n}/lives")
        ]["count"] == 2

    def test_slo_counts_5xx_only(self):
        telemetry = ServerTelemetry(metrics=MetricsRegistry())
        self._record(telemetry, status=404)
        self._record(telemetry, status=500)
        assert telemetry.slo.summary()["errors"] == 1

    def test_dropped_and_exception_accounting(self):
        metrics = MetricsRegistry()
        telemetry = ServerTelemetry(metrics=metrics)
        telemetry.record_dropped("header-flood")
        telemetry.record_exception("/asn/{n}/lives", RuntimeError("rot"))
        snap = metrics.snapshot()
        assert snap["counters"]["serve.http.dropped"] == 1
        assert snap["counters"][
            labeled("serve.http.dropped", reason="header-flood")
        ] == 1
        assert snap["counters"][labeled(
            "serve.http.exceptions", route="/asn/{n}/lives", type="RuntimeError",
        )] == 1

    def test_status_document_tables(self):
        metrics = MetricsRegistry()
        telemetry = ServerTelemetry(metrics=metrics)
        for _ in range(4):
            self._record(telemetry, us=200.0)
        self._record(telemetry, status=404, us=100.0)
        telemetry.record_dropped("malformed-head")
        doc = telemetry.status_document("deadbeef")
        assert doc["snapshot"] == "deadbeef"
        assert doc["uptime_seconds"] >= 0.0
        assert doc["requests"] == 5
        assert doc["errors"] == 1
        assert doc["dropped"] == {"malformed-head": 1}
        row = doc["routes"]["/asn/{n}/lives"]
        assert row["requests"] == 5
        assert row["errors"] == 1
        assert bucket_index(row["p50_us"]) == bucket_index(200.0)
        assert doc["slo"]["requests"] == 5

    def test_access_log_receives_records(self, tmp_path):
        log = AccessLog(tmp_path / "log.jsonl")
        telemetry = ServerTelemetry(metrics=MetricsRegistry(), access_log=log)
        self._record(telemetry)
        log.close()
        record = json.loads((tmp_path / "log.jsonl").read_text())
        assert record["format"] == ACCESS_LOG_FORMAT
        assert record["route"] == "/asn/{n}/lives"
        assert record["asn"] == 5
        assert record["status"] == 200


class TestRequestQuantiles:
    def test_aggregates_across_routes(self):
        metrics = MetricsRegistry()
        for _ in range(9):
            metrics.observe(labeled("serve.http.request_us", route="/a"), 100.0)
        metrics.observe(labeled("serve.http.request_us", route="/b"), 10_000.0)
        quantiles = request_quantiles(metrics.snapshot())
        assert bucket_index(quantiles["p50_us"]) == bucket_index(100.0)
        assert bucket_index(quantiles["p99_us"]) == bucket_index(10_000.0)

    def test_empty_snapshot_returns_empty(self):
        assert request_quantiles(MetricsRegistry().snapshot()) == {}


def test_le_labels_cover_the_full_grid():
    labels = [le_label(i) for i in range(OVERFLOW_BUCKET + 1)]
    assert labels[-1] == "+Inf"
    assert len(set(labels)) == len(labels)  # distinct after formatting
