"""Tests for the serve store: codec, publish/append, fault recovery.

The load-bearing property is byte-identity: a store reached by
``append_days`` must be indistinguishable — file for file, byte for
byte, including the snapshot digest — from one fully rebuilt over the
same day range.  Everything the query layer serves rests on that.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.taxonomy import Category
from repro.lifetimes.records import AdminLifetime, BgpLifetime
from repro.runtime.cache import ArtifactCache, cache_key
from repro.runtime.faults import FaultInjector, FaultSpec
from repro.serve.append import append_days
from repro.serve.index import StoreIndex
from repro.serve.store import (
    INDEX_NAME,
    MANIFEST_NAME,
    AsnRecord,
    ServeStoreError,
    StoreMeta,
    build_store,
    config_from_fingerprint,
    decode_shard,
    encode_shard,
    load_bytes_verified,
    plan_shards,
    store_bytes_verified,
    store_publisher,
)
from repro.simulation.config import WorldConfig, tiny
from repro.simulation.datasets import build_datasets
from repro.timeline.intervals import Interval, IntervalSet


def _record(asn=64500, **overrides) -> AsnRecord:
    record = AsnRecord(asn=asn)
    record.admin = [AdminLifetime(
        asn=asn, start=100, end=900, reg_date=90,
        registries=("ripencc", "arin"), cc="DE", org_id="örg-ü1",
        open_ended=True, via_nir=False, left_censored=True,
    )]
    record.op = [BgpLifetime(asn=asn, start=150, end=400, open_ended=False)]
    record.admin_cats = [Category.PARTIAL_OVERLAP]
    record.op_cats = [Category.PARTIAL_OVERLAP]
    record.observed = IntervalSet([Interval(150, 300), Interval(320, 400)])
    record.single = IntervalSet([Interval(301, 310)])
    for key, value in overrides.items():
        setattr(record, key, value)
    return record


class TestShardCodec:
    def test_roundtrip_preserves_everything(self):
        records = [_record(64500), _record(64501, admin=[], admin_cats=[])]
        decoded = decode_shard(encode_shard(records))
        assert decoded == records

    def test_non_ascii_strings_survive(self):
        decoded = decode_shard(encode_shard([_record()]))
        assert decoded[0].admin[0].org_id == "örg-ü1"

    def test_flags_roundtrip_independently(self):
        for flags in range(8):
            life = AdminLifetime(
                asn=1, start=1, end=2, reg_date=1, registries=("x",),
                open_ended=bool(flags & 1), via_nir=bool(flags & 2),
                left_censored=bool(flags & 4),
            )
            record = _record(admin=[life], admin_cats=[Category.UNUSED])
            got = decode_shard(encode_shard([record])).pop().admin[0]
            assert (got.open_ended, got.via_nir, got.left_censored) == (
                life.open_ended, life.via_nir, life.left_censored)

    def test_encoding_is_deterministic(self):
        assert encode_shard([_record()]) == encode_shard([_record()])

    def test_rejects_non_json(self):
        with pytest.raises(ServeStoreError, match="not valid JSON"):
            decode_shard(b"\xff\xfe not json")

    def test_rejects_wrong_format_tag(self):
        blob = json.dumps({"format": "something-else"}).encode()
        with pytest.raises(ServeStoreError, match="serve-shard/v1"):
            decode_shard(blob)

    def test_rejects_malformed_rows(self):
        doc = json.loads(encode_shard([_record()]).decode())
        doc["admin"][0][0] = [1, 2]  # row truncated mid-fields
        with pytest.raises(ServeStoreError, match="malformed shard row"):
            decode_shard(json.dumps(doc).encode())


class TestStoreMeta:
    def test_roundtrip(self):
        meta = StoreMeta(start=10, end=99, timeout=14, min_peers=3,
                         min_corroboration=2, shard_size=7)
        assert StoreMeta.from_json_dict(meta.to_json_dict()) == meta

    def test_rejects_missing_fields(self):
        with pytest.raises(ServeStoreError, match="malformed store meta"):
            StoreMeta.from_json_dict({"start": 1})


class TestPlanShards:
    def test_boundaries_cover_exactly(self):
        plan = plan_shards(list(range(10)), shard_size=4)
        assert plan == [("shard-00000.json", 0, 3),
                        ("shard-00001.json", 4, 7),
                        ("shard-00002.json", 8, 9)]

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            plan_shards([1, 2], shard_size=0)


@pytest.fixture(scope="module")
def bundle():
    return build_datasets(tiny(seed=11))


def _window(config):
    end = config.end_day
    return end - 59, end


class TestBuildAndAppend:
    def test_append_is_byte_identical_to_rebuild(self, bundle, tmp_path):
        config = bundle.world.config
        start, end = _window(config)
        full, inc = tmp_path / "full", tmp_path / "inc"
        doc_full = build_store(full, bundle.world, bundle.admin_lives,
                               start=start, end=end, faults=None)
        build_store(inc, bundle.world, bundle.admin_lives,
                    start=start, end=end - 3, faults=None)
        doc_inc = append_days(inc, bundle.world, 3, faults=None)
        assert doc_full == doc_inc
        names = sorted(p.name for p in full.iterdir())
        assert names == sorted(p.name for p in inc.iterdir())
        for name in names:
            assert (full / name).read_bytes() == (inc / name).read_bytes(), name

    def test_append_one_day_at_a_time_matches_one_shot(self, bundle, tmp_path):
        config = bundle.world.config
        start, end = _window(config)
        a, b = tmp_path / "oneshot", tmp_path / "daily"
        build_store(a, bundle.world, bundle.admin_lives,
                    start=start, end=end - 2, faults=None)
        append_days(a, bundle.world, 2, faults=None)
        build_store(b, bundle.world, bundle.admin_lives,
                    start=start, end=end - 2, faults=None)
        append_days(b, bundle.world, 1, faults=None)
        append_days(b, bundle.world, 1, faults=None)
        for path in sorted(a.iterdir()):
            assert path.read_bytes() == (b / path.name).read_bytes()

    def test_republish_is_idempotent(self, bundle, tmp_path):
        config = bundle.world.config
        start, end = _window(config)
        doc1 = build_store(tmp_path, bundle.world, bundle.admin_lives,
                           start=start, end=end, faults=None)
        mtimes = {p.name: p.stat().st_mtime_ns for p in tmp_path.iterdir()}
        doc2 = build_store(tmp_path, bundle.world, bundle.admin_lives,
                           start=start, end=end, faults=None)
        assert doc1 == doc2
        # unchanged files were recognized and not republished
        assert {p.name: p.stat().st_mtime_ns for p in tmp_path.iterdir()} == mtimes

    def test_append_rejects_foreign_world(self, bundle, tmp_path):
        config = bundle.world.config
        start, end = _window(config)
        build_store(tmp_path, bundle.world, bundle.admin_lives,
                    start=start, end=end - 2, faults=None)
        other = build_datasets(WorldConfig(seed=99, scale=0.004)).world
        with pytest.raises(ServeStoreError, match="config"):
            append_days(tmp_path, other, 1, faults=None)

    def test_append_rejects_running_past_world_end(self, bundle, tmp_path):
        config = bundle.world.config
        start, end = _window(config)
        build_store(tmp_path, bundle.world, bundle.admin_lives,
                    start=start, end=end, faults=None)
        with pytest.raises(ServeStoreError, match="last simulated day"):
            append_days(tmp_path, bundle.world, 1, faults=None)

    def test_append_rejects_nonpositive_days(self, bundle, tmp_path):
        with pytest.raises(ServeStoreError, match="at least one day"):
            append_days(tmp_path, bundle.world, 0, faults=None)

    def test_snapshot_registers_in_run_index(self, bundle, tmp_path):
        from repro.runtime.runs import resolve_run

        config = bundle.world.config
        start, end = _window(config)
        index_path = tmp_path / "runs.jsonl"
        doc = build_store(tmp_path / "store", bundle.world, bundle.admin_lives,
                          start=start, end=end, faults=None,
                          runs_index=index_path)
        entry = resolve_run(index_path, doc["digest"][:10])
        assert entry["digest"] == doc["digest"]
        assert entry["artifacts"]["store"].endswith(INDEX_NAME)

    def test_config_fingerprint_roundtrip(self, bundle, tmp_path):
        config = bundle.world.config
        start, end = _window(config)
        build_store(tmp_path, bundle.world, bundle.admin_lives,
                    start=start, end=end, faults=None)
        manifest = json.loads(
            (tmp_path / MANIFEST_NAME).read_text(encoding="utf-8")
        )
        rebuilt = config_from_fingerprint(manifest["config"])
        assert cache_key(config=rebuilt) == cache_key(config=config)

    def test_config_fingerprint_rejects_garbage(self):
        with pytest.raises(ServeStoreError):
            config_from_fingerprint({"__class__": "SomethingElse"})


class TestFaultRecovery:
    """Satellite coverage: torn store publishes must heal or fail typed."""

    def test_publish_retries_through_torn_write(self, tmp_path):
        injector = FaultInjector(
            [FaultSpec("cache:write", "torn-write", rate=1.0, max_fires=2)]
        )
        cache = store_publisher(tmp_path, faults=injector)
        store_bytes_verified(cache, "store.json", b'{"x": 1}\n')
        assert injector.fired() >= 1
        assert load_bytes_verified(cache, "store.json") == b'{"x": 1}\n'

    def test_publish_retries_through_failed_rename(self, tmp_path):
        injector = FaultInjector(
            [FaultSpec("cache:replace", "oserror", rate=1.0, max_fires=2)]
        )
        cache = store_publisher(tmp_path, faults=injector)
        store_bytes_verified(cache, "shard-00000.json", b"payload")
        assert load_bytes_verified(cache, "shard-00000.json") == b"payload"

    def test_publish_raises_typed_error_when_budget_exhausted(self, tmp_path):
        injector = FaultInjector(
            [FaultSpec("cache:write", "truncate", rate=1.0, max_fires=None)]
        )
        cache = store_publisher(tmp_path, faults=injector)
        with pytest.raises(ServeStoreError, match="could not publish"):
            store_bytes_verified(cache, "store.json", b"payload", retries=3)

    def test_load_raises_typed_error_on_missing_file(self, tmp_path):
        cache = store_publisher(tmp_path, faults=None)
        with pytest.raises(ServeStoreError, match="missing"):
            load_bytes_verified(cache, "store.json", retries=2)

    def test_corrupt_payload_on_disk_is_quarantined_not_served(self, tmp_path):
        cache = store_publisher(tmp_path, faults=None)
        store_bytes_verified(cache, "shard-00000.json", b"good bytes")
        (tmp_path / "shard-00000.json").write_bytes(b"flipped")
        assert cache.load_named("shard-00000.json") is None  # quarantined
        with pytest.raises(ServeStoreError):
            load_bytes_verified(cache, "shard-00000.json", retries=2)

    def test_torn_store_heals_end_to_end(self, bundle, tmp_path):
        """A full publish under injected torn writes still yields a store
        that opens clean and matches a fault-free build byte for byte."""
        config = bundle.world.config
        start, end = _window(config)
        injector = FaultInjector(
            [FaultSpec("cache:write", "torn-write", rate=0.3, max_fires=4)],
            seed=7,
        )
        faulty, clean = tmp_path / "faulty", tmp_path / "clean"
        build_store(faulty, bundle.world, bundle.admin_lives,
                    start=start, end=end, faults=injector)
        build_store(clean, bundle.world, bundle.admin_lives,
                    start=start, end=end, faults=None)
        assert injector.fired() >= 1
        for path in sorted(clean.iterdir()):
            assert path.read_bytes() == (faulty / path.name).read_bytes()
        StoreIndex.open(faulty, faults=None)  # opens and validates


class TestNamedCacheEntries:
    """The cache machinery the store rides on (satellite 3)."""

    def test_store_and_load_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path, faults=None)
        cache.store_named("store.json", b"hello")
        assert cache.load_named("store.json") == b"hello"
        assert (tmp_path / "store.json").is_file()
        assert (tmp_path / "store.json.manifest.json").is_file()

    def test_overwrite_replaces_atomically(self, tmp_path):
        cache = ArtifactCache(tmp_path, faults=None)
        cache.store_named("a.json", b"one")
        cache.store_named("a.json", b"two")
        assert cache.load_named("a.json") == b"two"

    def test_missing_entry_is_none(self, tmp_path):
        assert ArtifactCache(tmp_path, faults=None).load_named("nope") is None

    def test_rejects_path_escapes(self, tmp_path):
        cache = ArtifactCache(tmp_path, faults=None)
        for name in ("../evil", "a/b", "", ".hidden"):
            with pytest.raises(ValueError):
                cache.store_named(name, b"x")

    def test_no_temp_wreckage_after_faulty_publish(self, tmp_path):
        injector = FaultInjector(
            [FaultSpec("cache:write", "disk-full", rate=1.0, max_fires=1)]
        )
        cache = ArtifactCache(tmp_path, faults=injector, strict_store=False)
        cache.store_named("x.json", b"payload")  # non-strict: swallowed
        leftovers = [p.name for p in tmp_path.iterdir() if ".tmp." in p.name]
        assert leftovers == []
