"""Table-engine restoration: equivalence against the object oracle.

The ``delegation-table`` engine's contract (see DESIGN.md §9) is not
"close enough" — it is byte-identity: same stints, same dict ordering,
same report counters, same ledger rows as the object engine, under
every backend.  These tests pin that contract per §3.1 step with
targeted defect overlays, under hypothesis-drawn defect geometry, and
end to end on simulated worlds with the full pitfall injector.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asn import IanaLedger
from repro.restoration import restore_archive
from repro.restoration.table import DelegationTable, obtain_table
from repro.restoration.view import build_registry_view
from repro.rir import (
    ERX_PLACEHOLDER_DATE,
    EXTENDED,
    REGULAR,
    ArchiveOverlay,
    DelegationArchive,
    DelegationRecord,
    Registry,
    Status,
    default_policy,
)
from repro.rir.pitfalls import PitfallConfig, PitfallInjector
from repro.runtime import (
    ArtifactCache,
    PipelineStats,
    build_ledger,
    check_ledger,
    reset_metrics,
)
from repro.simulation.config import tiny
from repro.simulation.world import WorldSimulator
from repro.timeline import Interval, from_iso

START = from_iso("2010-05-01")
END = from_iso("2012-05-01")


def fresh_world():
    ledger = IanaLedger()
    ripe = Registry("ripencc", default_policy("ripencc"), ledger)
    arin = Registry("arin", default_policy("arin"), ledger)
    asns = {}
    asns["stable"] = ripe.allocate(START, "ORG-1", "IT", thirty_two_bit=False).asn
    asns["dealloc"] = ripe.allocate(START, "ORG-2", "FR", thirty_two_bit=False).asn
    ripe.deallocate(START + 200, asns["dealloc"])
    asns["arin"] = arin.allocate(START, "ORG-3", "US", thirty_two_bit=False).asn
    return ledger, {"ripencc": ripe, "arin": arin}, asns


def assert_restores_equal(registries, overlay=None, **kw):
    """Both engines over one archive: outputs must match exactly."""
    archive = DelegationArchive(registries, END, overlay)
    obj_restored, obj_report = restore_archive(archive, engine="object", **kw)
    tbl_restored, tbl_report = restore_archive(archive, engine="table", **kw)
    assert tbl_restored.stints == obj_restored.stints
    assert list(tbl_restored.stints) == list(obj_restored.stints)
    for registry in obj_restored.views:
        assert (
            tbl_restored.views[registry].stints
            == obj_restored.views[registry].stints
        )
        assert list(tbl_restored.views[registry].stints) == list(
            obj_restored.views[registry].stints
        )
    assert tbl_report.summary() == obj_report.summary()
    return tbl_restored, tbl_report


def injected_archive(seed):
    """A simulated world's archive with the full §3 defect overlay."""
    world = WorldSimulator(tiny(seed=seed)).run()
    clean = DelegationArchive(world.registries, world.config.end_day)
    windows = {w.source: (w.first_day, w.last_day) for w in clean.sources()}
    injector = PitfallInjector(
        world.registries, world.config.end_day,
        seed=seed + 6, config=PitfallConfig(),
    )
    overlay = injector.inject_all(windows, world.transfers)
    archive = DelegationArchive(world.registries, world.config.end_day, overlay)
    return world, archive


class TestContainerRoundTrip:
    def test_bytes_round_trip_is_stable(self):
        _, registries, _ = fresh_world()
        archive = DelegationArchive(registries, END)
        table = DelegationTable.from_archive(archive)
        blob = table.to_bytes()
        assert DelegationTable.from_bytes(blob).to_bytes() == blob

    def test_file_mmap_matches_in_memory(self, tmp_path):
        _, registries, asns = fresh_world()
        archive = DelegationArchive(registries, END)
        table = DelegationTable.from_archive(archive)
        path = tmp_path / "delegs.dtab"
        table.to_file(path)
        mapped = DelegationTable.from_file(path)
        assert mapped.registries() == table.registries()
        for registry in table.registries():
            a = mapped.build_view(registry)
            b = table.build_view(registry)
            assert a.stints == b.stints
            assert list(a.stints) == list(b.stints)
            assert a.regular_stints == b.regular_stints
            assert a.unavailable_days == b.unavailable_days
        # the mapped view matches the object construction too
        view = mapped.build_view("ripencc")
        oracle = build_registry_view(archive, "ripencc")
        assert view.stints == oracle.stints
        assert list(view.stints) == list(oracle.stints)
        assert asns["stable"] in view.stints

    def test_rejects_foreign_bytes(self):
        with pytest.raises(ValueError):
            DelegationTable.from_bytes(b"not a container" * 4)


class TestViewAssembly:
    def test_era_transition_view(self):
        """ripencc spans the regular->extended transition; arin (whose
        extended feed starts after END) is regular-era only."""
        _, registries, _ = fresh_world()
        archive = DelegationArchive(registries, END)
        table = DelegationTable.from_archive(archive)
        for registry in ("ripencc", "arin"):
            view = table.build_view(registry)
            oracle = build_registry_view(archive, registry)
            assert view.stints == oracle.stints
            assert list(view.stints) == list(oracle.stints)
            assert view.regular_stints == oracle.regular_stints
            assert view.unavailable_days == oracle.unavailable_days
            assert view.regular_unavailable_days == oracle.regular_unavailable_days
            assert view.extended_start == oracle.extended_start
            assert view.first_day == oracle.first_day
            assert view.last_day == oracle.last_day


class TestStepEquivalence:
    def test_clean_archive(self):
        ledger, registries, _ = fresh_world()
        assert_restores_equal(registries, ledger=ledger)

    def test_unavailable_day_gaps(self):
        """Step (i): gap exactly covered by missing-file days."""
        ledger, registries, asns = fresh_world()
        overlay = ArchiveOverlay()
        for d in range(START + 50, START + 53):
            overlay.mark_missing(("ripencc", EXTENDED), d)
            overlay.mark_missing(("ripencc", REGULAR), d)
        overlay.drop_record(("ripencc", EXTENDED), asns["stable"],
                            Interval(START + 50, START + 52))
        _, report = assert_restores_equal(registries, overlay, ledger=ledger)
        assert report.summary()["i-missing-file-gaps"]["ripencc_gaps_bridged"] >= 1

    def test_extended_drop_recovery(self):
        """Step (ii): extended-era drop recoverable from the regular feed."""
        ledger, registries, asns = fresh_world()
        overlay = ArchiveOverlay()
        overlay.drop_record(("ripencc", EXTENDED), asns["stable"],
                            Interval(START + 100, START + 102))
        _, report = assert_restores_equal(registries, overlay, ledger=ledger)
        assert report.summary()["ii-missing-records"]["ripencc_records_recovered"] >= 1

    def test_sameday_divergence(self):
        """Step (iii): a stale regular day diverges from the extended feed."""
        ledger, registries, _ = fresh_world()
        overlay = ArchiveOverlay()
        overlay.mark_stale(("ripencc", REGULAR), START + 200)
        _, report = assert_restores_equal(registries, overlay, ledger=ledger)
        assert report.summary()["iii-same-day-divergence"].get(
            "ripencc_divergent_days", 0) >= 1

    def test_duplicate_records(self):
        """Step (iv): contradictory overlapping ghost row."""
        ledger, registries, asns = fresh_world()
        overlay = ArchiveOverlay()
        ghost = DelegationRecord("ripencc", "", asns["stable"], None, Status.RESERVED)
        overlay.add_record(("ripencc", EXTENDED),
                           Interval(START + 30, START + 120), ghost)
        _, report = assert_restores_equal(registries, overlay, ledger=ledger)
        assert report.summary()["iv-duplicate-records"][
            "ripencc_asns_deduplicated"] == 1

    def test_registration_dates(self):
        """Step (v): future dates and ERX placeholders, with reference."""
        ledger, registries, asns = fresh_world()
        overlay = ArchiveOverlay()
        for kind in (REGULAR, EXTENDED):
            overlay.override_date(("ripencc", kind), asns["stable"],
                                  Interval(START, START + 10), START + 5)
            overlay.override_date(("ripencc", kind), asns["dealloc"],
                                  Interval(START + 50, END), ERX_PLACEHOLDER_DATE)
        _, report = assert_restores_equal(
            registries, overlay, ledger=ledger,
            erx_reference={asns["dealloc"]: from_iso("1995-03-03")},
        )
        assert report.summary()["v-registration-dates"][
            "ripencc_future_dates_fixed"] >= 1

    def test_inter_rir_move(self):
        """Step (vi): a transfer with a stale source-registry tail."""
        ledger, registries, _ = fresh_world()
        ripe, arin = registries["ripencc"], registries["arin"]
        alloc = arin.allocate(START + 10, "ORG-T", "US", thirty_two_bit=False)
        transfer_day = START + 300
        out = arin.transfer_out(transfer_day, alloc.asn)
        ripe.transfer_in(transfer_day, out)
        overlay = ArchiveOverlay()
        stale = DelegationRecord(
            "arin", "US", alloc.asn, alloc.reg_date, Status.ALLOCATED
        )
        overlay.add_record(("arin", REGULAR),
                           Interval(transfer_day, transfer_day + 90), stale)
        _, report = assert_restores_equal(registries, overlay, ledger=ledger)
        assert report.summary()["vi-inter-rir"]["stale_transfer_tails_trimmed"] >= 1


@settings(max_examples=8, deadline=None)
@given(offset=st.integers(min_value=20, max_value=600),
       length=st.integers(min_value=1, max_value=45))
def test_drop_geometry_equivalence(offset, length):
    """Any drop geometry — straddling the max-gap boundary, the era
    transition, the window edges — restores identically on both engines."""
    ledger, registries, asns = fresh_world()
    overlay = ArchiveOverlay()
    overlay.drop_record(("ripencc", EXTENDED), asns["stable"],
                        Interval(START + offset, START + offset + length - 1))
    assert_restores_equal(registries, overlay, ledger=ledger)


@settings(max_examples=3, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_world_equivalence(seed):
    """Full pitfall-injected worlds restore identically on both engines."""
    world, archive = injected_archive(seed)
    obj = restore_archive(
        archive, erx_reference=world.erx_reference, ledger=world.ledger,
        engine="object",
    )
    tbl = restore_archive(
        archive, erx_reference=world.erx_reference, ledger=world.ledger,
        engine="table",
    )
    assert tbl[0].stints == obj[0].stints
    assert list(tbl[0].stints) == list(obj[0].stints)
    assert tbl[1].summary() == obj[1].summary()


def test_table_serial_process_byte_identical():
    """The table path's descriptor fan-out is byte-deterministic: the
    pool run pickles to exactly the serial run's bytes."""
    world, archive = injected_archive(2021)
    kw = dict(erx_reference=world.erx_reference, ledger=world.ledger,
              engine="table")
    serial, serial_report = restore_archive(archive, **kw)
    with_pool, pool_report = restore_archive(archive, executor=2, **kw)
    assert pickle.dumps(with_pool.stints) == pickle.dumps(serial.stints)
    assert pool_report.summary() == serial_report.summary()


def test_table_cache_round_trip(tmp_path):
    """A cache-seeded container re-opens (mmap) to identical output,
    and the explicit table file serves a third, fresh engine run."""
    world, archive = injected_archive(7)
    key_parts = {"probe": "table-cache-round-trip"}
    cache = ArtifactCache(tmp_path / "cache", faults=None)
    path = tmp_path / "delegs.dtab"
    kw = dict(erx_reference=world.erx_reference, ledger=world.ledger,
              engine="table", cache=cache, cache_key_parts=key_parts)
    cold, _ = restore_archive(archive, table_path=path, **kw)
    assert path.exists()
    warm_stats = PipelineStats()
    warm, _ = restore_archive(archive, table_path=path, stats=warm_stats, **kw)
    spans = {s.name: s for s in warm_stats.tracer.spans}
    assert spans["restore:table"].attrs["source"] == "mmap"
    assert warm.stints == cold.stints
    assert list(warm.stints) == list(cold.stints)
    cached_stats = PipelineStats()
    cached, _ = restore_archive(archive, stats=cached_stats, **kw)
    spans = {s.name: s for s in cached_stats.tracer.spans}
    assert spans["restore:table"].attrs["source"] == "cache"
    assert cached.stints == cold.stints


def test_table_obtain_sources(tmp_path):
    """obtain_table priority: existing file, verified cache entry, encode."""
    _, registries, _ = fresh_world()
    archive = DelegationArchive(registries, END)
    cache = ArtifactCache(tmp_path / "cache", faults=None)
    parts = {"probe": "obtain"}
    _, source, handle = obtain_table(
        archive, cache=cache, cache_key_parts=parts)
    assert source == "encoded"
    _, source, handle = obtain_table(
        archive, cache=cache, cache_key_parts=parts)
    assert source == "cache" and handle[0] == "path"
    path = tmp_path / "explicit.dtab"
    table = DelegationTable.from_archive(archive)
    table.to_file(path)
    _, source, handle = obtain_table(archive, table_path=path)
    assert source == "mmap" and handle == ("path", str(path))


def test_table_ledger_closure():
    """Every restoration boundary on the table path conserves rows."""
    world, archive = injected_archive(11)
    registry = reset_metrics()
    restore_archive(
        archive, erx_reference=world.erx_reference, ledger=world.ledger,
        engine="table",
    )
    doc = build_ledger(registry)
    assert check_ledger(doc) == []
    stages = {row["stage"] for row in doc["stages"]}
    assert any(s.startswith("restoration/") for s in stages)
    # all five per-registry steps and the join barrier report boundaries
    for step in ("iii-same-day-divergence", "ii-missing-records",
                 "i-missing-file-gaps", "iv-duplicate-records",
                 "v-registration-dates", "vi-inter-rir"):
        assert any(f"/{step}/" in s for s in stages), step
