"""Unit and property-based tests for repro.timeline.intervals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timeline import Interval, IntervalSet


class TestInterval:
    def test_duration_inclusive(self):
        assert Interval(10, 10).duration == 1
        assert Interval(10, 19).duration == 10

    def test_rejects_reversed(self):
        with pytest.raises(ValueError):
            Interval(5, 4)

    def test_contains_day(self):
        iv = Interval(10, 20)
        assert 10 in iv and 20 in iv and 15 in iv
        assert 9 not in iv and 21 not in iv

    def test_contains_interval(self):
        assert Interval(10, 20).contains_interval(Interval(10, 20))
        assert Interval(10, 20).contains_interval(Interval(12, 18))
        assert not Interval(10, 20).contains_interval(Interval(9, 18))
        assert not Interval(10, 20).contains_interval(Interval(12, 21))

    def test_overlaps(self):
        assert Interval(10, 20).overlaps(Interval(20, 30))
        assert not Interval(10, 20).overlaps(Interval(21, 30))
        assert Interval(10, 20).overlaps(Interval(5, 10))

    def test_touches_adjacent(self):
        assert Interval(10, 20).touches(Interval(21, 30))
        assert not Interval(10, 20).touches(Interval(22, 30))

    def test_intersection(self):
        assert Interval(10, 20).intersection(Interval(15, 25)) == Interval(15, 20)
        assert Interval(10, 20).intersection(Interval(21, 25)) is None

    def test_gap_to(self):
        assert Interval(10, 20).gap_to(Interval(25, 30)) == 4
        assert Interval(25, 30).gap_to(Interval(10, 20)) == 4
        assert Interval(10, 20).gap_to(Interval(21, 30)) == 0
        assert Interval(10, 20).gap_to(Interval(15, 30)) == 0

    def test_shift(self):
        assert Interval(10, 20).shift(5) == Interval(15, 25)
        assert Interval(10, 20).shift(-5) == Interval(5, 15)

    def test_clamp(self):
        assert Interval(10, 20).clamp(12, 30) == Interval(12, 20)
        assert Interval(10, 20).clamp(21, 30) is None

    def test_ordering_by_start(self):
        assert Interval(1, 9) < Interval(2, 3)


class TestIntervalSetBasics:
    def test_empty(self):
        s = IntervalSet()
        assert not s
        assert s.total_days == 0
        assert s.span is None
        assert list(s) == []

    def test_merges_overlapping_on_construction(self):
        s = IntervalSet([Interval(10, 20), Interval(15, 25), Interval(40, 41)])
        assert s.intervals == (Interval(10, 25), Interval(40, 41))

    def test_merges_adjacent(self):
        s = IntervalSet([Interval(10, 20), Interval(21, 30)])
        assert s.intervals == (Interval(10, 30),)

    def test_canonical_equality(self):
        a = IntervalSet([Interval(1, 5), Interval(6, 9)])
        b = IntervalSet([Interval(1, 9)])
        assert a == b

    def test_from_days(self):
        s = IntervalSet.from_days([5, 1, 2, 3, 9, 10, 3])
        assert s.intervals == (Interval(1, 3), Interval(5, 5), Interval(9, 10))

    def test_from_days_empty(self):
        assert not IntervalSet.from_days([])

    def test_membership_binary_search(self):
        s = IntervalSet([Interval(1, 3), Interval(10, 12), Interval(100, 200)])
        for d in (1, 3, 11, 150, 200):
            assert d in s
        for d in (0, 4, 9, 13, 99, 201):
            assert d not in s

    def test_span_and_total(self):
        s = IntervalSet([Interval(1, 3), Interval(10, 12)])
        assert s.span == Interval(1, 12)
        assert s.total_days == 6


class TestIntervalSetAlgebra:
    def test_union(self):
        a = IntervalSet([Interval(1, 5)])
        b = IntervalSet([Interval(4, 10), Interval(20, 22)])
        assert a.union(b).intervals == (Interval(1, 10), Interval(20, 22))

    def test_intersection(self):
        a = IntervalSet([Interval(1, 10), Interval(20, 30)])
        b = IntervalSet([Interval(5, 25)])
        assert a.intersection(b).intervals == (Interval(5, 10), Interval(20, 25))

    def test_difference(self):
        a = IntervalSet([Interval(1, 10)])
        b = IntervalSet([Interval(3, 4), Interval(7, 20)])
        assert a.difference(b).intervals == (Interval(1, 2), Interval(5, 6))

    def test_difference_no_overlap(self):
        a = IntervalSet([Interval(1, 5)])
        b = IntervalSet([Interval(10, 20)])
        assert a.difference(b) == a

    def test_gaps(self):
        s = IntervalSet([Interval(1, 3), Interval(7, 8), Interval(12, 12)])
        assert s.gaps().intervals == (Interval(4, 6), Interval(9, 11))
        assert s.gap_lengths() == [3, 3]

    def test_overlap_days_and_coverage(self):
        s = IntervalSet([Interval(1, 10), Interval(21, 30)])
        window = Interval(6, 25)
        assert s.overlap_days(window) == 10
        assert s.coverage_of(window) == pytest.approx(0.5)

    def test_clamp(self):
        s = IntervalSet([Interval(1, 10), Interval(21, 30)])
        assert s.clamp(5, 24).intervals == (Interval(5, 10), Interval(21, 24))

    def test_merge_gaps_timeout_semantics(self):
        # gaps of <= max_gap merge into one operational life (paper §4.2)
        s = IntervalSet([Interval(0, 10), Interval(41, 50), Interval(82, 90)])
        merged = s.merge_gaps(30)
        assert merged.intervals == (Interval(0, 50), Interval(82, 90))

    def test_merge_gaps_zero_only_merges_adjacent(self):
        s = IntervalSet([Interval(0, 10), Interval(12, 20)])
        assert s.merge_gaps(0).intervals == (Interval(0, 10), Interval(12, 20))
        assert s.merge_gaps(1).intervals == (Interval(0, 20),)

    def test_merge_gaps_rejects_negative(self):
        with pytest.raises(ValueError):
            IntervalSet().merge_gaps(-1)

    def test_days_iteration(self):
        s = IntervalSet([Interval(1, 3), Interval(6, 6)])
        assert list(s.days()) == [1, 2, 3, 6]


# -- property-based tests against a brute-force day-set model ------------

day_sets = st.sets(st.integers(min_value=0, max_value=200), max_size=40)


@settings(max_examples=200)
@given(day_sets, day_sets)
def test_union_matches_set_model(a_days, b_days):
    a, b = IntervalSet.from_days(a_days), IntervalSet.from_days(b_days)
    assert set(a.union(b).days()) == a_days | b_days


@settings(max_examples=200)
@given(day_sets, day_sets)
def test_intersection_matches_set_model(a_days, b_days):
    a, b = IntervalSet.from_days(a_days), IntervalSet.from_days(b_days)
    assert set(a.intersection(b).days()) == a_days & b_days


@settings(max_examples=200)
@given(day_sets, day_sets)
def test_difference_matches_set_model(a_days, b_days):
    a, b = IntervalSet.from_days(a_days), IntervalSet.from_days(b_days)
    assert set(a.difference(b).days()) == a_days - b_days


@settings(max_examples=200)
@given(day_sets)
def test_from_days_roundtrip(days):
    assert set(IntervalSet.from_days(days).days()) == days


@settings(max_examples=200)
@given(day_sets, st.integers(min_value=0, max_value=50))
def test_merge_gaps_preserves_days_and_bounds(days, max_gap):
    s = IntervalSet.from_days(days)
    merged = s.merge_gaps(max_gap)
    # merging never loses days and never extends beyond the span
    assert days <= set(merged.days())
    if days:
        assert merged.span == s.span
    # all remaining gaps exceed max_gap
    assert all(g > max_gap for g in merged.gap_lengths())


#: Raw (possibly overlapping, unsorted) interval endpoint pairs — wider
#: spans than day_sets, to exercise the union fast path's merge order.
interval_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=0, max_value=60),
    ).map(lambda p: Interval(p[0], p[0] + p[1])),
    max_size=12,
)


@settings(max_examples=200)
@given(interval_lists, interval_lists)
def test_union_linear_merge_matches_normalized_construction(a_ivs, b_ivs):
    # union() takes the two-pointer sorted-merge fast path; building one
    # IntervalSet from the concatenated raw intervals takes the full
    # sort-and-normalize path.  Canonical equality (same interval tuples,
    # not just the same day membership) must hold between the two.
    a, b = IntervalSet(a_ivs), IntervalSet(b_ivs)
    assert list(a.union(b)) == list(IntervalSet(a_ivs + b_ivs))


@settings(max_examples=200)
@given(interval_lists, st.integers(min_value=0, max_value=5000),
       st.integers(min_value=0, max_value=60))
def test_add_matches_normalized_construction(ivs, start, length):
    iv = Interval(start, start + length)
    s = IntervalSet(ivs)
    assert list(s.add(iv)) == list(IntervalSet(ivs + [iv]))


@settings(max_examples=200)
@given(day_sets)
def test_gaps_are_complement_within_span(days):
    s = IntervalSet.from_days(days)
    if not s:
        return
    span = s.span
    expected = set(range(span.start, span.end + 1)) - days
    assert set(s.gaps().days()) == expected
