"""Cross-cutting property-based and robustness tests of the pipeline.

These exercise whole-pipeline invariants over randomized worlds and
defect loads: lifetimes are disjoint and ordered, taxonomy partitions
everything exactly once, restoration never leaves overlapping rows,
heavier defect loads never crash the pipeline.
"""

import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Category, classify
from repro.core.report import render_report
from repro.rir import PitfallConfig
from repro.runtime import ArtifactCache, dumps_with_gc_paused
from repro.simulation import WorldConfig, build_datasets, tiny

# building a world is ~1s; keep hypothesis example counts low
WORLD_SETTINGS = dict(max_examples=5, deadline=None)


@pytest.fixture(scope="module")
def bundle():
    return build_datasets(tiny(seed=77))


class TestLifetimeInvariants:
    def test_admin_lives_disjoint_and_ordered(self, bundle):
        for asn, lives in bundle.admin_lives.items():
            for a, b in zip(lives, lives[1:]):
                assert a.end < b.start, asn
            for life in lives:
                assert life.duration >= 1

    def test_op_lives_disjoint_and_spaced(self, bundle):
        for asn, lives in bundle.op_lives.items():
            for a, b in zip(lives, lives[1:]):
                assert b.start - a.end - 1 > 30, asn  # the timeout

    def test_open_ended_iff_reaching_window_end(self, bundle):
        end = bundle.world.end_day
        for lives in bundle.admin_lives.values():
            for life in lives:
                assert life.open_ended == (life.end >= end)

    def test_admin_lives_inside_window_unless_censored(self, bundle):
        start = bundle.world.config.start_day
        for lives in bundle.admin_lives.values():
            for life in lives:
                if not life.left_censored:
                    # observation cannot precede the simulation start
                    assert life.start >= start - 31  # publication lag

    def test_left_censored_lives_backdated(self, bundle):
        censored = [
            life
            for lives in bundle.admin_lives.values()
            for life in lives
            if life.left_censored
        ]
        assert censored  # historical seeds guarantee some
        for life in censored:
            assert life.start == life.reg_date

    def test_restored_stints_sorted(self, bundle):
        for asn, stints in bundle.restored.stints.items():
            starts = [s.start for s in stints]
            assert starts == sorted(starts), asn


class TestTaxonomyPartition:
    def test_every_lifetime_assigned_once(self, bundle):
        result = classify(bundle.admin_lives, bundle.op_lives)
        admin_total = sum(len(v) for v in bundle.admin_lives.values())
        op_total = sum(len(v) for v in bundle.op_lives.values())
        assert len(result.admin_assignment) == admin_total
        assert len(result.op_assignment) == op_total
        assert sum(result.admin_counts.values()) == admin_total
        assert sum(result.op_counts.values()) == op_total

    def test_unused_lives_have_no_overlap(self, bundle):
        result = classify(bundle.admin_lives, bundle.op_lives)
        unused = result.admin_lives_in(Category.UNUSED, bundle.admin_lives)
        for life in unused:
            ops = bundle.op_lives.get(life.asn, ())
            assert not any(op.interval.overlaps(life.interval) for op in ops)


@settings(**WORLD_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_pipeline_invariants_across_seeds(seed):
    bundle = build_datasets(WorldConfig(seed=seed, scale=0.004))
    # every analysis runs without error and the partition is exact
    result = bundle.joint.taxonomy
    assert result.totals() == (
        bundle.joint.total_admin_lifetimes(),
        bundle.joint.total_op_lifetimes(),
    )
    # the squat detector never misses planted dormant squats
    score = bundle.joint.squatting_score()
    assert score["recall"] == 1.0
    # restored rows never overlap within one registry
    for stints in bundle.restored.stints.values():
        for a, b in zip(stints, stints[1:]):
            if a.record.registry == b.record.registry:
                assert a.end < b.start


@settings(max_examples=3, deadline=None)
@given(
    missing=st.floats(min_value=0.0, max_value=0.03),
    drops=st.integers(min_value=0, max_value=6),
)
def test_restoration_survives_heavier_defect_loads(missing, drops):
    config = PitfallConfig(
        missing_file_rate=missing,
        record_drop_events_per_source=drops,
    )
    bundle = build_datasets(
        WorldConfig(seed=5, scale=0.004), pitfall_config=config
    )
    assert bundle.joint.total_admin_lifetimes() > 0
    # lifetime counts stay within a sane band of the ground truth even
    # under heavy corruption
    truth = len(bundle.world.lives)
    recovered = bundle.joint.total_admin_lifetimes()
    assert abs(recovered - truth) / truth < 0.25


@settings(max_examples=3, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_warm_verified_hit_is_byte_identical_to_cold_build(seed):
    """A checksum-verified warm hit never diverges from a cold build.

    This is the cache's no-silent-wrong-answer contract: whatever the
    verification layer does (manifest reads, re-reads, quarantines), a
    hit must hand back *exactly* the artifact a cacheless run builds —
    compared on pickled bytes, not just equality.
    """
    config = WorldConfig(seed=seed, scale=0.004)
    cold = build_datasets(config)
    # tempfile instead of tmp_path: function-scoped fixtures do not
    # combine with @given (one fixture instance spans all examples)
    root = tempfile.mkdtemp(prefix="repro-cache-prop-")
    try:
        cache = ArtifactCache(root, verify="sha256", faults=None)
        stored = build_datasets(config, cache=cache)
        warm = build_datasets(config, cache=cache)
        assert cache.hits == 1
        for part in ("admin_lives", "op_lives"):
            cold_bytes = dumps_with_gc_paused(getattr(cold, part))
            assert dumps_with_gc_paused(getattr(stored, part)) == cold_bytes
            assert dumps_with_gc_paused(getattr(warm, part)) == cold_bytes
    finally:
        shutil.rmtree(root, ignore_errors=True)


class TestReportRendering:
    def test_full_report(self, bundle):
        text = render_report(
            bundle.joint, restoration=bundle.restoration_report
        )
        for fragment in (
            "Datasets (§4)",
            "Taxonomy (§6, Table 3)",
            "complete_overlap",
            "Dormant-ASN squatting",
            "Unused administrative lives",
            "never-allocated ASNs",
        ):
            assert fragment in text

    def test_report_without_restoration(self, bundle):
        text = render_report(bundle.joint)
        assert "Archive restoration" not in text
