"""Unit tests for repro.asn.bogons and repro.asn.blocks."""

import pytest

from repro.asn import (
    BLOCK_SIZE,
    AS16_MAX,
    IanaLedger,
    bogon_reason,
    is_bogon_asn,
    iter_bogon_ranges,
)


class TestBogons:
    @pytest.mark.parametrize(
        "asn",
        [0, 112, 23456, 64496, 64511, 64512, 65000, 65534, 65535, 65536, 65551,
         4200000000, 4294967294, 4294967295],
    )
    def test_known_bogons(self, asn):
        assert is_bogon_asn(asn)

    @pytest.mark.parametrize("asn", [1, 3356, 23455, 64495, 65552, 199999, 4199999999])
    def test_known_non_bogons(self, asn):
        assert not is_bogon_asn(asn)

    def test_reason_mentions_rfc(self):
        assert "RFC 6996" in bogon_reason(64512)
        assert "RFC 7607" in bogon_reason(0)

    def test_reason_rejects_non_bogon(self):
        with pytest.raises(ValueError):
            bogon_reason(3356)

    def test_ranges_sorted_disjoint(self):
        ranges = iter_bogon_ranges()
        for (a1, a2), (b1, _b2) in zip(ranges, ranges[1:]):
            assert a1 <= a2 < b1


class TestIanaLedger:
    def test_grant_and_lookup(self):
        ledger = IanaLedger()
        ledger.grant(1, 1024, "arin", day=100)
        assert ledger.rir_of(1) == "arin"
        assert ledger.rir_of(1024) == "arin"
        assert ledger.rir_of(1025) is None

    def test_lookup_respects_day(self):
        ledger = IanaLedger()
        ledger.grant(1, 1024, "arin", day=100)
        assert ledger.rir_of(500, day=99) is None
        assert ledger.rir_of(500, day=100) == "arin"

    def test_grant_rejects_overlap(self):
        ledger = IanaLedger()
        ledger.grant(1, 1024, "arin", day=100)
        with pytest.raises(ValueError):
            ledger.grant(1000, 2000, "ripencc", day=200)

    def test_delegate_16bit_sequential(self):
        ledger = IanaLedger()
        b1 = ledger.delegate_16bit("arin", day=1)
        b2 = ledger.delegate_16bit("ripencc", day=2)
        assert b1.first == 1 and b1.size == BLOCK_SIZE
        assert b2.first == b1.last + 1
        assert ledger.rir_of(b2.first) == "ripencc"

    def test_delegate_16bit_exhaustion(self):
        ledger = IanaLedger()
        blocks = []
        while True:
            block = ledger.delegate_16bit("apnic", day=1)
            if block is None:
                break
            blocks.append(block)
        assert blocks[-1].last == AS16_MAX
        assert ledger.undelegated_16bit() == 1  # AS0 never delegated
        assert ledger.delegate_16bit("apnic", day=2) is None

    def test_delegate_32bit_starts_above_16bit(self):
        ledger = IanaLedger()
        block = ledger.delegate_32bit("lacnic", day=1)
        assert block.first == 65536
        assert block.size == BLOCK_SIZE

    def test_delegate_around_existing_grant(self):
        ledger = IanaLedger()
        ledger.grant(1025, 2048, "ripencc", day=1)
        block = ledger.delegate_16bit("arin", day=2)
        assert block.first == 1
        block2 = ledger.delegate_16bit("arin", day=3)
        assert block2.first == 2049

    def test_block_asns_skips_bogons(self):
        ledger = IanaLedger()
        block = ledger.grant(64000, 65023, "arin", day=1)
        asns = list(block.asns())
        assert 64511 not in asns  # documentation range
        assert 64512 not in asns  # private use
        assert 64000 in asns and 64495 in asns

    def test_sixteen_bit_totals(self):
        ledger = IanaLedger()
        ledger.delegate_16bit("arin", day=1)
        ledger.delegate_16bit("arin", day=2)
        ledger.delegate_16bit("ripencc", day=3)
        ledger.delegate_32bit("arin", day=4)
        totals = ledger.sixteen_bit_totals()
        assert totals == {"arin": 2 * BLOCK_SIZE, "ripencc": BLOCK_SIZE}

    def test_blocks_of(self):
        ledger = IanaLedger()
        ledger.delegate_16bit("arin", day=1)
        ledger.delegate_16bit("ripencc", day=2)
        assert len(ledger.blocks_of("arin")) == 1
        assert ledger.blocks_of("afrinic") == []

    def test_spans_ascending(self):
        ledger = IanaLedger()
        ledger.grant(5000, 6023, "apnic", day=1)
        ledger.grant(1, 1024, "arin", day=2)
        spans = ledger.spans()
        assert spans == [(1, 1024, "arin"), (5000, 6023, "apnic")]
