"""Inspect toolkit: trace views, run diff attribution, the run registry.

The diff tests build synthetic manifest+metrics+trace triples with a
*known* injected regression — one deliberately slowed stage, one forced
cache miss, one newly imbalanced fan-out — and assert ``diff_runs``
attributes each delta to the right cause.  The registry tests cover
digest-prefix resolution, ambiguity, and torn-line tolerance.
"""

import json

import pytest

from repro.runtime import (
    RUNS_FORMAT,
    RunLookupError,
    critical_path,
    diff_runs,
    folded_stacks,
    load_run,
    load_runs,
    load_trace,
    record_run,
    render_diff,
    render_trace,
    resolve_run,
)
from repro.runtime.runs import run_path

TRACE_HEADER = {"format": "pipeline-trace/v1", "trace_id": "cafe"}


def _span(span_id, parent_id, name, *, kind="stage", start=0.0, seconds=0.0,
          attrs=None, annotations=None):
    return {
        "span_id": span_id, "parent_id": parent_id, "name": name,
        "kind": kind, "start": start, "seconds": seconds,
        "attrs": attrs or {}, "annotations": annotations or [], "pid": 1,
    }


def _write_trace(path, spans):
    lines = [dict(TRACE_HEADER, spans=len(spans))]
    lines.extend(spans)
    path.write_text("".join(json.dumps(line) + "\n" for line in lines))
    return path


def _tree_spans():
    return [
        _span(1, None, "run", kind="root", start=0.0, seconds=1.0),
        _span(2, 1, "simulate", start=0.0, seconds=0.2),
        _span(3, 1, "restore", start=0.2, seconds=0.7),
        _span(4, 3, "task-a", kind="task", start=0.2, seconds=0.3),
        _span(5, 3, "task-b", kind="task", start=0.2, seconds=0.35),
    ]


class TestTraceView:
    def test_load_indexes_the_tree(self, tmp_path):
        view = load_trace(_write_trace(tmp_path / "trace.jsonl", _tree_spans()))
        assert view.header["trace_id"] == "cafe"
        assert [s["name"] for s in view.roots] == ["run"]
        assert [s["name"] for s in view.children[1]] == ["simulate", "restore"]
        assert [s["name"] for s in view.stage_spans()] == ["simulate", "restore"]
        restore = view.by_id[3]
        assert [t["name"] for t in view.tasks_of(restore)] == ["task-a", "task-b"]

    def test_load_accepts_run_directory(self, tmp_path):
        _write_trace(tmp_path / "trace.jsonl", _tree_spans())
        assert load_trace(tmp_path).by_id[1]["name"] == "run"

    def test_load_rejects_foreign_format(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps({"format": "bogus/v0"}) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_orphans_become_roots(self, tmp_path):
        spans = [_span(7, 99, "lost", seconds=0.1)]  # parent never exported
        view = load_trace(_write_trace(tmp_path / "trace.jsonl", spans))
        assert [s["name"] for s in view.roots] == ["lost"]

    def test_critical_path_follows_heaviest_children(self, tmp_path):
        view = load_trace(_write_trace(tmp_path / "trace.jsonl", _tree_spans()))
        # run -> restore (0.7 > 0.2) -> task-b (0.35 > 0.3)
        assert critical_path(view) == {1, 3, 5}

    def test_render_marks_critical_path(self, tmp_path):
        view = load_trace(_write_trace(tmp_path / "trace.jsonl", _tree_spans()))
        text = render_trace(view)
        starred = [l for l in text.splitlines() if l.startswith("*")]
        assert len(starred) == 3
        assert any("task-b" in line for line in starred)
        assert not any("task-a" in line for line in starred)

    def test_render_depth_limit(self, tmp_path):
        view = load_trace(_write_trace(tmp_path / "trace.jsonl", _tree_spans()))
        text = render_trace(view, max_depth=1)
        assert "restore" in text and "task-a" not in text

    def test_folded_stacks_self_time(self, tmp_path):
        view = load_trace(_write_trace(tmp_path / "trace.jsonl", _tree_spans()))
        stacks = dict(
            line.rsplit(" ", 1) for line in folded_stacks(view)
        )
        # root self time: 1.0 - (0.2 + 0.7) = 0.1s = 100000µs
        assert int(stacks["run"]) == 100000
        # restore self time: 0.7 - (0.3 + 0.35) = 0.05s
        assert int(stacks["run;restore"]) == 50000
        assert int(stacks["run;restore;task-b"]) == 350000


def _write_run(path, *, digest, stages, cache=None, tasks=None,
               config_hash="cfg", span_sha="spans", settings=None):
    """A synthetic manifest+metrics+trace triple.

    ``stages`` maps stage name -> wall seconds; ``cache`` maps stage
    name -> hit/miss span attribute; ``tasks`` maps stage name -> task
    child durations (for fan-out imbalance).
    """
    path.mkdir(parents=True, exist_ok=True)
    (path / "run_manifest.json").write_text(json.dumps({
        "format": "run-manifest/v1",
        "digest": digest,
        "config_hash": config_hash,
        "span_digest": {"sha256": span_sha},
        "settings": settings or {},
        "backend": "serial",
    }))
    (path / "metrics.json").write_text(json.dumps({
        "counters": {},
        "histograms": {
            f"stage.{name}.seconds": {"count": 1, "sum": seconds}
            for name, seconds in stages.items()
        },
    }))
    spans = [_span(1, None, "run", kind="root",
                   seconds=sum(stages.values()))]
    next_id = 2
    for index, (name, seconds) in enumerate(sorted(stages.items())):
        attrs = {}
        if cache and name in cache:
            attrs["cache"] = cache[name]
        stage_id = next_id
        spans.append(_span(stage_id, 1, name, start=float(index),
                           seconds=seconds, attrs=attrs))
        next_id += 1
        for task_seconds in (tasks or {}).get(name, []):
            spans.append(_span(next_id, stage_id, f"{name}[t]", kind="task",
                               start=float(index), seconds=task_seconds))
            next_id += 1
    _write_trace(path / "trace.jsonl", spans)
    return path


class TestDiffRuns:
    def test_attributes_the_injected_regressions(self, tmp_path):
        # run A: warm restore hit, fast stream, balanced fan-out
        a = load_run(_write_run(
            tmp_path / "a", digest="aaa111",
            stages={"simulate": 0.30, "bgp:stream": 0.10,
                    "restore:archive": 0.02, "fanout": 0.40},
            cache={"restore:archive": "hit"},
            tasks={"fanout": [0.1, 0.1, 0.1, 0.1]},
        ))
        # run B: same config, one slowed stage, one forced cache miss,
        # one straggler-dominated fan-out
        b = load_run(_write_run(
            tmp_path / "b", digest="bbb222", span_sha="spans2",
            stages={"simulate": 0.31, "bgp:stream": 0.50,
                    "restore:archive": 0.80, "fanout": 1.00},
            cache={"restore:archive": "miss"},
            tasks={"fanout": [0.05, 0.05, 0.05, 0.85]},
        ))
        diff = diff_runs(a, b)
        causes = {row["stage"]: row["cause"] for row in diff["stages"]}
        assert causes == {
            "simulate": "unchanged",
            "bgp:stream": "stage-slowdown",
            "restore:archive": "cache-miss",
            "fanout": "fan-out-imbalance",
        }
        identity = diff["identity"]
        assert not identity["same_digest"]
        assert identity["same_config"]
        assert not identity["same_span_digest"]
        assert diff["total_delta"] == pytest.approx(1.79)

        text = render_diff(diff)
        assert "cache hit→miss" in text
        assert "fan-out-imbalance" in text
        assert "span digest differs" in text

    def test_reverse_direction_reads_as_recovery(self, tmp_path):
        a = load_run(_write_run(
            tmp_path / "a", digest="aaa111",
            stages={"restore:archive": 0.80}, cache={"restore:archive": "miss"},
        ))
        b = load_run(_write_run(
            tmp_path / "b", digest="bbb222",
            stages={"restore:archive": 0.02}, cache={"restore:archive": "hit"},
        ))
        (row,) = diff_runs(a, b)["stages"]
        assert row["cause"] == "cache-hit"

    def test_added_and_removed_stages(self, tmp_path):
        a = load_run(_write_run(tmp_path / "a", digest="a",
                                stages={"old": 0.5, "both": 0.2}))
        b = load_run(_write_run(tmp_path / "b", digest="b",
                                stages={"new": 0.4, "both": 0.2}))
        causes = {r["stage"]: r["cause"] for r in diff_runs(a, b)["stages"]}
        assert causes == {"old": "removed", "new": "added", "both": "unchanged"}

    def test_settings_changes_reported(self, tmp_path):
        a = load_run(_write_run(tmp_path / "a", digest="a",
                                stages={"s": 0.1}, settings={"jobs": 1}))
        b = load_run(_write_run(tmp_path / "b", digest="b",
                                stages={"s": 0.1}, settings={"jobs": 4}))
        assert diff_runs(a, b)["identity"]["settings_changed"] == ["jobs"]

    def test_sub_floor_noise_is_unchanged(self, tmp_path):
        # 3ms -> 9ms is a 200% swing but under the absolute floor
        a = load_run(_write_run(tmp_path / "a", digest="a",
                                stages={"s": 0.003}))
        b = load_run(_write_run(tmp_path / "b", digest="b",
                                stages={"s": 0.009}))
        (row,) = diff_runs(a, b)["stages"]
        assert row["cause"] == "unchanged"


class TestRunRegistry:
    def _manifest(self, digest):
        return {"digest": digest, "config_hash": "cfg", "backend": "serial",
                "git": "abc"}

    def test_record_and_resolve_prefix(self, tmp_path):
        index = tmp_path / "runs.jsonl"
        manifest_path = tmp_path / "run1" / "run_manifest.json"
        manifest_path.parent.mkdir()
        manifest_path.write_text("{}")
        entry = record_run(index, self._manifest("feedbead" * 8),
                           {"manifest": manifest_path, "trace": None})
        assert entry["format"] == RUNS_FORMAT
        assert "trace" not in entry["artifacts"]
        resolved = resolve_run(index, "feedbead")
        assert resolved["digest"] == "feedbead" * 8
        assert run_path(resolved) == manifest_path.parent.resolve()

    def test_same_digest_collapses_to_newest(self, tmp_path):
        index = tmp_path / "runs.jsonl"
        record_run(index, self._manifest("abc123"), {"manifest": tmp_path / "old.json"})
        record_run(index, self._manifest("abc123"), {"manifest": tmp_path / "new.json"})
        resolved = resolve_run(index, "abc")
        assert resolved["artifacts"]["manifest"].endswith("new.json")

    def test_ambiguous_and_missing_prefixes(self, tmp_path):
        index = tmp_path / "runs.jsonl"
        record_run(index, self._manifest("abc111"), {})
        record_run(index, self._manifest("abc222"), {})
        with pytest.raises(RunLookupError):
            resolve_run(index, "abc")
        with pytest.raises(RunLookupError):
            resolve_run(index, "zzz")
        with pytest.raises(RunLookupError):
            resolve_run(index, "")
        resolve_run(index, "abc1")  # unique prefix still works

    def test_reader_tolerates_torn_and_foreign_lines(self, tmp_path):
        index = tmp_path / "runs.jsonl"
        record_run(index, self._manifest("abc111"), {})
        with index.open("a") as handle:
            handle.write('{"format": "other/v1", "digest": "zzz"}\n')
            handle.write('{"digest": "abc222", "form')  # torn final line
        entries = load_runs(index)
        assert [e["digest"] for e in entries] == ["abc111"]
        assert resolve_run(index, "abc")["digest"] == "abc111"

    def test_missing_index_loads_empty(self, tmp_path):
        assert load_runs(tmp_path / "absent.jsonl") == []
