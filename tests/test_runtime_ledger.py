"""Dataflow ledger: boundary counters, closure checks, pipeline conservation.

The ledger's contract has three layers, each tested here: the counter
emission primitives (``boundary``/``record_boundary``), the document
layer (``build_ledger``/``check_ledger``/``render_ledger`` and the
``ledger.json`` round trip), and the pipeline-wide invariant — a full
``build_datasets`` run conserves records at every instrumented
boundary, serially, under a process pool, and under ambient fault
injection (retried tasks must not double-count, failed tasks must not
leak partial counts).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    ArtifactCache,
    MetricsRegistry,
    PipelineStats,
    boundary,
    build_ledger,
    check_ledger,
    ledger_disabled,
    ledger_enabled,
    load_ledger,
    record_boundary,
    render_ledger,
    reset_metrics,
    write_ledger,
)
from repro.simulation import build_datasets
from repro.simulation.config import tiny


class TestBoundary:
    def test_counters_land_in_registry(self):
        metrics = MetricsRegistry()
        bound = boundary("x:filter", metrics)
        bound.records_in(10)
        bound.kept(7)
        bound.dropped("bad", 2)
        bound.routed("weird", 1)
        counters = metrics.snapshot()["counters"]
        assert counters["ledger.x:filter.in"] == 10
        assert counters["ledger.x:filter.out.kept"] == 7
        assert counters["ledger.x:filter.out.dropped:bad"] == 2
        assert counters["ledger.x:filter.out.weird"] == 1

    def test_zero_counts_emit_nothing(self):
        metrics = MetricsRegistry()
        bound = boundary("x:filter", metrics)
        bound.records_in(0)
        bound.kept(0)
        bound.dropped("bad", 0)
        assert metrics.snapshot()["counters"] == {}

    def test_stage_name_may_not_contain_separator(self):
        with pytest.raises(ValueError):
            boundary("bad.name", MetricsRegistry())

    def test_record_boundary_summary(self):
        metrics = MetricsRegistry()
        summary = record_boundary(
            "x:filter", records_in=5, kept=3,
            dropped={"dup": 2, "never": 0}, metrics=metrics,
        )
        assert summary == {"in": 5, "kept": 3, "dropped": {"dup": 2}}
        counters = metrics.snapshot()["counters"]
        assert counters["ledger.x:filter.in"] == 5

    def test_disabled_ledger_is_a_noop(self):
        metrics = MetricsRegistry()
        assert ledger_enabled()
        with ledger_disabled():
            assert not ledger_enabled()
            assert record_boundary("x:f", records_in=5, kept=5,
                                   metrics=metrics) is None
            bound = boundary("x:f", metrics)
            bound.records_in(5)
            bound.kept(5)
        assert ledger_enabled()
        assert metrics.snapshot()["counters"] == {}


class TestDocument:
    def _conserving_registry(self):
        metrics = MetricsRegistry()
        record_boundary("a:filter", records_in=10, kept=8,
                        dropped={"dup": 2}, metrics=metrics)
        record_boundary("b:partition", records_in=4,
                        routed={"left": 3, "right": 1}, metrics=metrics)
        return metrics

    def test_build_ledger_conserving(self):
        doc = build_ledger(self._conserving_registry())
        assert doc["format"] == "ledger/v1"
        assert doc["conserved"] is True
        assert [row["stage"] for row in doc["stages"]] == [
            "a:filter", "b:partition",
        ]
        filt, part = doc["stages"]
        assert filt["in"] == 10 and filt["out"] == 10 and filt["conserved"]
        assert part["routed"] == {"left": 3, "right": 1}
        assert check_ledger(doc) == []

    def test_build_ledger_accepts_snapshot_dict(self):
        snapshot = self._conserving_registry().snapshot()
        assert build_ledger(snapshot)["conserved"] is True

    def test_leak_is_a_violation(self):
        metrics = MetricsRegistry()
        # 10 in, only 9 accounted: one record vanished without a reason
        record_boundary("a:filter", records_in=10, kept=7,
                        dropped={"dup": 2}, metrics=metrics)
        doc = build_ledger(metrics)
        assert doc["conserved"] is False
        violations = check_ledger(doc)
        assert len(violations) == 1
        assert "a:filter" in violations[0]
        assert "+1 records unaccounted" in violations[0]

    def test_overclaim_is_a_violation(self):
        metrics = MetricsRegistry()
        # drop bucket claims more than ever entered
        record_boundary("a:filter", records_in=3, kept=3,
                        dropped={"dup": 2}, metrics=metrics)
        doc = build_ledger(metrics)
        assert any("-2 records unaccounted" in v for v in check_ledger(doc))

    def test_check_rejects_foreign_format(self):
        assert check_ledger({"format": "nonsense/v9"})

    def test_roundtrip_and_directory_load(self, tmp_path):
        doc = build_ledger(self._conserving_registry())
        path = write_ledger(tmp_path / "ledger.json", doc)
        assert load_ledger(path) == doc
        assert load_ledger(tmp_path) == doc  # directory form

    def test_load_rejects_foreign_document(self, tmp_path):
        (tmp_path / "ledger.json").write_text(json.dumps({"format": "x"}))
        with pytest.raises(ValueError):
            load_ledger(tmp_path)

    def test_render_shows_reason_shares(self):
        text = render_ledger(build_ledger(self._conserving_registry()))
        assert "all conserving" in text
        assert "dropped[dup]" in text and "(20.00%)" in text
        assert "class[left]" in text and "(75.00%)" in text


def _build_with_taxonomy(config, **kwargs):
    """Build the bundle and force the lazy taxonomy classification, so
    the ``taxonomy:*`` boundaries fire alongside the pipeline's own."""
    bundle = build_datasets(config, **kwargs)
    bundle.joint.taxonomy
    return bundle


class TestPipelineClosure:
    def test_full_build_conserves_every_boundary(self):
        metrics = reset_metrics()
        _build_with_taxonomy(tiny(seed=11), stats=PipelineStats())
        doc = build_ledger(metrics)
        assert check_ledger(doc) == []
        assert doc["conserved"] is True
        names = {row["stage"] for row in doc["stages"]}
        # the three instrumented subsystems all reported in
        assert {"taxonomy:admin", "taxonomy:op", "bgp:segment"} <= names
        assert any(name.startswith("restoration/") for name in names)

    def test_taxonomy_rows_partition_exactly(self):
        metrics = reset_metrics()
        _build_with_taxonomy(tiny(seed=11), stats=PipelineStats())
        doc = build_ledger(metrics)
        for row in doc["stages"]:
            if not row["stage"].startswith("taxonomy:"):
                continue
            assert row["kept"] == 0 and not row["dropped"]
            assert row["in"] == sum(row["routed"].values()) > 0

    def test_fault_injection_cannot_break_conservation(
        self, tmp_path, monkeypatch
    ):
        # the clean reference ledger first, before arming the injector
        metrics = reset_metrics()
        _build_with_taxonomy(tiny(seed=7), jobs=2, stats=PipelineStats())
        clean = build_ledger(metrics)
        assert clean["conserved"] is True

        monkeypatch.setenv("REPRO_FAULT_SEED", "2021")
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.25")
        metrics = reset_metrics()
        cache = ArtifactCache(tmp_path / "cache")
        stats = PipelineStats()
        _build_with_taxonomy(tiny(seed=7), cache=cache, jobs=2, stats=stats)
        faulty = build_ledger(metrics)

        # conservation holds under injected worker deaths and cache
        # faults — and the counts match the clean run exactly: a
        # retried fan-out merged its counters once, a failed one not
        # at all (the cold build emits the same boundaries either way)
        assert check_ledger(faulty) == []
        assert faulty == clean


class TestBackendDeterminism:
    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=1, max_value=40))
    def test_serial_and_pool_ledgers_identical(self, seed):
        metrics = reset_metrics()
        _build_with_taxonomy(tiny(seed=seed), stats=PipelineStats())
        serial_doc = build_ledger(metrics)

        metrics = reset_metrics()
        _build_with_taxonomy(tiny(seed=seed), jobs=2, stats=PipelineStats())
        pool_doc = build_ledger(metrics)

        # worker-side counters ride task snapshots back through
        # merge_snapshot; the merged ledger must be byte-identical to
        # the serial one (the determinism contract covers accounting)
        assert serial_doc["conserved"] is True
        assert json.dumps(pool_doc, sort_keys=True) == json.dumps(
            serial_doc, sort_keys=True
        )
