"""Serial-vs-parallel equivalence of the pipeline (the determinism contract).

DESIGN.md promises that every execution backend yields **bit-identical**
pipeline output: same stints, same lifetimes, same report counters, same
taxonomy, and even the same dict ordering.  These tests build the tiny
world once per backend and compare the bundles component by component,
plus the per-collector dump files byte for byte.
"""

from __future__ import annotations

import pytest

from repro.bgp.dumps import dump_file_name, materialize_collector_dumps
from repro.runtime import ArtifactCache, PipelineStats
from repro.simulation import build_datasets
from repro.simulation.config import tiny
from repro.simulation.world import WorldSimulator


@pytest.fixture(scope="module")
def serial_bundle():
    return build_datasets(tiny(seed=7))


@pytest.fixture(scope="module")
def parallel_bundle():
    return build_datasets(tiny(seed=7), jobs=2)


class TestBundleEquivalence:
    def test_restored_stints_identical(self, serial_bundle, parallel_bundle):
        assert parallel_bundle.restored.stints == serial_bundle.restored.stints
        # ordering too, not just contents: merge order is part of the contract
        assert list(parallel_bundle.restored.stints) == list(
            serial_bundle.restored.stints
        )

    def test_admin_lifetimes_identical(self, serial_bundle, parallel_bundle):
        assert parallel_bundle.admin_lives == serial_bundle.admin_lives
        assert list(parallel_bundle.admin_lives) == list(serial_bundle.admin_lives)

    def test_op_lifetimes_identical(self, serial_bundle, parallel_bundle):
        assert parallel_bundle.op_lives == serial_bundle.op_lives
        assert list(parallel_bundle.op_lives) == list(serial_bundle.op_lives)

    def test_restoration_report_identical(self, serial_bundle, parallel_bundle):
        assert (
            parallel_bundle.restoration_report.summary()
            == serial_bundle.restoration_report.summary()
        )

    def test_injected_defects_identical(self, serial_bundle, parallel_bundle):
        assert parallel_bundle.injected_defects == serial_bundle.injected_defects

    def test_taxonomy_counts_identical(self, serial_bundle, parallel_bundle):
        serial_tax = serial_bundle.joint.taxonomy
        parallel_tax = parallel_bundle.joint.taxonomy
        assert parallel_tax.admin_counts == serial_tax.admin_counts
        assert parallel_tax.op_counts == serial_tax.op_counts
        assert parallel_tax.table3_rows() == serial_tax.table3_rows()


class TestExecutorSpecs:
    def test_explicit_string_spec(self, serial_bundle):
        bundle = build_datasets(tiny(seed=7), executor="serial")
        assert bundle.admin_lives == serial_bundle.admin_lives

    def test_stats_backend_reflects_executor(self):
        stats = PipelineStats()
        build_datasets(tiny(seed=7), jobs=2, stats=stats)
        assert stats.backend == "process"
        assert stats.seconds_of("restore:per-registry") > 0


class TestCachedBundle:
    def test_warm_hit_equals_cold_build(self, tmp_path, serial_bundle):
        cache = ArtifactCache(tmp_path, faults=None)  # pins exact hit counts
        cold = build_datasets(tiny(seed=7), cache=cache)
        stats = PipelineStats()
        warm = build_datasets(tiny(seed=7), cache=cache, stats=stats)
        assert cache.hits == 1
        # a hit returns before any pipeline stage runs
        assert [s.name for s in stats.stages] == ["cache:lookup"]
        for bundle in (cold, warm):
            assert bundle.restored.stints == serial_bundle.restored.stints
            assert bundle.admin_lives == serial_bundle.admin_lives
            assert bundle.op_lives == serial_bundle.op_lives
            assert (
                bundle.joint.taxonomy.table3_rows()
                == serial_bundle.joint.taxonomy.table3_rows()
            )

    def test_parameter_change_misses(self, tmp_path):
        cache = ArtifactCache(tmp_path, faults=None)  # pins exact hit counts
        build_datasets(tiny(seed=7), cache=cache)
        build_datasets(tiny(seed=7), cache=cache, timeout=60)
        # bundle misses twice (timeout is part of its key) and the
        # delegation-table container misses once then hits: the BGP
        # timeout cannot change the archive, so it is left out of the
        # table key on purpose.
        assert cache.misses == 3
        assert cache.hits == 1


class TestDumpEquivalence:
    def test_collector_dumps_bit_identical(self, tmp_path):
        world = WorldSimulator(tiny(seed=7)).run()
        end = world.end_day
        start = end - 4
        announcements = {
            day: world.announcements_for_day(day) for day in range(start, end + 1)
        }
        written = {}
        for label, spec in (("serial", None), ("process", 2)):
            out = tmp_path / label
            written[label] = materialize_collector_dumps(
                world.topology, world.collectors, announcements, out,
                start=start, end=end, executor=spec,
            )
        assert written["serial"] == written["process"]
        assert set(written["serial"]) == {c.name for c in world.collectors}
        for collector in world.collectors:
            for day in range(start, end + 1):
                name = dump_file_name(day)
                serial_file = tmp_path / "serial" / collector.name / name
                process_file = tmp_path / "process" / collector.name / name
                assert serial_file.read_bytes() == process_file.read_bytes()

    def test_rejects_inverted_window(self, tmp_path):
        world = WorldSimulator(tiny(seed=7)).run()
        with pytest.raises(ValueError):
            materialize_collector_dumps(
                world.topology, world.collectors, {}, tmp_path,
                start=world.end_day, end=world.end_day - 1,
            )
