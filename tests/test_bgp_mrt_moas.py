"""Tests for the MRT-style codec and MOAS/SubMOAS detection."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp import (
    ANNOUNCE,
    RIB,
    WITHDRAW,
    BgpElement,
    MoasDetector,
    MrtError,
    dump_day,
    find_moas,
    find_submoas,
    load_day,
    read_elements,
    write_elements,
)
from repro.net import Prefix
from repro.timeline import from_iso

D = from_iso("2015-06-01")
P1 = Prefix.parse("10.0.0.0/16")
P2 = Prefix.parse("10.1.0.0/16")
SUB = Prefix.parse("10.0.4.0/24")
V6 = Prefix.parse("2001:db8::/32")


def elem(etype=RIB, peer=10, prefix=P1, path=(10, 20, 30), seq=0):
    return BgpElement(etype, D, seq, "ris", "rrc00", peer, prefix,
                      path if etype != WITHDRAW else ())


class TestMrtRoundtrip:
    def test_rib_v4(self):
        buf = io.BytesIO()
        assert write_elements([elem()], buf) == 1
        buf.seek(0)
        back = list(read_elements(buf, project="ris", collector="rrc00"))
        assert back == [elem()]

    def test_rib_v6(self):
        e = elem(prefix=V6)
        buf = io.BytesIO()
        write_elements([e], buf)
        buf.seek(0)
        assert list(read_elements(buf, project="ris", collector="rrc00")) == [e]

    def test_announce_and_withdraw(self):
        elems = [elem(ANNOUNCE, seq=1), elem(WITHDRAW, seq=2)]
        buf = io.BytesIO()
        write_elements(elems, buf)
        buf.seek(0)
        assert list(read_elements(buf, project="ris", collector="rrc00")) == elems

    def test_file_roundtrip(self, tmp_path):
        elems = [elem(seq=i) for i in range(10)]
        path = tmp_path / "rib.mrt"
        assert dump_day(elems, path) == 10
        assert load_day(path, project="ris", collector="rrc00") == elems

    def test_truncated_header_rejected(self):
        buf = io.BytesIO()
        write_elements([elem()], buf)
        data = buf.getvalue()[:-5]
        with pytest.raises(MrtError):
            list(read_elements(io.BytesIO(data[:6]), project="ris", collector="r"))

    def test_truncated_payload_rejected(self):
        buf = io.BytesIO()
        write_elements([elem()], buf)
        data = buf.getvalue()[:-3]
        with pytest.raises(MrtError):
            list(read_elements(io.BytesIO(data), project="ris", collector="r"))

    def test_unknown_type_rejected(self):
        buf = io.BytesIO()
        write_elements([elem()], buf)
        data = bytearray(buf.getvalue())
        data[5] = 99  # type field low byte
        with pytest.raises(MrtError):
            list(read_elements(io.BytesIO(bytes(data)), project="r", collector="c"))

    def test_old_days_out_of_range(self):
        ancient = BgpElement(RIB, 100, 0, "ris", "rrc00", 10, P1, (10,))
        with pytest.raises(MrtError, match="32-bit"):
            write_elements([ancient], io.BytesIO())

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from([RIB, ANNOUNCE, WITHDRAW]),
                st.integers(min_value=1, max_value=2**32 - 1),
                st.integers(min_value=0, max_value=255),
                st.lists(st.integers(min_value=1, max_value=2**32 - 1),
                         min_size=1, max_size=6),
            ),
            max_size=15,
        )
    )
    def test_roundtrip_property(self, specs):
        elems = [
            BgpElement(
                etype, D, seq, "rv", "route-views2", peer,
                Prefix.v4((seq % 200) << 24, 8),
                tuple(path) if etype != WITHDRAW else (),
            )
            for etype, peer, seq, path in specs
        ]
        buf = io.BytesIO()
        write_elements(elems, buf)
        buf.seek(0)
        back = list(read_elements(buf, project="rv", collector="route-views2"))
        assert back == elems


class TestMoas:
    def test_same_prefix_two_origins(self):
        elems = [
            elem(path=(10, 20, 30)),
            elem(peer=11, path=(11, 40)),
        ]
        conflicts = find_moas(elems)
        assert len(conflicts) == 1
        assert conflicts[0].origins == {30, 40}
        assert conflicts[0].involves(30)

    def test_single_origin_no_conflict(self):
        assert find_moas([elem(), elem(peer=11)]) == []

    def test_withdraws_ignored(self):
        assert find_moas([elem(WITHDRAW)]) == []

    def test_submoas(self):
        elems = [
            elem(path=(10, 20, 30), prefix=P1),
            elem(path=(10, 99), prefix=SUB),
        ]
        conflicts = find_submoas(elems)
        assert len(conflicts) == 1
        c = conflicts[0]
        assert c.covering_origin == 30
        assert c.specific_origin == 99
        assert c.covering_prefix == P1 and c.specific_prefix == SUB

    def test_submoas_same_origin_not_conflict(self):
        elems = [
            elem(path=(10, 30), prefix=P1),
            elem(path=(10, 30), prefix=SUB),
        ]
        assert find_submoas(elems) == []

    def test_detector_new_and_resolved(self):
        detector = MoasDetector()
        day1 = [elem(path=(10, 30)), elem(peer=11, path=(11, 40))]
        new, resolved = detector.feed(day1)
        assert len(new) == 1 and resolved == []
        # same conflict persists: nothing new
        new, resolved = detector.feed(day1)
        assert new == [] and resolved == []
        # conflict disappears
        new, resolved = detector.feed([elem(path=(10, 30))])
        assert new == [] and len(resolved) == 1
        assert detector.active == {}

    def test_detector_origin_change_is_new(self):
        detector = MoasDetector()
        detector.feed([elem(path=(10, 30)), elem(peer=11, path=(11, 40))])
        new, _ = detector.feed(
            [elem(path=(10, 30)), elem(peer=11, path=(11, 41))]
        )
        assert len(new) == 1
        assert new[0].origins == {30, 41}
