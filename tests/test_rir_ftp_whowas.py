"""Tests for the FTP-mirror layout and the WhoWas query service."""

import pytest

from repro.asn import IanaLedger
from repro.lifetimes import AdminLifetime
from repro.rir import (
    EXTENDED,
    REGULAR,
    ArchiveOverlay,
    DelegationArchive,
    MirrorReader,
    Registry,
    WhoWas,
    default_policy,
    export_archive,
    file_name,
)
from repro.timeline import from_iso

START = from_iso("2010-05-01")
END = from_iso("2010-07-01")


@pytest.fixture
def archive():
    ledger = IanaLedger()
    ripe = Registry("ripencc", default_policy("ripencc"), ledger)
    ripe.allocate(START, "ORG-1", "IT", thirty_two_bit=False)
    ripe.allocate(START + 10, "ORG-2", "FR", thirty_two_bit=False)
    overlay = ArchiveOverlay()
    overlay.mark_missing(("ripencc", EXTENDED), START + 5)
    overlay.mark_corrupt(("ripencc", EXTENDED), START + 7)
    return DelegationArchive({"ripencc": ripe}, END, overlay)


class TestFtpMirror:
    def test_file_names(self):
        assert file_name(("apnic", REGULAR), from_iso("2015-01-02")) == (
            "delegated-apnic-20150102"
        )
        assert file_name(("apnic", EXTENDED), from_iso("2015-01-02")) == (
            "delegated-apnic-extended-20150102"
        )

    def test_export_and_describe(self, archive, tmp_path):
        written = export_archive(archive, tmp_path, start=START, end=START + 10)
        assert written > 0
        reader = MirrorReader(tmp_path)
        assert ("ripencc", REGULAR) in reader.sources()
        assert ("ripencc", EXTENDED) in reader.sources()
        assert "ripencc" in reader.describe()

    def test_missing_day_absent_on_disk(self, archive, tmp_path):
        export_archive(archive, tmp_path, start=START, end=START + 10)
        reader = MirrorReader(tmp_path)
        assert START + 5 in reader.missing_days(("ripencc", EXTENDED))
        assert reader.read(("ripencc", EXTENDED), START + 5) is None

    def test_corrupt_day_yields_none_via_iterator(self, archive, tmp_path):
        export_archive(archive, tmp_path, start=START, end=START + 10)
        reader = MirrorReader(tmp_path)
        snaps = dict(reader.iter_snapshots(("ripencc", EXTENDED)))
        assert snaps[START + 7] is None  # corrupt file on disk
        assert snaps[START + 4] is not None

    def test_roundtrip_content(self, archive, tmp_path):
        export_archive(archive, tmp_path, start=START, end=START + 2)
        reader = MirrorReader(tmp_path)
        snap = reader.read(("ripencc", EXTENDED), START + 1)
        direct = archive.snapshot(("ripencc", EXTENDED), START + 1)
        assert sorted(r.asn for r in snap.records) == sorted(
            r.asn for r in direct.records
        )

    def test_reader_rejects_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            MirrorReader(tmp_path / "nope")

    def test_registry_filter(self, archive, tmp_path):
        written = export_archive(
            archive, tmp_path, start=START, end=START + 2, registries=["arin"]
        )
        assert written == 0


def life(asn, start, end, org, registry="arin", open_ended=False):
    return AdminLifetime(
        asn, from_iso(start), from_iso(end), from_iso(start), (registry,),
        cc="US", org_id=org, open_ended=open_ended,
    )


class TestWhoWas:
    @pytest.fixture
    def service(self):
        lives = {
            100: [
                life(100, "2005-01-01", "2010-01-01", "ORG-A"),
                life(100, "2012-01-01", "2021-03-01", "ORG-B", open_ended=True),
            ],
            70001: [life(70001, "2015-01-01", "2015-01-20", "ORG-C")],
            200: [life(200, "2015-02-10", "2021-03-01", "ORG-C", open_ended=True)],
        }
        return WhoWas(lives)

    def test_history_of(self, service):
        history = service.history_of(100)
        assert [h.org_id for h in history] == ["ORG-A", "ORG-B"]

    def test_holder_on(self, service):
        assert service.holder_on(100, from_iso("2007-06-01")).org_id == "ORG-A"
        assert service.holder_on(100, from_iso("2011-06-01")) is None
        assert service.holder_on(100, from_iso("2015-06-01")).org_id == "ORG-B"

    def test_holdings_of_org(self, service):
        assert [h.asn for h in service.holdings_of("ORG-C")] == [70001, 200]

    def test_expired_holdings(self, service):
        expired = service.expired_holdings()
        assert {h.asn for h in expired} == {100, 70001}
        before = service.expired_holdings(before=from_iso("2011-01-01"))
        assert {h.asn for h in before} == {100}

    def test_32bit_retry_found(self, service):
        findings = service.find_32bit_retries()
        assert len(findings) == 1
        f = findings[0]
        assert f.org_id == "ORG-C"
        assert f.failed_asn == 70001
        assert f.replacement_asn == 200
        assert f.gap_days == 21

    def test_32bit_retry_registry_filter(self, service):
        assert service.find_32bit_retries(registry="ripencc") == []

    def test_reuse_chain(self, service):
        chain = service.reuse_chain(100)
        assert [org for org, _s, _e in chain] == ["ORG-A", "ORG-B"]

    def test_describe(self, service):
        text = service.history_of(100)[0].describe()
        assert "AS100" in text and "ORG-A" in text
