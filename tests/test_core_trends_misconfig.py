"""Tests for trend series (§5 / App. A) and misconfig classification."""

import pytest

from repro.core import (
    alive_counts,
    alive_counts_by_registry,
    alive_bgp_counts_by_registry,
    bit_class_counts,
    classify_all,
    classify_suspect,
    collect_path_evidence,
    country_shares,
    crossover_day,
    duration_by_birth_year,
    duration_cdf,
    lives_per_asn_table,
    MisconfigClass,
    PathEvidence,
    quarterly_balance,
    quarterly_birth_rate,
)
from repro.core.trends import DailySeries, cdf_at
from repro.bgp import BgpElement, RIB
from repro.lifetimes import AdminLifetime, BgpLifetime
from repro.net import Prefix
from repro.timeline import from_iso

D = from_iso("2010-01-01")


def admin(asn, start, end, registry="ripencc", cc="IT", open_ended=False):
    return AdminLifetime(
        asn, D + start, D + end, D + start, (registry,), cc=cc,
        open_ended=open_ended,
    )


def op(asn, start, end):
    return BgpLifetime(asn, D + start, D + end)


class TestDailySeries:
    def test_alive_counts(self):
        lives = {1: [admin(1, 0, 9)], 2: [admin(2, 5, 14)]}
        series = alive_counts(lives, D, D + 20)
        assert series.at(D) == 1
        assert series.at(D + 7) == 2
        assert series.at(D + 12) == 1
        assert series.at(D + 20) == 0
        assert series.max() == (D + 5, 2)

    def test_out_of_window_rejected(self):
        series = alive_counts({}, D, D + 5)
        with pytest.raises(ValueError):
            series.at(D + 6)

    def test_by_registry(self):
        lives = {
            1: [admin(1, 0, 9, registry="arin")],
            2: [admin(2, 0, 9, registry="ripencc")],
        }
        per = alive_counts_by_registry(lives, D, D + 10)
        assert set(per) == {"arin", "ripencc"}
        assert per["arin"].at(D) == 1

    def test_bgp_counts_attributed_to_registry(self):
        admin_lives = {1: [admin(1, 0, 100, registry="arin")]}
        op_lives = {1: [op(1, 10, 20)], 99: [op(99, 0, 5)]}  # 99 undelegated
        per = alive_bgp_counts_by_registry(admin_lives, op_lives, D, D + 30)
        assert per["arin"].at(D + 15) == 1
        assert set(per) == {"arin"}

    def test_crossover(self):
        a = DailySeries(D, __import__("numpy").array([1, 2, 3, 4]))
        b = DailySeries(D, __import__("numpy").array([2, 2, 2, 2]))
        assert crossover_day(a, b) == D + 2

    def test_crossover_none(self):
        import numpy as np

        a = DailySeries(D, np.array([1, 1]))
        b = DailySeries(D, np.array([2, 2]))
        assert crossover_day(a, b) is None


class TestTables:
    def test_lives_per_asn(self):
        lives = {
            1: [admin(1, 0, 9)],
            2: [admin(2, 0, 9), admin(2, 20, 29)],
            3: [admin(3, 0, 9), admin(3, 20, 29), admin(3, 40, 49)],
        }
        registry_of = {1: "ripencc", 2: "ripencc", 3: "ripencc"}
        table = lives_per_asn_table(lives, registry_of)
        assert table["ripencc"]["1"] == pytest.approx(1 / 3)
        assert table["ripencc"]["2"] == pytest.approx(1 / 3)
        assert table["ripencc"][">2"] == pytest.approx(1 / 3)
        assert table["total"] == table["ripencc"]

    def test_duration_cdf(self):
        xs, ys = duration_cdf([10, 20, 30, 40])
        assert list(xs) == [10, 20, 30, 40]
        assert ys[-1] == 1.0
        assert cdf_at([10, 20, 30, 40], 20) == pytest.approx(0.5)

    def test_birth_rate_quarters(self):
        lives = {1: [admin(1, 0, 9)], 2: [admin(2, 100, 109)]}
        rates = quarterly_birth_rate(lives)
        assert rates["ripencc"][(2010, 1)] == 1
        assert rates["ripencc"][(2010, 2)] == 1

    def test_balance(self):
        lives = {1: [admin(1, 0, 50)]}  # born and dies within window
        balance = quarterly_balance(lives, D, D + 400)
        assert balance["ripencc"][(2010, 1)] == 1 - 1  # birth and death same Q

    def test_bit_class_counts(self):
        lives = {100: [admin(100, 0, 9)], 70000: [admin(70000, 0, 9)]}
        per = bit_class_counts(lives, D, D + 10)
        assert per["ripencc"]["16"].at(D) == 1
        assert per["ripencc"]["32"].at(D) == 1

    def test_duration_by_birth_year(self):
        lives = {1: [admin(1, 0, 99)]}
        grouped = duration_by_birth_year(lives)
        assert grouped["ripencc"][2010] == [100]

    def test_country_shares(self):
        lives = {
            1: [admin(1, 0, 999, cc="BR", registry="lacnic")],
            2: [admin(2, 0, 999, cc="BR", registry="lacnic")],
            3: [admin(3, 0, 999, cc="AR", registry="lacnic")],
        }
        rows = country_shares(lives, "lacnic", as_of=D + 5)
        assert rows[0] == ("BR", 2, pytest.approx(2 / 3))

    def test_country_shares_as_of_filter(self):
        lives = {1: [admin(1, 0, 10, cc="BR", registry="lacnic")]}
        assert country_shares(lives, "lacnic", as_of=D + 50) == []


class TestMisconfig:
    def test_prepend_typo(self):
        ev = PathEvidence(3202632026, first_hops=(32026,), prefixes=())
        assert classify_suspect(ev) == MisconfigClass.PREPEND_TYPO

    def test_digit_typo(self):
        ev = PathEvidence(419333, first_hops=(3356,), prefixes=(),
                          moas_partners=(41933,))
        assert classify_suspect(ev) == MisconfigClass.DIGIT_TYPO

    def test_internal_leak(self):
        ev = PathEvidence(290012147, first_hops=(7046,), prefixes=(),
                          covering_origins=(701,))
        assert classify_suspect(ev) == MisconfigClass.INTERNAL_LEAK

    def test_unexplained(self):
        ev = PathEvidence(123456, first_hops=(3356,), prefixes=())
        assert classify_suspect(ev) == MisconfigClass.UNEXPLAINED

    def test_classify_all_buckets(self):
        items = [
            PathEvidence(3202632026, (32026,), ()),
            PathEvidence(419333, (3356,), (), moas_partners=(41933,)),
            PathEvidence(55, (3356,), ()),
        ]
        buckets = classify_all(items)
        assert buckets[MisconfigClass.PREPEND_TYPO] == [3202632026]
        assert buckets[MisconfigClass.DIGIT_TYPO] == [419333]
        assert buckets[MisconfigClass.UNEXPLAINED] == [55]

    def test_collect_path_evidence(self):
        p_small = Prefix.parse("10.1.1.0/24")
        p_big = Prefix.parse("10.0.0.0/12")
        p_same = Prefix.parse("192.0.2.0/24")

        def e(path, prefix):
            return BgpElement(RIB, D, 0, "ris", "rrc00", path[0], prefix, path)

        elements = [
            e((10, 7046, 290012147), p_small),   # suspect with covering /12
            e((10, 701), p_big),                 # the covering aggregate
            e((10, 32026, 3202632026), p_same),  # suspect: prepend typo
            e((20, 41933), p_same),              # MOAS partner on same prefix
        ]
        evidence = collect_path_evidence(elements, {290012147, 3202632026})
        leak = evidence[290012147]
        assert leak.first_hops == (7046,)
        assert 701 in leak.covering_origins
        typo = evidence[3202632026]
        assert typo.first_hops == (32026,)
        assert 41933 in typo.moas_partners
        assert classify_suspect(leak) == MisconfigClass.INTERNAL_LEAK
        assert classify_suspect(typo) == MisconfigClass.PREPEND_TYPO
