"""The packed ``bgp-records/v1`` engine vs. the object-stream baseline.

The record format's contract is the same byte-identical one the
columnar engine carries, plus three of its own: the packed rows decode
back to the exact element stream, the vectorized sanitize/visibility
masks agree with :func:`repro.bgp.sanitize.drop_reason` and
:func:`repro.bgp.visibility.peer_visibility` element for element, and
serial, mmap-fan-out and pickle-fan-out chunk runs are byte-identical.
The property test drives random element batches — withdrawals, loops,
prepends, unroutable prefix lengths, v4 and v6 — through both paths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp import (
    ANNOUNCE,
    RIB,
    WITHDRAW,
    Announcement,
    AsTopology,
    BgpElement,
    Collector,
    RecordSet,
    SanitizeStats,
    SyntheticBgpStream,
    active_asns,
    peer_visibility,
    records_active_asns,
    records_day_classes,
    records_from_elements,
    records_peer_visibility,
    sanitize_reasons,
    sanitize_stats,
)
from repro.bgp.records import (
    RecordEncoder,
    day_slices,
    ensure_backing_file,
    reason_names,
)
from repro.bgp.sanitize import drop_reason, sanitize
from repro.lifetimes.bgp import build_operational_dataset
from repro.net import Prefix
from repro.runtime import ArtifactCache, MetricsRegistry, PipelineStats
from repro.runtime.cache import ACTIVITY_TABLE_VERSION, BGP_RECORDS_VERSION
from repro.runtime.executor import ProcessPoolBackend
from repro.simulation.config import tiny
from repro.simulation.world import WorldSimulator

P1 = Prefix.parse("10.0.0.0/16")
P2 = Prefix.parse("10.1.0.0/16")
BAD_LEN = Prefix.parse("10.2.0.0/25")


def small_world():
    topo = AsTopology()
    topo.add_p2p(10, 20)
    topo.add_p2c(10, 100)
    topo.add_p2c(20, 200)
    topo.add_p2c(100, 1001)
    topo.add_p2c(200, 2001)
    collectors = [
        Collector("route-views", "routeviews", (10, 100)),
        Collector("rrc00", "ris", (20, 200)),
    ]
    return topo, collectors


# -- element strategies ------------------------------------------------------
#
# Small ASN/peer pools so paths collide (loops), peers overlap
# (visibility thresholds bite), and prefix lengths straddle the
# globally-routable bounds in both families.

_asns = st.integers(min_value=1, max_value=12)
_peers = st.integers(min_value=1, max_value=5)


@st.composite
def _prefixes(draw):
    if draw(st.booleans()):
        length = draw(st.integers(min_value=1, max_value=32))
        base = draw(st.integers(min_value=0, max_value=2**32 - 1))
        network = base & (((1 << length) - 1) << (32 - length))
        return Prefix(4, network, length)
    length = draw(st.integers(min_value=1, max_value=128))
    base = draw(st.integers(min_value=0, max_value=2**128 - 1))
    network = base & (((1 << length) - 1) << (128 - length))
    return Prefix(6, network, length)


@st.composite
def _elements(draw):
    etype = draw(st.sampled_from([RIB, ANNOUNCE, WITHDRAW]))
    if etype == WITHDRAW:
        path = ()
    else:
        path = tuple(draw(st.lists(_asns, min_size=1, max_size=6)))
    return BgpElement(
        elem_type=etype,
        day=draw(st.integers(min_value=0, max_value=400)),
        sequence=draw(st.integers(min_value=0, max_value=99)),
        project=draw(st.sampled_from(["ris", "routeviews"])),
        collector=draw(st.sampled_from(["rrc00", "route-views2"])),
        peer_asn=draw(_peers),
        prefix=draw(_prefixes()),
        as_path=path,
    )


_batches = st.lists(_elements(), max_size=60)


class TestVectorizedEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(_batches)
    def test_sanitize_and_visibility_match_reference(self, elems):
        rs = records_from_elements(elems)
        assert len(rs) == len(elems)

        # per-element drop attribution, element for element
        reasons = sanitize_reasons(rs)
        assert reason_names(reasons) == [drop_reason(e) for e in elems]

        # folded stats equal the streaming reference's accounting
        ref_stats = SanitizeStats()
        list(sanitize(elems, ref_stats))
        vec_stats = sanitize_stats(reasons)
        assert vec_stats.kept == ref_stats.kept
        assert vec_stats.dropped == ref_stats.dropped

        # peer-set visibility and the threshold rule at both settings
        assert records_peer_visibility(rs) == peer_visibility(elems)
        for min_peers in (1, 2):
            assert records_active_asns(rs, min_peers=min_peers) == active_asns(
                elems, min_peers=min_peers
            )

    @settings(max_examples=40, deadline=None)
    @given(_batches)
    def test_rows_decode_back_to_the_elements(self, elems):
        rs = records_from_elements(elems)
        assert list(rs.elements()) == elems

    @settings(max_examples=40, deadline=None)
    @given(_batches, st.integers(min_value=1, max_value=7))
    def test_chunked_stats_merge_equals_single_pass(self, elems, n_chunks):
        rs = records_from_elements(elems)
        reasons = sanitize_reasons(rs)
        single = sanitize_stats(reasons)
        merged = SanitizeStats()
        for part in np.array_split(reasons, n_chunks):
            merged.merge(sanitize_stats(part))
        assert merged.kept == single.kept
        assert merged.dropped == single.dropped
        assert merged.total_seen == single.total_seen

    @settings(max_examples=30, deadline=None)
    @given(_batches, st.integers(min_value=1, max_value=50))
    def test_day_chunking_never_changes_the_classification(self, elems,
                                                           day_chunk):
        elems = sorted(elems, key=lambda e: (e.day, e.sequence))
        rs = records_from_elements(elems)
        whole = records_day_classes(rs, day_chunk=10**6)
        chunked = records_day_classes(rs, day_chunk=day_chunk)

        # triple *order* legitimately depends on day_chunk (ASN-major
        # inside a chunk, day-ascending across chunks); the classified
        # (asn, day) -> class content must not
        def triples(run):
            return sorted(
                zip(run.asns.tolist(), run.days.tolist(), run.classes.tolist())
            )

        assert triples(whole) == triples(chunked)
        assert whole.stats.kept == chunked.stats.kept
        assert whole.stats.dropped == chunked.stats.dropped


def _anomalous_window(days=40):
    """A stream window exercising loops, bad lengths and only_peer."""
    topo, collectors = small_world()

    def day_source(day):
        anns = [Announcement(1001, P1)]
        if day % 3 == 0:
            anns.append(Announcement(2001, P2, corrupt_loop=True))
        if day % 5 == 0:
            anns.append(Announcement(1001, BAD_LEN))
        if day % 7 == 0:
            anns.append(Announcement(2001, P2, only_peer=20))
        return anns

    encoder = RecordEncoder(topo, collectors)
    rs = encoder.encode_window(day_source, 0, days - 1, updates=True)
    stream = SyntheticBgpStream(topo, collectors, day_source)
    return rs, stream


class TestEncoderContract:
    def test_encoder_matches_the_object_stream(self):
        rs, stream = _anomalous_window()
        assert list(rs.elements()) == list(stream.elements(0, 39))
        assert rs.day_sorted

    def test_bytes_round_trip(self):
        rs, _ = _anomalous_window()
        clone = RecordSet.from_bytes(rs.to_bytes())
        assert np.array_equal(clone.rows, rs.rows)
        assert clone.collectors == rs.collectors
        assert list(clone.elements()) == list(rs.elements())

    def test_file_round_trip_mmap_and_copy(self, tmp_path):
        rs, _ = _anomalous_window()
        path = rs.to_file(tmp_path / "window.bgprec")
        for mmap in (True, False):
            clone = RecordSet.from_file(path, mmap=mmap)
            assert np.array_equal(clone.rows, rs.rows)
            assert clone.collectors == rs.collectors
            assert clone.day_sorted == rs.day_sorted
        assert RecordSet.from_file(path).source == path

    def test_day_slices_cover_and_respect_boundaries(self):
        rs, _ = _anomalous_window()
        slices = day_slices(rs, 7)
        # a partition of the row range, in order
        assert slices[0][0] == 0 and slices[-1][1] == len(rs)
        assert all(a[1] == b[0] for a, b in zip(slices, slices[1:]))
        days = rs.rows["day"]
        for lo, hi in slices:
            span = int(days[hi - 1]) - int(days[lo])
            assert 0 <= span < 7

    def test_day_slices_reject_bad_input(self):
        rs, _ = _anomalous_window()
        with pytest.raises(ValueError):
            day_slices(rs, 0)
        shuffled = records_from_elements(
            sorted(rs.elements(), key=lambda e: e.peer_asn)[:20]
        )
        if not shuffled.day_sorted:
            with pytest.raises(ValueError):
                day_slices(shuffled, 7)


class TestFanOut:
    def test_serial_mmap_and_pickle_runs_are_identical(self, tmp_path):
        rs, _ = _anomalous_window()
        ensure_backing_file(rs, tmp_path / "window.bgprec")
        serial = records_day_classes(rs, day_chunk=7)
        assert serial.fanout == "inline"
        with ProcessPoolBackend(2, faults=None) as ex:
            over_mmap = records_day_classes(
                rs, day_chunk=7, executor=ex, fanout="mmap"
            )
            over_pickle = records_day_classes(
                rs, day_chunk=7, executor=ex, fanout="pickle"
            )
        assert over_mmap.fanout == "mmap"
        assert over_pickle.fanout == "pickle"
        for run in (over_mmap, over_pickle):
            assert run.chunks == serial.chunks
            assert np.array_equal(run.asns, serial.asns)
            assert np.array_equal(run.days, serial.days)
            assert np.array_equal(run.classes, serial.classes)
            assert run.stats.kept == serial.stats.kept
            assert run.stats.dropped == serial.stats.dropped

    def test_mmap_fanout_requires_a_backing_file(self):
        rs, _ = _anomalous_window()
        with pytest.raises(ValueError):
            records_day_classes(rs, fanout="mmap")
        with pytest.raises(ValueError):
            records_day_classes(rs, fanout="teleport")


class TestRawCache:
    def test_store_and_reopen_via_mmap(self, tmp_path):
        rs, _ = _anomalous_window()
        cache = ArtifactCache(tmp_path, faults=None)
        key = cache.key_for(artifact="bgp-records",
                            records_version=BGP_RECORDS_VERSION, window=40)
        stored = cache.store_raw(key, rs.to_bytes())
        assert stored is not None
        path = cache.load_raw_path(key)
        assert path == stored and cache.hits == 1
        clone = RecordSet.from_file(path)
        assert np.array_equal(clone.rows, rs.rows)

    def test_corrupt_raw_entry_is_quarantined(self, tmp_path):
        rs, _ = _anomalous_window()
        cache = ArtifactCache(tmp_path, faults=None)
        key = cache.key_for(artifact="bgp-records", window=40)
        stored = cache.store_raw(key, rs.to_bytes())
        stored.write_bytes(b"garbage")
        assert cache.load_raw_path(key) is None
        assert cache.corrupt == 1
        assert cache.misses == 1


class TestRecordsEngine:
    @pytest.fixture(scope="class")
    def world(self):
        return WorldSimulator(tiny(11)).run()

    @pytest.fixture(scope="class")
    def window(self, world):
        end = world.config.end_day
        return end - 60, end

    def test_records_engine_matches_columnar(self, world, window):
        start, end = window
        rec_lives, rec_tables = build_operational_dataset(
            world, start=start, end=end, engine="records",
        )
        col_lives, col_tables = build_operational_dataset(
            world, start=start, end=end, engine="columnar",
        )
        assert rec_tables == col_tables
        assert rec_lives == col_lives

    def test_records_path_mmap_reuse_and_parallel(self, world, window,
                                                  tmp_path):
        start, end = window
        container = tmp_path / "window.bgprec"
        cold_stats = PipelineStats(metrics=MetricsRegistry())
        cold_lives, cold_tables = build_operational_dataset(
            world, start=start, end=end, engine="records",
            records_path=container, stats=cold_stats,
        )
        assert container.exists()
        spans = {s.name: s for s in cold_stats.tracer.spans}
        assert spans["bgp:stream"].attrs["source"] == "encoded"
        assert spans["bgp:visibility"].attrs["engine"] == "records"

        warm_stats = PipelineStats(metrics=MetricsRegistry())
        warm_lives, warm_tables = build_operational_dataset(
            world, start=start, end=end, engine="records",
            records_path=container, records_fanout="mmap",
            executor="process:2", stats=warm_stats,
        )
        spans = {s.name: s for s in warm_stats.tracer.spans}
        assert spans["bgp:stream"].attrs["source"] == "mmap"
        assert spans["bgp:visibility"].attrs["fanout"] == "mmap"
        assert warm_tables == cold_tables
        assert warm_lives == cold_lives

    def test_raw_cache_serves_the_second_run(self, world, window, tmp_path):
        start, end = window
        cache = ArtifactCache(tmp_path, faults=None)
        cold_lives, _ = build_operational_dataset(
            world, start=start, end=end, engine="records", cache=cache,
            stats=PipelineStats(metrics=MetricsRegistry()),
        )
        # run 1 stored both the activity-table artifact and the raw
        # records container; drop the table entry so run 2 must rebuild
        # from the raw records — which it should mmap, not re-encode
        table_key = cache.key_for(
            artifact="activity-table",
            table_version=ACTIVITY_TABLE_VERSION,
            config=world.config,
            start=start,
            end=end,
            min_corroboration=2,
        )
        cache.path_for(table_key).unlink()
        cache.manifest_path_for(table_key).unlink()
        warm_stats = PipelineStats(metrics=MetricsRegistry())
        warm_lives, _ = build_operational_dataset(
            world, start=start, end=end, engine="records", cache=cache,
            stats=warm_stats,
        )
        spans = {s.name: s for s in warm_stats.tracer.spans}
        assert spans["bgp:stream"].attrs["source"] == "cache"
        assert warm_lives == cold_lives
