"""End-to-end message-level pipeline, cross-validated against the fast
path.

The paper's pipeline is: RIB/update dumps → BGPStream → sanitize →
2-peer visibility → daily activity → 30-day-timeout lifetimes.  The
fast path skips the message layer and uses the simulator's activity
intervals directly.  Over a bounded window the two must agree.
"""

import pytest

from repro.bgp import SyntheticBgpStream, active_asns, sanitize
from repro.core import collect_path_evidence, classify_suspect, MisconfigClass
from repro.lifetimes import activity_from_elements
from repro.simulation import WorldSimulator, tiny
from repro.timeline import from_iso


@pytest.fixture(scope="module")
def world():
    return WorldSimulator(tiny(seed=3)).run()


@pytest.fixture(scope="module")
def window(world):
    start = from_iso("2012-03-01")
    end = from_iso("2012-04-15")
    stream = SyntheticBgpStream(
        world.topology, world.collectors, world.announcements_for_day
    )
    elements_by_day = {
        day: list(sanitize(stream.elements_for_day(day)))
        for day in range(start, end + 1)
    }
    return start, end, elements_by_day


class TestMessageLevelEquivalence:
    def test_origin_activity_matches_fast_path(self, world, window):
        start, end, elements_by_day = window
        message_level = activity_from_elements(elements_by_day)
        mismatches = []
        for asn, activity in world.activities.items():
            expected = set(activity.observed.clamp(start, end).days())
            got_activity = message_level.get(asn)
            got = (
                set(got_activity.observed.clamp(start, end).days())
                if got_activity
                else set()
            )
            # the message layer also sees ASNs as *transit* hops, so
            # fast-path days must be a subset of message-level days
            if not expected <= got:
                mismatches.append((asn, sorted(expected - got)[:5]))
        assert not mismatches, mismatches[:5]

    def test_transit_asns_observed_beyond_origins(self, world, window):
        _start, _end, elements_by_day = window
        day, elements = next(iter(elements_by_day.items()))
        active = active_asns(elements)
        origins = {e.origin for e in elements if e.origin is not None}
        assert active - origins  # transit hops count too (§3.2)

    def test_single_peer_asns_rejected(self, world, window):
        start, end, elements_by_day = window
        spurious_asns = {
            asn
            for asn, activity in world.activities.items()
            if activity.single_peer.clamp(start, end)
            and not activity.observed.clamp(start, end)
        }
        if not spurious_asns:
            pytest.skip("window has no spurious-only ASNs")
        for day, elements in elements_by_day.items():
            active = active_asns(elements)
            for asn in spurious_asns:
                assert asn not in active

    def test_forged_origins_visible(self, world, window):
        start, end, elements_by_day = window
        active_events = [
            e for e in world.events
            if e.interval.start <= end and start <= e.interval.end
        ]
        if not active_events:
            pytest.skip("window has no anomaly events")
        event = active_events[0]
        day = max(event.interval.start, start)
        origins = {
            el.origin for el in elements_by_day[day] if el.origin is not None
        }
        assert event.origin in origins

    def test_misconfig_evidence_extraction(self, world):
        """Drive the §6.4 classifier end-to-end over event windows."""
        from repro.bgp import FAT_FINGER_PREPEND

        events = [e for e in world.events if e.kind == FAT_FINGER_PREPEND]
        if not events:
            pytest.skip("no prepend events in this world")
        event = events[0]
        stream = SyntheticBgpStream(
            world.topology, world.collectors, world.announcements_for_day
        )
        day = event.interval.start
        elements = list(sanitize(stream.elements_for_day(day)))
        evidence = collect_path_evidence(elements, {event.origin})
        assert classify_suspect(evidence[event.origin]) == (
            MisconfigClass.PREPEND_TYPO
        )
