"""Columnar activity engine vs. the object-stream pipeline.

The engine's contract is byte-identical output: for any scenario, the
per-ASN :class:`OperationalActivity` tables it derives from announcement
diffs must equal what streaming every day through ``SyntheticBgpStream``
→ ``sanitize`` → ``peer_visibility`` produces.  The property test
drives both paths over seeded scenarios that include the §6 anomaly
decorations (forged origins, single-peer spurious data, corrupted
loops, prepends) and unroutable prefix lengths, under both the paper's
``min_corroboration=2`` and the ablation's ``1``.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp import (
    Announcement,
    AsTopology,
    Collector,
    PathTable,
    SyntheticBgpStream,
    active_asns,
    day_visibility,
    decorate_path,
    peer_visibility,
    sanitize,
)
from repro.bgp.activity import (
    ActivityEngine,
    build_activity_tables,
    build_world_activity_tables,
    schedule_from_day_source,
)
from repro.bgp.sanitize import SanitizeStats
from repro.lifetimes.bgp import (
    activity_from_elements,
    build_operational_dataset,
)
from repro.net import Prefix
from repro.runtime import ArtifactCache, PipelineStats
from repro.simulation.config import tiny
from repro.simulation.world import WorldSimulator

P1 = Prefix.parse("10.0.0.0/16")
P2 = Prefix.parse("10.1.0.0/16")
BAD_LEN = Prefix.parse("10.2.0.0/25")


def _build_small_world():
    topo = AsTopology()
    topo.add_p2p(10, 20)
    topo.add_p2c(10, 100)
    topo.add_p2c(20, 200)
    topo.add_p2c(100, 1001)
    topo.add_p2c(200, 2001)
    collectors = [
        Collector("route-views", "routeviews", (10, 100)),
        Collector("rrc00", "ris", (20, 200)),
    ]
    return topo, collectors


#: Shared read-only topology: nothing in the pipeline mutates it, and
#: hypothesis forbids function-scoped fixtures under @given.
SMALL_WORLD = _build_small_world()


@pytest.fixture
def small_world():
    return SMALL_WORLD


def legacy_tables(topo, collectors, day_source, start, end, min_corroboration):
    """The object-stream reference path, day by day."""
    stream = SyntheticBgpStream(topo, collectors, day_source)
    elements_by_day = {
        day: list(sanitize(stream.elements_for_day(day)))
        for day in range(start, end + 1)
    }
    return activity_from_elements(
        elements_by_day, min_corroboration=min_corroboration
    )


# -- building blocks ---------------------------------------------------------


class TestPathTable:
    def test_interning_is_stable_and_dense(self):
        table = PathTable()
        a = table.intern((10, 100, 1001))
        b = table.intern((20, 200, 2001))
        assert (a, b) == (0, 1)
        assert table.intern((10, 100, 1001)) == a
        assert len(table) == 2
        assert table.paths[a] == (10, 100, 1001)

    def test_columns_precomputed(self):
        table = PathTable()
        pid = table.intern((10, 100, 100, 1001, 10))
        assert table.distinct[pid] == (10, 100, 1001)
        assert table.has_loop[pid]
        clean = table.intern((10, 100, 1001, 1001))
        assert not table.has_loop[clean]

    def test_decorate_path_matches_stream(self):
        ann = Announcement(1001, P1, forged_origin=65001, prepend=2)
        assert decorate_path((10, 100, 1001), ann) == (
            10, 100, 1001, 65001, 65001, 65001,
        )
        loop = Announcement(1001, P1, corrupt_loop=True)
        assert decorate_path((10, 100, 1001), loop) == (10, 100, 1001, 10)


class TestDayVisibilityShim:
    def test_matches_element_loop(self, small_world):
        topo, collectors = small_world
        anns = [Announcement(1001, P1), Announcement(2001, P2, only_peer=20)]
        stream = SyntheticBgpStream(topo, collectors, lambda d: anns)
        elements = list(sanitize(stream.elements_for_day(5)))
        view = day_visibility(topo, collectors, anns)
        assert peer_visibility(view) == peer_visibility(elements)
        for min_peers in (1, 2):
            assert active_asns(view, min_peers=min_peers) == active_asns(
                elements, min_peers=min_peers
            )

    def test_threshold_still_validated(self, small_world):
        topo, collectors = small_world
        view = day_visibility(topo, collectors, [Announcement(1001, P1)])
        with pytest.raises(ValueError):
            active_asns(view, min_peers=0)


class TestEngineGuards:
    def test_days_must_ascend(self, small_world):
        topo, collectors = small_world
        engine = ActivityEngine(topo, collectors)
        engine.apply(5, [Announcement(1001, P1)])
        with pytest.raises(ValueError):
            engine.apply(5, [Announcement(2001, P2)])

    def test_cannot_remove_more_than_live(self, small_world):
        topo, collectors = small_world
        engine = ActivityEngine(topo, collectors)
        engine.apply(5, [Announcement(1001, P1)])
        with pytest.raises(ValueError):
            engine.apply(6, removed=[Announcement(1001, P1)] * 2)

    def test_unknown_engine_rejected(self):
        world = WorldSimulator(tiny(5)).run()
        with pytest.raises(ValueError):
            build_operational_dataset(world, engine="hexagonal")


# -- the equivalence property ------------------------------------------------

ANNOUNCEMENT = st.builds(
    Announcement,
    announcer=st.sampled_from([1001, 2001, 100, 200]),
    prefix=st.sampled_from([P1, P2, BAD_LEN]),
    forged_origin=st.sampled_from([None, None, 65001, 1001]),
    prepend=st.sampled_from([0, 0, 2]),
    only_peer=st.sampled_from([None, None, None, 10]),
    corrupt_loop=st.booleans(),
)

#: (announcement, first_day, duration) episodes over a ~3-week window.
SCENARIO = st.lists(
    st.tuples(
        ANNOUNCEMENT, st.integers(min_value=0, max_value=18),
        st.integers(min_value=1, max_value=12),
    ),
    min_size=0,
    max_size=12,
)


def day_source_from_episodes(episodes):
    by_day = {}
    for ann, first, duration in episodes:
        for day in range(first, first + duration):
            by_day.setdefault(day, []).append(ann)
    return lambda day: by_day.get(day, [])


class TestColumnarEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(episodes=SCENARIO, min_corroboration=st.sampled_from([1, 2]))
    def test_matches_object_stream(self, episodes, min_corroboration):
        topo, collectors = SMALL_WORLD
        source = day_source_from_episodes(episodes)
        start, end = 0, 30
        expected = legacy_tables(
            topo, collectors, source, start, end, min_corroboration
        )
        tables, report = build_activity_tables(
            topo, collectors, source, start, end,
            min_corroboration=min_corroboration,
        )
        assert tables == expected
        assert report.days == end - start + 1

    @settings(max_examples=20, deadline=None)
    @given(episodes=SCENARIO)
    def test_chunking_and_rebuild_policy_invariant(self, episodes):
        """Chunk size and the full-rebuild valve never change output."""
        topo, collectors = SMALL_WORLD
        source = day_source_from_episodes(episodes)
        start, end = 0, 30
        reference, _ = build_activity_tables(
            topo, collectors, source, start, end,
        )
        chunked_small, _ = build_activity_tables(
            topo, collectors, source, start, end, day_chunk=4,
        )
        always_rebuild, _ = build_activity_tables(
            topo, collectors, source, start, end, full_rebuild_fraction=0.0,
        )
        never_rebuild, _ = build_activity_tables(
            topo, collectors, source, start, end,
            full_rebuild_fraction=1e9,
        )
        assert chunked_small == reference
        assert always_rebuild == reference
        assert never_rebuild == reference

    @settings(max_examples=20, deadline=None)
    @given(episodes=SCENARIO)
    def test_sanitize_accounting_matches(self, episodes):
        """Day-weighted kept/dropped counters equal per-element counts."""
        topo, collectors = SMALL_WORLD
        source = day_source_from_episodes(episodes)
        start, end = 0, 30
        stream = SyntheticBgpStream(topo, collectors, source)
        stats = SanitizeStats()
        for day in range(start, end + 1):
            for _ in sanitize(stream.elements_for_day(day), stats):
                pass
        _, report = build_activity_tables(
            topo, collectors, source, start, end,
        )
        assert report.kept == stats.kept
        assert report.dropped == stats.dropped

    def test_schedule_diffs_are_minimal(self, small_world):
        source = day_source_from_episodes(
            [(Announcement(1001, P1), 2, 5), (Announcement(2001, P2), 4, 2)]
        )
        schedule = schedule_from_day_source(source, 0, 10)
        assert Counter(dict(schedule.base)) == Counter()
        changed = {day for day, _, _ in schedule.changes}
        # the multiset changes exactly when an episode starts or ends
        assert changed == {2, 4, 6, 7}


class TestWorldPipeline:
    @pytest.fixture(scope="class")
    def world(self):
        return WorldSimulator(tiny(11)).run()

    @pytest.fixture(scope="class")
    def window(self, world):
        end = world.config.end_day
        return end - 120, end

    def test_world_engines_agree(self, world, window):
        start, end = window
        columnar, _ = build_world_activity_tables(world, start=start, end=end)
        generic, _ = build_activity_tables(
            world.topology, world.collectors, world.announcements_for_day,
            start, end,
        )
        expected = legacy_tables(
            world.topology, world.collectors, world.announcements_for_day,
            start, end, 2,
        )
        assert columnar == expected
        assert generic == expected

    def test_operational_dataset_engines_agree(self, world, window):
        start, end = window
        for min_peers in (1, 2):
            col_lives, col_tables = build_operational_dataset(
                world, start=start, end=end, engine="columnar",
                min_peers=min_peers,
            )
            obj_lives, obj_tables = build_operational_dataset(
                world, start=start, end=end, engine="object",
                min_peers=min_peers,
            )
            assert col_tables == obj_tables
            assert col_lives == obj_lives
            assert list(col_lives) == list(obj_lives)

    def test_cache_warm_start_skips_stream_stages(self, world, window,
                                                  tmp_path):
        start, end = window
        cache = ArtifactCache(tmp_path, faults=None)  # pins exact hit counts
        cold_stats = PipelineStats()
        cold_lives, _ = build_operational_dataset(
            world, start=start, end=end, cache=cache, stats=cold_stats,
        )
        assert {"bgp:stream", "bgp:sanitize", "bgp:visibility"} <= {
            s.name for s in cold_stats.stages
        }

        warm_stats = PipelineStats()
        warm_lives, _ = build_operational_dataset(
            world, start=start, end=end, cache=cache, stats=warm_stats,
        )
        assert cache.hits == 1
        assert [s.name for s in warm_stats.stages] == [
            "cache:lookup", "bgp:segment",
        ]
        assert warm_lives == cold_lives

        # the object engine serves from the same entry: the key holds
        # the *output* contract, not the engine that built it
        cross_stats = PipelineStats()
        cross_lives, _ = build_operational_dataset(
            world, start=start, end=end, engine="object", cache=cache,
            stats=cross_stats,
        )
        assert cache.hits == 2
        assert [s.name for s in cross_stats.stages] == [
            "cache:lookup", "bgp:segment",
        ]
        assert cross_lives == cold_lives

    def test_segmentation_params_outside_cache_key(self, world, window,
                                                   tmp_path):
        start, end = window
        cache = ArtifactCache(tmp_path, faults=None)  # pins exact hit counts
        build_operational_dataset(world, start=start, end=end, cache=cache)
        relaxed, _ = build_operational_dataset(
            world, start=start, end=end, cache=cache, timeout=5, min_peers=1,
        )
        assert cache.hits == 1  # timeout/min_peers re-segment a cached table
        strict, _ = build_operational_dataset(
            world, start=start, end=end, cache=cache, timeout=5, min_peers=2,
        )
        # min_peers=1 folds single-peer days in, so it can only add lives
        assert len(relaxed) >= len(strict)
