"""Unit tests for the simulation sub-models (growth, countries,
behavior, organizations, prefixes, anomaly planning)."""

import random

import pytest

from repro.bgp import (
    FAT_FINGER_DIGIT,
    FAT_FINGER_PREPEND,
    INTERNAL_LEAK,
    NOISE_ORIGIN,
    SQUAT_DORMANT,
)
from repro.simulation import (
    AnomalyPlanner,
    BehaviorModel,
    DormantTarget,
    OrgDirectory,
    PrefixPlan,
    Profile,
    WorldConfig,
    country_for,
    daily_birth_rate,
    draw_lifetime_days,
    poisson,
    tiny,
    yearly_births,
)
from repro.simulation.growth import MID_LIFE_DEATH_SHARE, SHORT_LIFE_SHARE
from repro.timeline import from_iso

D = from_iso("2010-01-01")
END = from_iso("2021-03-01")


class TestConfig:
    def test_scaled(self):
        config = WorldConfig(scale=0.1)
        assert config.scaled(100) == 10
        assert config.scaled(3) == 1  # at least one
        assert config.scaled(0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            WorldConfig(scale=0.0)
        with pytest.raises(ValueError):
            WorldConfig(start_day=100, end_day=50)

    def test_presets_ordered(self):
        from repro.simulation import bench

        assert tiny().scale < bench().scale


class TestGrowth:
    def test_yearly_births_ripencc_dominates_arin_late(self):
        assert yearly_births("ripencc", 2011) > yearly_births("arin", 2011)

    def test_apnic_lacnic_2014_ramp(self):
        assert yearly_births("apnic", 2016) > 1.4 * yearly_births("apnic", 2012)
        assert yearly_births("lacnic", 2016) > 1.5 * yearly_births("lacnic", 2012)

    def test_afrinic_zero_before_2005(self):
        assert yearly_births("afrinic", 2004) == 0

    def test_daily_rate_scaling(self):
        full = daily_birth_rate("ripencc", D, 1.0)
        tenth = daily_birth_rate("ripencc", D, 0.1)
        assert tenth == pytest.approx(full / 10)

    def test_poisson_mean(self):
        rng = random.Random(0)
        samples = [poisson(rng, 2.0) for _ in range(4000)]
        assert 1.9 < sum(samples) / len(samples) < 2.1

    def test_poisson_zero(self):
        assert poisson(random.Random(0), 0) == 0

    def test_short_life_ordering(self):
        assert SHORT_LIFE_SHARE["lacnic"] > SHORT_LIFE_SHARE["arin"]
        assert MID_LIFE_DEATH_SHARE["arin"] == max(MID_LIFE_DEATH_SHARE.values())

    def test_draw_lifetime_respects_window(self):
        rng = random.Random(1)
        for _ in range(300):
            length = draw_lifetime_days("arin", rng, days_remaining=100)
            assert length is None or length < 100

    def test_draw_lifetime_short_share(self):
        rng = random.Random(2)
        draws = [draw_lifetime_days("lacnic", rng, days_remaining=10000)
                 for _ in range(4000)]
        short = sum(1 for d in draws if d is not None and d <= 365)
        assert 0.10 < short / len(draws) < 0.16  # ~13% for LACNIC


class TestCountries:
    def test_apnic_india_rises(self):
        rng = random.Random(0)
        early = sum(country_for("apnic", 2005, rng) == "IN" for _ in range(3000))
        rng = random.Random(0)
        late = sum(country_for("apnic", 2018, rng) == "IN" for _ in range(3000))
        assert late > 2 * early

    def test_arin_us_dominates(self):
        rng = random.Random(0)
        us = sum(country_for("arin", 2010, rng) == "US" for _ in range(2000))
        assert us / 2000 > 0.85

    def test_lacnic_brazil_leads(self):
        rng = random.Random(0)
        br = sum(country_for("lacnic", 2018, rng) == "BR" for _ in range(2000))
        assert br / 2000 > 0.6

    def test_deterministic(self):
        assert [country_for("ripencc", 2012, random.Random(7)) for _ in range(5)] == [
            country_for("ripencc", 2012, random.Random(7)) for _ in range(5)
        ]


class TestOrganizations:
    def test_new_org_ids_unique(self):
        directory = OrgDirectory()
        a = directory.new_org("arin", "US")
        b = directory.new_org("arin", "US")
        assert a.org_id != b.org_id
        assert len(directory) == 2

    def test_nir_prefix(self):
        directory = OrgDirectory()
        org = directory.new_org("apnic", "JP", nir=True)
        assert org.org_id.startswith("NIR-")

    def test_sibling_map(self):
        directory = OrgDirectory()
        org = directory.new_org("arin", "US")
        directory.attach(org, 100)
        directory.attach(org, 101)
        assert directory.sibling_map()[org.org_id] == [100, 101]
        assert org.is_sibling_org

    def test_random_existing_empty(self):
        directory = OrgDirectory()
        assert directory.random_existing("arin", random.Random(0)) is None


class TestPrefixPlan:
    def test_own_prefix_stable(self):
        plan = PrefixPlan()
        assert plan.own_prefix(100) == plan.own_prefix(100)

    def test_own_prefixes_distinct(self):
        plan = PrefixPlan()
        seen = {plan.own_prefix(asn) for asn in range(1, 2000)}
        assert len(seen) == 1999

    def test_hijack_prefixes_fresh(self):
        plan = PrefixPlan()
        a = plan.hijack_prefixes(3)
        b = plan.hijack_prefixes(3)
        assert not set(a) & set(b)

    def test_leak_pair_containment(self):
        plan = PrefixPlan()
        covering, leaked = plan.leak_pair()
        assert covering.strictly_contains(leaked)


class TestBehaviorModel:
    def make(self, seed=0, **overrides):
        return BehaviorModel(tiny().with_overrides(**overrides), random.Random(seed))

    def test_unused_probability_country_multiplier(self):
        model = self.make()
        assert model.unused_probability("CN", hoarder=False, via_nir=False) > \
            3 * model.unused_probability("US", hoarder=False, via_nir=False)

    def test_hoarders_mostly_unused(self):
        model = self.make()
        assert model.unused_probability("US", hoarder=True, via_nir=False) == \
            pytest.approx(0.7)

    def test_unused_capped(self):
        model = self.make(unused_probability=0.5)
        assert model.unused_probability("CN", hoarder=False, via_nir=False) <= 0.97

    def test_normal_life_within_bounds(self):
        model = self.make()
        for _ in range(50):
            b = model.behavior_for_life(
                start=D, end=D + 2000, window_end=END,
                reclaim_median=300, cc="US",
            )
            if b.profile == Profile.UNUSED or b.dangling:
                continue
            span = b.activity.span
            if span is None:
                continue
            if not b.early_start:
                assert span.start >= D
            if span.end > D + 2000:
                # only ghost bursts may exceed the admin end
                assert span.end <= END

    def test_conference_many_intervals(self):
        model = self.make()
        b = model.behavior_for_life(
            start=D, end=None, window_end=END,
            reclaim_median=300, cc="ZA", conference=True,
        )
        assert b.profile == Profile.CONFERENCE
        assert len(b.activity) > 10

    def test_retired_leaves_dormant_tail(self):
        found = False
        for seed in range(40):
            model = self.make(seed=seed)
            b = model.behavior_for_life(
                start=D, end=None, window_end=END,
                reclaim_median=300, cc="US",
            )
            if b.dormant_from is not None:
                found = True
                assert b.dormant_from <= END
                assert b.activity.span.end < b.dormant_from
        assert found

    def test_spurious_days_inside_window(self):
        model = self.make()
        days = model.spurious_days(D, D + 100)
        assert all(D <= d <= D + 100 for d in days.days())


class TestAnomalyPlanner:
    def make_planner(self, seed=0):
        return AnomalyPlanner(
            config=tiny().with_overrides(scale=1.0),
            rng=random.Random(seed),
            prefixes=PrefixPlan(),
            window_end=END,
        )

    def test_dormant_squats_signature(self):
        planner = self.make_planner()
        targets = [
            DormantTarget(asn=100 + i, silent_from=D, silent_to=END,
                          admin_start=D - 2000, admin_end=END)
            for i in range(80)
        ]
        planner.plan_dormant_squats(targets, factories=[9999])
        events = [e for e in planner.events if e.kind == SQUAT_DORMANT]
        assert events
        for event in events:
            assert event.interval.start - D >= 1100  # dormancy respected
            assert event.announcer == 9999
            assert event.is_forged

    def test_post_dealloc_requires_dormancy(self):
        planner = self.make_planner()
        candidates = [
            (1, D, D - 100),        # recently active: skipped
            (2, D, D - 5000),       # long-dormant: eligible
            (3, D, None),           # never active: eligible
        ]
        planner.plan_post_dealloc_squats(candidates, factories=[9999])
        squatted = {e.origin for e in planner.events}
        assert 1 not in squatted
        assert squatted <= {2, 3}
        assert squatted

    def test_prepend_origin_is_doubled_victim(self):
        planner = self.make_planner()
        planner.plan_fat_finger_prepends([32026], ever_allocated={32026})
        events = [e for e in planner.events if e.kind == FAT_FINGER_PREPEND]
        assert len(events) == 1
        assert events[0].origin == 3202632026
        assert events[0].announcer == 32026

    def test_prepend_skips_oversized(self):
        planner = self.make_planner()
        planner.plan_fat_finger_prepends([99999], ever_allocated={99999})
        assert not planner.events  # 9999999999 exceeds the 32-bit space

    def test_digit_typo_moas(self):
        from repro.timeline import Interval

        planner = self.make_planner()
        span = Interval(D, END - 100)
        planner.plan_fat_finger_digits([(41933, span)], ever_allocated={41933})
        events = [e for e in planner.events if e.kind == FAT_FINGER_DIGIT]
        assert len(events) == 1
        event = events[0]
        assert event.victim == 41933
        assert event.origin != 41933
        assert event.announcer == 41933  # the victim's own router typos
        # MOAS: the typo announces the victim's own prefix
        assert event.prefixes == (planner.prefixes.own_prefix(41933),)
        # the typo window falls inside the victim's activity span
        assert span.contains_interval(event.interval)

    def test_internal_leaks_are_huge_asns(self):
        planner = self.make_planner()
        planner.plan_internal_leaks([701], ever_allocated={701})
        events = [e for e in planner.events if e.kind == INTERNAL_LEAK]
        assert events
        for event in events:
            assert event.origin >= 10**8
            assert event.interval.duration >= 180

    def test_noise_origins_duration_skew(self):
        planner = self.make_planner()
        planner.plan_noise_origins([701], ever_allocated={701})
        events = [e for e in planner.events if e.kind == NOISE_ORIGIN]
        assert len(events) > 100
        one_day = sum(1 for e in events if e.interval.duration == 1)
        assert 0.35 < one_day / len(events) < 0.65

    def test_activity_additions_match_events(self):
        planner = self.make_planner()
        planner.plan_fat_finger_prepends([32026], ever_allocated={32026})
        additions = planner.activity_additions()
        event = planner.events[0]
        assert set(additions) == {event.origin}
        assert additions[event.origin].span == event.interval
