"""Unit tests for repro.timeline.dates."""

import datetime

import pytest

from repro.timeline import dates


class TestConversions:
    def test_day_roundtrip(self):
        d = dates.day(2017, 9, 20)
        assert dates.to_iso(d) == "2017-09-20"
        assert dates.to_date(d) == datetime.date(2017, 9, 20)

    def test_from_iso(self):
        assert dates.from_iso("2003-10-09") == dates.PAPER_START

    def test_from_iso_rejects_garbage(self):
        with pytest.raises(ValueError):
            dates.from_iso("not-a-date")

    def test_paper_window_is_17_years(self):
        years = (dates.PAPER_END - dates.PAPER_START) / 365.25
        assert 17 < years < 17.5

    def test_add_days(self):
        d = dates.day(2020, 2, 28)
        assert dates.to_iso(dates.add_days(d, 1)) == "2020-02-29"
        assert dates.to_iso(dates.add_days(d, 2)) == "2020-03-01"
        assert dates.to_iso(dates.add_days(d, -28)) == "2020-01-31"


class TestBuckets:
    def test_year_of(self):
        assert dates.year_of(dates.day(1999, 12, 31)) == 1999
        assert dates.year_of(dates.day(2000, 1, 1)) == 2000

    def test_month_of(self):
        assert dates.month_of(dates.day(2010, 7, 15)) == (2010, 7)

    @pytest.mark.parametrize(
        "month,quarter", [(1, 1), (3, 1), (4, 2), (6, 2), (7, 3), (9, 3), (10, 4), (12, 4)]
    )
    def test_quarter_of(self, month, quarter):
        assert dates.quarter_of(dates.day(2015, month, 20)) == (2015, quarter)

    def test_quarter_start(self):
        assert dates.to_iso(dates.quarter_start(2015, 1)) == "2015-01-01"
        assert dates.to_iso(dates.quarter_start(2015, 4)) == "2015-10-01"

    def test_quarter_start_rejects_bad_quarter(self):
        with pytest.raises(ValueError):
            dates.quarter_start(2015, 5)

    def test_month_and_year_start(self):
        assert dates.to_iso(dates.month_start(2012, 6)) == "2012-06-01"
        assert dates.to_iso(dates.year_start(2012)) == "2012-01-01"


class TestSpans:
    def test_days_between_inclusive(self):
        d = dates.day(2020, 1, 1)
        assert dates.days_between(d, d) == 1
        assert dates.days_between(d, d + 30) == 31

    def test_days_between_rejects_reversed(self):
        d = dates.day(2020, 1, 1)
        with pytest.raises(ValueError):
            dates.days_between(d, d - 1)

    def test_iter_days(self):
        d = dates.day(2020, 1, 1)
        assert list(dates.iter_days(d, d + 2)) == [d, d + 1, d + 2]

    def test_iter_quarters_spans_year_boundary(self):
        qs = list(
            dates.iter_quarters(dates.day(2014, 11, 5), dates.day(2015, 2, 1))
        )
        assert qs == [(2014, 4), (2015, 1)]

    def test_iter_quarters_single(self):
        qs = list(dates.iter_quarters(dates.day(2014, 5, 1), dates.day(2014, 6, 1)))
        assert qs == [(2014, 2)]


def test_today_guard_always_raises():
    with pytest.raises(RuntimeError, match="deterministic"):
        dates.today_guard()
