"""Tests for the pluggable execution backends (repro.runtime.executor).

The contract under test is the determinism clause: ``map`` preserves
input order on every backend, and :func:`chunked` boundaries depend
only on the item list and the chunk size — never on the backend.
"""

from __future__ import annotations

import pytest

from repro.runtime import (
    DEFAULT_CHUNK_SIZE,
    PipelineExecutor,
    ProcessPoolBackend,
    SerialExecutor,
    chunked,
    resolve_executor,
)


def _square(x: int) -> int:  # module-level so the process pool can pickle it
    return x * x


class TestSerialExecutor:
    def test_map_preserves_order(self):
        ex = SerialExecutor()
        assert ex.map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_map_empty(self):
        assert SerialExecutor().map(_square, []) == []

    def test_context_manager(self):
        with SerialExecutor() as ex:
            assert ex.map(_square, [2]) == [4]

    def test_close_is_idempotent(self):
        ex = SerialExecutor()
        ex.close()
        ex.close()


class TestProcessPoolBackend:
    # faults=None throughout: these tests pin exact pool lifecycle
    # behaviour, which ambient REPRO_FAULT_SEED injection (the CI
    # fault-injection run) would perturb with retries

    def test_map_preserves_order(self):
        with ProcessPoolBackend(2, faults=None) as ex:
            assert ex.map(_square, list(range(10))) == [i * i for i in range(10)]

    def test_single_item_runs_inline(self):
        ex = ProcessPoolBackend(2, faults=None)
        try:
            assert ex.map(_square, [7]) == [49]
            # the single-item shortcut must not have spun up the pool
            assert ex._pool is None
        finally:
            ex.close()

    def test_empty_map(self):
        ex = ProcessPoolBackend(2, faults=None)
        try:
            assert ex.map(_square, []) == []
        finally:
            ex.close()

    def test_pool_reused_across_stages(self):
        with ProcessPoolBackend(2, faults=None) as ex:
            ex.map(_square, [1, 2, 3])
            pool = ex._pool
            ex.map(_square, [4, 5, 6])
            assert ex._pool is pool

    def test_rejects_single_job(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(1)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(2, retries=-1)

    def test_rejects_unknown_on_failure_policy(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(2, on_failure="shrug")

    def test_close_releases_pool(self):
        ex = ProcessPoolBackend(2, faults=None)
        ex.map(_square, [1, 2])
        ex.close()
        assert ex._pool is None
        ex.close()  # idempotent


class TestResolveExecutor:
    def test_none_is_serial(self):
        assert isinstance(resolve_executor(None), SerialExecutor)

    @pytest.mark.parametrize(
        "spec", [0, 1, "serial", "process:1", "process:0"]
    )
    def test_serial_specs(self, spec):
        # any spec resolving to one worker — including the string forms
        # "process:1"/"process:0" — must yield a SerialExecutor, never
        # a 1-worker pool
        assert isinstance(resolve_executor(spec), SerialExecutor)

    def test_process_on_single_core_host_is_serial(self, monkeypatch):
        import repro.runtime.executor as executor_mod

        monkeypatch.setattr(executor_mod.os, "cpu_count", lambda: 1)
        assert isinstance(resolve_executor("process"), SerialExecutor)

    def test_int_spec_sets_jobs(self):
        ex = resolve_executor(3)
        assert isinstance(ex, ProcessPoolBackend)
        assert ex.jobs == 3
        ex.close()

    def test_process_string_spec(self):
        ex = resolve_executor("process:4")
        assert isinstance(ex, ProcessPoolBackend)
        assert ex.jobs == 4
        ex.close()

    def test_retry_policy_forwarded_to_pool(self):
        ex = resolve_executor(3, retries=5, on_failure="serial")
        assert isinstance(ex, ProcessPoolBackend)
        assert ex.retries == 5
        assert ex.on_failure == "serial"
        ex.close()

    def test_existing_executor_passes_through(self):
        ex = SerialExecutor()
        assert resolve_executor(ex) is ex

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            resolve_executor(True)

    def test_unknown_string_rejected(self):
        with pytest.raises(ValueError):
            resolve_executor("threads")

    def test_base_class_map_is_abstract(self):
        with pytest.raises(NotImplementedError):
            PipelineExecutor().map(_square, [1])


class TestChunked:
    def test_even_split(self):
        assert chunked([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_ragged_tail(self):
        assert chunked([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]

    def test_empty(self):
        assert chunked([], 3) == []

    def test_size_larger_than_input(self):
        assert chunked([1, 2], 10) == [[1, 2]]

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            chunked([1], 0)

    def test_boundaries_independent_of_backend(self):
        # the same item list always chunks the same way; only the item
        # list and the size matter (the determinism contract)
        items = list(range(1337))
        assert chunked(items) == chunked(items, DEFAULT_CHUNK_SIZE)
        flat = [x for chunk in chunked(items, 100) for x in chunk]
        assert flat == items
