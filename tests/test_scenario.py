"""Tests for the declarative scenario package (``repro.scenario``).

Covers the compile contract (layers → ``WorldConfig``), conflict
detection, the strict ``scenario/v1`` file format, the named library
and its committed ``examples/scenarios/`` twins, scenario identity
(fingerprint → run-manifest digest), the topology recipes, and the
CLI surface.  The hypothesis properties pin the two guarantees the CI
scenario-matrix job relies on: compilation is deterministic and layer
order cannot change the compiled config.
"""

import json
from pathlib import Path
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.topology import (
    build_topology,
    generate_ixp_topology,
    generate_regional_topology,
    generate_topology,
)
from repro.cli import main
from repro.runtime import build_run_manifest, cache_key
from repro.scenario import (
    NAMED_SCENARIOS,
    SCENARIO_FORMAT,
    AnomalyCalendar,
    EventCalendar,
    GrowthSchedule,
    LayerConflictError,
    RirPolicyMix,
    Scenario,
    ScenarioError,
    TopologyRecipe,
    get_scenario,
    load_scenario,
    resolve_scenario,
    save_scenario,
    scenario_fingerprint,
    scenario_from_dict,
    scenario_names,
    scenario_to_dict,
)
from repro.simulation import WorldConfig
from repro.simulation.config import UnknownConfigKeyError
from repro.timeline.dates import from_iso

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples" / "scenarios"


# ---------------------------------------------------------------------------
# Layers and compilation


class TestLayers:
    def test_set_fields_skips_unset(self):
        layer = GrowthSchedule(scale=0.01)
        assert layer.set_fields() == {"scale": 0.01}

    def test_overrides_apply_field_map_and_transforms(self):
        layer = GrowthSchedule(start="2005-01-01", end="2006-01-01")
        overrides = layer.overrides()
        assert overrides == {
            "start_day": from_iso("2005-01-01"),
            "end_day": from_iso("2006-01-01"),
        }

    def test_anomaly_calendar_renames_to_config_fields(self):
        layer = AnomalyCalendar(dormant_squats=7, noise_origins=9)
        assert layer.overrides() == {
            "dormant_squat_events": 7,
            "noise_origin_events": 9,
        }

    def test_recipe_renamed_to_topology_recipe(self):
        assert TopologyRecipe(recipe="ixp-heavy").overrides() == {
            "topology_recipe": "ixp-heavy"
        }

    @pytest.mark.parametrize("layer", [
        TopologyRecipe(recipe="full-mesh"),
        TopologyRecipe(tier1_count=0),
        GrowthSchedule(scale=0.0),
        GrowthSchedule(start="not-a-date"),
        GrowthSchedule(start="2010-01-01", end="2009-01-01"),
        AnomalyCalendar(dormant_squats=-1),
        EventCalendar(dangling_rate=1.5),
        RirPolicyMix(birth_rate_multiplier={"nosuchrir": 2.0}),
        RirPolicyMix(birth_rate_multiplier={"apnic": -1.0}),
        RirPolicyMix(hoarder_asns=(5, 2)),
    ])
    def test_bad_layer_values_rejected(self, layer):
        with pytest.raises(ScenarioError):
            layer.validate()

    def test_error_message_names_the_layer(self):
        with pytest.raises(ScenarioError, match="growth-schedule"):
            GrowthSchedule(scale=2.0).validate()


class TestCompile:
    def test_empty_scenario_compiles_to_defaults(self):
        config = Scenario(name="plain", seed=5).compile()
        assert config == WorldConfig(seed=5)

    def test_layers_override_config_fields(self):
        scenario = Scenario(
            name="s",
            seed=3,
            layers=(
                GrowthSchedule(scale=0.5, erx_transfers=10),
                TopologyRecipe(recipe="regional", regional_clusters=3),
            ),
        )
        config = scenario.compile()
        assert config.scale == 0.5
        assert config.erx_transfers == 10
        assert config.topology_recipe == "regional"
        assert config.regional_clusters == 3
        assert config.seed == 3

    def test_conflicting_layers_rejected(self):
        scenario = Scenario(
            name="s",
            layers=(GrowthSchedule(scale=0.5), GrowthSchedule(scale=0.25)),
        )
        with pytest.raises(LayerConflictError, match="scale"):
            scenario.compile()

    def test_agreeing_layers_are_not_a_conflict(self):
        scenario = Scenario(
            name="s",
            layers=(GrowthSchedule(scale=0.5), GrowthSchedule(scale=0.5)),
        )
        assert scenario.compile().scale == 0.5

    def test_invalid_compiled_config_is_a_scenario_error(self):
        scenario = Scenario(
            name="s", layers=(GrowthSchedule(start="2022-01-01"),)
        )
        # start after the default end day (2021-03-01) → WorldConfig
        # rejects the compiled window
        with pytest.raises(ScenarioError, match="invalid config"):
            scenario.compile()

    def test_needs_a_name(self):
        with pytest.raises(ScenarioError):
            Scenario(name="")

    def test_layers_must_be_layers(self):
        with pytest.raises(ScenarioError):
            Scenario(name="s", layers=("not-a-layer",))


class TestUnknownConfigKeys:
    def test_from_dict_rejects_unknown_key_by_name(self):
        with pytest.raises(UnknownConfigKeyError) as exc_info:
            WorldConfig.from_dict({"seed": 1, "scalee": 0.1})
        assert exc_info.value.keys == ("scalee",)
        assert "scalee" in str(exc_info.value)

    def test_from_dict_collects_every_unknown_key(self):
        with pytest.raises(UnknownConfigKeyError) as exc_info:
            WorldConfig.from_dict({"zz": 1, "aa": 2})
        assert exc_info.value.keys == ("aa", "zz")

    def test_from_dict_is_a_type_error(self):
        with pytest.raises(TypeError):
            WorldConfig.from_dict({"bogus": 1})

    def test_from_dict_round_trips_fingerprint(self):
        from repro.runtime.cache import fingerprint

        config = WorldConfig(seed=9, scale=0.01, hoarder_asns=(3, 7))
        rebuilt = WorldConfig.from_dict(fingerprint(config))
        assert rebuilt == config

    def test_from_dict_rejects_foreign_class_marker(self):
        with pytest.raises(UnknownConfigKeyError):
            WorldConfig.from_dict({"__class__": "OtherThing"})


# ---------------------------------------------------------------------------
# Determinism properties (hypothesis)


def _growth_layers():
    return st.builds(
        GrowthSchedule,
        scale=st.none() | st.floats(0.001, 1.0, allow_nan=False),
        erx_transfers=st.none() | st.integers(0, 20_000),
        inter_rir_transfers=st.none() | st.integers(0, 5_000),
    )


def _topology_layers():
    return st.builds(
        TopologyRecipe,
        recipe=st.none() | st.sampled_from(
            ["transit-hierarchy", "ixp-heavy", "regional"]
        ),
        tier1_count=st.none() | st.integers(1, 12),
        ixp_count=st.none() | st.integers(1, 8),
        peering_prob=st.none() | st.floats(0.0, 1.0, allow_nan=False),
    )


def _anomaly_layers():
    return st.builds(
        AnomalyCalendar,
        dormant_squats=st.none() | st.integers(0, 1_000),
        fat_finger_digits=st.none() | st.integers(0, 1_000),
        noise_origins=st.none() | st.integers(0, 5_000),
    )


def _event_layers():
    return st.builds(
        EventCalendar,
        dangling_rate=st.none() | st.floats(0.0, 1.0, allow_nan=False),
        median_start_delay=st.none() | st.integers(0, 400),
    )


def _policy_layers():
    return st.builds(
        RirPolicyMix,
        sibling_probability=st.none() | st.floats(0.0, 1.0, allow_nan=False),
        failed_32bit_rate=st.none() | st.floats(0.0, 1.0, allow_nan=False),
        hoarder_orgs=st.none() | st.integers(0, 50),
    )


def _scenario_layers():
    # at most one layer of each kind → conflicts are impossible and the
    # stack exercises every merge path
    return st.tuples(
        _growth_layers(), _topology_layers(), _anomaly_layers(),
        _event_layers(), _policy_layers(),
    )


class TestDeterminismProperties:
    @given(layers=_scenario_layers(), seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_compile_is_deterministic(self, layers, seed):
        """Same layers → identical config fingerprint → identical
        run-manifest digest."""
        from repro.runtime.cache import fingerprint

        first = Scenario(name="prop", seed=seed, layers=layers)
        second = Scenario(name="prop", seed=seed, layers=layers)
        config_a = first.compile()
        config_b = second.compile()
        assert config_a == config_b
        assert fingerprint(config_a) == fingerprint(config_b)
        assert first.digest() == second.digest()
        assert scenario_fingerprint(first) == scenario_fingerprint(second)

        manifests = [
            build_run_manifest(
                config=config,
                settings={
                    "scenario": {
                        "name": scenario.name,
                        "digest": scenario.digest(),
                        "fingerprint": scenario_fingerprint(scenario),
                    }
                },
            )
            for scenario, config in ((first, config_a), (second, config_b))
        ]
        assert manifests[0]["digest"] == manifests[1]["digest"]

    @given(
        layers=_scenario_layers(),
        order=st.permutations(range(5)),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_layer_order_does_not_affect_compiled_config(
        self, layers, order, seed
    ):
        base = Scenario(name="prop", seed=seed, layers=layers)
        shuffled = Scenario(
            name="prop", seed=seed,
            layers=tuple(layers[i] for i in order),
        )
        assert shuffled.compile() == base.compile()
        assert shuffled.merged_overrides() == base.merged_overrides()

    @given(layers=_scenario_layers())
    @settings(max_examples=25, deadline=None)
    def test_json_round_trip_is_lossless(self, layers):
        scenario = Scenario(name="prop", description="d", seed=4, layers=layers)
        doc = json.loads(json.dumps(scenario_to_dict(scenario)))
        rebuilt = scenario_from_dict(doc)
        assert rebuilt.compile() == scenario.compile()
        assert scenario_to_dict(rebuilt) == scenario_to_dict(scenario)


# ---------------------------------------------------------------------------
# scenario/v1 file format


class TestScenarioFiles:
    def test_save_and_load_round_trip(self, tmp_path):
        scenario = get_scenario("mass-transfer")
        path = save_scenario(scenario, tmp_path / "s.json")
        assert load_scenario(path) == scenario

    def test_tuple_fields_survive_the_list_detour(self, tmp_path):
        scenario = Scenario(
            name="s", layers=(RirPolicyMix(hoarder_asns=(10, 40)),)
        )
        path = save_scenario(scenario, tmp_path / "s.json")
        rebuilt = load_scenario(path)
        assert rebuilt.layers[0].hoarder_asns == (10, 40)
        assert rebuilt == scenario

    def test_rejects_unknown_format(self):
        with pytest.raises(ScenarioError, match="format"):
            scenario_from_dict({"format": "scenario/v9", "name": "x"})

    def test_rejects_unknown_top_level_key(self):
        doc = {"format": SCENARIO_FORMAT, "name": "x", "extra": 1}
        with pytest.raises(ScenarioError, match="'extra'"):
            scenario_from_dict(doc)

    def test_rejects_unknown_layer_type(self):
        doc = {
            "format": SCENARIO_FORMAT,
            "name": "x",
            "layers": [{"layer": "weather"}],
        }
        with pytest.raises(ScenarioError, match="'weather'"):
            scenario_from_dict(doc)

    def test_rejects_unknown_layer_field(self):
        doc = {
            "format": SCENARIO_FORMAT,
            "name": "x",
            "layers": [{"layer": "growth-schedule", "scalee": 0.1}],
        }
        with pytest.raises(ScenarioError, match="'scalee'"):
            scenario_from_dict(doc)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ScenarioError, match="cannot read"):
            load_scenario(tmp_path / "nope.json")

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{", encoding="utf-8")
        with pytest.raises(ScenarioError, match="not valid JSON"):
            load_scenario(path)


# ---------------------------------------------------------------------------
# Named library and the committed examples


class TestLibrary:
    def test_five_scenarios_in_presentation_order(self):
        assert scenario_names() == [
            "regional-internet", "flat-ixp-heavy", "32-bit-era",
            "mass-transfer", "hijack-storm",
        ]

    def test_every_named_scenario_compiles(self):
        for scenario in NAMED_SCENARIOS.values():
            config = scenario.compile()
            assert isinstance(config, WorldConfig)

    def test_digests_are_distinct(self):
        digests = {s.digest() for s in NAMED_SCENARIOS.values()}
        assert len(digests) == len(NAMED_SCENARIOS)

    def test_unknown_name_is_a_typed_error(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            get_scenario("no-such-world")

    def test_resolve_prefers_names_then_paths(self, tmp_path):
        assert resolve_scenario("hijack-storm").name == "hijack-storm"
        path = save_scenario(get_scenario("32-bit-era"), tmp_path / "f.json")
        assert resolve_scenario(path) == get_scenario("32-bit-era")
        with pytest.raises(ScenarioError, match="neither"):
            resolve_scenario("missing-thing")

    def test_committed_examples_match_the_library(self):
        """examples/scenarios/*.json are the JSON twins of the library;
        regenerate with scripts/export_scenarios.py after edits."""
        for name, scenario in NAMED_SCENARIOS.items():
            path = EXAMPLES_DIR / f"{name}.json"
            assert path.exists(), f"missing scenario file: {path}"
            doc = json.loads(path.read_text(encoding="utf-8"))
            assert scenario_from_dict(doc) == scenario
            assert doc == scenario_to_dict(scenario)

    def test_committed_goldens_carry_matching_digests(self):
        for name, scenario in NAMED_SCENARIOS.items():
            path = EXAMPLES_DIR / "golden" / f"{name}.json"
            assert path.exists(), f"missing golden taxonomy: {path}"
            doc = json.loads(path.read_text(encoding="utf-8"))
            assert doc["format"] == "taxonomy/v1"
            assert doc["scenario"] == name
            assert doc["scenario_digest"] == scenario.digest()


# ---------------------------------------------------------------------------
# Topology recipes


class TestTopologyRecipes:
    ASNS = tuple(range(100, 100 + 160))

    def test_default_recipe_matches_legacy_generator(self):
        """The transit-hierarchy dispatch path is bit-compatible with
        the pre-scenario generator — the determinism contract."""
        config = WorldConfig(seed=1)
        built = build_topology(self.ASNS, config, seed=99)
        legacy = generate_topology(self.ASNS, seed=99)
        for asn in self.ASNS:
            assert built.providers(asn) == legacy.providers(asn)
            assert built.customers(asn) == legacy.customers(asn)
            assert built.peers(asn) == legacy.peers(asn)

    def test_ixp_recipe_keeps_a_transit_core(self):
        topo = generate_ixp_topology(self.ASNS, seed=7, ixp_count=4)
        assert len(topo.tier1s()) == 8  # default clique survives
        sellers = [a for a in self.ASNS if topo.customers(a)]
        assert len(sellers) >= 8
        # everything is attached: no isolated ASes
        for asn in self.ASNS:
            assert topo.degree(asn) >= 1

    def test_ixp_recipe_is_peering_dense(self):
        flat = generate_ixp_topology(self.ASNS, seed=7)
        hier = generate_topology(self.ASNS, seed=7)
        count = lambda t: sum(len(t.peers(a)) for a in self.ASNS)  # noqa: E731
        assert count(flat) > count(hier)

    def test_regional_recipe_builds_requested_islands(self):
        topo = generate_regional_topology(
            self.ASNS, seed=7, regional_clusters=4, hub_count=2
        )
        # every region contributes hub_count provider-free hubs
        assert len(topo.tier1s()) == 8
        for asn in self.ASNS:
            assert topo.degree(asn) >= 1
            if not topo.customers(asn) and asn not in topo.tier1s():
                assert topo.providers(asn)

    def test_regional_recipe_rejects_too_few_asns(self):
        with pytest.raises(ValueError):
            generate_regional_topology(
                tuple(range(10)), seed=1, regional_clusters=4
            )

    def test_dispatch_rejects_unknown_recipe(self):
        config = SimpleNamespace(topology_recipe="moebius")
        with pytest.raises(ValueError, match="moebius"):
            build_topology(self.ASNS, config, seed=1)

    def test_peering_is_symmetric_everywhere(self):
        for topo in (
            generate_ixp_topology(self.ASNS, seed=3),
            generate_regional_topology(self.ASNS, seed=3),
        ):
            for asn in self.ASNS:
                for peer in topo.peers(asn):
                    assert asn in topo.peers(peer)


# ---------------------------------------------------------------------------
# Cache-key identity


class TestScenarioIdentity:
    def test_digest_changes_with_any_layer_edit(self):
        base = Scenario(name="s", layers=(GrowthSchedule(scale=0.01),))
        edited = Scenario(name="s", layers=(GrowthSchedule(scale=0.02),))
        assert base.digest() != edited.digest()

    def test_same_config_different_scenarios_do_not_collide(self):
        """Two scenarios can compile to equal configs yet keep distinct
        cache identities — the reason the bundle key folds the scenario
        fingerprint in."""
        a = Scenario(name="a", layers=(GrowthSchedule(scale=0.01),))
        b = Scenario(name="b", layers=(GrowthSchedule(scale=0.01),))
        assert a.compile() == b.compile()
        key_a = cache_key(
            config=a.compile(), scenario=scenario_fingerprint(a)
        )
        key_b = cache_key(
            config=b.compile(), scenario=scenario_fingerprint(b)
        )
        assert key_a != key_b


# ---------------------------------------------------------------------------
# CLI


class TestScenarioCli:
    def test_scenarios_listing(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_scenarios_json_listing(self, capsys):
        assert main(["scenarios", "--json"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert [d["name"] for d in docs] == scenario_names()
        assert all(d["format"] == SCENARIO_FORMAT for d in docs)

    def test_simulate_rejects_unknown_scenario(self, capsys):
        assert main([
            "simulate", "--scenario", "no-such-world", "--out", "/tmp/x",
        ]) == 2
        assert "no-such-world" in capsys.readouterr().err

    def test_simulate_runs_a_scenario_file(self, tmp_path, capsys):
        scenario = Scenario(
            name="cli-tiny",
            seed=21,
            layers=(
                GrowthSchedule(scale=0.004),
                TopologyRecipe(recipe="ixp-heavy", ixp_count=2),
            ),
        )
        path = save_scenario(scenario, tmp_path / "cli-tiny.json")
        out_dir = tmp_path / "run"
        rc = main([
            "simulate", "--scenario", str(path),
            "--out", str(out_dir), "--taxonomy-out", "--manifest",
        ])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "cli-tiny" in stdout

        taxonomy = json.loads(
            (out_dir / "taxonomy.json").read_text(encoding="utf-8")
        )
        assert taxonomy["format"] == "taxonomy/v1"
        assert taxonomy["scenario"] == "cli-tiny"
        assert taxonomy["scenario_digest"] == scenario.digest()
        for side in ("admin_counts", "op_counts"):
            assert set(taxonomy[side]) == {
                "complete_overlap", "partial_overlap",
                "unused", "outside_delegation",
            }

        manifest = json.loads(
            (out_dir / "run_manifest.json").read_text(encoding="utf-8")
        )
        entry = manifest["settings"]["scenario"]
        assert entry["name"] == "cli-tiny"
        assert entry["digest"] == scenario.digest()
        assert entry["fingerprint"] == scenario_fingerprint(scenario)

    def test_plain_simulate_has_no_scenario_entry(self, tmp_path):
        rc = main([
            "simulate", "--scale", "0.004", "--seed", "8",
            "--out", str(tmp_path), "--manifest",
        ])
        assert rc == 0
        manifest = json.loads(
            (tmp_path / "run_manifest.json").read_text(encoding="utf-8")
        )
        assert manifest["settings"]["scenario"] is None
