"""Tests for the §3.1 defect injector."""

import pytest

from repro.asn import IanaLedger
from repro.rir import (
    ERX_PLACEHOLDER_DATE,
    EXTENDED,
    REGULAR,
    DelegationArchive,
    PitfallConfig,
    PitfallInjector,
    Registry,
    Status,
    TransferRecord,
    default_policy,
)
from repro.timeline import from_iso

START = from_iso("2004-02-01")
END = from_iso("2015-01-01")


@pytest.fixture
def registries():
    ledger = IanaLedger()
    regs = {}
    for name in ("afrinic", "arin", "ripencc"):
        reg = Registry(name, default_policy(name), ledger)
        cc = {"afrinic": "ZA", "arin": "US", "ripencc": "DE"}[name]
        start = max(START, from_iso("2005-03-01") if name == "afrinic" else START)
        for i in range(30):
            reg.allocate(start + i * 20, f"ORG-{name}-{i}", cc, thirty_two_bit=False)
        regs[name] = reg
    return regs


def windows_for(registries):
    archive = DelegationArchive(registries, END)
    return {w.source: (w.first_day, w.last_day) for w in archive.sources()}


class TestInjection:
    def test_missing_and_corrupt_days(self, registries):
        injector = PitfallInjector(registries, END, seed=1)
        overlay = injector.inject_all(windows_for(registries))
        total_missing = sum(len(v) for v in overlay.missing_days.values())
        total_corrupt = sum(len(v) for v in overlay.corrupt_days.values())
        assert total_missing > 0 and total_corrupt > 0

    def test_longest_missing_run_on_ripe_regular(self, registries):
        injector = PitfallInjector(registries, END, seed=1)
        overlay = injector.inject_all(windows_for(registries))
        days = sorted(overlay.missing_days[("ripencc", REGULAR)])
        longest = run = 1
        for a, b in zip(days, days[1:]):
            run = run + 1 if b == a + 1 else 1
            longest = max(longest, run)
        assert longest >= PitfallConfig().longest_missing_run

    def test_stale_days_never_afrinic(self, registries):
        injector = PitfallInjector(registries, END, seed=2)
        overlay = injector.inject_all(windows_for(registries))
        assert ("afrinic", REGULAR) not in overlay.stale_days
        assert overlay.stale_days.get(("ripencc", REGULAR))

    def test_record_drops_on_extended_only(self, registries):
        injector = PitfallInjector(registries, END, seed=3)
        overlay = injector.inject_all(windows_for(registries))
        assert all(kind == EXTENDED for (_, kind) in overlay.record_drops)
        assert overlay.record_drops

    def test_afrinic_duplicates(self, registries):
        injector = PitfallInjector(registries, END, seed=4)
        overlay = injector.inject_all(windows_for(registries))
        dupes = overlay.extra_records.get(("afrinic", EXTENDED), {})
        dupe_defects = [d for d in injector.truth if d.kind == "duplicate_record"]
        assert dupe_defects
        assert len(dupes) >= len(dupe_defects) > 0
        for defect in dupe_defects:
            rows = dupes[defect.asn]
            assert any(rec.status is Status.RESERVED for _, rec in rows)

    def test_erx_placeholder(self, registries):
        transfers = [
            TransferRecord(
                asn=asn, day=from_iso("2003-06-01"), from_rir="arin",
                to_rir="ripencc", original_reg_date=from_iso("1995-05-05"), erx=True,
            )
            for asn in (10, 11, 12, 13, 14, 15)
        ]
        injector = PitfallInjector(registries, END, seed=5)
        overlay = injector.inject_all(windows_for(registries), transfers)
        overrides = overlay.date_overrides.get(("ripencc", REGULAR), {})
        placeholder_hits = [
            date
            for per_asn in overrides.values()
            for _, date in per_asn
            if date == ERX_PLACEHOLDER_DATE
        ]
        assert placeholder_hits  # share=0.85 over 6 transfers

    def test_stale_transfer_records(self, registries):
        transfers = [
            TransferRecord(
                asn=asn, day=from_iso("2010-06-01"), from_rir="arin",
                to_rir="ripencc", original_reg_date=START, erx=False,
            )
            for asn in sorted(registries["arin"].allocated)[:10]
        ]
        # the transfers must actually happen for history to show departure
        for t in transfers:
            out = registries["arin"].transfer_out(t.day, t.asn)
            registries["ripencc"].transfer_in(t.day, out)
        injector = PitfallInjector(registries, END, seed=6)
        overlay = injector.inject_all(windows_for(registries), transfers)
        stale = [d for d in injector.truth if d.kind == "stale_transfer_record"]
        assert stale
        for defect in stale:
            rows = overlay.extra_records[("arin", REGULAR)][defect.asn]
            assert any(rec.is_delegated for _, rec in rows)

    def test_mistaken_allocations_cross_rir(self, registries):
        injector = PitfallInjector(registries, END, seed=7)
        overlay = injector.inject_all(windows_for(registries))
        mistakes = [d for d in injector.truth if d.kind == "mistaken_allocation"]
        assert mistakes
        for defect in mistakes:
            culprit = defect.source[0]
            ledger_owner = registries[culprit].ledger.rir_of(defect.asn)
            assert ledger_owner != culprit  # the culprit never held the block

    def test_determinism(self, registries):
        w = windows_for(registries)
        a = PitfallInjector(registries, END, seed=42)
        a.inject_all(w)
        b = PitfallInjector(registries, END, seed=42)
        b.inject_all(w)
        assert a.defects_by_kind() == b.defects_by_kind()
        assert a.overlay.missing_days == b.overlay.missing_days

    def test_defect_counts_reported(self, registries):
        injector = PitfallInjector(registries, END, seed=8)
        overlay = injector.inject_all(windows_for(registries))
        counts = injector.defects_by_kind()
        assert counts.get("missing_file", 0) > 0
        assert overlay.defect_count() > 0
