"""Tests for utilization, squatting, partial, unused, outside analyses."""

import pytest

from repro.bgp import AnomalyEvent, AsTopology, SQUAT_DORMANT
from repro.core import (
    JointAnalysis,
    analyze_outside_delegation,
    analyze_partial_overlaps,
    analyze_unused_lives,
    analyze_utilization,
    detect_dormant_squatting,
    score_against_truth,
    utilization_of,
)
from repro.lifetimes import AdminLifetime, BgpLifetime
from repro.net import Prefix
from repro.timeline import Interval, from_iso

D = from_iso("2005-01-01")
END = from_iso("2021-03-01")


def admin(asn, start, end, registry="ripencc", cc="IT", org=None, open_ended=False):
    return AdminLifetime(
        asn, D + start, D + end, D + start, (registry,), cc=cc, org_id=org,
        open_ended=open_ended,
    )


def op(asn, start, end, open_ended=False):
    return BgpLifetime(asn, D + start, D + end, open_ended=open_ended)


class TestUtilization:
    def test_full_usage(self):
        a = admin(1, 0, 99)
        ratio, contained = utilization_of(a, [op(1, 0, 99)])
        assert ratio == 1.0 and len(contained) == 1

    def test_partial_usage(self):
        a = admin(1, 0, 99)
        ratio, _ = utilization_of(a, [op(1, 0, 24)])
        assert ratio == pytest.approx(0.25)

    def test_non_contained_excluded(self):
        a = admin(1, 0, 99)
        ratio, contained = utilization_of(a, [op(1, 50, 150)])
        assert ratio == 0.0 and contained == []

    def test_analyze_collects_delays(self):
        admin_lives = {1: [admin(1, 0, 1000)]}
        op_lives = {1: [op(1, 40, 800)]}
        stats = analyze_utilization(admin_lives, op_lives)
        assert stats.late_start_by_registry["ripencc"] == [40]
        assert stats.late_dealloc_by_registry["ripencc"] == [200]
        assert stats.median_late_dealloc()["ripencc"] == 200

    def test_open_ended_excluded_from_dealloc_delay(self):
        admin_lives = {1: [admin(1, 0, 1000, open_ended=True)]}
        op_lives = {1: [op(1, 40, 800)]}
        stats = analyze_utilization(admin_lives, op_lives)
        assert "ripencc" not in stats.late_dealloc_by_registry

    def test_sporadic_and_spacing(self):
        ops = [op(1, i * 100, i * 100 + 5) for i in range(12)]
        admin_lives = {1: [admin(1, 0, 2000)]}
        stats = analyze_utilization(admin_lives, {1: ops})
        assert 1 in stats.sporadic_asns
        assert stats.multi_op_admin_lives == 1
        assert stats.op_count_shares()[">2"] == 1.0

    def test_widely_spaced(self):
        admin_lives = {1: [admin(1, 0, 2000)]}
        op_lives = {1: [op(1, 0, 10), op(1, 1500, 1510)]}
        stats = analyze_utilization(admin_lives, op_lives)
        assert stats.widely_spaced_admin_lives == 1

    def test_partial_population_excluded(self):
        admin_lives = {1: [admin(1, 0, 100)]}
        op_lives = {1: [op(1, 10, 20), op(1, 90, 200)]}
        stats = analyze_utilization(admin_lives, op_lives)
        assert stats.utilizations == []  # partial-overlap life not in Fig. 7


class TestSquatting:
    def test_dormant_awakening_flagged(self):
        admin_lives = {1: [admin(1, 0, 6000)]}
        op_lives = {1: [op(1, 4000, 4020)]}  # 4000 days dormant, tiny life
        candidates = detect_dormant_squatting(admin_lives, op_lives)
        assert len(candidates) == 1
        c = candidates[0]
        assert c.dormancy_days == 4000
        assert c.relative_duration < 0.05

    def test_prompt_start_not_flagged(self):
        admin_lives = {1: [admin(1, 0, 6000)]}
        op_lives = {1: [op(1, 10, 30)]}
        assert detect_dormant_squatting(admin_lives, op_lives) == []

    def test_long_awakening_not_flagged(self):
        admin_lives = {1: [admin(1, 0, 6000)]}
        op_lives = {1: [op(1, 2000, 6000)]}  # dormant but then runs forever
        assert detect_dormant_squatting(admin_lives, op_lives) == []

    def test_dormancy_between_op_lives(self):
        admin_lives = {1: [admin(1, 0, 6000)]}
        op_lives = {1: [op(1, 0, 100), op(1, 4000, 4020)]}
        candidates = detect_dormant_squatting(admin_lives, op_lives)
        assert len(candidates) == 1
        assert candidates[0].dormancy_days == 4000 - 101

    def test_scoring(self):
        admin_lives = {1: [admin(1, 0, 6000)]}
        op_lives = {1: [op(1, 4000, 4020)]}
        candidates = detect_dormant_squatting(admin_lives, op_lives)
        truth = [
            AnomalyEvent(
                kind=SQUAT_DORMANT,
                interval=Interval(D + 4000, D + 4020),
                origin=1,
                announcer=203040,
                prefixes=(Prefix.parse("10.0.0.0/16"),),
            )
        ]
        score = score_against_truth(candidates, truth)
        assert score["recall"] == 1.0
        assert score["precision"] == 1.0


class TestPartialOverlap:
    def test_dangling_classified(self):
        admin_lives = {1: [admin(1, 0, 100)]}
        op_lives = {1: [op(1, 50, 160)]}
        stats = analyze_partial_overlaps(admin_lives, op_lives)
        assert stats.partial_admin_lives == 1
        assert stats.dangling_lives == 1
        assert stats.dangling_tail_days == [60]
        assert stats.dangling_share == 1.0

    def test_early_start_classified(self):
        admin_lives = {1: [admin(1, 50, 200)]}
        op_lives = {1: [op(1, 40, 100)]}
        stats = analyze_partial_overlaps(admin_lives, op_lives)
        assert stats.early_start_lives == 1
        assert stats.early_start_days == [10]
        assert stats.before_reg_date_asns == [1]

    def test_customer_cones_of_dangling(self):
        topo = AsTopology()
        topo.add_p2c(10, 1)  # ASN 1 is a stub
        admin_lives = {1: [admin(1, 0, 100)]}
        op_lives = {1: [op(1, 50, 160)]}
        stats = analyze_partial_overlaps(admin_lives, op_lives, topology=topo)
        assert stats.dangling_cone_sizes == {1: 1}
        assert stats.stub_share_of_dangling() == 1.0

    def test_complete_overlap_not_counted(self):
        admin_lives = {1: [admin(1, 0, 100)]}
        op_lives = {1: [op(1, 10, 20)]}
        stats = analyze_partial_overlaps(admin_lives, op_lives)
        assert stats.partial_admin_lives == 0


class TestUnused:
    def test_basic_counting(self):
        admin_lives = {
            1: [admin(1, 0, 1000, cc="CN")],
            2: [admin(2, 0, 1000, cc="US")],
        }
        op_lives = {2: [op(2, 10, 500)]}
        stats = analyze_unused_lives(admin_lives, op_lives)
        assert stats.unused_lives == 1
        assert stats.unused_share == 0.5
        assert 1 in stats.never_seen_asns
        assert stats.country_unused_fraction("CN") == 1.0
        assert stats.country_unused_fraction("US") == 0.0

    def test_short_unused_32bit_share(self):
        admin_lives = {
            70000: [admin(70000, 0, 10)],  # 32-bit, short, unused
            100: [admin(100, 0, 10)],  # 16-bit, short, unused
        }
        stats = analyze_unused_lives(admin_lives, {})
        assert stats.short_unused_32bit_share("ripencc") == pytest.approx(0.5)

    def test_sibling_analysis(self):
        admin_lives = {
            1: [admin(1, 0, 1000, org="ORG-A")],
            2: [admin(2, 0, 1000, org="ORG-A")],
            3: [admin(3, 0, 1000, org="ORG-B")],
        }
        op_lives = {2: [op(2, 0, 500)]}
        siblings = {"ORG-A": [1, 2], "ORG-B": [3]}
        stats = analyze_unused_lives(admin_lives, op_lives, siblings=siblings)
        assert stats.unused_with_sibling_info == 2  # ASN 1 and ASN 3
        assert stats.unused_with_active_sibling == 1  # only ORG-A
        assert stats.sibling_share() == pytest.approx(0.5)


class TestOutsideDelegation:
    def test_never_allocated(self):
        stats = analyze_outside_delegation({}, {9: [op(9, 0, 10)]})
        assert stats.never_allocated_asns == {9}
        assert stats.never_allocated_durations[9] == 11
        assert stats.never_allocated_active_longer_than(1) == 1
        assert stats.never_allocated_active_longer_than(30) == 0

    def test_bogons_excluded(self):
        stats = analyze_outside_delegation({}, {64512: [op(64512, 0, 10)]})
        assert stats.excluded_bogons == 1
        assert not stats.never_allocated_asns

    def test_post_dealloc_squat_candidate(self):
        # the AS12391 shape: dealloc at day 4000, activity 3 days later,
        # previous op life ended ~3898 days before
        admin_lives = {1: [admin(1, 0, 4000)]}
        op_lives = {1: [op(1, 50, 100), op(1, 4003, 4010)]}
        stats = analyze_outside_delegation(admin_lives, op_lives)
        assert 1 in stats.once_allocated_asns
        assert len(stats.post_dealloc_candidates) == 1
        c = stats.post_dealloc_candidates[0]
        assert c.days_after_dealloc == 3
        assert c.days_since_last_op == 4003 - 100

    def test_recently_active_not_candidate(self):
        admin_lives = {1: [admin(1, 0, 4000)]}
        op_lives = {1: [op(1, 3900, 3990), op(1, 4003, 4010)]}
        stats = analyze_outside_delegation(admin_lives, op_lives)
        assert stats.post_dealloc_candidates == []


class TestJointFacade:
    def test_summary(self):
        admin_lives = {1: [admin(1, 0, 1000)], 2: [admin(2, 0, 1000)]}
        op_lives = {1: [op(1, 10, 900)]}
        joint = JointAnalysis(admin_lives, op_lives, end_day=END)
        summary = joint.summary()
        assert summary["admin_lifetimes"] == 2
        assert summary["unused_share"] == pytest.approx(0.5)
        assert summary["complete_overlap_share"] == pytest.approx(0.5)

    def test_cached_properties_consistent(self):
        admin_lives = {1: [admin(1, 0, 1000)]}
        op_lives = {1: [op(1, 10, 900)]}
        joint = JointAnalysis(admin_lives, op_lives, end_day=END)
        assert joint.taxonomy is joint.taxonomy
        assert joint.squatting_score()["candidates"] == 0.0
