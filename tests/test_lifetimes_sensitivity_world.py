"""Sensitivity and dataset-bundle behaviors on a simulated world.

Complements the synthetic-input unit tests with checks of the Fig. 3 /
Table 5 machinery over a real (simulated) activity population.
"""

import pytest

from repro.lifetimes import (
    fraction_one_or_less_op_life,
    gap_cdf,
    gap_distribution,
    sweep_timeouts,
)
from repro.simulation import build_datasets, tiny


@pytest.fixture(scope="module")
def bundle():
    return build_datasets(tiny(seed=23))


class TestSensitivityOnWorld:
    def test_gap_distribution_sorted_positive(self, bundle):
        gaps = gap_distribution(bundle.world.activities)
        assert gaps == sorted(gaps)
        assert all(g >= 1 for g in gaps)

    def test_knee_shape(self, bundle):
        """The configured gap mixture produces the Fig. 3 knee: the
        CDF climbs steeply to 30 days then plateaus."""
        gaps = gap_distribution(bundle.world.activities)
        rise_to_30 = gap_cdf(gaps, 30) - gap_cdf(gaps, 0)
        rise_30_to_60 = gap_cdf(gaps, 60) - gap_cdf(gaps, 30)
        assert rise_to_30 > 3 * rise_30_to_60
        assert 0.5 < gap_cdf(gaps, 30) < 0.9  # paper: 70.1%

    def test_one_or_less_share_at_30(self, bundle):
        share = fraction_one_or_less_op_life(
            bundle.admin_lives,
            bundle.world.activities,
            timeout=30,
            end_day=bundle.world.end_day,
        )
        assert 0.7 < share < 0.97  # paper: 83%

    def test_sweep_internally_consistent(self, bundle):
        rows = sweep_timeouts(
            bundle.admin_lives,
            bundle.world.activities,
            [10, 30, 90],
            end_day=bundle.world.end_day,
        )
        by_timeout = {r.timeout: r for r in rows}
        gaps = gap_distribution(bundle.world.activities)
        for timeout, row in by_timeout.items():
            assert row.gap_coverage == pytest.approx(gap_cdf(gaps, timeout))
        # more merging -> fewer lifetimes
        assert by_timeout[10].total_op_lifetimes >= by_timeout[90].total_op_lifetimes


class TestBundleRebuild:
    def test_rebuild_matches_initial_build(self, bundle):
        rebuilt = bundle.rebuild_op_lives(timeout=30, min_peers=2)
        assert rebuilt.keys() == bundle.op_lives.keys()
        for asn in rebuilt:
            assert [
                (l.start, l.end) for l in rebuilt[asn]
            ] == [(l.start, l.end) for l in bundle.op_lives[asn]]

    def test_rebuild_monotone_in_timeout(self, bundle):
        counts = {}
        for timeout in (5, 30, 120):
            lives = bundle.rebuild_op_lives(timeout=timeout)
            counts[timeout] = sum(map(len, lives.values()))
        assert counts[5] >= counts[30] >= counts[120]

    def test_registry_of_covers_admin_asns(self, bundle):
        registry_of = bundle.registry_of()
        assert set(registry_of) == set(bundle.admin_lives)

    def test_injected_defects_logged(self, bundle):
        kinds = {d.kind for d in bundle.injected_defects}
        assert "missing_file" in kinds
        assert "placeholder_regdate" in kinds

    def test_world_activity_clamped_to_window(self, bundle):
        start = bundle.world.config.start_day
        end = bundle.world.end_day
        for activity in bundle.world.activities.values():
            span = activity.observed.span
            if span is not None:
                assert span.start >= start
                assert span.end <= end


class TestFailed32BitWorld:
    def test_failed_lives_unused_and_short(self, bundle):
        failed = [l for l in bundle.world.lives if l.failed_32bit]
        assert failed
        for life in failed:
            assert life.end is not None
            assert life.duration(bundle.world.end_day) <= 31
            assert life.asn > 65535
            assert not life.behavior.activity  # never announced

    def test_retry_allocated_to_same_org(self, bundle):
        from repro.asn import is_16bit

        orgs = bundle.world.orgs
        found = 0
        for life in bundle.world.lives:
            if not life.failed_32bit:
                continue
            org = orgs.get(life.org_id)
            if any(is_16bit(asn) for asn in org.asns if asn != life.asn):
                found += 1
        assert found > 0
