"""Tests for the six-step restoration pipeline against injected truth."""

from repro.asn import IanaLedger
from repro.rir import (
    ERX_PLACEHOLDER_DATE,
    EXTENDED,
    REGULAR,
    ArchiveOverlay,
    DelegationArchive,
    DelegationRecord,
    Registry,
    Status,
    default_policy,
)
from repro.restoration import (
    RestoredDelegations,
    build_registry_view,
    restore_archive,
)
from repro.timeline import Interval, from_iso

START = from_iso("2010-05-01")
END = from_iso("2012-05-01")


def fresh_world():
    ledger = IanaLedger()
    ripe = Registry("ripencc", default_policy("ripencc"), ledger)
    arin = Registry("arin", default_policy("arin"), ledger)
    asns = {}
    asns["stable"] = ripe.allocate(START, "ORG-1", "IT", thirty_two_bit=False).asn
    asns["dealloc"] = ripe.allocate(START, "ORG-2", "FR", thirty_two_bit=False).asn
    ripe.deallocate(START + 200, asns["dealloc"])
    asns["arin"] = arin.allocate(START, "ORG-3", "US", thirty_two_bit=False).asn
    return ledger, {"ripencc": ripe, "arin": arin}, asns


def restore(registries, overlay=None, **kw):
    archive = DelegationArchive(registries, END, overlay)
    return restore_archive(archive, **kw)


class TestRegistryView:
    def test_era_stitching(self):
        _, registries, asns = fresh_world()
        archive = DelegationArchive(registries, END)
        view = build_registry_view(archive, "ripencc")
        # ripencc extended starts 2010-04-22, before START: extended rules
        assert view.extended_start == from_iso("2010-04-22")
        stints = view.stints[asns["stable"]]
        assert any(s.record.is_delegated for s in stints)

    def test_regular_era_only_before_extended(self):
        ledger = IanaLedger()
        arin = Registry("arin", default_policy("arin"), ledger)
        a = arin.allocate(from_iso("2004-01-10"), "ORG-1", "US", thirty_two_bit=False)
        archive = DelegationArchive({"arin": arin}, END)
        view = build_registry_view(archive, "arin")
        # ARIN extended starts 2013-03-05 — after END, so regular only
        assert view.extended_start is None
        assert view.stints[a.asn][0].record.opaque_id is None


class TestCleanRunIsNoOp:
    def test_no_defects_no_changes(self):
        ledger, registries, asns = fresh_world()
        restored, report = restore(registries, ledger=ledger)
        assert isinstance(restored, RestoredDelegations)
        summary = report.summary()
        for counts in summary.values():
            meaningful = {k: v for k, v in counts.items()
                          if k != "asns_with_overlaps"}
            assert all(v == 0 for v in meaningful.values()) or not meaningful
        # the stable ASN's delegated stint spans allocation to END
        delegated = restored.delegated_stints(asns["stable"])
        assert delegated[0].start == START
        assert delegated[-1].end == END


class TestStepI:
    def test_gap_across_missing_days_bridged(self):
        ledger, registries, asns = fresh_world()
        overlay = ArchiveOverlay()
        for d in range(START + 50, START + 53):
            overlay.mark_missing(("ripencc", EXTENDED), d)
            overlay.mark_missing(("ripencc", REGULAR), d)
        # punch the record out around the missing days to split the stint
        overlay.drop_record(("ripencc", EXTENDED), asns["stable"],
                            Interval(START + 50, START + 52))
        restored, report = restore(registries, overlay, ledger=ledger)
        delegated = restored.delegated_stints(asns["stable"])
        assert len(delegated) == 1  # bridged back into one stint
        assert report.summary()["i-missing-file-gaps"]["ripencc_gaps_bridged"] >= 1


class TestStepII:
    def test_extended_drop_recovered_from_regular(self):
        ledger, registries, asns = fresh_world()
        overlay = ArchiveOverlay()
        overlay.drop_record(("ripencc", EXTENDED), asns["stable"],
                            Interval(START + 100, START + 102))
        restored, report = restore(registries, overlay, ledger=ledger)
        delegated = restored.delegated_stints(asns["stable"])
        assert len(delegated) == 1
        counts = report.summary()["ii-missing-records"]
        assert counts["ripencc_records_recovered"] >= 1
        assert counts["ripencc_days_recovered"] >= 3

    def test_drop_in_both_feeds_not_recovered_by_step_ii(self):
        ledger, registries, asns = fresh_world()
        overlay = ArchiveOverlay()
        span = Interval(START + 100, START + 140)  # longer than max_gap
        overlay.drop_record(("ripencc", EXTENDED), asns["stable"], span)
        overlay.drop_record(("ripencc", REGULAR), asns["stable"], span)
        restored, _ = restore(registries, overlay, ledger=ledger)
        delegated = restored.delegated_stints(asns["stable"])
        assert len(delegated) == 2  # the hole remains


class TestStepIII:
    def test_divergence_measured(self):
        ledger, registries, asns = fresh_world()
        overlay = ArchiveOverlay()
        # a change lands on a stale regular day -> feeds diverge that day
        overlay.mark_stale(("ripencc", REGULAR), START + 200)
        restored, report = restore(registries, overlay, ledger=ledger)
        counts = report.summary()["iii-same-day-divergence"]
        assert counts.get("ripencc_divergent_days", 0) >= 1


class TestStepIV:
    def test_contradictory_duplicate_removed(self):
        ledger, registries, asns = fresh_world()
        overlay = ArchiveOverlay()
        ghost = DelegationRecord("ripencc", "", asns["stable"], None, Status.RESERVED)
        overlay.add_record(("ripencc", EXTENDED),
                           Interval(START + 30, START + 120), ghost)
        restored, report = restore(registries, overlay, ledger=ledger)
        stints = restored.stints[asns["stable"]]
        # no overlapping stints survive
        for a, b in zip(stints, stints[1:]):
            assert a.end < b.start
        # and the long allocated row won over the ghost
        assert all(
            s.record.status is not Status.RESERVED or s.start > START + 120
            for s in stints
        )
        assert report.summary()["iv-duplicate-records"]["ripencc_asns_deduplicated"] == 1


class TestStepV:
    def test_future_date_clamped(self):
        ledger, registries, asns = fresh_world()
        overlay = ArchiveOverlay()
        wrong = START + 5
        for kind in (REGULAR, EXTENDED):
            overlay.override_date(("ripencc", kind), asns["stable"],
                                  Interval(START, START + 10), wrong)
        restored, report = restore(registries, overlay, ledger=ledger)
        first = restored.delegated_stints(asns["stable"])[0]
        assert first.record.reg_date == START  # clamped to first appearance
        assert report.summary()["v-registration-dates"]["ripencc_future_dates_fixed"] >= 1

    def test_placeholder_restored_with_reference(self):
        ledger, registries, asns = fresh_world()
        overlay = ArchiveOverlay()
        for kind in (REGULAR, EXTENDED):
            overlay.override_date(("ripencc", kind), asns["stable"],
                                  Interval(START + 50, END), ERX_PLACEHOLDER_DATE)
        true_date = from_iso("1995-03-03")
        restored, report = restore(
            registries, overlay, ledger=ledger,
            erx_reference={asns["stable"]: true_date},
        )
        stints = restored.delegated_stints(asns["stable"])
        assert all(s.record.reg_date in (START, true_date) for s in stints)
        assert ERX_PLACEHOLDER_DATE not in {s.record.reg_date for s in stints}
        counts = report.summary()["v-registration-dates"]
        assert counts["ripencc_placeholder_dates_fixed"] >= 1

    def test_placeholder_without_reference_left_to_earliest_rule(self):
        ledger, registries, asns = fresh_world()
        overlay = ArchiveOverlay()
        for kind in (REGULAR, EXTENDED):
            overlay.override_date(("ripencc", kind), asns["stable"],
                                  Interval(START + 50, END), ERX_PLACEHOLDER_DATE)
        restored, _ = restore(registries, overlay, ledger=ledger)
        stints = restored.delegated_stints(asns["stable"])
        # without reference data the placeholder survives (as in the raw
        # files) — the backward-travel rule refuses to trust it
        assert ERX_PLACEHOLDER_DATE in {s.record.reg_date for s in stints}


class TestStepVI:
    def test_stale_transfer_tail_trimmed(self):
        ledger, registries, _ = fresh_world()
        ripe, arin = registries["ripencc"], registries["arin"]
        alloc = arin.allocate(START + 10, "ORG-T", "US", thirty_two_bit=False)
        transfer_day = START + 300
        out = arin.transfer_out(transfer_day, alloc.asn)
        ripe.transfer_in(transfer_day, out)
        overlay = ArchiveOverlay()
        stale_rec = DelegationRecord(
            "arin", "US", alloc.asn, alloc.reg_date, Status.ALLOCATED
        )
        for kind in (REGULAR,):
            overlay.add_record(("arin", kind),
                               Interval(transfer_day, transfer_day + 90), stale_rec)
        restored, report = restore(registries, overlay, ledger=ledger)
        arin_stints = [
            s for s in restored.stints[alloc.asn]
            if s.record.registry == "arin" and s.record.is_delegated
        ]
        assert all(s.end < transfer_day for s in arin_stints)
        counts = report.summary()["vi-inter-rir"]
        assert counts["asns_with_overlaps"] >= 1
        assert counts["stale_transfer_tails_trimmed"] >= 1

    def test_mistaken_allocation_removed(self):
        ledger, registries, asns = fresh_world()
        overlay = ArchiveOverlay()
        ghost = DelegationRecord(
            "arin", "ZZ", asns["stable"], START + 400, Status.ALLOCATED,
            opaque_id="GHOST-arin-x",
        )
        overlay.add_record(("arin", REGULAR),
                           Interval(START + 400, START + 500), ghost)
        restored, report = restore(registries, overlay, ledger=ledger)
        assert all(
            s.record.registry == "ripencc"
            for s in restored.stints[asns["stable"]]
        )
        assert report.summary()["vi-inter-rir"]["mistaken_allocations_removed"] >= 1
