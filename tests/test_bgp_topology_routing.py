"""Tests for the AS topology and valley-free routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp import (
    AsTopology,
    best_paths,
    generate_topology,
    validate_valley_free,
)


@pytest.fixture
def diamond():
    """Two tier-1 peers, two transits, two stubs.

         T1a ---peer--- T1b
          |              |
         M1             M2
          |  \\        /  |
         S1    \\    /    S2
                (S3 multihomed to M1, M2)
    """
    topo = AsTopology()
    topo.add_p2p(10, 20)
    topo.add_p2c(10, 100)
    topo.add_p2c(20, 200)
    topo.add_p2c(100, 1001)
    topo.add_p2c(200, 2001)
    topo.add_p2c(100, 3001)
    topo.add_p2c(200, 3001)
    return topo


class TestTopology:
    def test_relationships(self, diamond):
        assert diamond.providers(100) == {10}
        assert diamond.customers(10) == {100}
        assert diamond.peers(10) == {20}
        assert diamond.providers(3001) == {100, 200}

    def test_rejects_self_links(self, diamond):
        with pytest.raises(ValueError):
            diamond.add_p2c(5, 5)
        with pytest.raises(ValueError):
            diamond.add_p2p(5, 5)

    def test_stub_detection(self, diamond):
        assert diamond.is_stub(1001)
        assert not diamond.is_stub(100)

    def test_tier1s(self, diamond):
        assert diamond.tier1s() == {10, 20}

    def test_customer_cone(self, diamond):
        assert diamond.customer_cone(100) == {100, 1001, 3001}
        assert diamond.customer_cone(10) == {10, 100, 1001, 3001}
        assert diamond.customer_cone(1001) == {1001}
        assert diamond.cone_size(1001) == 1

    def test_degree(self, diamond):
        assert diamond.degree(10) == 2  # one peer + one customer
        assert diamond.degree(3001) == 2  # two providers


class TestRouting:
    def test_customer_route_up_the_chain(self, diamond):
        paths = best_paths(diamond, 1001)
        assert paths[100] == (100, 1001)
        assert paths[10] == (10, 100, 1001)

    def test_peer_route_single_lateral_hop(self, diamond):
        paths = best_paths(diamond, 1001)
        assert paths[20] == (20, 10, 100, 1001)

    def test_provider_route_descends(self, diamond):
        paths = best_paths(diamond, 1001)
        assert paths[2001] == (2001, 200, 20, 10, 100, 1001)

    def test_multihomed_stub_shortest(self, diamond):
        paths = best_paths(diamond, 3001)
        # from 2001 the direct route via 200 wins over the detour via 10/20
        assert paths[2001] == (2001, 200, 3001)

    def test_announcer_maps_to_itself(self, diamond):
        assert best_paths(diamond, 1001)[1001] == (1001,)

    def test_unknown_announcer_empty(self, diamond):
        assert best_paths(diamond, 99999) == {}

    def test_all_paths_valley_free(self, diamond):
        for origin in (1001, 2001, 3001, 100, 10):
            for path in best_paths(diamond, origin).values():
                assert validate_valley_free(diamond, path), path

    def test_valley_rejected_by_oracle(self, diamond):
        # down-then-up (1001 -> 100 -> 3001? no: 3001 is 100's customer;
        # a path 1001..100..3001 would be valid down after up). Construct
        # an explicit valley: provider -> customer -> provider.
        assert not validate_valley_free(diamond, (20, 200, 3001, 100))


class TestGeneratedTopology:
    def test_structure(self):
        asns = list(range(1, 301))
        topo = generate_topology(asns, seed=7)
        assert len(topo) == 300
        tier1 = topo.tier1s()
        assert len(tier1) == 8
        # every non-tier1 AS has a provider => reachable hierarchy
        for asn in topo.asns():
            if asn not in tier1:
                assert topo.providers(asn)

    def test_deterministic(self):
        asns = list(range(1, 101))
        a = generate_topology(asns, seed=3)
        b = generate_topology(asns, seed=3)
        assert {n: a.providers(n) for n in asns} == {n: b.providers(n) for n in asns}

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            generate_topology([1, 2, 3], tier1_count=8)

    def test_full_reachability_from_stubs(self):
        asns = list(range(1, 201))
        topo = generate_topology(asns, seed=1)
        paths = best_paths(topo, asns[-1])  # a stub announces
        assert len(paths) == len(asns)  # everyone has a route


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=30, max_value=120))
def test_generated_paths_always_valley_free(seed, size):
    asns = list(range(1, size + 1))
    topo = generate_topology(asns, seed=seed)
    origin = asns[-1]
    for path in best_paths(topo, origin).values():
        assert validate_valley_free(topo, path)
