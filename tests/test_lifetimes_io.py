"""Dataset I/O edge cases: encoding, malformed records, atomicity.

Complements the round-trip tests in ``test_lifetimes_bgp.py`` with the
failure-shape coverage the satellite fixes pinned down: non-ASCII
fields must survive regardless of the platform's locale encoding
(every read/write pins ``encoding="utf-8"``), and a malformed record
must be reported by *index*, not as a bare KeyError from the parser.
"""

from __future__ import annotations

import json

import pytest

from repro.lifetimes.io import (
    DatasetIOError,
    dump_admin_dataset,
    dump_bgp_dataset,
    load_admin_dataset,
    load_bgp_dataset,
)
from repro.lifetimes.records import AdminLifetime, BgpLifetime
from repro.timeline.dates import from_iso

D = from_iso("2010-01-01")


def _admin(asn=100, registry="ripencc"):
    return AdminLifetime(
        asn=asn, start=D, end=D + 500, reg_date=D - 10,
        registries=(registry,),
    )


class TestNonAscii:
    def test_admin_roundtrip_with_non_ascii_registry(self, tmp_path):
        path = tmp_path / "admin.json"
        lives = {100: [_admin(registry="ripé-ncc-über")]}
        assert dump_admin_dataset(lives, path) == 1
        loaded = load_admin_dataset(path)
        assert loaded[100][0].registry == "ripé-ncc-über"

    def test_load_accepts_raw_utf8_on_disk(self, tmp_path):
        # files written by other tools with ensure_ascii=False: the
        # loader must decode them as UTF-8 independent of the locale
        path = tmp_path / "admin.json"
        rows = [{"ASN": 7, "registry": "lácnic", "startdate": "2010-01-01",
                 "enddate": "2011-01-01", "regDate": "2009-12-31"}]
        path.write_text(
            json.dumps(rows, ensure_ascii=False, indent=1), encoding="utf-8"
        )
        assert load_admin_dataset(path)[7][0].registry == "lácnic"

    def test_dump_is_utf8_readable_bytes(self, tmp_path):
        path = tmp_path / "admin.json"
        dump_admin_dataset({1: [_admin(asn=1, registry="ñic")]}, path)
        path.read_bytes().decode("utf-8")  # must not raise


class TestMalformedRecords:
    def test_admin_reports_failing_record_index(self, tmp_path):
        path = tmp_path / "admin.json"
        good = {"ASN": 1, "registry": "arin", "startdate": "2010-01-01",
                "enddate": "2011-01-01", "regDate": "2009-12-31"}
        bad = dict(good, startdate="not-a-date")
        path.write_text(json.dumps([good, bad]), encoding="utf-8")
        with pytest.raises(DatasetIOError, match="record 1 is malformed"):
            load_admin_dataset(path)

    def test_bgp_reports_failing_record_index(self, tmp_path):
        path = tmp_path / "op.json"
        good = {"ASN": 1, "startdate": "2010-01-01", "enddate": "2011-01-01"}
        path.write_text(
            json.dumps([good, good, {"ASN": 2}]), encoding="utf-8"
        )
        with pytest.raises(DatasetIOError, match="record 2 is malformed"):
            load_bgp_dataset(path)

    def test_missing_key_names_the_file(self, tmp_path):
        path = tmp_path / "weird name.json"
        path.write_text(json.dumps([{"ASN": 1}]), encoding="utf-8")
        with pytest.raises(DatasetIOError, match="weird name.json"):
            load_admin_dataset(path)

    def test_non_array_document_rejected(self, tmp_path):
        path = tmp_path / "admin.json"
        path.write_text(json.dumps({"not": "a list"}), encoding="utf-8")
        with pytest.raises(DatasetIOError, match="JSON array"):
            load_admin_dataset(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "admin.json"
        path.write_text("[{", encoding="utf-8")
        with pytest.raises(DatasetIOError, match="not valid JSON"):
            load_admin_dataset(path)


class TestAtomicity:
    def test_dump_leaves_no_temp_files(self, tmp_path):
        dump_bgp_dataset(
            {1: [BgpLifetime(asn=1, start=D, end=D + 5)]},
            tmp_path / "op.json",
        )
        assert [p.name for p in tmp_path.iterdir()] == ["op.json"]
