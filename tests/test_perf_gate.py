"""Tests for the perf-regression gate's baseline handling.

The gate script lives outside the package (``benchmarks/``), so it is
loaded here via an explicit file-location import.  These tests focus
on the ``renamed`` stage-mapping table: a deliberate stage rename must
keep gating against the historic timing instead of tripping the
stage-set symmetric-difference refusal.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_GATE_PATH = Path(__file__).parent.parent / "benchmarks" / "check_perf_gate.py"
_spec = importlib.util.spec_from_file_location("check_perf_gate", _GATE_PATH)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def _write_snapshot(path: Path, stages: dict, *, incomplete: bool = False) -> None:
    doc = {
        "histograms": {
            f"stage.{name}.seconds": {"sum": seconds, "count": 1}
            for name, seconds in stages.items()
        },
        "session": {"incomplete": incomplete, "exitstatus": 1 if incomplete else 0},
    }
    path.write_text(json.dumps(doc))


def _write_baseline(path: Path, stages: dict, *, renamed: dict | None = None) -> None:
    doc = {
        "format": gate.BASELINE_FORMAT,
        "stages": stages,
        "total_seconds": sum(stages.values()),
    }
    if renamed is not None:
        doc["renamed"] = renamed
    path.write_text(json.dumps(doc))


def _run(tmp_path: Path, snapshot: dict, baseline: dict,
         renamed: dict | None = None, extra_args: list | None = None) -> int:
    snap = tmp_path / "snapshot.json"
    base = tmp_path / "baseline.json"
    _write_snapshot(snap, snapshot)
    _write_baseline(base, baseline, renamed=renamed)
    argv = [str(snap), "--baseline", str(base)] + (extra_args or [])
    return gate.main(argv)


def test_unrenamed_stage_set_mismatch_still_refuses(tmp_path, capsys):
    rc = _run(tmp_path, {"bgp:encode": 1.0}, {"bgp:stream": 1.0})
    assert rc == 1
    err = capsys.readouterr().err
    assert "disagree on the stage set" in err
    assert "bgp:stream" in err and "bgp:encode" in err


def test_renamed_stage_gates_against_old_timing(tmp_path, capsys):
    # same speed under the new name: passes
    rc = _run(
        tmp_path,
        {"bgp:encode": 1.0, "other": 0.5},
        {"bgp:stream": 1.0, "other": 0.5},
        renamed={"bgp:stream": "bgp:encode"},
    )
    assert rc == 0
    assert "bgp:encode" in capsys.readouterr().out


def test_renamed_stage_regression_still_fails(tmp_path, capsys):
    rc = _run(
        tmp_path,
        {"bgp:encode": 2.0},
        {"bgp:stream": 1.0},
        renamed={"bgp:stream": "bgp:encode"},
    )
    assert rc == 1
    err = capsys.readouterr().err
    assert "bgp:encode" in err and "regressed" in err


def test_stale_rename_mapping_is_an_error(tmp_path):
    with pytest.raises(SystemExit, match="matches no"):
        _run(
            tmp_path,
            {"bgp:stream": 1.0},
            {"bgp:stream": 1.0},
            renamed={"gone:stage": "bgp:stream"},
        )


def test_rename_target_collision_is_an_error(tmp_path):
    with pytest.raises(SystemExit, match="collides"):
        _run(
            tmp_path,
            {"a": 1.0, "b": 1.0},
            {"a": 1.0, "b": 1.0},
            renamed={"a": "b"},
        )


def test_malformed_rename_table_is_an_error(tmp_path):
    with pytest.raises(SystemExit, match="renamed"):
        _run(tmp_path, {"a": 1.0}, {"a": 1.0}, renamed={"a": 3})


def test_write_baseline_drops_rename_table(tmp_path):
    snap = tmp_path / "snapshot.json"
    base = tmp_path / "baseline.json"
    _write_snapshot(snap, {"bgp:encode": 1.0})
    _write_baseline(base, {"bgp:stream": 1.0}, renamed={"bgp:stream": "bgp:encode"})
    rc = gate.main([str(snap), "--baseline", str(base), "--write-baseline"])
    assert rc == 0
    doc = json.loads(base.read_text())
    assert "renamed" not in doc
    assert set(doc["stages"]) == {"bgp:encode"}
