"""Tests for the four-category taxonomy (§6, Table 3)."""

from repro.core import Category, classify
from repro.lifetimes import AdminLifetime, BgpLifetime
from repro.timeline import from_iso

D = from_iso("2010-01-01")


def admin(asn, start, end, registry="ripencc"):
    return AdminLifetime(asn, D + start, D + end, D + start, (registry,))


def op(asn, start, end):
    return BgpLifetime(asn, D + start, D + end)


class TestAdminCategories:
    def test_complete_overlap(self):
        result = classify({1: [admin(1, 0, 100)]}, {1: [op(1, 10, 50)]})
        assert result.admin_counts[Category.COMPLETE_OVERLAP] == 1
        assert result.op_counts[Category.COMPLETE_OVERLAP] == 1

    def test_exact_match_is_complete(self):
        result = classify({1: [admin(1, 0, 100)]}, {1: [op(1, 0, 100)]})
        assert result.admin_counts[Category.COMPLETE_OVERLAP] == 1

    def test_partial_overlap_dangling(self):
        result = classify({1: [admin(1, 0, 100)]}, {1: [op(1, 50, 150)]})
        assert result.admin_counts[Category.PARTIAL_OVERLAP] == 1
        assert result.op_counts[Category.PARTIAL_OVERLAP] == 1

    def test_partial_beats_complete_when_mixed(self):
        result = classify(
            {1: [admin(1, 0, 100)]},
            {1: [op(1, 10, 20), op(1, 90, 150)]},
        )
        assert result.admin_counts[Category.PARTIAL_OVERLAP] == 1
        # the contained op life itself is complete-overlap
        assert result.op_counts[Category.COMPLETE_OVERLAP] == 1
        assert result.op_counts[Category.PARTIAL_OVERLAP] == 1

    def test_unused(self):
        result = classify({1: [admin(1, 0, 100)]}, {})
        assert result.admin_counts[Category.UNUSED] == 1

    def test_unused_with_disjoint_activity(self):
        result = classify({1: [admin(1, 0, 100)]}, {1: [op(1, 200, 250)]})
        assert result.admin_counts[Category.UNUSED] == 1
        assert result.op_counts[Category.OUTSIDE_DELEGATION] == 1

    def test_outside_never_allocated(self):
        result = classify({}, {9: [op(9, 0, 10)]})
        assert result.op_counts[Category.OUTSIDE_DELEGATION] == 1
        assert not result.admin_counts

    def test_multiple_lives_counted_independently(self):
        result = classify(
            {1: [admin(1, 0, 100), admin(1, 200, 300)]},
            {1: [op(1, 10, 50)]},
        )
        assert result.admin_counts[Category.COMPLETE_OVERLAP] == 1
        assert result.admin_counts[Category.UNUSED] == 1

    def test_table3_rows_order(self):
        result = classify({1: [admin(1, 0, 100)]}, {1: [op(1, 10, 50)]})
        rows = result.table3_rows()
        assert [r[0] for r in rows] == [
            "complete_overlap",
            "partial_overlap",
            "unused",
            "outside_delegation",
        ]
        assert result.totals() == (1, 1)

    def test_materialize_category_members(self):
        admin_lives = {1: [admin(1, 0, 100)], 2: [admin(2, 0, 50)]}
        op_lives = {1: [op(1, 10, 50)]}
        result = classify(admin_lives, op_lives)
        unused = result.admin_lives_in(Category.UNUSED, admin_lives)
        assert [l.asn for l in unused] == [2]
        complete_ops = result.op_lives_in(Category.COMPLETE_OVERLAP, op_lives)
        assert [l.asn for l in complete_ops] == [1]

    def test_touching_boundary_is_contained(self):
        # op life ending exactly on the admin end day is contained
        result = classify({1: [admin(1, 0, 100)]}, {1: [op(1, 90, 100)]})
        assert result.admin_counts[Category.COMPLETE_OVERLAP] == 1

    def test_one_day_overhang_is_partial(self):
        result = classify({1: [admin(1, 0, 100)]}, {1: [op(1, 90, 101)]})
        assert result.admin_counts[Category.PARTIAL_OVERLAP] == 1
