"""Tests for origin/transit roles and prefix-aware segmentation
(the paper's §8/§9 extensions)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp import BgpElement, RIB, WITHDRAW
from repro.core import Role, classify_role, collect_role_activity, role_census
from repro.lifetimes import (
    build_prefix_aware_lifetimes,
    daily_prefixes_from_elements,
    jaccard,
    segment_prefix_aware,
)
from repro.net import Prefix
from repro.timeline import from_iso

D = from_iso("2015-01-01")
END = from_iso("2021-03-01")
P1 = Prefix.parse("10.0.0.0/16")
P2 = Prefix.parse("10.1.0.0/16")
P3 = Prefix.parse("24.0.0.0/20")
P4 = Prefix.parse("24.0.16.0/20")


def elem(day, path, prefix=P1, peer=None):
    peer = peer if peer is not None else path[0]
    return BgpElement(RIB, day, 0, "ris", "rrc00", peer, prefix, path)


class TestRoles:
    def test_origin_and_transit_split(self):
        elements_by_day = {
            D: [elem(D, (10, 20, 30))],
            D + 1: [elem(D + 1, (10, 30))],
        }
        activities = collect_role_activity(elements_by_day)
        # 30 originates on both days
        assert activities[30].origin_days.total_days == 2
        assert activities[30].transit_days.total_days == 0
        # 20 is transit on day 1 only
        assert activities[20].transit_days.total_days == 1
        assert activities[20].origin_days.total_days == 0
        # 10 is transit (the peer hop) on both days
        assert activities[10].transit_days.total_days == 2

    def test_role_classification(self):
        elements_by_day = {D: [elem(D, (10, 20, 30))]}
        activities = collect_role_activity(elements_by_day)
        assert activities[30].role_over(D, D) is Role.ORIGIN_ONLY
        assert activities[20].role_over(D, D) is Role.TRANSIT_ONLY
        assert classify_role(None, D, D) is Role.SILENT

    def test_mixed_role(self):
        elements_by_day = {
            D: [elem(D, (10, 20, 30)), elem(D, (10, 20), prefix=P2)],
        }
        activities = collect_role_activity(elements_by_day)
        assert activities[20].role_over(D, D) is Role.MIXED
        assert 0 < activities[20].transit_share() <= 1

    def test_withdraws_ignored(self):
        w = BgpElement(WITHDRAW, D, 0, "ris", "rrc00", 10, P1)
        assert collect_role_activity({D: [w]}) == {}

    def test_role_census(self):
        elements_by_day = {D: [elem(D, (10, 20, 30))]}
        activities = collect_role_activity(elements_by_day)
        census = role_census(activities, D, D)
        assert census[Role.ORIGIN_ONLY] == 1
        assert census[Role.TRANSIT_ONLY] == 2

    def test_prepend_does_not_make_origin_transit(self):
        elements_by_day = {D: [elem(D, (10, 30, 30))]}
        activities = collect_role_activity(elements_by_day)
        assert activities[30].role_over(D, D) is Role.ORIGIN_ONLY


class TestJaccard:
    def test_identical(self):
        assert jaccard(frozenset({P1}), frozenset({P1})) == 1.0

    def test_disjoint(self):
        assert jaccard(frozenset({P1}), frozenset({P2})) == 0.0

    def test_partial(self):
        assert jaccard(frozenset({P1, P2}), frozenset({P2, P3})) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert jaccard(frozenset(), frozenset()) == 1.0


class TestPrefixAwareSegmentation:
    def test_same_prefixes_short_gap_merges(self):
        daily = {D + i: frozenset({P1}) for i in range(5)}
        daily.update({D + 20 + i: frozenset({P1}) for i in range(5)})
        lives = segment_prefix_aware(100, daily, timeout=30)
        assert len(lives) == 1

    def test_different_prefixes_short_gap_splits(self):
        """The §6.1.2 disambiguation: a squatter announcing entirely
        different prefixes starts a new life even after a short gap."""
        daily = {D + i: frozenset({P1}) for i in range(5)}
        daily.update({D + 20 + i: frozenset({P3, P4}) for i in range(5)})
        lives = segment_prefix_aware(100, daily, timeout=30)
        assert len(lives) == 2
        assert lives[0].prefixes == {P1}
        assert lives[1].prefixes == {P3, P4}

    def test_long_gap_always_splits(self):
        daily = {D: frozenset({P1}), D + 100: frozenset({P1})}
        lives = segment_prefix_aware(100, daily, timeout=30)
        assert len(lives) == 2

    def test_threshold_zero_reduces_to_plain_timeout(self):
        daily = {D: frozenset({P1}), D + 10: frozenset({P3})}
        lives = segment_prefix_aware(100, daily, timeout=30,
                                     similarity_threshold=0.0)
        assert len(lives) == 1

    def test_empty_days_ignored(self):
        daily = {D: frozenset({P1}), D + 1: frozenset()}
        lives = segment_prefix_aware(100, daily)
        assert len(lives) == 1
        assert lives[0].end == D

    def test_no_activity(self):
        assert segment_prefix_aware(100, {}) == []

    def test_rejects_negative_timeout(self):
        with pytest.raises(ValueError):
            segment_prefix_aware(100, {D: frozenset({P1})}, timeout=-1)

    def test_build_population(self):
        daily_by_asn = {
            100: {D + i: frozenset({P1}) for i in range(3)},
            200: {D: frozenset({P2}), D + 200: frozenset({P3})},
        }
        lives = build_prefix_aware_lifetimes(daily_by_asn, end_day=END)
        assert len(lives[100]) == 1
        assert len(lives[200]) == 2

    def test_from_elements(self):
        elements_by_day = {
            D: [elem(D, (10, 20, 30), prefix=P1),
                elem(D, (10, 20, 30), prefix=P2)],
            D + 1: [elem(D + 1, (10, 40), prefix=P3)],
        }
        daily = daily_prefixes_from_elements(elements_by_day)
        assert daily[30][D] == {P1, P2}
        assert daily[40][D + 1] == {P3}
        assert 20 not in daily  # transit hops originate nothing


@settings(max_examples=100)
@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=120),
        st.sets(st.sampled_from([P1, P2, P3, P4]), min_size=1, max_size=3).map(frozenset),
        max_size=25,
    ),
    st.integers(min_value=0, max_value=40),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_segmentation_properties(raw_daily, timeout, threshold):
    daily = {D + offset: prefixes for offset, prefixes in raw_daily.items()}
    lives = segment_prefix_aware(1, daily, timeout=timeout,
                                 similarity_threshold=threshold)
    active_days = sorted(daily)
    if not active_days:
        assert lives == []
        return
    # lifetimes are ordered, disjoint, and cover all active days
    for a, b in zip(lives, lives[1:]):
        assert a.end < b.start
    covered = set()
    for life in lives:
        covered.update(range(life.start, life.end + 1))
    assert set(active_days) <= covered
    # boundaries coincide with active days
    assert lives[0].start == active_days[0]
    assert lives[-1].end == active_days[-1]
    # gaps longer than the timeout always split
    for a, b in zip(lives, lives[1:]):
        pass  # splits may also come from prefix dissimilarity
    # prefix union is preserved
    all_prefixes = set().union(*daily.values())
    assert set().union(*(life.prefixes for life in lives)) == all_prefixes
