"""Unit tests for repro.net.prefix."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import Prefix


class TestConstruction:
    def test_parse_v4(self):
        p = Prefix.parse("10.0.0.0/8")
        assert (p.version, p.length) == (4, 8)
        assert str(p) == "10.0.0.0/8"

    def test_parse_v6(self):
        p = Prefix.parse("2001:db8::/32")
        assert (p.version, p.length) == (6, 32)
        assert str(p) == "2001:db8::/32"

    def test_parse_rejects_host_bits(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.1/8")

    def test_constructor_rejects_host_bits(self):
        with pytest.raises(ValueError):
            Prefix.v4(1, 8)

    def test_constructor_rejects_bad_version(self):
        with pytest.raises(ValueError):
            Prefix(5, 0, 8)

    def test_constructor_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Prefix.v4(0, 33)

    def test_value_equality_and_hash(self):
        assert Prefix.parse("10.0.0.0/8") == Prefix.v4(10 << 24, 8)
        assert hash(Prefix.parse("10.0.0.0/8")) == hash(Prefix.v4(10 << 24, 8))


class TestContainment:
    def test_contains_more_specific(self):
        assert Prefix.parse("10.0.0.0/8").contains(Prefix.parse("10.1.0.0/16"))

    def test_contains_self(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.contains(p)
        assert not p.strictly_contains(p)

    def test_strictly_contains(self):
        assert Prefix.parse("10.0.0.0/8").strictly_contains(Prefix.parse("10.0.0.0/9"))

    def test_does_not_contain_less_specific(self):
        assert not Prefix.parse("10.0.0.0/16").contains(Prefix.parse("10.0.0.0/8"))

    def test_does_not_contain_disjoint(self):
        assert not Prefix.parse("10.0.0.0/8").contains(Prefix.parse("11.0.0.0/16"))

    def test_cross_version_never_contains(self):
        assert not Prefix.parse("10.0.0.0/8").contains(Prefix.parse("::/8"))

    def test_overlaps_symmetric(self):
        a, b = Prefix.parse("10.0.0.0/8"), Prefix.parse("10.2.0.0/15")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(Prefix.parse("11.0.0.0/8"))


class TestRoutableLengths:
    @pytest.mark.parametrize("text,ok", [
        ("10.0.0.0/8", True),
        ("10.0.0.0/24", True),
        ("10.0.0.0/25", False),
        ("0.0.0.0/0", False),
        ("10.0.0.0/7", False),
        ("2001:db8::/32", True),
        ("2001:db8::/64", True),
        ("2001:db8::/65", False),
        ("2000::/7", False),
    ])
    def test_global_length_rule(self, text, ok):
        assert Prefix.parse(text).is_globally_routable_length() is ok


class TestSubprefix:
    def test_first_subprefix(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.subprefix(0, 16) == Prefix.parse("10.0.0.0/16")

    def test_indexed_subprefix(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.subprefix(255, 16) == Prefix.parse("10.255.0.0/16")

    def test_same_length_identity(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.subprefix(0, 8) == p

    def test_rejects_shorter(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0/16").subprefix(0, 8)

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0/8").subprefix(256, 16)

    def test_rejects_overlong(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0/8").subprefix(0, 33)


@given(st.integers(min_value=0, max_value=255), st.integers(min_value=9, max_value=24))
def test_subprefixes_contained_in_parent(octet, length):
    parent = Prefix.v4(octet << 24, 8)
    count = min(1 << (length - 8), 64)
    for i in range(count):
        child = parent.subprefix(i, length)
        assert parent.strictly_contains(child)


@given(st.sampled_from(["10.0.0.0/8", "192.168.0.0/16", "2001:db8::/32"]))
def test_parse_str_roundtrip(text):
    assert str(Prefix.parse(text)) == text
