"""Observability-layer tests: spans, metrics, manifests, event draining.

The contract under test is ISSUE 4's acceptance criterion: the span
tree of an instrumented run covers every profiled stage — including
worker-side spans merged back from the process pool — the run manifest
reproduces byte-identically for identical config and inputs, and
metric totals survive both the process-pool round trip and ambient
fault injection.
"""

from __future__ import annotations

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    RUN_MANIFEST_FORMAT,
    TRACE_FORMAT,
    FaultInjector,
    FaultSpec,
    MetricsRegistry,
    PipelineStats,
    ProcessPoolBackend,
    SerialExecutor,
    Tracer,
    build_run_manifest,
    get_metrics,
    write_run_manifest,
)
from repro.runtime.faults import from_env
from repro.simulation import build_datasets
from repro.simulation.config import tiny


def _double(x):
    return x * 2


def _double_with_metrics(x):
    get_metrics().inc("test.worker.calls")
    return x * 2


class TestSpanNesting:
    def test_spans_nest_under_opener(self):
        tracer = Tracer()
        with tracer.span("outer", kind="stage") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            assert tracer.current() is outer
        assert tracer.current() is tracer.root
        assert outer.parent_id == tracer.root.span_id

    def test_exception_closes_orphaned_children(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                tracer.start_span("orphan")  # never finished by its opener
                raise RuntimeError("stage blew up")
        # the outer finish popped the orphan off the stack
        assert tracer.current() is tracer.root

    def test_threads_build_disjoint_subtrees(self):
        tracer = Tracer()
        seen = {}

        def work(name):
            with tracer.span(name) as span:
                seen[name] = span

        threads = [threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.spans) == 4
        # none of the thread spans nested under another thread's span
        for span in tracer.spans:
            assert span.parent_id == tracer.root.span_id

    def test_trace_lines_have_header_and_root(self, tmp_path):
        tracer = Tracer(backend="serial")
        with tracer.span("simulate", kind="stage", items=10):
            pass
        path = tracer.write_jsonl(tmp_path / "trace.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["format"] == TRACE_FORMAT
        assert lines[0]["spans"] == len(lines) - 1
        assert lines[1]["kind"] == "root"
        assert lines[2]["name"] == "simulate"
        assert lines[2]["attrs"]["items"] == 10

    def test_note_logs_event_and_annotates_current(self):
        tracer = Tracer()
        with tracer.span("stage-x") as span:
            tracer.note("cache: quarantined entry")
        assert tracer.events == ["cache: quarantined entry"]
        assert span.annotations == ["cache: quarantined entry"]


class TestWorkerSpanMerging:
    def test_pool_spans_adopted_as_tasks(self):
        stats = PipelineStats(metrics=MetricsRegistry())
        with ProcessPoolBackend(2, retries=1, backoff=0.0) as ex:
            ex.instrument(stats.tracer, stats.metrics)
            with stats.stage("fanout", items=6):
                assert ex.map(_double, [1, 2, 3, 4, 5, 6]) == [2, 4, 6, 8, 10, 12]
        task_spans = [s for s in stats.tracer.spans if s.kind == "task"]
        assert len(task_spans) == 6
        assert all(s.name == "task:_double" for s in task_spans)
        assert all(s.finished for s in task_spans)
        # worker spans nest under the stage span that was open at fan-out
        stage = next(s for s in stats.tracer.spans if s.kind == "stage")
        assert all(s.parent_id == stage.span_id for s in task_spans)

    def test_pool_spans_carry_worker_pids(self):
        stats = PipelineStats(metrics=MetricsRegistry())
        with ProcessPoolBackend(2, retries=1, backoff=0.0) as ex:
            ex.instrument(stats.tracer, stats.metrics)
            ex.map(_double, list(range(8)))
        pids = {s.pid for s in stats.tracer.spans if s.kind == "task"}
        assert pids  # and at least some came from another process
        import os

        assert any(pid != os.getpid() for pid in pids)

    def test_worker_metrics_merge_additively(self):
        metrics = MetricsRegistry()
        stats = PipelineStats(metrics=metrics)
        with ProcessPoolBackend(2, retries=1, backoff=0.0) as ex:
            ex.instrument(stats.tracer, metrics)
            ex.map(_double_with_metrics, list(range(5)))
        assert metrics.snapshot()["counters"]["test.worker.calls"] == 5

    def test_serial_executor_spans_match_pool_shape(self):
        stats = PipelineStats(metrics=MetricsRegistry())
        ex = SerialExecutor()
        ex.instrument(stats.tracer, stats.metrics)
        assert ex.map(_double, [1, 2]) == [2, 4]
        task_spans = [s for s in stats.tracer.spans if s.kind == "task"]
        assert [s.name for s in task_spans] == ["task:_double"] * 2

    def test_uninstrumented_pool_emits_no_spans(self):
        stats = PipelineStats(metrics=MetricsRegistry())
        with ProcessPoolBackend(2, retries=1, backoff=0.0) as ex:
            assert ex.map(_double, [1, 2]) == [2, 4]
        assert stats.tracer.spans == []

    def test_determinism_contract_survives_instrumentation(self):
        plain = build_datasets(tiny(seed=5))
        stats = PipelineStats(metrics=MetricsRegistry())
        with ProcessPoolBackend(2, retries=1, backoff=0.0) as ex:
            traced = build_datasets(tiny(seed=5), executor=ex, stats=stats)
        assert traced.admin_lives == plain.admin_lives
        assert traced.op_lives == plain.op_lives


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        metrics = MetricsRegistry()
        metrics.inc("hits")
        metrics.inc("hits", 2)
        metrics.gauge("workers").set(4)
        metrics.observe("wall", 1.0)
        metrics.observe("wall", 3.0)
        snap = metrics.snapshot()
        assert snap["counters"]["hits"] == 3
        assert snap["gauges"]["workers"] == 4
        from repro.runtime.observability import bucket_index

        assert snap["histograms"]["wall"] == {
            "count": 2, "sum": 4.0, "min": 1.0, "max": 3.0, "mean": 2.0,
            "buckets": {
                str(bucket_index(1.0)): 1, str(bucket_index(3.0)): 1,
            },
        }

    def test_merge_snapshot_adds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 1)
        b.inc("n", 2)
        b.observe("wall", 5.0)
        a.observe("wall", 1.0)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["n"] == 3
        assert snap["histograms"]["wall"]["count"] == 2
        assert snap["histograms"]["wall"]["max"] == 5.0

    def test_clear_is_in_place(self):
        metrics = MetricsRegistry()
        metrics.inc("n")
        counters = metrics.snapshot()["counters"]
        metrics.clear()
        assert metrics.snapshot()["counters"] == {}
        assert counters == {"n": 1}  # snapshots are copies, not views

    def test_stage_blocks_feed_histograms(self):
        metrics = MetricsRegistry()
        stats = PipelineStats(metrics=metrics)
        with stats.stage("simulate", items=3):
            pass
        hist = metrics.snapshot()["histograms"]["stage.simulate.seconds"]
        assert hist["count"] == 1


class TestBucketedHistograms:
    """The log-scaled bucket upgrade: additivity and the error bound."""

    # 1/64-granular values are binary fractions, so float sums are
    # exact and order-independent — "identical" below means ==, not
    # approximately equal.
    _values = st.lists(
        st.integers(min_value=1, max_value=2 ** 20).map(lambda k: k / 64),
        min_size=1,
        max_size=40,
    )

    @settings(max_examples=60, deadline=None)
    @given(st.lists(_values, min_size=1, max_size=5))
    def test_merging_worker_snapshots_matches_one_registry(self, worker_values):
        merged = MetricsRegistry()
        for values in worker_values:
            worker = MetricsRegistry()
            for value in values:
                worker.observe("wall", value)
            merged.merge_snapshot(worker.snapshot())
        single = MetricsRegistry()
        for value in (v for values in worker_values for v in values):
            single.observe("wall", value)
        summary = merged.snapshot()["histograms"]["wall"]
        expected = single.snapshot()["histograms"]["wall"]
        assert summary == expected  # buckets, count, sum, min, max, mean
        from repro.runtime.observability import quantile_from_buckets

        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert quantile_from_buckets(
                summary["buckets"], q, count=summary["count"],
                minimum=summary["min"], maximum=summary["max"],
            ) == quantile_from_buckets(
                expected["buckets"], q, count=expected["count"],
                minimum=expected["min"], maximum=expected["max"],
            )

    @settings(max_examples=60, deadline=None)
    @given(_values, st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_estimate_lands_in_the_exact_values_bucket(
        self, values, q
    ):
        from repro.runtime.observability import Histogram, bucket_index

        hist = Histogram()
        for value in values:
            hist.observe(value)
        exact = sorted(values)[
            max(0, min(len(values) - 1, round(q * (len(values) - 1))))
        ]
        # one-bucket-width error bound: the estimate shares the exact
        # nearest-rank value's bucket (clamping to min/max stays inside)
        assert bucket_index(hist.quantile(q)) == bucket_index(exact)


class TestAmbientFaultMetrics:
    """Metrics aggregation with REPRO_FAULT_SEED ambient injection on."""

    def test_injected_faults_counted(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FAULT_SEED", "2021")
        monkeypatch.setenv("REPRO_FAULT_RATE", "1.0")
        monkeypatch.setenv("REPRO_FAULT_SITES", "cache:read")
        metrics = get_metrics()
        metrics.clear()
        from repro.runtime import ArtifactCache

        cache = ArtifactCache(tmp_path)
        assert cache.faults is from_env()
        key = cache.key_for(artifact="ambient")
        cache.store(key, {"x": 1})
        assert cache.load(key) is None  # injected read failure → miss
        snap = metrics.snapshot()
        assert snap["counters"]["faults.injected"] >= 1
        assert snap["counters"]["faults.cache:read.oserror"] >= 1
        assert snap["counters"]["cache.misses"] >= 1

    def test_fault_annotations_reach_trace(self, monkeypatch, tmp_path):
        """Closure: every fired fault appears as a span annotation."""
        injector = FaultInjector(
            [FaultSpec("cache:read", "oserror", max_fires=2)], seed=0
        )
        tracer = Tracer()
        detach = tracer.subscribe_faults(injector)
        try:
            from repro.runtime import ArtifactCache

            cache = ArtifactCache(tmp_path, faults=injector)
            key = cache.key_for(artifact="x")
            cache.store(key, {"x": 1})
            with tracer.span("cache:lookup", kind="stage") as span:
                assert cache.load(key) is None
        finally:
            detach()
        assert len(injector.events) >= 1
        fault_notes = [a for a in span.annotations if a.startswith("fault: ")]
        assert len(fault_notes) == len(injector.events)
        for event, note in zip(injector.events, fault_notes):
            assert f"site={event.site}" in note
            assert f"kind={event.kind}" in note

    def test_detach_stops_annotations(self, tmp_path):
        injector = FaultInjector(
            [FaultSpec("cache:read", "oserror", max_fires=None)], seed=0
        )
        tracer = Tracer()
        detach = tracer.subscribe_faults(injector)
        detach()
        with pytest.raises(OSError):
            injector.on_read(tmp_path / "x")
        assert tracer.root.annotations == []


class TestRunManifest:
    def _manifest(self, tmp_path, seed=7):
        stats = PipelineStats(metrics=MetricsRegistry())
        build_datasets(tiny(seed=seed), stats=stats)
        return build_run_manifest(
            config=tiny(seed=seed),
            settings={"bgp_engine": "columnar", "jobs": 1},
            stats=stats,
        )

    def test_manifest_is_byte_identical_across_runs(self, tmp_path):
        a = self._manifest(tmp_path)
        b = self._manifest(tmp_path)
        blob_a = json.dumps(a, sort_keys=True)
        blob_b = json.dumps(b, sort_keys=True)
        assert blob_a == blob_b
        assert a["digest"] == b["digest"]

    def test_manifest_written_files_are_identical(self, tmp_path):
        a = write_run_manifest(tmp_path / "a.json", self._manifest(tmp_path))
        b = write_run_manifest(tmp_path / "b.json", self._manifest(tmp_path))
        assert a.read_bytes() == b.read_bytes()

    def test_manifest_distinguishes_configs(self, tmp_path):
        assert (
            self._manifest(tmp_path, seed=7)["digest"]
            != self._manifest(tmp_path, seed=8)["digest"]
        )

    def test_manifest_fields(self, tmp_path):
        manifest = self._manifest(tmp_path)
        assert manifest["format"] == RUN_MANIFEST_FORMAT
        assert manifest["config_hash"]
        assert manifest["cache_versions"]["pipeline"]
        assert manifest["backend"] == "serial"
        assert manifest["span_digest"]["sha256"]
        stage_names = [row["name"] for row in manifest["span_digest"]["stages"]]
        assert "simulate" in stage_names
        assert "assemble" in stage_names
        assert "generated_at" not in manifest  # timestamps are opt-in

    def test_clock_opt_in_excluded_from_digest(self, tmp_path):
        stats = PipelineStats(metrics=MetricsRegistry())
        with_clock = build_run_manifest(
            config=tiny(seed=1), stats=stats, clock=lambda: 1234.5
        )
        without = build_run_manifest(config=tiny(seed=1), stats=stats)
        assert with_clock["generated_at"] == 1234.5
        assert with_clock["digest"] == without["digest"]

    def test_fault_injection_settings_captured(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SEED", "2021")
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.1")
        monkeypatch.setenv("REPRO_FAULT_SITES", "cache:read,worker")
        manifest = build_run_manifest(config=None, stats=None)
        assert manifest["fault_injection"] == {
            "seed": 2021,
            "rate": 0.1,
            "sites": ["cache:read", "worker"],
        }
        monkeypatch.delenv("REPRO_FAULT_SEED")
        assert build_run_manifest()["fault_injection"] is None


class _LogSource:
    def __init__(self, events):
        self.events = list(events)


class TestDrainEvents:
    def test_drain_moves_and_clears(self):
        stats = PipelineStats(metrics=MetricsRegistry())
        source = _LogSource(["cache: store failed"])
        stats.drain_events_from(source)
        assert stats.events == ["cache: store failed"]
        assert source.events == []

    def test_source_reused_across_runs_never_rereports(self):
        """Regression: a cache/executor reused across runs must not
        re-report run 1's events into run 2."""
        source = _LogSource(["event-from-run-1"])
        first = PipelineStats(metrics=MetricsRegistry())
        first.drain_events_from(source)
        source.events.append("event-from-run-2")
        second = PipelineStats(metrics=MetricsRegistry())
        second.drain_events_from(source)
        assert first.events == ["event-from-run-1"]
        assert second.events == ["event-from-run-2"]

    def test_drain_self_is_noop(self):
        stats = PipelineStats(metrics=MetricsRegistry())
        stats.note("my own event")
        stats.drain_events_from(stats)  # events list is shared: must not loop
        assert stats.events == ["my own event"]

    def test_drain_shared_tracer_source_is_noop(self):
        tracer = Tracer()
        stats = PipelineStats(tracer=tracer, metrics=MetricsRegistry())
        stats.note("shared")
        stats.drain_events_from(tracer)  # same list object as stats.events
        assert stats.events == ["shared"]

    def test_drain_immutable_source_still_reports(self):
        stats = PipelineStats(metrics=MetricsRegistry())
        stats.drain_events_from(_LogSource(()).__class__(("frozen",)))
        assert stats.events == ["frozen"]

    def test_drain_tuple_log_reported_not_cleared(self):
        class Frozen:
            events = ("tuple event",)

        stats = PipelineStats(metrics=MetricsRegistry())
        stats.drain_events_from(Frozen())
        assert stats.events == ["tuple event"]


class TestPipelineStatsView:
    def test_stages_project_tracer_spans(self):
        stats = PipelineStats(metrics=MetricsRegistry())
        with stats.stage("simulate", items=100):
            pass
        stats.record("archive", 0.5, items=3)
        assert [s.name for s in stats.stages] == ["simulate", "archive"]
        assert stats.stages[0].items == 100
        assert stats.seconds_of("archive") == 0.5

    def test_late_item_count(self):
        stats = PipelineStats(metrics=MetricsRegistry())
        with stats.stage("restore") as timing:
            timing.items = 42
        assert stats.stages[0].items == 42

    def test_render_and_compare_still_work(self):
        stats = PipelineStats(metrics=MetricsRegistry())
        stats.record("simulate", 2.0, items=10)
        baseline = PipelineStats(metrics=MetricsRegistry())
        baseline.record("simulate", 4.0, items=10)
        assert "simulate" in stats.render()
        assert "2.0x" in stats.compare(baseline)

    def test_stage_attrs_flow_into_digest(self):
        stats = PipelineStats(metrics=MetricsRegistry())
        with stats.stage("bgp:segment", component="bgp", engine="columnar"):
            pass
        digest = stats.tracer.stage_digest()
        assert digest["stages"][0]["attrs"]["engine"] == "columnar"
