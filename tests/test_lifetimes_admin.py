"""Tests for §4.1 administrative lifetime inference."""

import pytest

from repro.rir import DelegationRecord, Status
from repro.rir.archive import Stint
from repro.lifetimes import admin_lifetimes_for_stints
from repro.timeline import from_iso

D = from_iso("2010-01-01")
END = from_iso("2020-01-01")


def rec(registry="ripencc", cc="IT", asn=100, date=D, status=Status.ALLOCATED,
        opaque="ORG-1"):
    return DelegationRecord(
        registry=registry, cc=cc, asn=asn, reg_date=date, status=status,
        opaque_id=opaque,
    )


def reserved(registry="ripencc", asn=100):
    return DelegationRecord(registry, "", asn, None, Status.RESERVED)


def available(registry="ripencc", asn=100):
    return DelegationRecord(registry, "", asn, None, Status.AVAILABLE)


class TestSingleLife:
    def test_one_allocation(self):
        stints = [Stint(D, D + 100, rec())]
        lives = admin_lifetimes_for_stints(100, stints, END)
        assert len(lives) == 1
        life = lives[0]
        assert (life.start, life.end) == (D, D + 100)
        assert life.reg_date == D
        assert life.registry == "ripencc"
        assert not life.open_ended

    def test_open_ended_at_window_end(self):
        stints = [Stint(D, END, rec())]
        lives = admin_lifetimes_for_stints(100, stints, END)
        assert lives[0].open_ended

    def test_date_correction_does_not_split(self):
        # §4.1: date changes without deallocation = administrative
        # correction to the same allocation
        stints = [
            Stint(D, D + 50, rec(date=D)),
            Stint(D + 51, D + 100, rec(date=D - 200)),
        ]
        lives = admin_lifetimes_for_stints(100, stints, END)
        assert len(lives) == 1
        assert lives[0].reg_date == D  # first published date kept

    def test_pool_only_history_yields_nothing(self):
        stints = [Stint(D, D + 100, available())]
        assert admin_lifetimes_for_stints(100, stints, END) == []


class TestReservedAndReturn:
    def test_same_date_return_merges(self):
        stints = [
            Stint(D, D + 100, rec(date=D)),
            Stint(D + 101, D + 150, reserved()),
            Stint(D + 151, D + 300, rec(date=D)),  # same date: same owner
        ]
        lives = admin_lifetimes_for_stints(100, stints, END)
        assert len(lives) == 1
        assert (lives[0].start, lives[0].end) == (D, D + 300)

    def test_new_date_after_available_is_new_life(self):
        stints = [
            Stint(D, D + 100, rec(date=D, opaque="ORG-1")),
            Stint(D + 101, D + 150, reserved()),
            Stint(D + 151, D + 200, available()),
            Stint(D + 201, D + 300, rec(date=D + 201, opaque="ORG-2")),
        ]
        lives = admin_lifetimes_for_stints(100, stints, END)
        assert len(lives) == 2
        assert lives[0].end == D + 100
        assert lives[1].start == D + 201
        assert lives[1].reg_date == D + 201

    def test_afrinic_exception_merges_despite_new_date(self):
        stints = [
            Stint(D, D + 100, rec(registry="afrinic", cc="ZA", date=D)),
            Stint(D + 101, D + 150, reserved(registry="afrinic")),
            Stint(D + 151, D + 300, rec(registry="afrinic", cc="ZA", date=D + 151)),
        ]
        lives = admin_lifetimes_for_stints(100, stints, END)
        assert len(lives) == 1  # reserved-only in between -> same life

    def test_afrinic_after_available_is_new_life(self):
        stints = [
            Stint(D, D + 100, rec(registry="afrinic", cc="ZA", date=D)),
            Stint(D + 101, D + 150, reserved(registry="afrinic")),
            Stint(D + 151, D + 180, available(registry="afrinic")),
            Stint(D + 181, D + 300, rec(registry="afrinic", cc="ZA", date=D + 181)),
        ]
        lives = admin_lifetimes_for_stints(100, stints, END)
        assert len(lives) == 2

    def test_non_afrinic_new_date_after_reserved_is_new_life(self):
        stints = [
            Stint(D, D + 100, rec(date=D)),
            Stint(D + 101, D + 150, reserved()),
            Stint(D + 151, D + 300, rec(date=D + 151)),
        ]
        lives = admin_lifetimes_for_stints(100, stints, END)
        assert len(lives) == 2  # RIPE without same date: reallocated

    def test_disappearance_same_date_merges(self):
        # regular-files era: the ASN just vanishes, then returns with
        # the same registration date
        stints = [
            Stint(D, D + 100, rec(date=D)),
            Stint(D + 120, D + 300, rec(date=D)),
        ]
        lives = admin_lifetimes_for_stints(100, stints, END)
        assert len(lives) == 1

    def test_disappearance_new_date_new_life(self):
        stints = [
            Stint(D, D + 100, rec(date=D)),
            Stint(D + 120, D + 300, rec(date=D + 120)),
        ]
        lives = admin_lifetimes_for_stints(100, stints, END)
        assert len(lives) == 2


class TestTransfers:
    def test_gapless_inter_rir_transfer_single_life(self):
        stints = [
            Stint(D, D + 100, rec(registry="arin", cc="US", date=D)),
            Stint(D + 101, D + 300, rec(registry="ripencc", cc="DE", date=D)),
        ]
        lives = admin_lifetimes_for_stints(100, stints, END)
        assert len(lives) == 1
        life = lives[0]
        assert life.registries == ("arin", "ripencc")
        assert life.registry == "ripencc"  # dataset field: final holder
        assert life.transferred

    def test_gapped_cross_rir_is_two_lives(self):
        stints = [
            Stint(D, D + 100, rec(registry="arin", cc="US", date=D)),
            Stint(D + 130, D + 300, rec(registry="ripencc", cc="DE", date=D)),
        ]
        lives = admin_lifetimes_for_stints(100, stints, END)
        assert len(lives) == 2

    def test_record_validation(self):
        from repro.lifetimes import AdminLifetime

        with pytest.raises(ValueError):
            AdminLifetime(asn=1, start=10, end=5, reg_date=10, registries=("arin",))
        with pytest.raises(ValueError):
            AdminLifetime(asn=1, start=5, end=10, reg_date=5, registries=())

    def test_json_schema(self):
        stints = [Stint(D, D + 100, rec())]
        life = admin_lifetimes_for_stints(100, stints, END)[0]
        row = life.to_json_dict()
        assert row == {
            "ASN": 100,
            "regDate": "2010-01-01",
            "startdate": "2010-01-01",
            "enddate": "2010-04-11",
            "status": "allocated",
            "registry": "ripencc",
        }
