"""End-to-end tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scale == 0.02
        assert args.timeout == 30

    def test_squat_hunt_args(self):
        args = build_parser().parse_args(
            ["squat-hunt", "a.json", "b.json", "--dormancy", "500"]
        )
        assert args.dormancy == 500

    def test_simulate_fault_tolerance_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.cache_verify == "sha256"
        assert args.retries == 2
        assert args.on_worker_failure == "serial"

    def test_simulate_fault_tolerance_flags(self):
        args = build_parser().parse_args([
            "simulate", "--cache-verify", "off",
            "--retries", "5", "--on-worker-failure", "raise",
        ])
        assert args.cache_verify == "off"
        assert args.retries == 5
        assert args.on_worker_failure == "raise"

    def test_rejects_unknown_cache_verify_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--cache-verify", "md5"])


class TestCommands:
    def test_simulate_then_analyze_then_hunt(self, tmp_path, capsys):
        rc = main([
            "simulate", "--scale", "0.006", "--seed", "3",
            "--out", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Taxonomy" in out
        admin = tmp_path / "admin_dataset.json"
        operational = tmp_path / "operational_dataset.json"
        assert admin.exists() and operational.exists()
        rows = json.loads(admin.read_text())
        assert {"ASN", "regDate", "startdate", "enddate", "status",
                "registry"} <= set(rows[0])

        rc = main(["analyze", str(admin), str(operational)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "administrative lifetimes" in out

        rc = main(["squat-hunt", str(admin), str(operational)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "match the filter" in out

    def test_simulate_with_verified_cache(self, tmp_path, capsys):
        argv = [
            "simulate", "--scale", "0.006", "--seed", "3",
            "--out", str(tmp_path / "data"),
            "--cache-dir", str(tmp_path / "cache"),
            "--cache-verify", "sha256", "--profile",
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "cache:store" in cold
        # second run is a verified warm hit; datasets are identical
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "cache:lookup" in warm
        admin = (tmp_path / "data" / "admin_dataset.json").read_text()
        assert json.loads(admin)  # valid dataset after warm rebuild

    def test_trace_implies_ledger_and_registers_run(self, tmp_path, capsys):
        out = tmp_path / "run"
        rc = main([
            "simulate", "--scale", "0.006", "--seed", "3",
            "--out", str(out), "--trace", "--metrics-out", "--manifest",
        ])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "all conserving" in printed
        assert "registered run" in printed
        ledger = json.loads((out / "ledger.json").read_text())
        assert ledger["format"] == "ledger/v1"
        assert ledger["conserved"] is True
        index = (out / "runs.jsonl").read_text().splitlines()
        assert len(index) == 1
        manifest = json.loads((out / "run_manifest.json").read_text())
        assert json.loads(index[0])["digest"] == manifest["digest"]

    def test_serve_build_append_bench_workflow(self, tmp_path, capsys):
        full, inc = tmp_path / "full", tmp_path / "inc"
        base = ["--scale", "0.006", "--seed", "3"]
        rc = main(["serve-build", *base, "--out", str(full), "--window", "45"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "built store" in out and "snapshot" in out

        rc = main(["serve-build", *base, "--out", str(inc),
                   "--window", "43", "--end-back", "2"])
        assert rc == 0
        capsys.readouterr()
        # append re-simulates the world from the manifest fingerprint
        # alone — no --scale/--seed needed — and must converge on the
        # full build's bytes
        rc = main(["serve-append", "--store", str(inc), "--days", "2"])
        assert rc == 0
        assert "appended 2 day(s)" in capsys.readouterr().out
        for path in sorted(full.iterdir()):
            if path.name == "runs.jsonl":
                continue  # registry histories legitimately differ
            assert path.read_bytes() == (inc / path.name).read_bytes(), path.name

        rc = main(["serve-bench", "--store", str(full),
                   "--queries", "300", "--concurrency", "4",
                   "--metrics-check",
                   "--access-log", str(tmp_path / "access.jsonl"),
                   "--json-out", str(tmp_path / "bench.json")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "300 queries" in out
        assert "metrics check: server saw 300 of 300 queries" in out
        report = json.loads((tmp_path / "bench.json").read_text())
        assert report["queries"] == 300 and report["errors"] == 0
        assert report["consistency"]["requests_match"] is True
        assert report["consistency"]["server"]["p99_us"] > 0

        rc = main(["inspect", "serve-log", str(tmp_path / "access.jsonl"),
                   "--top", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Access log: 30" in out  # 300 queries + the two scrapes
        assert "/asn/{n}/lives" in out
        assert "top 3 ASNs" in out

    def test_serve_bench_enforces_p99_bound(self, tmp_path, capsys):
        store = tmp_path / "store"
        rc = main(["serve-build", "--scale", "0.006", "--seed", "3",
                   "--out", str(store), "--window", "30"])
        assert rc == 0
        capsys.readouterr()
        rc = main(["serve-bench", "--store", str(store), "--queries", "200",
                   "--assert-p99-ms", "0.000001"])
        assert rc == 1
        assert "exceeds" in capsys.readouterr().err

    def test_serve_commands_fail_typed_on_missing_store(self, tmp_path, capsys):
        rc = main(["serve-append", "--store", str(tmp_path), "--days", "1"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
        rc = main(["serve-bench", "--store", str(tmp_path)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_export_mirror(self, tmp_path, capsys):
        rc = main([
            "export-mirror", "--scale", "0.006", "--seed", "3",
            "--out", str(tmp_path / "mirror"),
            "--start", "2010-06-01", "--end", "2010-06-05",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "delegation files" in out
        files = list((tmp_path / "mirror").rglob("delegated-*"))
        assert files
        # files parse with the library codec
        from repro.rir import MirrorReader

        reader = MirrorReader(tmp_path / "mirror")
        assert reader.sources()


class TestInspectCommands:
    @pytest.fixture()
    def two_runs(self, tmp_path):
        """A cold run and a warm (cache-hit) rerun of the same config."""
        index = tmp_path / "runs.jsonl"

        def simulate(name):
            out = tmp_path / name
            assert main([
                "simulate", "--scale", "0.006", "--seed", "3",
                "--out", str(out), "--cache-dir", str(tmp_path / "cache"),
                "--trace", "--metrics-out", "--manifest",
                "--runs-index", str(index),
            ]) == 0
            return out

        return simulate("cold"), simulate("warm"), index

    def test_inspect_trace_renders_and_exports_stacks(
        self, two_runs, tmp_path, capsys
    ):
        cold, _, _ = two_runs
        capsys.readouterr()
        flame = tmp_path / "stacks.folded"
        rc = main([
            "inspect", "trace", str(cold / "trace.jsonl"),
            "--depth", "2", "--flame", str(flame),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "critical path starred" in out
        assert "simulate" in out
        assert flame.read_text().splitlines()

    def test_inspect_ledger_check_passes_on_conserving_run(
        self, two_runs, capsys
    ):
        cold, _, _ = two_runs
        capsys.readouterr()
        rc = main(["inspect", "ledger", str(cold / "ledger.json"), "--check"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stages conserve" in out

    def test_inspect_ledger_check_fails_on_violation(self, tmp_path, capsys):
        doc = {
            "format": "ledger/v1", "conserved": False,
            "stages": [{"stage": "x:f", "in": 5, "kept": 3,
                        "dropped": {}, "routed": {}}],
        }
        path = tmp_path / "ledger.json"
        path.write_text(json.dumps(doc))
        rc = main(["inspect", "ledger", str(path), "--check"])
        assert rc == 1
        assert "VIOLATION" in capsys.readouterr().err

    def test_inspect_diff_by_path_attributes_cache_hit(
        self, two_runs, capsys
    ):
        cold, warm, _ = two_runs
        capsys.readouterr()
        rc = main(["inspect", "diff", str(cold), str(warm)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cache-hit" in out
        assert "cache miss→hit" in out

    def test_inspect_diff_by_digest_prefix(self, two_runs, capsys):
        cold, warm, index = two_runs
        capsys.readouterr()
        digests = [
            json.loads(line)["digest"]
            for line in index.read_text().splitlines()
        ]
        assert len(digests) == 2 and digests[0] != digests[1]
        rc = main([
            "inspect", "diff", digests[0][:12], digests[1][:12],
            "--runs-index", str(index),
        ])
        assert rc == 0
        assert "Run diff" in capsys.readouterr().out

    def test_inspect_diff_unknown_prefix_exits_2(self, tmp_path, capsys):
        rc = main([
            "inspect", "diff", "feedfeed", "beefbeef",
            "--runs-index", str(tmp_path / "runs.jsonl"),
        ])
        assert rc == 2
        assert "no run" in capsys.readouterr().err


class TestTopLevelApi:
    def test_convenience_imports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_workflow_through_top_level(self, tmp_path):
        import repro

        bundle = repro.build_datasets(repro.WorldConfig(seed=1, scale=0.004))
        assert isinstance(bundle, repro.DatasetBundle)
        text = repro.render_report(bundle.joint)
        assert "Taxonomy" in text
        path = tmp_path / "admin.json"
        repro.dump_admin_dataset(bundle.admin_lives, path)
        assert repro.load_admin_dataset(path)
