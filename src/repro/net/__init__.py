"""IP prefix substrate used by the BGP layer."""

from .prefix import (
    GLOBAL_V4_MAX_LEN,
    GLOBAL_V4_MIN_LEN,
    GLOBAL_V6_MAX_LEN,
    GLOBAL_V6_MIN_LEN,
    Prefix,
)

__all__ = [
    "Prefix",
    "GLOBAL_V4_MIN_LEN",
    "GLOBAL_V4_MAX_LEN",
    "GLOBAL_V6_MIN_LEN",
    "GLOBAL_V6_MAX_LEN",
]
