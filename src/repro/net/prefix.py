"""IP prefix type used by the BGP substrate.

The sanitization step of §3.2 discards paths to prefixes "either longer
than /24 or shorter than /8 for IPv4 and longer than /64 or shorter
than /8 for IPv6, since they should not be globally propagated".  The
§6 analyses additionally need prefix containment to recognize MOAS and
SubMOAS conflicts.  A small immutable value type keeps those operations
cheap on the hot path (billions of records at paper scale); parsing and
rendering delegate to :mod:`ipaddress` only at I/O boundaries.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from functools import lru_cache

__all__ = [
    "Prefix",
    "GLOBAL_V4_MIN_LEN",
    "GLOBAL_V4_MAX_LEN",
    "GLOBAL_V6_MIN_LEN",
    "GLOBAL_V6_MAX_LEN",
]

GLOBAL_V4_MIN_LEN = 8
GLOBAL_V4_MAX_LEN = 24
GLOBAL_V6_MIN_LEN = 8
GLOBAL_V6_MAX_LEN = 64


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 or IPv6 prefix ``network/length``.

    ``network`` is the integer value of the network address with host
    bits zeroed; ``length`` the mask length; ``version`` 4 or 6.
    """

    version: int
    network: int
    length: int

    def __post_init__(self) -> None:
        if self.version not in (4, 6):
            raise ValueError(f"IP version must be 4 or 6, got {self.version}")
        bits = self.bits
        if not 0 <= self.length <= bits:
            raise ValueError(f"/{self.length} invalid for IPv{self.version}")
        if self.network >> bits:
            raise ValueError("network value exceeds the address width")
        host_bits = bits - self.length
        if host_bits and self.network & ((1 << host_bits) - 1):
            raise ValueError(f"host bits set in {self!r}")

    @property
    def bits(self) -> int:
        """Address width: 32 for IPv4, 128 for IPv6."""
        return 32 if self.version == 4 else 128

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` or ``"x::/len"`` notation."""
        return _parse_cached(text)

    @classmethod
    def v4(cls, network: int, length: int) -> "Prefix":
        """Construct an IPv4 prefix from raw integers."""
        return cls(4, network, length)

    @classmethod
    def v6(cls, network: int, length: int) -> "Prefix":
        """Construct an IPv6 prefix from raw integers."""
        return cls(6, network, length)

    def __str__(self) -> str:
        if self.version == 4:
            addr: ipaddress._BaseAddress = ipaddress.IPv4Address(self.network)
        else:
            addr = ipaddress.IPv6Address(self.network)
        return f"{addr}/{self.length}"

    def contains(self, other: "Prefix") -> bool:
        """True when ``other`` is equal to or more specific than this.

        A /16 contains all its /17../32 sub-prefixes and itself.
        """
        if self.version != other.version or other.length < self.length:
            return False
        shift = self.bits - self.length
        return (self.network >> shift) == (other.network >> shift)

    def strictly_contains(self, other: "Prefix") -> bool:
        """True when ``other`` is a *more specific* sub-prefix (SubMOAS)."""
        return self.contains(other) and other.length > self.length

    def overlaps(self, other: "Prefix") -> bool:
        """True when the two prefixes share any address."""
        return self.contains(other) or other.contains(self)

    def is_globally_routable_length(self) -> bool:
        """§3.2 sanitization rule: keep only /8../24 (v4), /8../64 (v6)."""
        if self.version == 4:
            return GLOBAL_V4_MIN_LEN <= self.length <= GLOBAL_V4_MAX_LEN
        return GLOBAL_V6_MIN_LEN <= self.length <= GLOBAL_V6_MAX_LEN

    def subprefix(self, index: int, length: int) -> "Prefix":
        """Return the ``index``-th sub-prefix of the given longer length.

        Used by the workload generator to carve an organization's
        address block into announced prefixes.
        """
        if length < self.length:
            raise ValueError("subprefix length must not be shorter")
        if length > self.bits:
            raise ValueError(f"/{length} invalid for IPv{self.version}")
        slots = 1 << (length - self.length)
        if not 0 <= index < slots:
            raise ValueError(f"index {index} outside 0..{slots - 1}")
        network = self.network | (index << (self.bits - length))
        return Prefix(self.version, network, length)


@lru_cache(maxsize=65536)
def _parse_cached(text: str) -> Prefix:
    net = ipaddress.ip_network(text, strict=True)
    return Prefix(net.version, int(net.network_address), net.prefixlen)
