"""Command-line interface for the reproduction pipeline.

Subcommands mirror the paper's workflow (Fig. 1):

``simulate``
    Build a synthetic world, run defect injection + restoration +
    lifetime inference, export the two Listing-1 JSON datasets, and
    print the joint-analysis report.  ``--scenario NAME|PATH`` builds
    the world from a declarative scenario (see :mod:`repro.scenario`)
    instead of ``--scale``/``--seed``: the scenario's layers compile
    to the world config, and the scenario fingerprint is folded into
    the run manifest and the dataset cache key.  ``--taxonomy-out``
    writes the §6 taxonomy counts as canonical JSON — the golden
    artifact the CI scenario-matrix job byte-compares.
``scenarios``
    List the named scenarios of the library (``--json`` emits their
    ``scenario/v1`` documents).
``analyze``
    Load previously exported datasets and re-run the joint analysis
    (taxonomy, utilization, squat detection).
``export-mirror``
    Materialize a simulated delegation archive as an FTP-style
    directory tree of daily ``delegated-*`` files.
``squat-hunt``
    Run the §6.1.2 dormant-squat detector over exported datasets.
``export-dumps``
    Materialize per-collector MRT dump files (one directory per
    collector, one file per day), fanned out one worker per collector.
``inspect``
    Consume exported run artifacts: ``inspect trace`` renders the span
    tree (critical path starred, optional flamegraph export),
    ``inspect ledger`` prints the record-conservation table (``--check``
    fails on any non-conserving stage), ``inspect serve-log`` renders
    per-route latency/error tables and top-ASN heat from a serve
    access log, and ``inspect diff`` compares two runs — by directory
    or manifest-digest prefix via the ``runs.jsonl`` index —
    attributing wall-time deltas to cache misses, stage slowdowns, or
    fan-out imbalance.
``serve-build``
    Build a read-optimized ``serve-store/v1`` snapshot (sharded
    lifetimes + taxonomy, see ``repro.serve``) from a simulated world.
``serve-append``
    Advance an existing store by N days incrementally — the store's
    exact world is re-simulated from the snapshot manifest's config
    fingerprint, and the result is byte-identical to a full rebuild
    over the extended window.
``serve``
    Answer point/as-of/range lifetime queries over HTTP from a store,
    with live telemetry on ``/metrics`` (Prometheus text) and
    ``/status`` and optional structured access logs
    (``--access-log/--log-sample``).
``serve-bench``
    Replay a deterministic zipf-skewed query load against an
    in-process server and report p50/p99/throughput;
    ``--metrics-check`` cross-checks the server's ``/metrics`` account
    of the run against the client's.

Runtime flags on ``simulate``: ``--jobs N`` fans the parallel pipeline
stages out over N worker processes (bit-identical output),
``--cache-dir PATH`` reuses/stores content-addressed pipeline
artifacts, ``--cache-verify {off,sha256}`` controls checksum
verification of loaded cache entries (corrupt entries are quarantined
and rebuilt), ``--retries N`` bounds retry attempts after transient
worker-pool failures, ``--on-worker-failure {raise,serial}`` picks
between failing fast and degrading to serial execution with identical
output, and ``--profile`` prints per-stage wall times plus any runtime
degradation events.
``--bgp-engine columnar|records|object`` rebuilds operational lifetimes
from the message-level BGP stream over the last ``--bgp-window`` days
(all engines produce byte-identical datasets; cached activity tables
make repeat runs skip the stream).  The ``records`` engine packs the
window into the ``bgp-records/v1`` columnar container — cached as a raw
artifact and re-opened via mmap on later runs; ``--bgp-records PATH``
pins the container to an explicit file.
``--restoration-engine table|object`` picks the §3.1 delegation
restoration path: ``table`` (the default) packs the archive into the
``delegation-table/v1`` container once and restores off whole-array
candidate detection, fanning workers out over mmap descriptors instead
of pickled views; ``object`` is the dict-of-stints reference.  Both
produce byte-identical datasets; ``--restoration-table PATH`` pins the
container to an explicit file re-opened zero-copy on later runs.

Observability flags on ``simulate`` (see DESIGN.md §7): ``--trace``
writes the run's nested span trace as JSON lines, ``--metrics-out``
writes a counters/gauges/histograms snapshot, ``--manifest`` writes
the run provenance manifest (config hash, cache-key versions,
engine/backend choices, fault-injection settings, git describe, span
digest), and ``--ledger`` (implied by ``--trace``) writes the dataflow
conservation ledger.  Each takes an optional path and defaults to a
file next to the exported datasets; all are written atomically.
Writing a manifest also appends the run to a ``runs.jsonl`` index
(``--runs-index``) so ``inspect diff`` can address it later by digest
prefix.

Run ``python -m repro.cli <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .core.joint import JointAnalysis
from .core.report import render_report
from .core.squatting import detect_dormant_squatting
from .lifetimes.io import (
    dump_admin_dataset,
    dump_bgp_dataset,
    load_admin_dataset,
    load_bgp_dataset,
)
from .rir.ftp import export_archive
from .simulation.config import WorldConfig
from .simulation.datasets import build_datasets
from .timeline.dates import PAPER_END, from_iso, to_iso

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'The parallel lives of Autonomous "
        "Systems: ASN Allocations vs. BGP' (IMC 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="build a world and export datasets")
    simulate.add_argument("--scale", type=float, default=0.02,
                          help="fraction of paper-scale volume (default 0.02)")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--scenario", default=None, metavar="NAME|PATH",
                          help="build the world from a declarative scenario "
                          "instead of --scale/--seed: a named library "
                          "scenario ('repro scenarios' lists them) or a "
                          "scenario/v1 JSON file; the compiled config and "
                          "the scenario fingerprint go into the run "
                          "manifest and the cache key")
    simulate.add_argument("--taxonomy-out", nargs="?", const="@out",
                          default=None, metavar="PATH",
                          help="write the §6 taxonomy counts as canonical "
                          "JSON (the scenario-matrix golden artifact; "
                          "default PATH: OUT/taxonomy.json)")
    simulate.add_argument("--out", type=Path, default=Path("."),
                          help="output directory for the JSON datasets")
    simulate.add_argument("--no-pitfalls", action="store_true",
                          help="skip §3.1 defect injection")
    simulate.add_argument("--timeout", type=int, default=30,
                          help="BGP inactivity timeout in days (default 30)")
    simulate.add_argument("--jobs", type=int, default=None,
                          help="worker processes for parallel stages "
                          "(default: serial; output is identical)")
    simulate.add_argument("--cache-dir", type=Path, default=None,
                          help="content-addressed artifact cache directory "
                          "(warm hits skip the whole rebuild)")
    simulate.add_argument("--cache-verify", choices=("off", "sha256"),
                          default="sha256",
                          help="integrity check for loaded cache entries: "
                          "'sha256' (default) verifies each payload against "
                          "its sidecar manifest and quarantines+rebuilds "
                          "corrupt entries; 'off' trusts unpickling alone")
    simulate.add_argument("--retries", type=int, default=2,
                          help="retry budget for transient worker-pool "
                          "failures (default 2; each retry replaces the "
                          "broken pool and re-runs the same items)")
    simulate.add_argument("--on-worker-failure", choices=("raise", "serial"),
                          default="serial",
                          help="after the retry budget is exhausted: 'serial' "
                          "(default) degrades to inline execution with "
                          "identical output, 'raise' fails fast with a "
                          "WorkerPoolError")
    simulate.add_argument("--profile", action="store_true",
                          help="print per-stage wall times and item counts")
    simulate.add_argument("--trace", nargs="?", const="@out", default=None,
                          metavar="PATH",
                          help="write the run's span trace as JSON lines "
                          "(nested stage/task spans, cache and fault "
                          "annotations; default PATH: OUT/trace.jsonl)")
    simulate.add_argument("--metrics-out", nargs="?", const="@out",
                          default=None, metavar="PATH",
                          help="write a metrics snapshot (counters, gauges, "
                          "per-stage histograms) as JSON "
                          "(default PATH: OUT/metrics.json)")
    simulate.add_argument("--manifest", nargs="?", const="@out", default=None,
                          metavar="PATH",
                          help="write the run provenance manifest (config "
                          "hash, cache-key versions, engine/backend choices, "
                          "fault-injection settings, git describe, span "
                          "digest; default PATH: OUT/run_manifest.json)")
    simulate.add_argument("--ledger", nargs="?", const="@out", default=None,
                          metavar="PATH",
                          help="write the dataflow ledger (per-stage record "
                          "conservation counters: in == kept + dropped-by-"
                          "reason; default PATH: OUT/ledger.json). Implied "
                          "by --trace")
    simulate.add_argument("--runs-index", type=Path, default=None,
                          metavar="PATH",
                          help="append this run's manifest digest + artifact "
                          "paths to a runs.jsonl index so 'repro inspect "
                          "diff' can address it by digest prefix (default "
                          "when --manifest is written: OUT/runs.jsonl)")
    simulate.add_argument("--bgp-engine",
                          choices=("interval", "columnar", "records", "object"),
                          default="interval",
                          help="how operational activity is derived: "
                          "'interval' reads the simulation's activity "
                          "intervals directly (default, full window); "
                          "'columnar', 'records' and 'object' rebuild it "
                          "from the message-level BGP stream over the last "
                          "--bgp-window days (columnar = incremental "
                          "engine, records = packed-array vectorized "
                          "engine with mmap re-open, object = per-element "
                          "baseline; all yield byte-identical lifetimes)")
    simulate.add_argument("--bgp-window", type=int, default=365,
                          help="days of message-level BGP to rebuild when "
                          "--bgp-engine is columnar/records/object "
                          "(default 365)")
    simulate.add_argument("--bgp-records", type=Path, default=None,
                          metavar="PATH",
                          help="container file for the packed bgp-records/v1 "
                          "element encoding (records engine only): created "
                          "on first run, memory-mapped zero-copy on every "
                          "later run instead of re-materializing the stream")
    simulate.add_argument("--restoration-engine",
                          choices=("table", "object"),
                          default="table",
                          help="how the §3.1 delegation restoration runs: "
                          "'table' (default) packs the archive into the "
                          "delegation-table/v1 container and restores off "
                          "whole-array candidate detection with mmap "
                          "fan-out descriptors; 'object' walks the "
                          "dict-of-stints reference path (both yield "
                          "byte-identical datasets)")
    simulate.add_argument("--restoration-table", type=Path, default=None,
                          metavar="PATH",
                          help="container file for the packed "
                          "delegation-table/v1 rows (table engine only): "
                          "created on first run, memory-mapped zero-copy "
                          "on every later run")

    scenarios = sub.add_parser(
        "scenarios", help="list the named scenarios of the library"
    )
    scenarios.add_argument("--json", action="store_true",
                           help="emit the scenario/v1 documents as a JSON "
                           "array instead of the text listing")

    analyze = sub.add_parser("analyze", help="joint analysis over exported datasets")
    analyze.add_argument("admin", type=Path, help="administrative dataset JSON")
    analyze.add_argument("operational", type=Path, help="operational dataset JSON")
    analyze.add_argument("--end", default=None,
                         help="window end (YYYY-MM-DD; default: paper end)")

    mirror = sub.add_parser("export-mirror",
                            help="write an FTP-style delegation-file tree")
    mirror.add_argument("--scale", type=float, default=0.01)
    mirror.add_argument("--seed", type=int, default=0)
    mirror.add_argument("--out", type=Path, required=True)
    mirror.add_argument("--start", default=None, help="first day (YYYY-MM-DD)")
    mirror.add_argument("--end", default=None, help="last day (YYYY-MM-DD)")

    hunt = sub.add_parser("squat-hunt",
                          help="run the §6.1.2 dormant-squat detector")
    hunt.add_argument("admin", type=Path)
    hunt.add_argument("operational", type=Path)
    hunt.add_argument("--dormancy", type=int, default=1000,
                      help="minimum allocated-but-silent days (default 1000)")
    hunt.add_argument("--relative-duration", type=float, default=0.05,
                      help="maximum op/admin duration ratio (default 0.05)")
    hunt.add_argument("--top", type=int, default=20)

    dumps = sub.add_parser("export-dumps",
                           help="write per-collector MRT dump files")
    dumps.add_argument("--scale", type=float, default=0.006)
    dumps.add_argument("--seed", type=int, default=0)
    dumps.add_argument("--out", type=Path, required=True)
    dumps.add_argument("--start", default=None, help="first day (YYYY-MM-DD)")
    dumps.add_argument("--end", default=None, help="last day (YYYY-MM-DD)")
    dumps.add_argument("--days", type=int, default=30,
                       help="length of the window when --start/--end are "
                       "not both given (default 30)")
    dumps.add_argument("--jobs", type=int, default=None,
                       help="worker processes (one task per collector)")

    inspect = sub.add_parser(
        "inspect",
        help="analyze exported run artifacts (trace/ledger/diff)",
    )
    inspect_sub = inspect.add_subparsers(dest="inspect_command", required=True)

    itrace = inspect_sub.add_parser(
        "trace", help="render a span tree with critical-path highlighting"
    )
    itrace.add_argument("trace", type=Path,
                        help="trace.jsonl file (or the run directory)")
    itrace.add_argument("--depth", type=int, default=None,
                        help="maximum tree depth to print")
    itrace.add_argument("--flame", type=Path, default=None, metavar="PATH",
                        help="also write folded stacks (flamegraph input)")

    iledger = inspect_sub.add_parser(
        "ledger", help="print the record-conservation table"
    )
    iledger.add_argument("ledger", type=Path,
                         help="ledger.json file (or the run directory)")
    iledger.add_argument("--check", action="store_true",
                         help="exit non-zero if any stage fails "
                         "in == kept + dropped + routed")

    islog = inspect_sub.add_parser(
        "serve-log",
        help="per-route latency/error tables and top-ASN heat from a "
        "serve access log",
    )
    islog.add_argument("log", type=Path,
                       help="JSONL access log written by 'repro serve "
                       "--access-log' (rotated .1 backup is folded in "
                       "automatically)")
    islog.add_argument("--top", type=int, default=10, metavar="N",
                       help="ASNs to show in the heat table (default 10)")

    idiff = inspect_sub.add_parser(
        "diff", help="compare two runs and attribute wall-time deltas"
    )
    idiff.add_argument("run_a", help="run directory, or a manifest-digest "
                       "prefix resolved through --runs-index")
    idiff.add_argument("run_b", help="run directory or digest prefix")
    idiff.add_argument("--runs-index", type=Path, default=Path("runs.jsonl"),
                       metavar="PATH",
                       help="runs.jsonl index used to resolve digest "
                       "prefixes (default: ./runs.jsonl)")

    sbuild = sub.add_parser(
        "serve-build",
        help="build a read-optimized serve store from a simulated world",
    )
    sbuild.add_argument("--scale", type=float, default=0.02,
                        help="fraction of paper-scale volume (default 0.02)")
    sbuild.add_argument("--seed", type=int, default=0)
    sbuild.add_argument("--out", type=Path, required=True,
                        help="store directory (created/refreshed in place)")
    sbuild.add_argument("--window", type=int, default=365,
                        help="days of BGP activity the store covers, "
                        "ending at the window end (default 365)")
    sbuild.add_argument("--end-back", type=int, default=0,
                        help="move the window end N days before the "
                        "world's last simulated day, leaving headroom "
                        "for serve-append (default 0)")
    sbuild.add_argument("--timeout", type=int, default=30,
                        help="BGP inactivity timeout in days (default 30)")
    sbuild.add_argument("--min-peers", type=int, default=2)
    sbuild.add_argument("--min-corroboration", type=int, default=2)
    sbuild.add_argument("--shard-size", type=int, default=None,
                        help="ASNs per shard (default 512)")
    sbuild.add_argument("--no-pitfalls", action="store_true",
                        help="skip §3.1 defect injection")
    sbuild.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the pipeline stages")
    sbuild.add_argument("--cache-dir", type=Path, default=None,
                        help="artifact cache reused for the world build "
                        "and activity tables")
    sbuild.add_argument("--runs-index", type=Path, default=None,
                        metavar="PATH",
                        help="register the snapshot in this runs.jsonl "
                        "index (default: OUT/runs.jsonl)")
    sbuild.add_argument("--profile", action="store_true",
                        help="print per-stage wall times")

    sappend = sub.add_parser(
        "serve-append",
        help="advance a serve store by N days (byte-identical to a rebuild)",
    )
    sappend.add_argument("--store", type=Path, required=True,
                         help="existing serve-store/v1 directory")
    sappend.add_argument("--days", type=int, default=1,
                         help="days to append (default 1)")
    sappend.add_argument("--runs-index", type=Path, default=None,
                         metavar="PATH",
                         help="register the new snapshot in this "
                         "runs.jsonl index (default: STORE/runs.jsonl)")
    sappend.add_argument("--profile", action="store_true",
                         help="print per-stage wall times")

    serve = sub.add_parser(
        "serve", help="answer lifetime queries over HTTP from a store"
    )
    serve.add_argument("--store", type=Path, required=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8480,
                       help="TCP port (0 picks a free one; default 8480)")
    serve.add_argument("--access-log", type=Path, default=None, metavar="PATH",
                       help="write structured JSONL access logs to PATH "
                       "(rotated to PATH.1 by size)")
    serve.add_argument("--log-sample", type=int, default=1, metavar="N",
                       help="log every Nth request, deterministically "
                       "(default 1: every request)")
    serve.add_argument("--log-max-bytes", type=int, default=None,
                       metavar="BYTES",
                       help="rotate the access log past this size "
                       "(default 64 MiB)")

    sbench = sub.add_parser(
        "serve-bench",
        help="replay a deterministic query load against an in-process server",
    )
    sbench.add_argument("--store", type=Path, required=True)
    sbench.add_argument("--queries", type=int, default=10_000)
    sbench.add_argument("--concurrency", type=int, default=16)
    sbench.add_argument("--zipf-skew", type=float, default=1.1,
                        help="ASN popularity skew exponent (default 1.1)")
    sbench.add_argument("--seed", type=int, default=0)
    sbench.add_argument("--assert-p99-ms", type=float, default=None,
                        metavar="MS",
                        help="exit non-zero when p99 latency exceeds MS")
    sbench.add_argument("--json-out", type=Path, default=None,
                        metavar="PATH",
                        help="also write the report as JSON")
    sbench.add_argument("--metrics-check", action="store_true",
                        help="scrape /metrics before and after the run and "
                        "fail unless the server's request counters equal "
                        "queries sent (with --concurrency 1, also fail "
                        "unless server-side p50/p99 agree with the "
                        "client's within one histogram bucket)")
    sbench.add_argument("--access-log", type=Path, default=None,
                        metavar="PATH",
                        help="write the in-process server's JSONL access "
                        "log to PATH")
    return parser


def _artifact_path(value, out: Path, default_name: str) -> Optional[Path]:
    """Resolve a ``--trace``-style flag: absent, bare, or explicit path."""
    if value is None:
        return None
    if value == "@out":
        return out / default_name
    return Path(value)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .runtime import (
        PipelineStats,
        build_ledger,
        build_run_manifest,
        get_metrics,
        record_run,
        resolve_executor,
        write_json_atomic,
        write_ledger,
        write_run_manifest,
    )
    from .runtime.faults import from_env

    trace_path = _artifact_path(args.trace, args.out, "trace.jsonl")
    metrics_path = _artifact_path(args.metrics_out, args.out, "metrics.json")
    manifest_path = _artifact_path(args.manifest, args.out, "run_manifest.json")
    ledger_path = _artifact_path(args.ledger, args.out, "ledger.json")
    taxonomy_path = _artifact_path(args.taxonomy_out, args.out, "taxonomy.json")
    if ledger_path is None and trace_path is not None:
        # --trace implies the ledger: the two artifacts describe the
        # same run and the CI closure check expects both
        ledger_path = args.out / "ledger.json"

    scenario = None
    scenario_key = None
    if args.scenario is not None:
        from .scenario import ScenarioError, resolve_scenario, scenario_fingerprint

        try:
            scenario = resolve_scenario(args.scenario)
            config = scenario.compile()
        except ScenarioError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        scenario_key = scenario_fingerprint(scenario)
        print(f"scenario {scenario.name} ({scenario.digest()[:12]}): "
              f"{len(scenario.layers)} layers -> scale {config.scale}, "
              f"{config.topology_recipe} topology, seed {config.seed}")
    else:
        config = WorldConfig(seed=args.seed, scale=args.scale)
    metrics = get_metrics()
    metrics.clear()  # per-run snapshot semantics
    stats = PipelineStats(metrics=metrics)
    # ambient fault injection (REPRO_FAULT_SEED): mirror every injected
    # fault into the trace as a span annotation
    detach_faults = None
    injector = from_env()
    if injector is not None:
        detach_faults = stats.tracer.subscribe_faults(injector)
    executor = resolve_executor(
        args.jobs, retries=args.retries, on_failure=args.on_worker_failure,
    )
    executor.instrument(stats.tracer, stats.metrics)
    try:
        bundle = build_datasets(
            config, inject_pitfalls=not args.no_pitfalls,
            timeout=args.timeout, executor=executor, cache=args.cache_dir,
            cache_verify=args.cache_verify, stats=stats,
            restoration_engine=args.restoration_engine,
            restoration_table=args.restoration_table,
            scenario_key=scenario_key,
        )
        if args.bgp_engine == "interval":
            op_lives = bundle.op_lives
            joint = bundle.joint
        else:
            from .lifetimes.bgp import build_operational_dataset

            end = config.end_day
            start = max(config.start_day, end - args.bgp_window + 1)
            op_lives, _tables = build_operational_dataset(
                bundle.world, start=start, end=end, timeout=args.timeout,
                engine=args.bgp_engine, executor=executor,
                cache=args.cache_dir, cache_verify=args.cache_verify,
                stats=stats, records_path=args.bgp_records,
            )
            joint = JointAnalysis(
                admin_lives=bundle.admin_lives,
                op_lives=op_lives,
                end_day=end,
                topology=bundle.world.topology,
                siblings=bundle.world.orgs.sibling_map(),
                truth=bundle.world.events,
            )
    finally:
        stats.drain_events_from(executor)
        executor.close()
        if detach_faults is not None:
            detach_faults()
    args.out.mkdir(parents=True, exist_ok=True)
    admin_path = args.out / "admin_dataset.json"
    op_path = args.out / "operational_dataset.json"
    n_admin = dump_admin_dataset(bundle.admin_lives, admin_path)
    n_op = dump_bgp_dataset(op_lives, op_path)
    print(render_report(joint, restoration=bundle.restoration_report))
    print(f"\nwrote {admin_path} ({n_admin} records)")
    print(f"wrote {op_path} ({n_op} records)")
    if taxonomy_path is not None:
        from .core.taxonomy import Category

        taxonomy = joint.taxonomy
        write_json_atomic(taxonomy_path, {
            "format": "taxonomy/v1",
            "scenario": scenario.name if scenario is not None else None,
            "scenario_digest": (
                scenario.digest() if scenario is not None else None
            ),
            "admin_counts": {
                c.value: taxonomy.admin_counts.get(c, 0) for c in Category
            },
            "op_counts": {
                c.value: taxonomy.op_counts.get(c, 0) for c in Category
            },
            "admin_lifetimes": joint.total_admin_lifetimes(),
            "op_lifetimes": joint.total_op_lifetimes(),
            "admin_asns": joint.total_admin_asns(),
            "op_asns": joint.total_op_asns(),
        })
        print(f"wrote {taxonomy_path} (taxonomy counts)")
    if trace_path is not None:
        stats.tracer.write_jsonl(trace_path)
        print(f"wrote {trace_path} ({len(stats.tracer.spans) + 1} spans)")
    if metrics_path is not None:
        write_json_atomic(metrics_path, metrics.snapshot())
        print(f"wrote {metrics_path} (metrics snapshot)")
    if ledger_path is not None:
        ledger_doc = build_ledger(metrics)
        write_ledger(ledger_path, ledger_doc)
        verdict = (
            "all conserving" if ledger_doc["conserved"]
            else "CONSERVATION VIOLATIONS"
        )
        print(f"wrote {ledger_path} ({len(ledger_doc['stages'])} ledger "
              f"stages, {verdict})")
    if manifest_path is not None:
        manifest = build_run_manifest(
            config=config,
            settings={
                "scenario": (
                    {
                        "name": scenario.name,
                        "digest": scenario.digest(),
                        "fingerprint": scenario_key,
                    }
                    if scenario is not None else None
                ),
                "bgp_engine": args.bgp_engine,
                "bgp_window": args.bgp_window,
                "bgp_records": (
                    str(args.bgp_records) if args.bgp_records else None
                ),
                "restoration_engine": args.restoration_engine,
                "restoration_table": (
                    str(args.restoration_table)
                    if args.restoration_table else None
                ),
                "timeout": args.timeout,
                "jobs": args.jobs,
                "inject_pitfalls": not args.no_pitfalls,
                "cache_dir": str(args.cache_dir) if args.cache_dir else None,
                "cache_verify": args.cache_verify,
                "retries": args.retries,
                "on_worker_failure": args.on_worker_failure,
            },
            stats=stats,
            # describe the checkout the *code* ran from, not the cwd
            git_root=Path(__file__).resolve().parent,
        )
        write_run_manifest(manifest_path, manifest)
        print(f"wrote {manifest_path} (run manifest, "
              f"digest {manifest['digest'][:12]})")
        runs_index = args.runs_index
        if runs_index is None:
            runs_index = args.out / "runs.jsonl"
        record_run(runs_index, manifest, {
            "admin": admin_path,
            "operational": op_path,
            "manifest": manifest_path,
            "metrics": metrics_path,
            "trace": trace_path,
            "ledger": ledger_path,
        })
        print(f"registered run {manifest['digest'][:12]} in {runs_index}")
    if args.profile:
        print()
        print(stats.render())
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    import json

    from .scenario import NAMED_SCENARIOS, scenario_to_dict

    if args.json:
        docs = [scenario_to_dict(s) for s in NAMED_SCENARIOS.values()]
        print(json.dumps(docs, indent=2))
        return 0
    print(f"{len(NAMED_SCENARIOS)} named scenarios "
          f"(run with: repro simulate --scenario NAME)\n")
    for name, scenario in NAMED_SCENARIOS.items():
        layers = ", ".join(layer.layer_name for layer in scenario.layers)
        print(f"{name}  [{scenario.digest()[:12]}]")
        print(f"  layers: {layers}")
        print(f"  {scenario.description}")
        print()
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    admin_lives = load_admin_dataset(args.admin)
    op_lives = load_bgp_dataset(args.operational)
    end_day = from_iso(args.end) if args.end else PAPER_END
    joint = JointAnalysis(admin_lives, op_lives, end_day=end_day)
    print(render_report(joint))
    return 0


def _cmd_export_mirror(args: argparse.Namespace) -> int:
    from .rir.archive import DelegationArchive
    from .rir.pitfalls import PitfallInjector
    from .simulation.world import WorldSimulator

    config = WorldConfig(seed=args.seed, scale=args.scale)
    world = WorldSimulator(config).run()
    clean = DelegationArchive(world.registries, config.end_day)
    windows = {w.source: (w.first_day, w.last_day) for w in clean.sources()}
    injector = PitfallInjector(world.registries, config.end_day,
                               seed=config.seed + 6)
    overlay = injector.inject_all(windows, world.transfers)
    archive = DelegationArchive(world.registries, config.end_day, overlay)
    start = from_iso(args.start) if args.start else None
    end = from_iso(args.end) if args.end else None
    written = export_archive(archive, args.out, start=start, end=end)
    print(f"wrote {written} delegation files under {args.out}")
    return 0


def _cmd_squat_hunt(args: argparse.Namespace) -> int:
    admin_lives = load_admin_dataset(args.admin)
    op_lives = load_bgp_dataset(args.operational)
    candidates = detect_dormant_squatting(
        admin_lives,
        op_lives,
        dormancy_days=args.dormancy,
        relative_duration=args.relative_duration,
    )
    print(f"{len(candidates)} operational lives match the filter "
          f"(dormancy >= {args.dormancy}d, relative duration <= "
          f"{args.relative_duration:.0%})")
    for candidate in candidates[: args.top]:
        print(
            f"  AS{candidate.asn}: dormant {candidate.dormancy_days}d, "
            f"then active {to_iso(candidate.op_start)} .. "
            f"{to_iso(candidate.op_end)} "
            f"({candidate.relative_duration:.1%} of the admin life)"
        )
    return 0


def _cmd_export_dumps(args: argparse.Namespace) -> int:
    from .bgp.dumps import materialize_collector_dumps
    from .simulation.world import WorldSimulator

    config = WorldConfig(seed=args.seed, scale=args.scale)
    world = WorldSimulator(config).run()
    end = from_iso(args.end) if args.end else config.end_day
    start = from_iso(args.start) if args.start else end - args.days + 1
    start = max(start, config.start_day)
    if end < start:
        print(f"error: window end {to_iso(end)} precedes start {to_iso(start)}",
              file=sys.stderr)
        return 2
    announcements = {
        day: world.announcements_for_day(day) for day in range(start, end + 1)
    }
    written = materialize_collector_dumps(
        world.topology, world.collectors, announcements, args.out,
        start=start, end=end, executor=args.jobs,
    )
    for name, (files, elements) in written.items():
        print(f"{name}: {files} files, {elements} elements")
    print(f"wrote dumps for {len(written)} collectors under {args.out}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from .runtime import inspect as insp
    from .runtime import ledger as ledger_mod
    from .runtime import runs as runs_mod

    if args.inspect_command == "trace":
        view = insp.load_trace(args.trace)
        print(insp.render_trace(view, max_depth=args.depth))
        if args.flame is not None:
            args.flame.parent.mkdir(parents=True, exist_ok=True)
            args.flame.write_text(
                "\n".join(insp.folded_stacks(view)) + "\n", encoding="utf-8"
            )
            print(f"wrote {args.flame} (folded stacks)")
        return 0

    if args.inspect_command == "ledger":
        document = ledger_mod.load_ledger(args.ledger)
        print(ledger_mod.render_ledger(document))
        if args.check:
            violations = ledger_mod.check_ledger(document)
            if violations:
                for violation in violations:
                    print(f"VIOLATION: {violation}", file=sys.stderr)
                return 1
            print(f"{len(document.get('stages', []))} stages conserve")
        return 0

    if args.inspect_command == "serve-log":
        try:
            summary = insp.load_access_log(args.log)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(insp.render_serve_log(summary, top=args.top))
        return 0

    # diff: each side is a run directory, or a manifest-digest prefix
    # resolved through the runs index
    def resolve(ref: str) -> insp.RunArtifacts:
        candidate = Path(ref)
        if candidate.exists():
            return insp.load_run(candidate)
        entry = runs_mod.resolve_run(args.runs_index, ref)
        run_dir = runs_mod.run_path(entry)
        if run_dir is None:
            raise runs_mod.RunLookupError(
                f"run {ref!r} has no artifact paths in the index"
            )
        return insp.load_run(run_dir, artifacts=entry.get("artifacts", {}))

    try:
        run_a = resolve(args.run_a)
        run_b = resolve(args.run_b)
    except runs_mod.RunLookupError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(insp.render_diff(insp.diff_runs(run_a, run_b)))
    return 0


def _cmd_serve_build(args: argparse.Namespace) -> int:
    from .runtime import PipelineStats, get_metrics, resolve_executor
    from .runtime.faults import from_env
    from .serve.store import DEFAULT_SHARD_SIZE, ServeStoreError, build_store

    if args.window < 1:
        print("error: --window must be at least 1 day", file=sys.stderr)
        return 2
    config = WorldConfig(seed=args.seed, scale=args.scale)
    end = config.end_day - max(0, args.end_back)
    start = max(config.start_day, end - args.window + 1)
    if end <= config.start_day:
        print("error: --end-back pushes the window before the world starts",
              file=sys.stderr)
        return 2
    metrics = get_metrics()
    metrics.clear()
    stats = PipelineStats(metrics=metrics)
    detach_faults = None
    injector = from_env()
    if injector is not None:
        detach_faults = stats.tracer.subscribe_faults(injector)
    executor = resolve_executor(args.jobs)
    executor.instrument(stats.tracer, stats.metrics)
    try:
        bundle = build_datasets(
            config, inject_pitfalls=not args.no_pitfalls,
            timeout=args.timeout, executor=executor, cache=args.cache_dir,
            stats=stats,
        )
        runs_index = args.runs_index
        if runs_index is None:
            runs_index = args.out / "runs.jsonl"
        doc = build_store(
            args.out, bundle.world, bundle.admin_lives,
            start=start, end=end, timeout=args.timeout,
            min_peers=args.min_peers,
            min_corroboration=args.min_corroboration,
            shard_size=(args.shard_size if args.shard_size
                        else DEFAULT_SHARD_SIZE),
            executor=executor, cache=args.cache_dir, stats=stats,
            runs_index=runs_index,
        )
    except ServeStoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        stats.drain_events_from(executor)
        executor.close()
        if detach_faults is not None:
            detach_faults()
    counts = doc["counts"]
    print(f"built store {args.out}: {counts['asns']} ASNs, "
          f"{counts['admin_lives']} admin + {counts['op_lives']} op lives, "
          f"{len(doc['shards'])} shards, window "
          f"{to_iso(start)} .. {to_iso(end)}")
    print(f"snapshot {doc['digest'][:12]} registered in {runs_index}")
    if args.profile:
        print()
        print(stats.render())
    return 0


def _cmd_serve_append(args: argparse.Namespace) -> int:
    import json

    from .runtime import PipelineStats, get_metrics
    from .runtime.faults import from_env
    from .serve.append import append_days
    from .serve.store import MANIFEST_NAME, ServeStoreError, config_from_fingerprint
    from .simulation.world import WorldSimulator

    metrics = get_metrics()
    metrics.clear()
    stats = PipelineStats(metrics=metrics)
    detach_faults = None
    injector = from_env()
    if injector is not None:
        detach_faults = stats.tracer.subscribe_faults(injector)
    try:
        manifest_path = args.store / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {manifest_path}: {exc}", file=sys.stderr)
            return 2
        config = config_from_fingerprint(manifest.get("config"))
        with stats.stage("simulate", component="simulation") as span:
            world = WorldSimulator(config).run()
            span.items = len(world.lives)
        runs_index = args.runs_index
        if runs_index is None:
            runs_index = args.store / "runs.jsonl"
        doc = append_days(
            args.store, world, args.days, stats=stats, runs_index=runs_index,
        )
    except ServeStoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if detach_faults is not None:
            detach_faults()
    meta = doc["meta"]
    print(f"appended {args.days} day(s): window now "
          f"{to_iso(meta['start'])} .. {to_iso(meta['end'])}, "
          f"{doc['counts']['asns']} ASNs")
    print(f"snapshot {doc['digest'][:12]} registered in {runs_index}")
    if args.profile:
        print()
        print(stats.render())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve.http import LifetimesServer
    from .serve.index import StoreIndex
    from .serve.store import ServeStoreError
    from .serve.telemetry import AccessLog, ServerTelemetry

    try:
        index = StoreIndex.open(args.store)
    except ServeStoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    telemetry = None
    if args.access_log is not None:
        log_kwargs = {"sample": args.log_sample}
        if args.log_max_bytes is not None:
            log_kwargs["max_bytes"] = args.log_max_bytes
        telemetry = ServerTelemetry(
            access_log=AccessLog(args.access_log, **log_kwargs)
        )
    server = LifetimesServer(
        index, host=args.host, port=args.port, telemetry=telemetry
    )

    async def run() -> None:
        host, port = await server.start()
        print(f"serving {len(index)} ASNs (snapshot {index.digest[:12]}) "
              f"on http://{host}:{port}")
        if args.access_log is not None:
            print(f"access log: {args.access_log} "
                  f"(1-in-{max(1, args.log_sample)} sampling)")
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from .serve.http import LifetimesServer
    from .serve.index import StoreIndex
    from .serve.loadgen import plan_queries, run_load, run_load_checked
    from .serve.store import ServeStoreError
    from .serve.telemetry import AccessLog, ServerTelemetry

    try:
        index = StoreIndex.open(args.store)
        plan = plan_queries(
            index.all_asns(), index.meta, args.queries,
            seed=args.seed, skew=args.zipf_skew,
        )
    except ServeStoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    telemetry = None
    if args.access_log is not None:
        telemetry = ServerTelemetry(access_log=AccessLog(args.access_log))

    async def run():
        server = LifetimesServer(index, telemetry=telemetry)
        host, port = await server.start()
        try:
            if args.metrics_check:
                return await run_load_checked(
                    host, port, plan, concurrency=args.concurrency
                )
            return (
                await run_load(host, port, plan, concurrency=args.concurrency),
                None,
            )
        finally:
            await server.close()

    report, consistency = asyncio.run(run())
    doc = report.to_json_dict()
    doc["snapshot"] = index.digest
    print(f"{report.queries} queries in {report.seconds:.2f}s: "
          f"{report.qps:,.0f} q/s, p50 {report.p50_us / 1000:.2f}ms, "
          f"p99 {report.p99_us / 1000:.2f}ms, {report.errors} errors")
    if consistency is not None:
        doc["consistency"] = consistency
        server_q = consistency["server"]
        print(f"metrics check: server saw {consistency['server_requests']} "
              f"of {consistency['sent']} queries; server-side "
              f"p50 {server_q.get('p50_us', 0.0) / 1000:.2f}ms, "
              f"p99 {server_q.get('p99_us', 0.0) / 1000:.2f}ms")
    if args.access_log is not None:
        print(f"access log: {args.access_log}")
    if args.json_out is not None:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        args.json_out.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.json_out}")
    if report.errors:
        print(f"error: {report.errors} queries failed", file=sys.stderr)
        return 1
    if args.assert_p99_ms is not None and report.p99_us > args.assert_p99_ms * 1000:
        print(f"error: p99 {report.p99_us / 1000:.2f}ms exceeds the "
              f"{args.assert_p99_ms:.2f}ms bound", file=sys.stderr)
        return 1
    if consistency is not None:
        if not consistency["requests_match"]:
            print(f"error: /metrics reports "
                  f"{consistency['server_requests']} data-route requests, "
                  f"client sent {consistency['sent']}", file=sys.stderr)
            return 1
        # Client latency includes event-loop queueing once requests pile
        # up, so quantile agreement is only a contract at concurrency 1.
        if args.concurrency == 1 and not consistency["quantiles_agree"]:
            print(f"error: server-side quantiles {consistency['server']} "
                  f"disagree with client-side {consistency['client']} "
                  f"(bucket offsets {consistency['bucket_offsets']})",
                  file=sys.stderr)
            return 1
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "scenarios": _cmd_scenarios,
    "analyze": _cmd_analyze,
    "export-mirror": _cmd_export_mirror,
    "squat-hunt": _cmd_squat_hunt,
    "export-dumps": _cmd_export_dumps,
    "inspect": _cmd_inspect,
    "serve-build": _cmd_serve_build,
    "serve-append": _cmd_serve_append,
    "serve": _cmd_serve,
    "serve-bench": _cmd_serve_bench,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
