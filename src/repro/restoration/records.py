"""§3.1 step (ii): recover records that dropped out of extended files.

"When a group of ASes (from few hundreds to few thousands) disappears
for one or a few days from the extended delegation file(s), we can
recover information by leveraging the data still present in the
corresponding regular delegation file(s)."

For every gap between consecutive authoritative stints of an ASN inside
the extended era, if the regular feed shows a compatible delegated row
over the whole gap, the gap is filled.
"""

from __future__ import annotations

from typing import Dict, List

from ..rir.archive import Stint
from .compat import records_compatible
from .report import RestorationReport
from .view import RegistryView

__all__ = ["recover_dropped_records", "DEFAULT_MAX_GAP"]

#: Longest gap (days) this step will bridge; real drops last "one or a
#: few days", so anything longer is treated as a genuine state change.
DEFAULT_MAX_GAP = 30


def _regular_covers(
    regular: List[Stint], start: int, end: int, reference: Stint
) -> bool:
    """True when the regular feed shows a row compatible with
    ``reference`` on every day of [start, end]."""
    day = start
    for stint in regular:
        if stint.end < day:
            continue
        if stint.start > day:
            return False
        if not records_compatible(stint.record, reference.record):
            return False
        day = stint.end + 1
        if day > end:
            return True
    return day > end


def recover_dropped_records(
    views: Dict[str, RegistryView],
    report: RestorationReport,
    *,
    max_gap: int = DEFAULT_MAX_GAP,
) -> None:
    """Fill extended-era gaps confirmed by the regular feed (in place)."""
    step = report.step("ii-missing-records")
    for registry, view in sorted(views.items()):
        if view.extended_start is None or view.regular_last_day is None:
            continue
        filled_asns = 0
        filled_days = 0
        for asn, stints in view.stints.items():
            regular = view.regular_stints.get(asn)
            if not regular:
                continue
            i = 0
            while i + 1 < len(stints):
                left, right = stints[i], stints[i + 1]
                gap_start, gap_end = left.end + 1, right.start - 1
                if gap_start > gap_end:
                    i += 1
                    continue
                gap_len = gap_end - gap_start + 1
                if (
                    gap_len <= max_gap
                    and gap_start >= view.extended_start
                    and gap_end <= (view.regular_last_day or gap_end)
                    and left.record.is_delegated
                    and records_compatible(left.record, right.record)
                    and not any(
                        d in view.regular_unavailable_days
                        for d in range(gap_start, gap_end + 1)
                    )
                    and _regular_covers(regular, gap_start, gap_end, left)
                ):
                    stints[i] = Stint(left.start, right.end, left.record)
                    del stints[i + 1]
                    filled_asns += 1
                    filled_days += gap_len
                    continue  # re-examine the merged stint
                i += 1
        if filled_asns:
            step.bump(f"{registry}_records_recovered", filled_asns)
            step.bump(f"{registry}_days_recovered", filled_days)
