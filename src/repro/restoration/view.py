"""Per-registry observation views assembled from the two file kinds.

A registry publishes up to two parallel feeds (regular + extended); the
restoration pipeline works on a single *view* per registry: for each
day, the authoritative feed is the extended one once it exists ("we
consider the information from the extended delegation file", §3.1),
and the regular one before that.  The regular feed remains available to
later steps as a recovery source (§3.1 step ii).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..asn.numbers import ASN
from ..rir.archive import DelegationArchive, Stint
from ..rir.overlay import EXTENDED, REGULAR
from ..timeline.dates import Day

__all__ = ["RegistryView", "build_registry_view"]


@dataclass
class RegistryView:
    """One registry's merged observations plus recovery metadata.

    ``stints`` is the authoritative per-ASN timeline (era-stitched);
    ``regular_stints`` the full regular-feed timeline (recovery source);
    ``unavailable_days`` the days on which the authoritative feed had
    no usable file; ``extended_start`` the first extended-era day (or
    ``None`` if the registry never published extended files in window).
    """

    registry: str
    stints: Dict[ASN, List[Stint]] = field(default_factory=dict)
    regular_stints: Dict[ASN, List[Stint]] = field(default_factory=dict)
    unavailable_days: Set[Day] = field(default_factory=set)
    extended_start: Optional[Day] = None
    first_day: Day = 0
    last_day: Day = 0
    regular_first_day: Optional[Day] = None
    regular_last_day: Optional[Day] = None
    regular_unavailable_days: Set[Day] = field(default_factory=set)

    def prune_recovery_state(self) -> None:
        """Drop the regular-feed recovery data once restoration is done.

        ``regular_stints`` is a full second timeline consulted only by
        the §3.1 recovery steps (ii) and same-day measurement; after the
        pipeline has run, keeping it roughly doubles the view's pickled
        size for no consumer.  Downstream analyses read only the
        authoritative ``stints`` and the window metadata.
        """
        self.regular_stints = {}
        self.regular_unavailable_days = set()


def _clip_stints(stints: List[Stint], lo: Day, hi: Day) -> List[Stint]:
    out = []
    for stint in stints:
        start, end = max(stint.start, lo), min(stint.end, hi)
        if start <= end:
            out.append(Stint(start, end, stint.record))
    return out


def build_registry_view(archive: DelegationArchive, registry: str) -> RegistryView:
    """Assemble the per-registry view from the published feeds."""
    regular_key = (registry, REGULAR)
    extended_key = (registry, EXTENDED)
    has_regular = archive.has_source(regular_key)
    has_extended = archive.has_source(extended_key)
    if not has_regular and not has_extended:
        raise ValueError(f"{registry} publishes no delegation files")

    view = RegistryView(registry=registry)
    regular_window = archive.window(regular_key) if has_regular else None
    extended_window = archive.window(extended_key) if has_extended else None
    view.first_day = min(
        w.first_day for w in (regular_window, extended_window) if w is not None
    )
    view.last_day = max(
        w.last_day for w in (regular_window, extended_window) if w is not None
    )
    view.extended_start = extended_window.first_day if extended_window else None

    if has_regular:
        view.regular_stints = {
            asn: list(stints)
            for asn, stints in archive.timeline(regular_key).items()
        }
        view.regular_first_day = regular_window.first_day
        view.regular_last_day = regular_window.last_day
        view.regular_unavailable_days = set(archive.unavailable_days(regular_key))

    # authoritative timeline: regular before the extended era, extended after
    merged: Dict[ASN, List[Stint]] = {}
    if has_regular:
        regular_hi = (
            min(regular_window.last_day, view.extended_start - 1)
            if view.extended_start is not None
            else regular_window.last_day
        )
        if regular_hi >= regular_window.first_day:
            for asn, stints in view.regular_stints.items():
                clipped = _clip_stints(stints, regular_window.first_day, regular_hi)
                if clipped:
                    merged[asn] = clipped
    if has_extended:
        for asn, stints in archive.timeline(extended_key).items():
            clipped = _clip_stints(
                stints, extended_window.first_day, extended_window.last_day
            )
            if clipped:
                merged.setdefault(asn, []).extend(clipped)
    for stints in merged.values():
        stints.sort(key=lambda s: (s.start, s.end))
    view.stints = merged

    # days with no usable authoritative file
    if has_regular:
        regular_hi = (
            view.extended_start - 1 if view.extended_start is not None else None
        )
        for day in archive.unavailable_days(regular_key):
            if regular_hi is None or day <= regular_hi:
                view.unavailable_days.add(day)
    if has_extended:
        view.unavailable_days |= archive.unavailable_days(extended_key)
    return view
