"""Scoring the restoration against injected ground truth.

The paper could only describe its repairs; the simulated substrate can
*grade* them.  For each §3.1 defect class this module checks whether
the corresponding repair actually landed, producing per-class recall
plus an overall summary used by the restoration benchmarks and the
audit example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from ..asn.numbers import ASN
from ..rir.pitfalls import ERX_PLACEHOLDER_DATE, InjectedDefect
from ..timeline.dates import Day
from .pipeline import RestoredDelegations

__all__ = ["DefectScore", "score_restoration"]


@dataclass
class DefectScore:
    """Recall accounting for one defect class."""

    kind: str
    injected: int = 0
    repaired: int = 0
    unverifiable: int = 0

    @property
    def recall(self) -> float:
        checkable = self.injected - self.unverifiable
        if checkable <= 0:
            return 1.0
        return self.repaired / checkable


def score_restoration(
    restored: RestoredDelegations,
    defects: Sequence[InjectedDefect],
    *,
    erx_reference: Mapping[ASN, Day] | None = None,
) -> Dict[str, DefectScore]:
    """Grade the restored data against the injected defect log.

    Verifiable classes:

    * ``duplicate_record`` — no overlapping rows may survive for the ASN;
    * ``placeholder_regdate`` — no stint may still carry 1993-09-01;
    * ``future_regdate`` — no delegated stint may date later than its start;
    * ``mistaken_allocation`` — the culprit registry's rows must be gone;
    * ``stale_transfer_record`` — the origin's rows must stop at or
      before the destination's delegated start;
    * ``record_drop`` / file-level defects have no per-ASN identity in
      the log and are graded by the boundary-accuracy benchmarks
      instead (counted here as unverifiable).
    """
    erx_reference = erx_reference or {}
    scores: Dict[str, DefectScore] = {}

    def bucket(kind: str) -> DefectScore:
        if kind not in scores:
            scores[kind] = DefectScore(kind=kind)
        return scores[kind]

    for defect in defects:
        score = bucket(defect.kind)
        score.injected += 1
        if defect.asn is None:
            score.unverifiable += 1
            continue
        stints = restored.stints.get(defect.asn, [])
        if defect.kind == "duplicate_record":
            overlap = any(
                a.interval.overlaps(b.interval)
                for a, b in zip(stints, stints[1:])
            )
            if not overlap:
                score.repaired += 1
        elif defect.kind == "placeholder_regdate":
            if defect.asn not in erx_reference:
                score.unverifiable += 1
                continue
            clean = all(
                s.record.reg_date != ERX_PLACEHOLDER_DATE
                for s in stints
                if s.record.is_delegated
            )
            if clean:
                score.repaired += 1
        elif defect.kind == "future_regdate":
            clean = all(
                s.record.reg_date is None or s.record.reg_date <= s.start
                for s in stints
                if s.record.is_delegated
            )
            if clean:
                score.repaired += 1
        elif defect.kind == "mistaken_allocation":
            culprit = defect.source[0] if defect.source else None
            gone = all(
                s.record.registry != culprit or not s.record.is_delegated
                or not (defect.span and s.interval.overlaps(defect.span))
                for s in stints
            )
            if gone:
                score.repaired += 1
        elif defect.kind == "stale_transfer_record":
            origin = defect.source[0] if defect.source else None
            stale_remaining = any(
                s.record.registry == origin
                and s.record.is_delegated
                and defect.span is not None
                and s.start >= defect.span.start
                for s in stints
            )
            if not stale_remaining:
                score.repaired += 1
        else:
            score.unverifiable += 1
    return scores


def render_scores(scores: Mapping[str, DefectScore]) -> str:
    """Human-readable per-class recall table."""
    lines = [f"{'defect class':28s} {'injected':>8s} {'repaired':>8s} {'recall':>7s}"]
    for kind in sorted(scores):
        s = scores[kind]
        lines.append(
            f"{kind:28s} {s.injected:8d} {s.repaired:8d} {s.recall:6.0%}"
        )
    return "\n".join(lines)
