"""§3.1 step (iii): same-day regular/extended divergence.

When both file kinds exist for a day, their content occasionally
differs (the paper finds this on 1.8% of days, never for AfriNIC); the
newer file (by header serial) wins — in practice the extended one,
since the typical cause is a stale regular file.  The pipeline's
authoritative view already prefers the extended feed, so this step's
job is to *measure* the divergence (reported per registry) — except
for the disappears-from-newest case, which step (ii) repairs.
"""

from __future__ import annotations

from typing import Dict, Set

from ..timeline.dates import Day
from .report import RestorationReport
from .view import RegistryView

__all__ = ["measure_sameday_divergence"]


def _diff_days(a: list, b: list, lo: Day, hi: Day, skip: Set[Day]) -> Set[Day]:
    """Days in [lo, hi] on which two stint lists disagree about the row.

    Days in ``skip`` (either feed missing/corrupt) cannot be compared
    and never count as divergence.
    """

    def row_on(stints: list, day: Day):
        for stint in stints:
            if stint.start <= day <= stint.end:
                rec = stint.record
                return (rec.status, rec.reg_date, rec.cc)
        return None

    # disagreement can only start or stop at a stint boundary
    boundaries: Set[Day] = set()
    for stint in a + b:
        for day in (stint.start, stint.end, stint.end + 1):
            if lo <= day <= hi:
                boundaries.add(day)
    out: Set[Day] = set()
    for day in boundaries:
        if day in skip:
            continue
        if row_on(a, day) != row_on(b, day):
            out.add(day)
            probe = day + 1
            while probe <= hi and probe not in skip and row_on(a, probe) != row_on(b, probe):
                out.add(probe)
                probe += 1
    return out


def measure_sameday_divergence(
    views: Dict[str, RegistryView], report: RestorationReport
) -> Dict[str, Set[Day]]:
    """Report the days each registry's two feeds disagreed.

    Returns the divergent-day sets (used by tests); resolution itself is
    implicit in the authoritative view (extended wins).
    """
    step = report.step("iii-same-day-divergence")
    out: Dict[str, Set[Day]] = {}
    for registry, view in sorted(views.items()):
        if view.extended_start is None:
            continue
        if view.regular_last_day is None:
            continue
        divergent: Set[Day] = set()
        lo = view.extended_start
        hi = min(view.last_day, view.regular_last_day)
        if lo > hi:
            continue
        skip = view.unavailable_days | view.regular_unavailable_days
        for asn, auth_stints in view.stints.items():
            reg_stints = view.regular_stints.get(asn, [])
            ext_era_auth = [s for s in auth_stints if s.end >= lo]
            ext_era_reg = [
                s for s in reg_stints if s.end >= lo and s.record.is_delegated
            ]
            delegated_auth = [s for s in ext_era_auth if s.record.is_delegated]
            if not delegated_auth and not ext_era_reg:
                continue
            divergent |= _diff_days(delegated_auth, ext_era_reg, lo, hi, skip)
        if divergent:
            out[registry] = divergent
            step.bump(f"{registry}_divergent_days", len(divergent))
        if registry == "afrinic" and divergent:
            step.note("unexpected: AfriNIC feeds diverged")
    return out
