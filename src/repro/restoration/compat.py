"""Record-compatibility predicate shared by the restoration steps.

Regular-era rows carry no opaque id, so "the same delegation" must be
recognizable across file kinds: equal registry, status, country and
registration date, with opaque ids compared only when both present.
"""

from __future__ import annotations

from ..rir.model import DelegationRecord

__all__ = ["records_compatible"]


def records_compatible(a: DelegationRecord, b: DelegationRecord) -> bool:
    """True when two rows plausibly describe the same delegation state."""
    if a.registry != b.registry or a.status is not b.status:
        return False
    if a.reg_date != b.reg_date or a.cc != b.cc:
        return False
    if a.opaque_id is not None and b.opaque_id is not None:
        return a.opaque_id == b.opaque_id
    return True
