"""§3.1 step (iv): resolve contradictory duplicate records.

"In the AfriNIC files, we find duplicate records with inconsistent
information (e.g., allocated and reserved) persisting over periods of
up to 6 months ... By manually looking at the history of each ASN ...
we gather strong evidence disambiguating the inconsistent information."

The automated analogue: when two stints of one ASN overlap in time with
different content, the row consistent with the surrounding history wins
— measured as the total adjacent coverage by compatible stints.  On a
tie, the delegated row wins (BGP evidence in the paper generally
favored the allocation being real).
"""

from __future__ import annotations

from typing import Dict, List

from ..rir.archive import Stint
from .compat import records_compatible
from .report import RestorationReport
from .view import RegistryView

__all__ = ["resolve_duplicate_records"]


def _context_support(stints: List[Stint], candidate: Stint) -> int:
    """Days of non-overlapping adjacent stints compatible with the
    candidate's record (the "history" evidence)."""
    support = 0
    for other in stints:
        if other is candidate:
            continue
        if other.interval.overlaps(candidate.interval):
            continue
        if records_compatible(other.record, candidate.record):
            support += other.duration
    return support


def resolve_duplicate_records(
    views: Dict[str, RegistryView], report: RestorationReport
) -> None:
    """Drop the less-supported row of every overlapping pair (in place)."""
    step = report.step("iv-duplicate-records")
    for registry, view in sorted(views.items()):
        affected = 0
        rows_dropped = 0
        for asn, stints in view.stints.items():
            changed = False
            while True:
                clash = _find_overlap(stints)
                if clash is None:
                    break
                a, b = clash
                _keep, drop = _pick_winner(stints, stints[a], stints[b])
                stints.remove(drop)
                rows_dropped += 1
                changed = True
            if changed:
                affected += 1
        if affected:
            step.bump(f"{registry}_asns_deduplicated", affected)
            # row-level twin of the ASN count: the dataflow ledger
            # balances per-registry row conservation against this
            step.bump(f"{registry}_duplicate_rows_dropped", rows_dropped)


def _find_overlap(stints: List[Stint]):
    for i in range(len(stints) - 1):
        if stints[i].interval.overlaps(stints[i + 1].interval):
            return i, i + 1
    return None


def _pick_winner(stints: List[Stint], a: Stint, b: Stint):
    support_a = _context_support(stints, a)
    support_b = _context_support(stints, b)
    if support_a != support_b:
        return (a, b) if support_a > support_b else (b, a)
    if a.record.is_delegated != b.record.is_delegated:
        return (a, b) if a.record.is_delegated else (b, a)
    # final tie-break: the longer-observed row
    return (a, b) if a.duration >= b.duration else (b, a)
