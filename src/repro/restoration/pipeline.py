"""Orchestration of the six-step §3.1 restoration.

``restore_archive`` runs the steps over per-registry views and returns
a :class:`RestoredDelegations` — the cleaned, cross-registry
observation timeline that §4.1 lifetime inference consumes — together
with the :class:`RestorationReport` quantifying every repair.

The work is organized registry-major: building a registry's view and
running the five per-registry steps (same-day measurement, record
recovery, gap bridging, duplicate resolution, date repair) touches only
that registry's data, so each registry is one independent task a
:class:`~repro.runtime.executor.PipelineExecutor` can fan out.  Only
step (vi), :func:`clean_inter_rir_overlaps`, compares timelines
*across* registries — it is the join barrier and always runs in the
driver after every per-registry task has been merged back, in sorted
registry order.  The same code path serves the serial backend, so
parallel output is bit-identical by construction.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..asn.blocks import IanaLedger
from ..asn.numbers import ASN
from ..rir.archive import DelegationArchive, Stint
from ..runtime.cache import ArtifactCache
from ..runtime.executor import ExecutorSpec, resolve_executor
from ..runtime.ledger import ledger_enabled, record_boundary
from ..runtime.profiling import PipelineStats
from ..timeline.dates import Day
from .duplicates import resolve_duplicate_records
from .gaps import bridge_unavailable_gaps
from .interrir import clean_inter_rir_overlaps
from .records import recover_dropped_records
from .regdates import restore_registration_dates
from .report import RestorationReport
from .sameday import measure_sameday_divergence
from .view import RegistryView, build_registry_view

__all__ = ["RestoredDelegations", "restore_archive"]


@dataclass
class RestoredDelegations:
    """The cleaned observation timeline, merged across registries.

    ``stints[asn]`` is the chronological list of observed rows for one
    ASN across all five registries (delegated, reserved, and available
    states alike).  ``views`` retains the per-registry views for
    analyses that need them.
    """

    stints: Dict[ASN, List[Stint]] = field(default_factory=dict)
    views: Dict[str, RegistryView] = field(default_factory=dict)
    end_day: Day = 0

    def asns(self) -> List[ASN]:
        return sorted(self.stints)

    def delegated_stints(self, asn: ASN) -> List[Stint]:
        return [s for s in self.stints.get(asn, []) if s.record.is_delegated]

    def registries_of(self, asn: ASN) -> List[str]:
        """Registries that ever delegated this ASN, in first-seen order."""
        seen: List[str] = []
        for stint in self.stints.get(asn, []):
            if stint.record.is_delegated and stint.record.registry not in seen:
                seen.append(stint.record.registry)
        return seen


def _view_rows(view: RegistryView) -> int:
    """Observed rows (stints) currently held by one registry view."""
    return sum(len(stints) for stints in view.stints.values())


def _restore_registry_task(
    payload: Tuple[str, RegistryView, Optional[Mapping[ASN, Day]]],
) -> Tuple[str, RegistryView, RestorationReport]:
    """Run the five per-registry §3.1 steps over one registry's view.

    Module-level (picklable) and pure in its payload: the view is
    mutated in place, but under a process pool that copy is private to
    the worker and travels back in the return value.

    Every step gets a ledger boundary (``restoration/<step>/<registry>``):
    rows are counted independently before and after, and the drop
    buckets come from the step's own semantic counters — so the closure
    check (`in == kept + Σ dropped`) genuinely cross-validates the
    step's bookkeeping against the rows it touched.  Under a process
    pool the counters land in the worker-global registry and merge back
    additively with the task result.
    """
    registry, view, erx_reference = payload
    report = RestorationReport()
    views = {registry: view}
    # (step name, runner, (drop-reason, report-counter template) pairs);
    # steps without drop buckets must be row-count-neutral.
    steps = (
        ("iii-same-day-divergence",
         lambda: measure_sameday_divergence(views, report), ()),
        ("ii-missing-records",
         lambda: recover_dropped_records(views, report),
         (("merged_into_recovered_row", "{r}_records_recovered"),)),
        ("i-missing-file-gaps",
         lambda: bridge_unavailable_gaps(views, report),
         (("merged_across_file_gap", "{r}_gaps_bridged"),)),
        ("iv-duplicate-records",
         lambda: resolve_duplicate_records(views, report),
         (("duplicate_overlap", "{r}_duplicate_rows_dropped"),)),
        ("v-registration-dates",
         lambda: restore_registration_dates(
             views, report, erx_reference=erx_reference), ()),
    )
    for step_name, run, drop_buckets in steps:
        rows_before = _view_rows(view)
        run()
        rows_after = _view_rows(view)
        counts = report.step(step_name).counts
        dropped = {
            reason: counts.get(counter.format(r=registry), 0)
            for reason, counter in drop_buckets
        }
        record_boundary(
            f"restoration/{step_name}/{registry}",
            records_in=rows_before,
            kept=rows_after,
            dropped=dropped,
        )
    return registry, view, report


def _build_view_task(payload: Tuple[DelegationArchive, str]) -> RegistryView:
    """Materialize one registry's view (timelines + feed stitching)."""
    archive, registry = payload
    return build_registry_view(archive, registry)


def restore_archive(
    archive: DelegationArchive,
    *,
    erx_reference: Optional[Mapping[ASN, Day]] = None,
    ledger: Optional[IanaLedger] = None,
    executor: ExecutorSpec = None,
    stats: Optional[PipelineStats] = None,
    engine: str = "object",
    cache: Optional[ArtifactCache] = None,
    table_path: Optional[Union[str, Path]] = None,
    cache_key_parts: Optional[Mapping[str, Any]] = None,
) -> tuple:
    """Run the full §3.1 restoration over an archive.

    Parameters
    ----------
    archive:
        The (possibly defect-ridden) delegation archive.
    erx_reference:
        Original registration dates for ERX-transferred ASNs (the
        equivalent of ARIN's pre-delegation-file records), used to
        repair placeholder dates.
    ledger:
        The IANA block ledger, used to spot mistaken allocations.
    executor:
        Execution backend (or spec) for the per-registry fan-out; the
        default runs everything inline.  Output is bit-identical across
        backends.
    stats:
        Optional :class:`PipelineStats` receiving per-stage timings.
    engine:
        ``"object"`` walks dict-of-``Stint`` timelines (the reference
        implementation); ``"table"`` packs the archive into a
        ``delegation-table/v1`` container once (``restore:table``) and
        runs view assembly plus per-registry candidate detection as
        whole-array ops, fanning workers out over ``(path, registry)``
        descriptors instead of pickled views.  Output is contractually
        byte-identical between the two.
    cache:
        Optional :class:`ArtifactCache` holding the packed container
        as a raw (mmap-able) entry.  Only consulted by the table
        engine, and only when ``cache_key_parts`` names the
        archive-determining inputs (the archive itself is too
        expensive to fingerprint here).
    table_path:
        Optional container file path: reused when present, written
        after a cold encode (the file doubles as the fan-out backing
        store).
    cache_key_parts:
        Mapping mixed into the container cache key alongside
        ``DELEGATION_TABLE_VERSION``.

    Returns
    -------
    (RestoredDelegations, RestorationReport)
    """
    if engine not in ("object", "table"):
        raise ValueError(f"unknown restoration engine {engine!r}")
    executor = resolve_executor(executor)
    if stats is None:
        stats = PipelineStats()
    # Always instrument: worker-side ledger counters only survive the
    # pool round-trip when the executor snapshots worker metrics.
    executor.instrument(stats.tracer, stats.metrics)
    registries = sorted(archive.registries())

    table = None
    handle = None
    spilled: Optional[Path] = None
    if engine == "table":
        from .table import obtain_table, restore_registry_table_task

        with stats.stage(
            "restore:table", component="restoration", engine="table"
        ) as span:
            table, source, handle = obtain_table(
                archive,
                cache=cache,
                table_path=table_path,
                cache_key_parts=cache_key_parts,
            )
            if handle[0] == "bytes" and executor.jobs > 1:
                # a pool fan-out must ship a descriptor, not the blob
                # once per registry: spill to a temp file the workers
                # mmap, removed after the fan-out returns (their
                # mappings survive the unlink)
                fd, tmp = tempfile.mkstemp(
                    prefix="delegation-table-", suffix=".dtab"
                )
                with os.fdopen(fd, "wb") as fh:
                    fh.write(handle[1])
                spilled = Path(tmp)
                handle = ("path", str(spilled))
            span.set_attr("source", source)
            span.set_attr("fanout", handle[0])
        with stats.stage(
            "restore:views",
            items=len(registries),
            component="restoration",
            engine="table",
        ):
            views: Dict[str, RegistryView] = {
                registry: table.build_view(registry, include_regular=False)
                for registry in registries
            }
    else:
        with stats.stage(
            "restore:views", items=len(registries), component="restoration"
        ):
            built = executor.map(
                _build_view_task, [(archive, registry) for registry in registries]
            )
        views = dict(zip(registries, built))

    # Steps (i)-(v) are per-registry; step order inside each task
    # mirrors §3.1: same-day resolution is implicit in the
    # authoritative view and measured first; record recovery must run
    # before gap bridging so that drops repaired from the regular feed
    # are not mistaken for file outages; duplicates are resolved before
    # dates so date repair sees one row per day.
    report = RestorationReport()
    rows_before_steps = {r: _view_rows(views[r]) for r in registries}
    with stats.stage(
        "restore:per-registry",
        items=len(registries),
        component="restoration",
        engine=engine,
    ) as span:
        if engine == "table":
            results = executor.map(
                restore_registry_table_task,
                [(handle, registry, erx_reference) for registry in registries],
            )
        else:
            results = executor.map(
                _restore_registry_task,
                [
                    (registry, views[registry], erx_reference)
                    for registry in registries
                ],
            )
    if spilled is not None:
        spilled.unlink(missing_ok=True)
    for registry, result_view, worker_report in results:
        if engine == "table":
            # the worker returns only the candidate ASNs' mutated
            # lists; patch them into the decoded view (assignment to
            # existing keys preserves insertion order)
            view = views[registry]
            for asn, stints in result_view.items():
                view.stints[asn] = stints
        else:
            views[registry] = result_view
        report.merge(worker_report)
    if ledger_enabled():
        span.set_attr("ledger", {
            "in": sum(rows_before_steps.values()),
            "kept": sum(_view_rows(view) for view in views.values()),
        })

    # Step (vi) compares already-clean per-registry timelines against
    # each other — the cross-registry join barrier, serial by design.
    rows_before_vi = {r: _view_rows(views[r]) for r in registries}
    with stats.stage(
        "restore:inter-rir", items=len(views), component="restoration"
    ) as span:
        clean_inter_rir_overlaps(views, report, ledger=ledger)
        vi_counts = report.step("vi-inter-rir").counts
        for registry in registries:
            summary = record_boundary(
                f"restoration/vi-inter-rir/{registry}",
                records_in=rows_before_vi[registry],
                kept=_view_rows(views[registry]),
                dropped={
                    "mistaken_allocation": vi_counts.get(
                        f"{registry}_rows_dropped_mistaken", 0
                    ),
                    "stale_transfer_tail": vi_counts.get(
                        f"{registry}_rows_dropped_stale_tail", 0
                    ),
                },
                metrics=stats.metrics,
            )
            if summary is not None:
                span.set_attr(f"ledger.{registry}", summary)

    with stats.stage("restore:merge", component="restoration") as span:
        for view in views.values():
            view.prune_recovery_state()
        restored = RestoredDelegations(views=views, end_day=archive.end_day)
        for registry in registries:
            for asn, stints in views[registry].stints.items():
                restored.stints.setdefault(asn, []).extend(stints)
        for stints in restored.stints.values():
            stints.sort(key=lambda s: (s.start, s.end))
        # the cross-registry merge must neither lose nor invent rows
        summary = record_boundary(
            "restoration/merge",
            records_in=sum(_view_rows(view) for view in views.values()),
            kept=sum(len(stints) for stints in restored.stints.values()),
            metrics=stats.metrics,
        )
        if summary is not None:
            span.set_attr("ledger", summary)
    return restored, report
