"""Orchestration of the six-step §3.1 restoration.

``restore_archive`` runs the steps in order over per-registry views and
returns a :class:`RestoredDelegations` — the cleaned, cross-registry
observation timeline that §4.1 lifetime inference consumes — together
with the :class:`RestorationReport` quantifying every repair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..asn.blocks import IanaLedger
from ..asn.numbers import ASN
from ..rir.archive import DelegationArchive, Stint
from ..timeline.dates import Day
from .duplicates import resolve_duplicate_records
from .gaps import bridge_unavailable_gaps
from .interrir import clean_inter_rir_overlaps
from .records import recover_dropped_records
from .regdates import restore_registration_dates
from .report import RestorationReport
from .sameday import measure_sameday_divergence
from .view import RegistryView, build_registry_view

__all__ = ["RestoredDelegations", "restore_archive"]


@dataclass
class RestoredDelegations:
    """The cleaned observation timeline, merged across registries.

    ``stints[asn]`` is the chronological list of observed rows for one
    ASN across all five registries (delegated, reserved, and available
    states alike).  ``views`` retains the per-registry views for
    analyses that need them.
    """

    stints: Dict[ASN, List[Stint]] = field(default_factory=dict)
    views: Dict[str, RegistryView] = field(default_factory=dict)
    end_day: Day = 0

    def asns(self) -> List[ASN]:
        return sorted(self.stints)

    def delegated_stints(self, asn: ASN) -> List[Stint]:
        return [s for s in self.stints.get(asn, []) if s.record.is_delegated]

    def registries_of(self, asn: ASN) -> List[str]:
        """Registries that ever delegated this ASN, in first-seen order."""
        seen: List[str] = []
        for stint in self.stints.get(asn, []):
            if stint.record.is_delegated and stint.record.registry not in seen:
                seen.append(stint.record.registry)
        return seen


def restore_archive(
    archive: DelegationArchive,
    *,
    erx_reference: Optional[Mapping[ASN, Day]] = None,
    ledger: Optional[IanaLedger] = None,
) -> tuple:
    """Run the full §3.1 restoration over an archive.

    Parameters
    ----------
    archive:
        The (possibly defect-ridden) delegation archive.
    erx_reference:
        Original registration dates for ERX-transferred ASNs (the
        equivalent of ARIN's pre-delegation-file records), used to
        repair placeholder dates.
    ledger:
        The IANA block ledger, used to spot mistaken allocations.

    Returns
    -------
    (RestoredDelegations, RestorationReport)
    """
    report = RestorationReport()
    views: Dict[str, RegistryView] = {
        registry: build_registry_view(archive, registry)
        for registry in archive.registries()
    }

    # Step order mirrors §3.1: same-day resolution is implicit in the
    # authoritative view and measured first; record recovery must run
    # before gap bridging so that drops repaired from the regular feed
    # are not mistaken for file outages; duplicates are resolved before
    # dates so date repair sees one row per day; inter-RIR cleanup runs
    # last because it compares already-clean per-registry timelines.
    measure_sameday_divergence(views, report)
    recover_dropped_records(views, report)
    bridge_unavailable_gaps(views, report)
    resolve_duplicate_records(views, report)
    restore_registration_dates(views, report, erx_reference=erx_reference)
    clean_inter_rir_overlaps(views, report, ledger=ledger)

    restored = RestoredDelegations(views=views, end_day=archive.end_day)
    for view in views.values():
        for asn, stints in view.stints.items():
            restored.stints.setdefault(asn, []).extend(stints)
    for stints in restored.stints.values():
        stints.sort(key=lambda s: (s.start, s.end))
    return restored, report
