"""The §3.1 delegation-archive restoration pipeline."""

from .compat import records_compatible
from .duplicates import resolve_duplicate_records
from .gaps import bridge_unavailable_gaps
from .interrir import clean_inter_rir_overlaps
from .pipeline import RestoredDelegations, restore_archive
from .records import DEFAULT_MAX_GAP, recover_dropped_records
from .regdates import restore_registration_dates
from .report import RestorationReport, StepReport
from .scoring import DefectScore, render_scores, score_restoration
from .sameday import measure_sameday_divergence
from .view import RegistryView, build_registry_view

__all__ = [
    "restore_archive",
    "RestoredDelegations",
    "RestorationReport",
    "StepReport",
    "RegistryView",
    "build_registry_view",
    "records_compatible",
    "measure_sameday_divergence",
    "recover_dropped_records",
    "bridge_unavailable_gaps",
    "resolve_duplicate_records",
    "restore_registration_dates",
    "clean_inter_rir_overlaps",
    "DEFAULT_MAX_GAP",
    "DefectScore",
    "score_restoration",
    "render_scores",
]
