"""Columnar delegation-restoration engine (``delegation-table/v1``).

The object engine (:mod:`.view` + the per-step modules) walks
dict-of-``Stint``-list timelines; building those views dominates the
registry half of the pipeline, and fanning them out pickles whole
``RegistryView`` timelines per task (the 12x ``process:N`` blowup the
scaling benchmark exposed).  This module mirrors the
``repro.bgp.records`` playbook for the delegation side:

* each registry's archive rows are packed once into a single-file
  container — 8-byte magic, ``<u4`` header length, canonical-JSON
  header, 64-byte-aligned little-endian sections — holding 24-byte
  explicit little-endian rows (asn / clip-free start / end /
  registration date / country pool id / status / feed / opaque pool
  id) in **exact timeline order** (per-ASN list order is semantic:
  step (iv)'s tie-breaks depend on it), plus per-feed sorted
  unavailable-day arrays and CSR string pools;
* view assembly (era stitching, extended-over-regular authority)
  becomes whole-array clipping + one stable ``np.lexsort``, replicating
  ``build_registry_view``'s stable ``(start, end)`` sort bit for bit;
* the five per-registry §3.1 steps run as *candidate detection* over
  the sorted arrays (a provable superset of the ASNs each step can
  touch — see the per-step notes below) followed by the **unmodified
  object step functions** over a sub-view holding only those ASNs, so
  counters, notes and mutations are the object engine's own;
* ``process:N`` fan-out ships ``(handle, registry)`` descriptors —
  workers re-open the container themselves (mmap via a ``per_process``
  memo) instead of receiving pickled timelines.

Exactness contract: for every step, an ASN outside the candidate set
provably receives zero mutations and zero counter bumps from the object
step, so running the object step over the candidate sub-view yields the
same view content and the same :class:`RestorationReport` as running it
over the full view.  The container preserves timeline dict order and
per-ASN list order, so decoded views are ``==`` to object-built ones.

Mmap lifetime: arrays handed out by a :class:`DelegationTable` alias
the mapping held by the table itself; do not let them outlive it
(DESIGN.md §9).
"""

from __future__ import annotations

import json
import mmap as _mmap
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple, Union

import numpy as np

from ..asn.numbers import ASN
from ..rir.archive import DelegationArchive, Stint
from ..rir.model import DelegationRecord, Status
from ..rir.overlay import EXTENDED, REGULAR
from ..rir.pitfalls import ERX_PLACEHOLDER_DATE
from ..runtime.cache import DELEGATION_TABLE_VERSION, ArtifactCache
from ..runtime.executor import per_process
from ..runtime.ledger import record_boundary
from ..timeline.dates import Day
from .duplicates import resolve_duplicate_records
from .gaps import bridge_unavailable_gaps
from .records import DEFAULT_MAX_GAP, recover_dropped_records
from .regdates import restore_registration_dates
from .report import RestorationReport
from .sameday import measure_sameday_divergence
from .view import RegistryView

__all__ = [
    "DelegationTable",
    "obtain_table",
    "restore_registry_table_task",
]

_MAGIC = b"DELGTAB1"

#: Row schema: explicit little-endian fields, naturally packed to 24
#: bytes.  ``reg_date``/``opaque`` use ``-1`` as the ``None`` sentinel
#: (day ordinals and pool ids are non-negative); ``cc`` is a pool id
#: (country codes are never ``None``); ``status`` indexes
#: ``tuple(Status)``; ``feed`` is 0 (regular) or 1 (extended).
ROW_DTYPE = np.dtype(
    [
        ("asn", "<u4"),
        ("start", "<i4"),
        ("end", "<i4"),
        ("reg_date", "<i4"),
        ("cc", "<u2"),
        ("status", "<u1"),
        ("feed", "<u1"),
        ("opaque", "<i4"),
    ]
)

_STATUSES: Tuple[Status, ...] = tuple(Status)
_STATUS_INDEX: Dict[Status, int] = {s: i for i, s in enumerate(_STATUSES)}
_DELEGATED_LUT = np.array([s.is_delegated for s in _STATUSES], dtype=bool)

_FEEDS = ((0, "regular", REGULAR), (1, "extended", EXTENDED))


def _intern(index: Dict[str, int], value: str) -> int:
    idx = index.get(value)
    if idx is None:
        idx = len(index)
        index[value] = idx
    return idx


def _encode_pool(strings: Iterable[str]) -> Tuple[np.ndarray, np.ndarray]:
    blobs = [s.encode("utf-8") for s in strings]
    offsets = np.zeros(len(blobs) + 1, dtype="<u4")
    if blobs:
        np.cumsum([len(b) for b in blobs], out=offsets[1:])
    blob = np.frombuffer(b"".join(blobs), dtype="<u1") if blobs else np.empty(
        0, dtype="<u1"
    )
    return offsets, blob


def _decode_pool(offsets: np.ndarray, blob: np.ndarray) -> List[str]:
    raw = blob.tobytes()
    offs = offsets.tolist()
    return [
        raw[offs[i]:offs[i + 1]].decode("utf-8") for i in range(len(offs) - 1)
    ]


def _encode_timeline(
    timeline: Mapping[ASN, List[Stint]],
    feed_code: int,
    cc_index: Dict[str, int],
    opq_index: Dict[str, int],
) -> np.ndarray:
    asns: List[int] = []
    starts: List[int] = []
    ends: List[int] = []
    dates: List[int] = []
    ccs: List[int] = []
    stats: List[int] = []
    opqs: List[int] = []
    for asn, stints in timeline.items():
        for stint in stints:
            rec = stint.record
            if rec.asn != asn:
                raise ValueError(
                    f"timeline key {asn} disagrees with record asn {rec.asn}"
                )
            asns.append(int(asn))
            starts.append(int(stint.start))
            ends.append(int(stint.end))
            dates.append(-1 if rec.reg_date is None else int(rec.reg_date))
            ccs.append(_intern(cc_index, rec.cc))
            stats.append(_STATUS_INDEX[rec.status])
            opqs.append(
                -1 if rec.opaque_id is None else _intern(opq_index, rec.opaque_id)
            )
    out = np.empty(len(asns), dtype=ROW_DTYPE)
    out["asn"] = asns
    out["start"] = starts
    out["end"] = ends
    out["reg_date"] = dates
    out["cc"] = ccs
    out["status"] = stats
    out["feed"] = feed_code
    out["opaque"] = opqs
    return out


@dataclass
class AssembledRegistry:
    """One registry's era-stitched rows, clipped, as columns.

    The ``*`` columns are in object concat order (clipped regular block
    first, extended block after — the order ``build_registry_view``
    appends in); the ``s_*`` columns are the same rows under the stable
    ``(asn, start, end)`` lexsort, which within one ASN is exactly the
    object view's final per-ASN list order.
    """

    asn: np.ndarray
    start: np.ndarray
    end: np.ndarray
    reg_date: np.ndarray
    cc: np.ndarray
    status: np.ndarray
    opaque: np.ndarray
    s_asn: np.ndarray
    s_start: np.ndarray
    s_end: np.ndarray
    s_reg_date: np.ndarray
    s_cc: np.ndarray
    s_status: np.ndarray
    s_opaque: np.ndarray

    @property
    def n_rows(self) -> int:
        return len(self.asn)


class DelegationTable:
    """Packed per-registry delegation rows + day-availability arrays.

    Sections (all little-endian, 64-byte aligned in the container):

    ``rows:<registry>``
        ``ROW_DTYPE`` rows, regular-feed block first then extended,
        each block in exact ``archive.timeline()`` order.
    ``unavail:<registry>:<feed>``
        sorted ``<i4`` unavailable-day ordinals for that feed.
    ``pool:cc:*`` / ``pool:opaque:*``
        CSR string pools (offsets + utf-8 blob) shared by all rows.
    """

    def __init__(
        self,
        meta: Dict[str, Dict[str, Any]],
        sections: Dict[str, np.ndarray],
        cc_pool: List[str],
        opaque_pool: List[str],
        end_day: Day,
        *,
        source: Optional[Path] = None,
        _mmap_obj=None,
    ) -> None:
        self._meta = meta
        self._sections = sections
        self._cc_pool = cc_pool
        self._opaque_pool = opaque_pool
        self.end_day = end_day
        #: The container file backing this table, when it has one
        #: (mmap fan-out needs it).
        self.source = source
        # The mmap (or buffer) owning the row memory; arrays built on
        # top of it must not outlive this object.
        self._mmap_obj = _mmap_obj
        # Decoded-record interning: rows repeating the same
        # (asn, cc, date, status, opaque) share one frozen record, as
        # the object timeline does across merged stints.
        self._rec_cache: Dict[Tuple, DelegationRecord] = {}
        self._regular_order: Dict[str, np.ndarray] = {}

    # -- construction --------------------------------------------------

    @classmethod
    def from_archive(cls, archive: DelegationArchive) -> "DelegationTable":
        """Encode every registry's feeds, preserving timeline order."""
        cc_index: Dict[str, int] = {}
        opq_index: Dict[str, int] = {}
        sections: Dict[str, np.ndarray] = {}
        meta: Dict[str, Dict[str, Any]] = {}
        for registry in sorted(archive.registries()):
            entry: Dict[str, Any] = {
                "n_regular": 0,
                "n_extended": 0,
                "windows": {"regular": None, "extended": None},
            }
            parts: List[np.ndarray] = []
            for feed_code, feed_name, feed in _FEEDS:
                key = (registry, feed)
                if not archive.has_source(key):
                    continue
                window = archive.window(key)
                entry["windows"][feed_name] = [
                    int(window.first_day),
                    int(window.last_day),
                ]
                block = _encode_timeline(
                    archive.timeline(key), feed_code, cc_index, opq_index
                )
                entry["n_regular" if feed_code == 0 else "n_extended"] = len(block)
                parts.append(block)
                sections[f"unavail:{registry}:{feed_name}"] = np.asarray(
                    sorted(archive.unavailable_days(key)), dtype="<i4"
                )
            sections[f"rows:{registry}"] = (
                np.concatenate(parts) if parts else np.empty(0, dtype=ROW_DTYPE)
            )
            meta[registry] = entry
        cc_off, cc_blob = _encode_pool(cc_index)
        opq_off, opq_blob = _encode_pool(opq_index)
        sections["pool:cc:offsets"] = cc_off
        sections["pool:cc:blob"] = cc_blob
        sections["pool:opaque:offsets"] = opq_off
        sections["pool:opaque:blob"] = opq_blob
        return cls(
            meta,
            sections,
            list(cc_index),
            list(opq_index),
            int(archive.end_day),
        )

    # -- serialization -------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to the single-file container format.

        Layout mirrors ``bgp-records/v1``: 8-byte magic, ``<u4`` header
        length, json header, then each section padded to a 64-byte
        boundary.  All sections are little-endian by dtype
        construction, so the container is byte-identical across
        platforms.
        """
        names = sorted(self._sections)
        sections = [(name, self._sections[name]) for name in names]
        header: Dict[str, object] = {
            "format": DELEGATION_TABLE_VERSION,
            "end_day": int(self.end_day),
            "registries": {r: self._meta[r] for r in sorted(self._meta)},
            "sections": [],
        }

        def layout(header_len: int) -> List[int]:
            offsets = []
            pos = 8 + 4 + header_len
            for _, arr in sections:
                pos = (pos + 63) & ~63
                offsets.append(pos)
                pos += arr.nbytes
            return offsets

        def render(offsets: List[int]) -> bytes:
            header["sections"] = [
                {
                    "name": name,
                    "dtype": arr.dtype.descr if arr.dtype.names else str(arr.dtype),
                    "count": len(arr),
                    "offset": off,
                }
                for (name, arr), off in zip(sections, offsets)
            ]
            return json.dumps(header, sort_keys=True).encode("utf-8")

        blob = render(layout(0))
        while True:
            new_blob = render(layout(len(blob)))
            if len(new_blob) == len(blob):
                blob = new_blob
                break
            blob = new_blob

        offsets = layout(len(blob))
        total = (
            offsets[-1] + sections[-1][1].nbytes if sections else 12 + len(blob)
        )
        out = bytearray(total)
        out[0:8] = _MAGIC
        out[8:12] = len(blob).to_bytes(4, "little")
        out[12:12 + len(blob)] = blob
        for (_, arr), off in zip(sections, offsets):
            raw = arr.tobytes()
            out[off:off + len(raw)] = raw
        return bytes(out)

    def to_file(self, path: Union[str, Path]) -> Path:
        return _write_container(path, self.to_bytes())

    @classmethod
    def _from_buffer(
        cls, buf, *, source: Optional[Path] = None, mmap_obj=None
    ) -> "DelegationTable":
        if bytes(buf[0:8]) != _MAGIC:
            raise ValueError("not a delegation-table container (bad magic)")
        header_len = int.from_bytes(bytes(buf[8:12]), "little")
        header = json.loads(bytes(buf[12:12 + header_len]).decode("utf-8"))
        if header.get("format") != DELEGATION_TABLE_VERSION:
            raise ValueError(
                f"unsupported delegation-table format {header.get('format')!r}"
            )
        sections: Dict[str, np.ndarray] = {}
        for sec in header["sections"]:
            descr = sec["dtype"]
            dtype = np.dtype(
                [tuple(f) for f in descr] if isinstance(descr, list) else descr
            )
            sections[sec["name"]] = np.frombuffer(
                buf, dtype=dtype, count=int(sec["count"]), offset=int(sec["offset"])
            )
        cc_pool = _decode_pool(
            sections["pool:cc:offsets"], sections["pool:cc:blob"]
        )
        opq_pool = _decode_pool(
            sections["pool:opaque:offsets"], sections["pool:opaque:blob"]
        )
        return cls(
            header["registries"],
            sections,
            cc_pool,
            opq_pool,
            int(header["end_day"]),
            source=source,
            _mmap_obj=mmap_obj,
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "DelegationTable":
        return cls._from_buffer(blob)

    @classmethod
    def from_file(
        cls, path: Union[str, Path], *, mmap: bool = True
    ) -> "DelegationTable":
        """Open a container file; ``mmap=True`` maps it zero-copy."""
        path = Path(path)
        if not mmap:
            return cls._from_buffer(path.read_bytes(), source=path)
        with open(path, "rb") as fh:
            mm = _mmap.mmap(fh.fileno(), 0, access=_mmap.ACCESS_READ)
        return cls._from_buffer(memoryview(mm), source=path, mmap_obj=mm)

    # -- accessors -----------------------------------------------------

    def registries(self) -> Tuple[str, ...]:
        return tuple(sorted(self._meta))

    def rows(self, registry: str) -> np.ndarray:
        return self._sections[f"rows:{registry}"]

    def _window(self, registry: str, feed_name: str) -> Optional[Tuple[int, int]]:
        win = self._meta[registry]["windows"][feed_name]
        return None if win is None else (int(win[0]), int(win[1]))

    def unavailable(self, registry: str, feed_name: str) -> np.ndarray:
        return self._sections.get(
            f"unavail:{registry}:{feed_name}", np.empty(0, dtype="<i4")
        )

    def _bounds(self, registry: str):
        rw = self._window(registry, "regular")
        ew = self._window(registry, "extended")
        if rw is None and ew is None:
            raise ValueError(f"{registry} publishes no delegation files")
        first = min(w[0] for w in (rw, ew) if w is not None)
        last = max(w[1] for w in (rw, ew) if w is not None)
        ext_start = ew[0] if ew is not None else None
        return rw, ew, first, last, ext_start

    def _auth_unavailable(self, registry: str) -> np.ndarray:
        """Sorted unavailable days of the authoritative feed mix."""
        rw, ew, _, _, ext_start = self._bounds(registry)
        parts = []
        if rw is not None:
            days = self.unavailable(registry, "regular")
            if ext_start is not None:
                days = days[days <= ext_start - 1]
            parts.append(days)
        if ew is not None:
            parts.append(self.unavailable(registry, "extended"))
        if not parts:
            return np.empty(0, dtype="<i4")
        return np.unique(np.concatenate(parts))

    # -- assembly ------------------------------------------------------

    def assemble(self, registry: str) -> AssembledRegistry:
        """Era-stitch one registry's rows as clipped column arrays."""
        rw, ew, _, _, ext_start = self._bounds(registry)
        rows = self.rows(registry)
        n_reg = int(self._meta[registry]["n_regular"])
        picked: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        if rw is not None:
            lo = rw[0]
            hi = min(rw[1], ext_start - 1) if ext_start is not None else rw[1]
            if hi >= lo:
                block = rows[:n_reg]
                cs = np.maximum(block["start"], np.int32(lo))
                ce = np.minimum(block["end"], np.int32(hi))
                keep = cs <= ce
                picked.append((block, cs, ce, keep))
        if ew is not None:
            block = rows[n_reg:]
            cs = np.maximum(block["start"], np.int32(ew[0]))
            ce = np.minimum(block["end"], np.int32(ew[1]))
            keep = cs <= ce
            picked.append((block, cs, ce, keep))

        def col(field: str) -> np.ndarray:
            if not picked:
                return np.empty(0, dtype=ROW_DTYPE[field])
            return np.concatenate([blk[field][keep] for blk, _, _, keep in picked])

        asn = col("asn")
        start = (
            np.concatenate([cs[keep] for _, cs, _, keep in picked])
            if picked
            else np.empty(0, dtype="<i4")
        )
        end = (
            np.concatenate([ce[keep] for _, _, ce, keep in picked])
            if picked
            else np.empty(0, dtype="<i4")
        )
        # stable sort: within one ASN ties keep concat order, exactly
        # like the object engine's stable per-list (start, end) sort
        order = np.lexsort((end, start, asn))
        reg_date, cc, status, opaque = (
            col("reg_date"), col("cc"), col("status"), col("opaque")
        )
        return AssembledRegistry(
            asn=asn,
            start=start,
            end=end,
            reg_date=reg_date,
            cc=cc,
            status=status,
            opaque=opaque,
            s_asn=asn[order],
            s_start=start[order],
            s_end=end[order],
            s_reg_date=reg_date[order],
            s_cc=cc[order],
            s_status=status[order],
            s_opaque=opaque[order],
        )

    # -- decoding ------------------------------------------------------

    def _record(
        self,
        registry: str,
        asn: int,
        date_raw: int,
        cc_id: int,
        status_id: int,
        opq_id: int,
    ) -> DelegationRecord:
        key = (registry, asn, date_raw, cc_id, status_id, opq_id)
        rec = self._rec_cache.get(key)
        if rec is None:
            rec = DelegationRecord(
                registry=registry,
                cc=self._cc_pool[cc_id],
                asn=asn,
                reg_date=None if date_raw < 0 else date_raw,
                status=_STATUSES[status_id],
                opaque_id=None if opq_id < 0 else self._opaque_pool[opq_id],
            )
            self._rec_cache[key] = rec
        return rec

    def _decode_merged(
        self, registry: str, asm: AssembledRegistry
    ) -> Dict[ASN, List[Stint]]:
        """Authoritative stints dict, in the object engine's dict order.

        Keys appear in first-appearance-in-concat order (regular block
        first), matching ``build_registry_view``'s ``merged`` insertion
        order; each list comes off the sorted columns, i.e. already in
        final stable (start, end) order.
        """
        if not asm.n_rows:
            return {}
        _, first_idx = np.unique(asm.asn, return_index=True)
        key_order = asm.asn[np.sort(first_idx)].tolist()
        sa = asm.s_asn
        asn_l = sa.tolist()
        start_l = asm.s_start.tolist()
        end_l = asm.s_end.tolist()
        date_l = asm.s_reg_date.tolist()
        cc_l = asm.s_cc.tolist()
        st_l = asm.s_status.tolist()
        op_l = asm.s_opaque.tolist()
        record = self._record
        merged: Dict[ASN, List[Stint]] = {}
        for asn in key_order:
            lo = int(np.searchsorted(sa, asn, "left"))
            hi = int(np.searchsorted(sa, asn, "right"))
            merged[asn] = [
                Stint(
                    start_l[i],
                    end_l[i],
                    record(
                        registry, asn_l[i], date_l[i], cc_l[i], st_l[i], op_l[i]
                    ),
                )
                for i in range(lo, hi)
            ]
        return merged

    def _regular_groups(self, registry: str):
        """The raw regular block stably sorted by ASN: the sorted asn
        array plus per-field columns (as lists, for fast scalar reads)
        in the permuted order.  Within one ASN the stable sort keeps
        timeline order.  Cached per registry — candidate decoding hits
        this once per candidate ASN."""
        cached = self._regular_order.get(registry)
        if cached is None:
            rows = self.rows(registry)[: int(self._meta[registry]["n_regular"])]
            perm = np.argsort(rows["asn"], kind="stable")
            sorted_rows = rows[perm]
            cached = (
                sorted_rows["asn"],
                sorted_rows,
                {
                    field: sorted_rows[field].tolist()
                    for field in ("asn", "start", "end", "reg_date", "cc",
                                  "status", "opaque")
                },
            )
            self._regular_order[registry] = cached
        return cached

    def _decode_regular_asn(self, registry: str, asn: int) -> List[Stint]:
        sorted_asn, _, cols = self._regular_groups(registry)
        lo = int(np.searchsorted(sorted_asn, asn, "left"))
        hi = int(np.searchsorted(sorted_asn, asn, "right"))
        record = self._record
        return [
            Stint(
                cols["start"][j],
                cols["end"][j],
                record(
                    registry,
                    cols["asn"][j],
                    cols["reg_date"][j],
                    cols["cc"][j],
                    cols["status"][j],
                    cols["opaque"][j],
                ),
            )
            for j in range(lo, hi)
        ]

    def _decode_regular(self, registry: str) -> Dict[ASN, List[Stint]]:
        """Full regular-feed timeline dict, in timeline (row) order."""
        rows = self.rows(registry)[: int(self._meta[registry]["n_regular"])]
        asn_l = rows["asn"].tolist()
        start_l = rows["start"].tolist()
        end_l = rows["end"].tolist()
        date_l = rows["reg_date"].tolist()
        cc_l = rows["cc"].tolist()
        st_l = rows["status"].tolist()
        op_l = rows["opaque"].tolist()
        record = self._record
        out: Dict[ASN, List[Stint]] = {}
        for i in range(len(asn_l)):
            out.setdefault(asn_l[i], []).append(
                Stint(
                    start_l[i],
                    end_l[i],
                    record(
                        registry, asn_l[i], date_l[i], cc_l[i], st_l[i], op_l[i]
                    ),
                )
            )
        return out

    def _apply_metadata(self, view: RegistryView, registry: str) -> None:
        rw, ew, first, last, ext_start = self._bounds(registry)
        view.first_day = first
        view.last_day = last
        view.extended_start = ext_start
        if rw is not None:
            view.regular_first_day, view.regular_last_day = rw
            days = self.unavailable(registry, "regular")
            if ext_start is not None:
                days = days[days <= ext_start - 1]
            view.unavailable_days = set(days.tolist())
        if ew is not None:
            view.unavailable_days |= set(
                self.unavailable(registry, "extended").tolist()
            )

    def build_view(
        self, registry: str, *, include_regular: bool = True
    ) -> RegistryView:
        """Decode one registry's full :class:`RegistryView`.

        ``include_regular=False`` skips the recovery-state second
        timeline (the §3.1 steps run elsewhere on the table path, and
        ``prune_recovery_state`` clears it before any consumer reads
        the views).
        """
        view = RegistryView(registry=registry)
        self._apply_metadata(view, registry)
        if include_regular and self._window(registry, "regular") is not None:
            view.regular_stints = self._decode_regular(registry)
            view.regular_unavailable_days = set(
                self.unavailable(registry, "regular").tolist()
            )
        view.stints = self._decode_merged(registry, self.assemble(registry))
        return view

    # -- candidate detection -------------------------------------------

    def step_candidates(
        self, registry: str, asm: AssembledRegistry
    ) -> Dict[str, Set[int]]:
        """ASNs each §3.1 step *can* touch — provable supersets.

        Derived from the sorted columns, where adjacent same-ASN rows
        are exactly the object engine's adjacent list entries:

        * ``ii``: a 1..max-gap day gap inside the extended era ending
          by the regular feed's last day, left row delegated (prior
          merges only shrink gap intervals, so original gaps cover
          every gap the step will ever see);
        * ``i``: a gap fully covered by authoritative unavailable days
          (same gaps-shrink argument; coverage of a subinterval follows
          from coverage of the original);
        * ``iv``: overlapping adjacent rows (step merges preserve the
          overlap endpoints they collapse);
        * ``v``: a delegated row dated after its (clipped) start, or
          carrying the ERX placeholder date, or an adjacent
          delegated-pair date decrease (any backward repair implies an
          adjacent decrease in the delegated subsequence);
        * ``iii``: the delegated extended-era row sequence differs
          between the authoritative view and the raw regular feed
          (identical sequences give identical ``row_on`` answers, so
          zero divergent days).
        """
        rw, ew, _, last, ext_start = self._bounds(registry)
        sa, ss, se = asm.s_asn, asm.s_start, asm.s_end
        sd, sst = asm.s_reg_date, asm.s_status
        deleg = _DELEGATED_LUT[sst]
        out: Dict[str, Set[int]] = {
            "iii": set(), "ii": set(), "i": set(), "iv": set(), "v": set()
        }
        if not asm.n_rows:
            return out
        same = sa[1:] == sa[:-1]
        gap_start = se[:-1].astype(np.int64) + 1
        gap_end = ss[1:].astype(np.int64) - 1
        gap_len = gap_end - gap_start + 1

        if ext_start is not None and rw is not None:
            mask = (
                same
                & (gap_len >= 1)
                & (gap_len <= DEFAULT_MAX_GAP)
                & (gap_start >= ext_start)
                & (gap_end <= rw[1])
                & deleg[:-1]
            )
            out["ii"] = set(np.unique(sa[:-1][mask]).tolist())

        unavail = self._auth_unavailable(registry)
        if len(unavail):
            covered = (
                np.searchsorted(unavail, gap_end, "right")
                - np.searchsorted(unavail, gap_start, "left")
            )
            mask = same & (gap_len >= 1) & (covered == gap_len)
            out["i"] = set(np.unique(sa[:-1][mask]).tolist())

        mask = same & (ss[1:] <= se[:-1])
        out["iv"] = set(np.unique(sa[:-1][mask]).tolist())

        row_mask = deleg & (
            ((sd >= 0) & (sd > ss)) | (sd == ERX_PLACEHOLDER_DATE)
        )
        cand_v = set(np.unique(sa[row_mask]).tolist())
        da, dd = sa[deleg], sd[deleg]
        if len(da) > 1:
            dec = (da[1:] == da[:-1]) & (dd[1:] < dd[:-1])
            cand_v |= set(np.unique(da[:-1][dec]).tolist())
        out["v"] = cand_v

        if ext_start is not None and rw is not None:
            lo, hi = ext_start, min(last, rw[1])
            if lo <= hi:
                out["iii"] = self._sameday_candidates(
                    registry, asm, deleg, lo, hi
                )
        return out

    def _sameday_candidates(
        self,
        registry: str,
        asm: AssembledRegistry,
        deleg: np.ndarray,
        lo: int,
        hi: int,
    ) -> Set[int]:
        """ASNs whose delegated extended-era sequences differ between
        the authoritative view (side A) and the raw regular feed (B).

        The day probe only ever reads ``row_on`` inside ``[lo, hi]``,
        and coverage there is invariant under clamping every interval
        to that window — so both sides are clamped before comparing.
        Without the clamp, regular rows straddling the era boundary
        would mismatch their clipped authoritative twins on raw
        ``start``/``end`` despite identical day-level content, turning
        nearly the whole registry into candidates.
        """
        m_a = deleg & (asm.s_end >= lo) & (asm.s_start <= hi)
        a_asn = asm.s_asn[m_a].astype(np.int64)
        a_cols = (
            np.maximum(asm.s_start[m_a].astype(np.int64), lo),
            np.minimum(asm.s_end[m_a].astype(np.int64), hi),
            asm.s_reg_date[m_a],
            asm.s_cc[m_a], asm.s_status[m_a],
        )
        _, r_sorted, _ = self._regular_groups(registry)
        m_b = (
            _DELEGATED_LUT[r_sorted["status"]]
            & (r_sorted["end"] >= lo)
            & (r_sorted["start"] <= hi)
        )
        b_rows = r_sorted[m_b]
        b_asn = b_rows["asn"].astype(np.int64)
        b_cols = (
            np.maximum(b_rows["start"].astype(np.int64), lo),
            np.minimum(b_rows["end"].astype(np.int64), hi),
            b_rows["reg_date"],
            b_rows["cc"], b_rows["status"],
        )
        domain = np.union1d(a_asn, b_asn)
        if not len(domain):
            return set()
        count_a = np.zeros(len(domain), dtype=np.int64)
        count_b = np.zeros(len(domain), dtype=np.int64)
        ua, ca = np.unique(a_asn, return_counts=True)
        ub, cb = np.unique(b_asn, return_counts=True)
        count_a[np.searchsorted(domain, ua)] = ca
        count_b[np.searchsorted(domain, ub)] = cb
        cand = set(domain[count_a != count_b].tolist())
        eq_asns = domain[(count_a == count_b) & (count_a > 0)]
        if len(eq_asns):
            sel_a = np.isin(a_asn, eq_asns)
            sel_b = np.isin(b_asn, eq_asns)
            diff = np.zeros(int(sel_a.sum()), dtype=bool)
            for col_a, col_b in zip(a_cols, b_cols):
                diff |= col_a[sel_a] != col_b[sel_b]
            cand |= set(np.unique(a_asn[sel_a][diff]).tolist())
        # only ASNs the authoritative view holds are ever visited
        auth = set(np.unique(asm.s_asn).tolist())
        return cand & auth

    def build_candidate_view(
        self,
        registry: str,
        asm: AssembledRegistry,
        cands: Dict[str, Set[int]],
    ) -> RegistryView:
        """Sub-view holding only candidate ASNs, step-function-ready.

        Stint lists are shared across steps (the object functions
        mutate them in place).  Regular-feed lists are decoded for
        *every* included ASN: steps (ii) and (iii) read them for any
        ASN present in ``stints``, so an ASN pulled in as a candidate
        of another step must still see its true regular timeline —
        an empty one would read as total same-day divergence.
        """
        view = RegistryView(registry=registry)
        self._apply_metadata(view, registry)
        if self._window(registry, "regular") is not None:
            view.regular_unavailable_days = set(
                self.unavailable(registry, "regular").tolist()
            )
        union = sorted(set().union(*cands.values()))
        sa = asm.s_asn
        start_l = asm.s_start.tolist()
        end_l = asm.s_end.tolist()
        date_l = asm.s_reg_date.tolist()
        cc_l = asm.s_cc.tolist()
        st_l = asm.s_status.tolist()
        op_l = asm.s_opaque.tolist()
        record = self._record
        for asn in union:
            lo = int(np.searchsorted(sa, asn, "left"))
            hi = int(np.searchsorted(sa, asn, "right"))
            view.stints[asn] = [
                Stint(
                    start_l[i],
                    end_l[i],
                    record(registry, asn, date_l[i], cc_l[i], st_l[i], op_l[i]),
                )
                for i in range(lo, hi)
            ]
        for asn in union:
            stints = self._decode_regular_asn(registry, asn)
            if stints:
                view.regular_stints[asn] = stints
        return view


def _write_container(path: Union[str, Path], blob: bytes) -> Path:
    """Atomically write the container next to ``path`` and rename."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_bytes(blob)
    os.replace(tmp, path)
    return path


def obtain_table(
    archive: DelegationArchive,
    *,
    cache: Optional[ArtifactCache] = None,
    table_path: Optional[Union[str, Path]] = None,
    cache_key_parts: Optional[Mapping[str, Any]] = None,
) -> Tuple[DelegationTable, str, Tuple[str, Any]]:
    """Get the archive's packed table: mmap, cache, or encode.

    Priority mirrors the BGP records path: an existing ``table_path``
    container is memory-mapped as-is; otherwise a verified raw cache
    entry is memory-mapped (the cache key needs ``cache_key_parts``,
    the archive-determining parts the caller already hashes for the
    bundle — the archive itself is too expensive to fingerprint here);
    otherwise the archive is encoded once and persisted to whichever
    destination exists.  Returns ``(table, source, handle)`` with
    ``source`` one of ``"mmap"``/``"cache"``/``"encoded"`` and
    ``handle`` the fan-out descriptor workers re-open the rows from:
    ``("path", str)`` when a backing file exists, else
    ``("bytes", container)``.
    """
    if table_path is not None:
        table_path = Path(table_path)
        if table_path.exists():
            table = DelegationTable.from_file(table_path)
            return table, "mmap", ("path", str(table_path))
    key: Optional[str] = None
    if cache is not None and cache_key_parts is not None:
        key = cache.key_for(
            artifact="delegation-table",
            table_version=DELEGATION_TABLE_VERSION,
            **dict(cache_key_parts),
        )
        cached = cache.load_raw_path(key)
        if cached is not None:
            table = DelegationTable.from_file(cached)
            if table_path is not None:
                table.to_file(table_path)
            return table, "cache", ("path", str(table.source))
    table = DelegationTable.from_archive(archive)
    blob = table.to_bytes()
    if table_path is not None:
        _write_container(table_path, blob)
        table.source = table_path
    if cache is not None and key is not None:
        # best-effort seed for the *next* run; the store may be torn or
        # dropped by an injected fault, so this run never fans out
        # through the file the cache just wrote — only a verified
        # ``load_raw_path`` hit is trusted as a path handle
        cache.store_raw(key, blob)
    if table.source is not None:
        return table, "encoded", ("path", str(table.source))
    return table, "encoded", ("bytes", blob)


def _open_table_handle(handle: Tuple[str, Any]) -> DelegationTable:
    kind, payload = handle
    if kind == "path":
        # one mmap per (worker process, container file) — but a *fresh*
        # DelegationTable per task over that shared buffer.  Sharing the
        # decoded table would let its record/string intern pools alias
        # objects across registries, making pickled results depend on
        # whether the fan-out shipped a path or raw bytes (the bytes
        # branch below decodes per task by construction).  Decoded views
        # are never cached either way: the step functions mutate them.
        # The memo key carries the file's identity (inode/size/mtime):
        # a path recycled by a later run in the same long-lived worker
        # must re-map, never serve the previous file's buffer.
        st = os.stat(payload)
        key = (
            "delegation-table", payload,
            st.st_ino, st.st_size, st.st_mtime_ns,
        )

        def _map() -> Tuple[Any, memoryview]:
            with open(payload, "rb") as fh:
                mm = _mmap.mmap(fh.fileno(), 0, access=_mmap.ACCESS_READ)
            return mm, memoryview(mm)

        mm, buf = per_process(key, _map)
        return DelegationTable._from_buffer(
            buf, source=Path(payload), mmap_obj=mm
        )
    return DelegationTable.from_bytes(payload)


def restore_registry_table_task(
    payload: Tuple[Tuple[str, Any], str, Optional[Mapping[ASN, Day]]],
) -> Tuple[str, Dict[ASN, List[Stint]], RestorationReport]:
    """Run the five per-registry §3.1 steps off the packed rows.

    The worker re-opens the container itself (nothing heavier than the
    descriptor crosses the pool), finds the candidate ASNs by array
    reduction, and runs the *object* step functions over a sub-view of
    just those ASNs — counters and mutations are therefore the object
    engine's own, and every ledger boundary carries full-view row
    totals reconstructed from the array row count plus the candidate
    lists' deltas (non-candidates are provably untouched).

    Returns ``(registry, mutated candidate lists, report)``; the driver
    patches the candidate entries into its decoded views.
    """
    handle, registry, erx_reference = payload
    table = _open_table_handle(handle)
    # Canonicalize the name to *this decode's* string object before it
    # flows into restored records: the serial backend hands the tuple
    # over by reference, and letting the driver's own string in would
    # make pickled output alias differently under serial vs pool.
    registry = next(n for n in table.registries() if n == registry)
    asm = table.assemble(registry)
    cands = table.step_candidates(registry, asm)
    view = table.build_candidate_view(registry, asm, cands)
    report = RestorationReport()
    views = {registry: view}
    total_rows = int(asm.n_rows)
    steps = (
        ("iii-same-day-divergence",
         lambda: measure_sameday_divergence(views, report), ()),
        ("ii-missing-records",
         lambda: recover_dropped_records(views, report),
         (("merged_into_recovered_row", "{r}_records_recovered"),)),
        ("i-missing-file-gaps",
         lambda: bridge_unavailable_gaps(views, report),
         (("merged_across_file_gap", "{r}_gaps_bridged"),)),
        ("iv-duplicate-records",
         lambda: resolve_duplicate_records(views, report),
         (("duplicate_overlap", "{r}_duplicate_rows_dropped"),)),
        ("v-registration-dates",
         lambda: restore_registration_dates(
             views, report, erx_reference=erx_reference), ()),
    )
    for step_name, run, drop_buckets in steps:
        held_before = sum(len(s) for s in view.stints.values())
        run()
        held_after = sum(len(s) for s in view.stints.values())
        rows_in = total_rows
        total_rows += held_after - held_before
        counts = report.step(step_name).counts
        dropped = {
            reason: counts.get(counter.format(r=registry), 0)
            for reason, counter in drop_buckets
        }
        record_boundary(
            f"restoration/{step_name}/{registry}",
            records_in=rows_in,
            kept=total_rows,
            dropped=dropped,
        )
    return registry, dict(view.stints), report
