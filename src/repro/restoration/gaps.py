"""§3.1 step (i): bridge gaps caused by missing or corrupted files.

"If an AS appears in both the day before and the day after an empty or
missing file, we assume that the AS is also allocated in the missing
day.  Otherwise, we use as reference for its starting (ending) date the
first (last) day it shows in the delegated files."

A gap between two consecutive stints of an ASN is bridged when every
day of the gap lacked a usable authoritative file and the flanking rows
are compatible.  Boundary degradation (a life starting *on* a missing
day) is inherently unrecoverable and stays at the first-seen day, as in
the paper.
"""

from __future__ import annotations

from typing import Dict

from ..rir.archive import Stint
from ..timeline.intervals import Interval, IntervalSet
from .compat import records_compatible
from .report import RestorationReport
from .view import RegistryView

__all__ = ["bridge_unavailable_gaps"]


def bridge_unavailable_gaps(
    views: Dict[str, RegistryView], report: RestorationReport
) -> None:
    """Merge stints separated only by file-less days (in place)."""
    step = report.step("i-missing-file-gaps")
    for registry, view in sorted(views.items()):
        if not view.unavailable_days:
            continue
        # interval form of the outage days: the fully-unavailable test
        # becomes one binary search instead of a per-day scan, so a
        # month-long outage costs the same as a single missing file
        unavailable = IntervalSet.from_days(view.unavailable_days)
        bridged = 0
        for asn, stints in view.stints.items():
            i = 0
            while i + 1 < len(stints):
                left, right = stints[i], stints[i + 1]
                gap_start, gap_end = left.end + 1, right.start - 1
                if (
                    gap_start <= gap_end
                    and records_compatible(left.record, right.record)
                    and unavailable.covers(Interval(gap_start, gap_end))
                ):
                    stints[i] = Stint(left.start, right.end, left.record)
                    del stints[i + 1]
                    bridged += 1
                    continue
                i += 1
        if bridged:
            step.bump(f"{registry}_gaps_bridged", bridged)
