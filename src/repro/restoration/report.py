"""Reporting structures for the restoration pipeline.

Each §3.1 step reports what it changed — the paper quantifies its
restoration ("157 occurrences" of gap fills, "1.8% of the days" with
same-day divergence, "some 450 ASNs" with inter-RIR overlaps, >800
placeholder dates) and so do we.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["StepReport", "RestorationReport"]


@dataclass
class StepReport:
    """Counters and free-form notes for one restoration step."""

    step: str
    counts: Dict[str, int] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def bump(self, key: str, by: int = 1) -> None:
        self.counts[key] = self.counts.get(key, 0) + by

    def note(self, text: str) -> None:
        self.notes.append(text)

    def total(self) -> int:
        return sum(self.counts.values())


@dataclass
class RestorationReport:
    """All step reports of one pipeline run, in execution order."""

    steps: List[StepReport] = field(default_factory=list)

    def step(self, name: str) -> StepReport:
        """Get-or-create the report for a named step."""
        for report in self.steps:
            if report.step == name:
                return report
        report = StepReport(step=name)
        self.steps.append(report)
        return report

    def merge(self, other: "RestorationReport") -> None:
        """Fold another report's counters and notes into this one.

        Used by the parallel restoration driver: each per-registry
        worker fills a private report, and the driver merges them in
        sorted-registry order — reproducing exactly the counter layout
        a serial, step-major run would have produced (every step
        iterates registries in sorted order too).
        """
        for report in other.steps:
            mine = self.step(report.step)
            for key, value in report.counts.items():
                mine.bump(key, value)
            mine.notes.extend(report.notes)

    def summary(self) -> Dict[str, Dict[str, int]]:
        """step name → counter dict, for printing and assertions."""
        return {report.step: dict(report.counts) for report in self.steps}

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = ["Restoration report", "=" * 19]
        for report in self.steps:
            lines.append(f"[{report.step}]")
            for key in sorted(report.counts):
                lines.append(f"  {key}: {report.counts[key]}")
            for note in report.notes[:10]:
                lines.append(f"  - {note}")
        return "\n".join(lines)
