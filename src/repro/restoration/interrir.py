"""§3.1 step (vi): clean inter-RIR inconsistencies.

"We find some 450 ASNs that — at different points in time — are
simultaneously being allocated or reserved in multiple RIRs ... the two
main reasons are (i) transfers where the 'origin' RIR temporarily
maintains stale data ... and (ii) mistaken (apparent) allocations, some
by RIRs who have not been assigned those ASN blocks from IANA."

Resolution mirrors the paper: a registry showing an ASN whose IANA
block it never held has its rows removed outright; for transfer-shaped
overlaps, the origin registry's stale tail is trimmed to end when the
destination's delegation starts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..asn.blocks import IanaLedger
from ..asn.numbers import ASN
from ..rir.archive import Stint
from .report import RestorationReport
from .view import RegistryView

__all__ = ["clean_inter_rir_overlaps"]


def _delegated_span(stints: List[Stint]) -> List[Tuple[int, int, Stint]]:
    return [(s.start, s.end, s) for s in stints if s.record.is_delegated]


def clean_inter_rir_overlaps(
    views: Dict[str, RegistryView],
    report: RestorationReport,
    *,
    ledger: Optional[IanaLedger] = None,
) -> Set[ASN]:
    """Remove or trim conflicting cross-registry rows (in place).

    Returns the set of ASNs that had an inter-RIR overlap, which the
    paper reports (~450).
    """
    step = report.step("vi-inter-rir")
    # collect every ASN delegated by more than one registry
    holders: Dict[ASN, List[str]] = {}
    for registry, view in views.items():
        for asn, stints in view.stints.items():
            if any(s.record.is_delegated for s in stints):
                holders.setdefault(asn, []).append(registry)
    overlapping: Set[ASN] = set()

    for asn, registries in sorted(holders.items()):
        if len(registries) < 2:
            continue
        spans = {
            registry: _delegated_span(views[registry].stints.get(asn, []))
            for registry in registries
        }
        for i, reg_a in enumerate(sorted(registries)):
            for reg_b in sorted(registries)[i + 1 :]:
                if _overlap_between(spans[reg_a], spans[reg_b]):
                    overlapping.add(asn)
        if asn not in overlapping:
            continue

        # (ii) mistaken allocations: a registry that never held the block
        if ledger is not None:
            rightful = ledger.rir_of(asn)
            for registry in sorted(registries):
                if rightful is not None and registry != rightful:
                    if not _looks_like_transfer(views, registry, asn):
                        rows = len(views[registry].stints.get(asn, []))
                        _drop_asn(views[registry], asn)
                        step.bump("mistaken_allocations_removed")
                        if rows:
                            step.bump(
                                f"{registry}_rows_dropped_mistaken", rows
                            )
        # (i) transfer stale tails: trim the earlier holder at the
        # later holder's start
        _trim_stale_tails(views, asn, registries, step)

    step.bump("asns_with_overlaps", len(overlapping))
    return overlapping


def _overlap_between(a, b) -> bool:
    for s1, e1, _ in a:
        for s2, e2, _ in b:
            if s1 <= e2 and s2 <= e1:
                return True
    return False


def _looks_like_transfer(
    views: Dict[str, RegistryView], registry: str, asn: ASN
) -> bool:
    """Transfer targets hold the ASN durably (long delegated tail);
    mistaken allocations are isolated rows with a bogus org id."""
    stints = views[registry].stints.get(asn, [])
    for stint in stints:
        rec = stint.record
        if rec.is_delegated and rec.opaque_id and rec.opaque_id.startswith("GHOST-"):
            return False
    return True


def _drop_asn(view: RegistryView, asn: ASN) -> None:
    view.stints.pop(asn, None)
    view.regular_stints.pop(asn, None)


def _trim_stale_tails(
    views: Dict[str, RegistryView],
    asn: ASN,
    registries: List[str],
    step,
) -> None:
    """For each overlapping pair, the registry whose delegation started
    earlier is the origin: its rows are cut at the destination's start."""
    infos = []
    for registry in registries:
        spans = _delegated_span(views[registry].stints.get(asn, []))
        if spans:
            infos.append((min(s for s, _, _ in spans), registry))
    infos.sort()
    for (start_a, reg_a), (start_b, reg_b) in zip(infos, infos[1:]):
        if start_a == start_b:
            continue
        view_a = views[reg_a]
        stints = view_a.stints.get(asn, [])
        trimmed: List[Stint] = []
        changed = False
        for stint in stints:
            if not stint.record.is_delegated or stint.end < start_b:
                trimmed.append(stint)
                continue
            if stint.start >= start_b:
                changed = True  # entirely stale
                continue
            trimmed.append(Stint(stint.start, start_b - 1, stint.record))
            changed = True
        if changed:
            removed = len(stints) - len(trimmed)
            view_a.stints[asn] = trimmed
            step.bump("stale_transfer_tails_trimmed")
            if removed:
                # only entirely-stale rows leave the view; in-place
                # trims keep their row (the ledger counts rows, not days)
                step.bump(f"{reg_a}_rows_dropped_stale_tail", removed)
