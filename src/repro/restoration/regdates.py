"""§3.1 step (v): restore inconsistent registration dates.

Three phenomena, with the paper's remedies:

* **future dates** — a registration date later than the file date the
  record first appeared in (AfriNIC, a few days off): use the first
  appearance day as the registration date;
* **placeholder dates** — RIPE NCC records whose date travelled back to
  1993-09-01, all traced to ERX transfers: restore the original date
  from the pre-delegation-file reference data (the paper used ARIN's
  published early-registration list; we accept the equivalent mapping);
* **other backward travel** — within one uninterrupted delegated run, a
  date only legitimately changes *forward* (administrative correction,
  §4.1); a backward change is repaired to the earliest date published
  for the run.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..asn.numbers import ASN
from ..rir.archive import Stint
from ..rir.pitfalls import ERX_PLACEHOLDER_DATE
from ..timeline.dates import Day
from .report import RestorationReport
from .view import RegistryView

__all__ = ["restore_registration_dates"]


def restore_registration_dates(
    views: Dict[str, RegistryView],
    report: RestorationReport,
    *,
    erx_reference: Optional[Mapping[ASN, Day]] = None,
) -> None:
    """Apply the three date repairs (in place)."""
    step = report.step("v-registration-dates")
    erx_reference = erx_reference or {}
    for registry, view in sorted(views.items()):
        future_fixed = placeholder_fixed = backward_fixed = 0
        for asn, stints in view.stints.items():
            run_earliest: Optional[Day] = None
            previous_delegated: Optional[Stint] = None
            for idx, stint in enumerate(stints):
                record = stint.record
                if not record.is_delegated:
                    run_earliest = None
                    previous_delegated = None
                    continue
                date = record.reg_date
                # (a) future date relative to first appearance
                if date is not None and date > stint.start:
                    stints[idx] = Stint(stint.start, stint.end,
                                        record.with_date(stint.start))
                    record = stints[idx].record
                    date = stint.start
                    future_fixed += 1
                # (b) ERX placeholder
                if date == ERX_PLACEHOLDER_DATE and asn in erx_reference:
                    stints[idx] = Stint(
                        stint.start, stint.end,
                        record.with_date(erx_reference[asn]),
                    )
                    record = stints[idx].record
                    date = record.reg_date
                    placeholder_fixed += 1
                # (c) backward travel inside a continuous delegated run
                contiguous = (
                    previous_delegated is not None
                    and previous_delegated.end + 1 == stint.start
                )
                if (
                    contiguous
                    and run_earliest is not None
                    and date is not None
                    and date < run_earliest
                    and date != ERX_PLACEHOLDER_DATE
                ):
                    # the date moved back: trust the earliest published one
                    stints[idx] = Stint(stint.start, stint.end,
                                        record.with_date(run_earliest))
                    record = stints[idx].record
                    date = run_earliest
                    backward_fixed += 1
                if not contiguous:
                    run_earliest = date
                elif date is not None and (run_earliest is None or date < run_earliest):
                    run_earliest = date
                previous_delegated = stints[idx]
        if future_fixed:
            step.bump(f"{registry}_future_dates_fixed", future_fixed)
        if placeholder_fixed:
            step.bump(f"{registry}_placeholder_dates_fixed", placeholder_fixed)
        if backward_fixed:
            step.bump(f"{registry}_backward_dates_fixed", backward_fixed)
