"""IANA → RIR AS-number block delegations.

IANA does not hand individual AS numbers to organizations; it delegates
*blocks* to the five RIRs as their free pools run low (§2).  Each RIR
may only allocate numbers from blocks it holds — the paper's §3.1 step
(vi) even finds "mistaken (apparent) allocations, some by RIRs who have
not been assigned those ASN blocks from IANA".

:class:`IanaLedger` models that central registry: a ledger of
``(first, last, rir, day)`` rows.  The world simulator requests blocks
on behalf of RIR state machines; the restoration pipeline consults the
ledger to rule out impossible allocations.

Block sizes follow IANA practice: 1,024 numbers per block in both the
16-bit and 32-bit spaces (32-bit delegations begin at AS 131072; the
65536..131071 range was delegated in the 2007-2009 trial period and is
modelled the same way).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..timeline.dates import Day
from .bogons import is_bogon_asn
from .numbers import AS16_MAX, AS32_MAX, ASN

__all__ = ["BLOCK_SIZE", "BlockDelegation", "IanaLedger"]

#: Numbers per IANA block delegation.
BLOCK_SIZE = 1024

#: First 32-bit-only AS number IANA delegates from.
_FIRST_32BIT_BLOCK_START = 65536


@dataclass(frozen=True)
class BlockDelegation:
    """A contiguous block of AS numbers delegated to one RIR on a day."""

    first: ASN
    last: ASN
    rir: str
    day: Day

    def __contains__(self, asn: ASN) -> bool:
        return self.first <= asn <= self.last

    @property
    def size(self) -> int:
        return self.last - self.first + 1

    def asns(self) -> Iterator[ASN]:
        """Yield the delegable (non-bogon) AS numbers of the block."""
        for asn in range(self.first, self.last + 1):
            if not is_bogon_asn(asn):
                yield asn


@dataclass
class IanaLedger:
    """The central ledger of AS-number blocks delegated to RIRs.

    The ledger only appends: IANA never claws a block back within our
    observation window.  ``delegate_16bit``/``delegate_32bit`` pick the
    next free block; ``grant`` records a block chosen by the caller
    (used to seed historical pre-2003 delegations).
    """

    delegations: List[BlockDelegation] = field(default_factory=list)
    _starts: List[ASN] = field(default_factory=list, repr=False)

    def grant(self, first: ASN, last: ASN, rir: str, day: Day) -> BlockDelegation:
        """Record a block delegation chosen explicitly by the caller."""
        if last < first:
            raise ValueError("block last precedes first")
        if last > AS32_MAX:
            raise ValueError("block exceeds the 32-bit AS space")
        for existing in self.delegations:
            if first <= existing.last and existing.first <= last:
                raise ValueError(
                    f"block {first}-{last} overlaps existing "
                    f"{existing.first}-{existing.last} ({existing.rir})"
                )
        block = BlockDelegation(first, last, rir, day)
        idx = bisect.bisect_left(self._starts, first)
        self._starts.insert(idx, first)
        self.delegations.insert(idx, block)
        return block

    def delegate_16bit(self, rir: str, day: Day) -> Optional[BlockDelegation]:
        """Delegate the lowest free 16-bit block, or ``None`` if exhausted.

        The final 16-bit block is truncated to stop at 65535; exhaustion
        of this space is what Appendix A's "16-bit exhaustion" analysis
        measures.  Holes left between explicit grants are filled first,
        matching IANA's practice of delegating from its remaining pool.
        """
        first = self._find_free(1, AS16_MAX)
        if first is None:
            return None
        last = min(first + BLOCK_SIZE - 1, AS16_MAX)
        return self.grant(first, last, rir, day)

    def delegate_32bit(self, rir: str, day: Day) -> Optional[BlockDelegation]:
        """Delegate the lowest free 32-bit block."""
        first = self._find_free(_FIRST_32BIT_BLOCK_START, AS32_MAX)
        if first is None:
            return None
        last = first + BLOCK_SIZE - 1
        return self.grant(first, last, rir, day)

    def _find_free(self, start: ASN, limit: ASN) -> Optional[ASN]:
        cursor = start
        while cursor <= limit:
            conflict = self._block_overlapping(cursor, cursor + BLOCK_SIZE - 1)
            if conflict is None:
                return cursor
            cursor = conflict.last + 1
        return None

    def _block_overlapping(self, first: ASN, last: ASN) -> Optional[BlockDelegation]:
        idx = bisect.bisect_right(self._starts, last)
        for block in self.delegations[max(0, idx - 2) : idx]:
            if first <= block.last and block.first <= last:
                return block
        return None

    def rir_of(self, asn: ASN, day: Optional[Day] = None) -> Optional[str]:
        """Return the RIR holding the block containing ``asn``.

        With ``day`` given, only delegations made on or before that day
        count — an allocation of an ASN before its block existed is the
        §3.1(vi) "mistaken allocation" defect.
        """
        idx = bisect.bisect_right(self._starts, asn) - 1
        if idx < 0:
            return None
        block = self.delegations[idx]
        if asn not in block:
            return None
        if day is not None and block.day > day:
            return None
        return block.rir

    def blocks_of(self, rir: str) -> List[BlockDelegation]:
        """All blocks delegated to one RIR, in ascending ASN order."""
        return [b for b in self.delegations if b.rir == rir]

    def sixteen_bit_totals(self) -> Dict[str, int]:
        """Per-RIR count of delegated 16-bit AS numbers."""
        totals: Dict[str, int] = {}
        for block in self.delegations:
            if block.last <= AS16_MAX:
                totals[block.rir] = totals.get(block.rir, 0) + block.size
        return totals

    def undelegated_16bit(self) -> int:
        """Count of 16-bit ASNs in no block (IANA's remaining pool)."""
        covered = sum(b.size for b in self.delegations if b.last <= AS16_MAX)
        return AS16_MAX + 1 - covered

    def spans(self) -> List[Tuple[ASN, ASN, str]]:
        """Return ``(first, last, rir)`` rows in ascending order."""
        return [(b.first, b.last, b.rir) for b in self.delegations]
