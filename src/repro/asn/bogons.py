"""Special-use ("bogon") AS numbers.

The §6.4 analysis of operational lives without allocation explicitly
excludes "bogon" ASNs normally filtered by operators — AS numbers that
RFCs reserve for documentation, private use, or special processing and
that RIRs can never delegate.  This module encodes the IANA
special-purpose AS number registry as of the paper's observation window
(citing the same RFCs the paper does: RFC 1930, 5398, 6996, 7300,
7607, plus the AS112 and AS_TRANS assignments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .numbers import AS32_MAX, ASN, validate_asn

__all__ = [
    "SpecialUseRange",
    "SPECIAL_USE_RANGES",
    "is_bogon_asn",
    "bogon_reason",
    "iter_bogon_ranges",
]


@dataclass(frozen=True)
class SpecialUseRange:
    """One row of the IANA special-purpose AS numbers registry."""

    first: ASN
    last: ASN
    designation: str
    reference: str

    def __contains__(self, asn: ASN) -> bool:
        return self.first <= asn <= self.last


#: The special-purpose registry rows relevant to the 2003-2021 window.
SPECIAL_USE_RANGES: Tuple[SpecialUseRange, ...] = (
    SpecialUseRange(0, 0, "Reserved (may not be used to identify an AS)", "RFC 7607"),
    SpecialUseRange(112, 112, "AS112 anycast nameserver operations", "RFC 7534"),
    SpecialUseRange(23456, 23456, "AS_TRANS (16-to-32-bit migration)", "RFC 6793"),
    SpecialUseRange(64496, 64511, "Documentation and sample code", "RFC 5398"),
    SpecialUseRange(64512, 65534, "Private use (16-bit)", "RFC 6996"),
    SpecialUseRange(65535, 65535, "Reserved (last 16-bit ASN)", "RFC 7300"),
    SpecialUseRange(65536, 65551, "Documentation and sample code", "RFC 5398"),
    SpecialUseRange(4200000000, 4294967294, "Private use (32-bit)", "RFC 6996"),
    SpecialUseRange(4294967295, 4294967295, "Reserved (last 32-bit ASN)", "RFC 7300"),
)


def is_bogon_asn(asn: ASN) -> bool:
    """True when the ASN belongs to a special-use/reserved range.

    Note that AS112 is *assigned* (to a distributed operations project)
    rather than reserved; the paper's exclusion list covers ASNs that
    operators conventionally treat as non-delegable, which includes it.
    """
    validate_asn(asn)
    return any(asn in rng for rng in SPECIAL_USE_RANGES)


def bogon_reason(asn: ASN) -> str:
    """Return the registry designation for a bogon ASN.

    Raises :class:`ValueError` for ASNs that are not special-use.
    """
    validate_asn(asn)
    for rng in SPECIAL_USE_RANGES:
        if asn in rng:
            return f"{rng.designation} ({rng.reference})"
    raise ValueError(f"AS{asn} is not a special-use ASN")


def iter_bogon_ranges() -> List[Tuple[ASN, ASN]]:
    """Return the (first, last) pairs of every special-use range."""
    return [(rng.first, rng.last) for rng in SPECIAL_USE_RANGES]


def _check_registry_invariants() -> None:
    """The registry rows must be sorted and non-overlapping."""
    prev_last = -1
    for rng in SPECIAL_USE_RANGES:
        if rng.first <= prev_last:
            raise AssertionError(f"overlapping special-use ranges at {rng}")
        if rng.last > AS32_MAX:
            raise AssertionError(f"range {rng} exceeds the 32-bit space")
        prev_last = rng.last


_check_registry_invariants()
