"""AS-number substrate: value type, special-use registry, IANA blocks."""

from .blocks import BLOCK_SIZE, BlockDelegation, IanaLedger
from .bogons import (
    SPECIAL_USE_RANGES,
    SpecialUseRange,
    bogon_reason,
    is_bogon_asn,
    iter_bogon_ranges,
)
from .numbers import (
    AS16_MAX,
    AS32_MAX,
    AS_MIN,
    ASN,
    digit_count,
    from_asdot,
    is_16bit,
    is_32bit_only,
    looks_like_prepend_typo,
    one_digit_apart,
    to_asdot,
    validate_asn,
)

__all__ = [
    "ASN",
    "AS_MIN",
    "AS16_MAX",
    "AS32_MAX",
    "validate_asn",
    "is_16bit",
    "is_32bit_only",
    "to_asdot",
    "from_asdot",
    "digit_count",
    "looks_like_prepend_typo",
    "one_digit_apart",
    "SpecialUseRange",
    "SPECIAL_USE_RANGES",
    "is_bogon_asn",
    "bogon_reason",
    "iter_bogon_ranges",
    "BLOCK_SIZE",
    "BlockDelegation",
    "IanaLedger",
]
