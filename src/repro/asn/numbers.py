"""AS number representation and classification.

AS numbers are plain non-negative integers.  Historically they were
16-bit (0..65535); RFC 6793 extended BGP to 32-bit AS numbers
(0..4294967295), which RIRs began delegating in 2007 and by default
from 2009-2010 (Appendix B of the paper).  The paper's Fig. 12 and the
§6.3 analysis of failed 32-bit deployments both hinge on telling the
two classes apart, so the helpers here are used throughout.

A note on "huge" ASNs (§6.4): values such as 290012147 are *valid*
32-bit ASNs that no RIR has delegated; they typically appear in BGP
when an internal numbering scheme leaks.  They are not bogons — the
bogon/special-use registries live in :mod:`repro.asn.bogons`.
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "AS_MIN",
    "AS16_MAX",
    "AS32_MAX",
    "ASN",
    "validate_asn",
    "is_16bit",
    "is_32bit_only",
    "to_asdot",
    "from_asdot",
    "digit_count",
    "looks_like_prepend_typo",
    "one_digit_apart",
]

#: Alias used in signatures: an AS number is a plain ``int``.
ASN = int

AS_MIN: ASN = 0
AS16_MAX: ASN = 2**16 - 1
AS32_MAX: ASN = 2**32 - 1


def validate_asn(asn: ASN) -> ASN:
    """Return ``asn`` unchanged, raising :class:`ValueError` if it is
    outside the 32-bit AS number space."""
    if not isinstance(asn, int) or isinstance(asn, bool):
        raise ValueError(f"ASN must be an int, got {type(asn).__name__}")
    if not AS_MIN <= asn <= AS32_MAX:
        raise ValueError(f"ASN {asn} outside 0..{AS32_MAX}")
    return asn


def is_16bit(asn: ASN) -> bool:
    """True for ASNs representable in the original 16-bit space."""
    return AS_MIN <= asn <= AS16_MAX


def is_32bit_only(asn: ASN) -> bool:
    """True for ASNs that *require* 32-bit support (RFC 6793)."""
    return AS16_MAX < asn <= AS32_MAX


def to_asdot(asn: ASN) -> str:
    """Render in asdot notation (RFC 5396): ``high.low`` above 65535.

    16-bit values render as plain decimal, e.g. ``3356``; 32-bit-only
    values as e.g. ``3.14`` for 196622.
    """
    validate_asn(asn)
    if is_16bit(asn):
        return str(asn)
    return f"{asn >> 16}.{asn & 0xFFFF}"


def from_asdot(text: str) -> ASN:
    """Parse asplain (``"3356"``) or asdot (``"3.14"``) notation."""
    text = text.strip()
    if "." in text:
        high_s, _, low_s = text.partition(".")
        high, low = int(high_s), int(low_s)
        if not (0 <= high <= AS16_MAX and 0 <= low <= AS16_MAX):
            raise ValueError(f"invalid asdot value {text!r}")
        return (high << 16) | low
    return validate_asn(int(text))


def digit_count(asn: ASN) -> int:
    """Number of decimal digits of the asplain rendering."""
    return len(str(validate_asn(asn)))


def looks_like_prepend_typo(origin: ASN, first_hop: ASN) -> bool:
    """True when ``origin`` looks like a failed AS-path prepend of
    ``first_hop``.

    §6.4 of the paper finds that 76% of fat-finger misconfigurations
    involve an origin that is a mistyped repetition of its first hop —
    e.g. origin AS3202632026 next to first hop AS32026 (the digits of
    32026 typed twice and concatenated instead of prepended as two
    separate hops).  We flag an origin when its decimal digits are the
    first-hop digits written two or more times in a row, or when the
    origin *starts or ends* with the full first-hop digit string twice.
    """
    o, h = str(origin), str(first_hop)
    if origin == first_hop or len(o) <= len(h):
        return False
    if len(o) % len(h) == 0 and o == h * (len(o) // len(h)):
        return True
    # affix form (doubled digits plus stray characters) — only for hops
    # long enough that the doubled string cannot occur by accident
    if len(h) < 3:
        return False
    doubled = h + h
    return o.startswith(doubled) or o.endswith(doubled)


def one_digit_apart(a: ASN, b: ASN) -> bool:
    """True when the asplain renderings differ by a single edit of one
    digit (substitution, or one inserted/deleted digit).

    §6.4 attributes 24% of fat-finger misconfigurations to MOAS
    conflicts between ASNs "that differ by 1 digit", e.g. AS419333 vs
    AS41933.
    """
    sa, sb = str(a), str(b)
    if sa == sb:
        return False
    if len(sa) == len(sb):
        return sum(x != y for x, y in zip(sa, sb)) == 1
    if abs(len(sa) - len(sb)) != 1:
        return False
    longer, shorter = (sa, sb) if len(sa) > len(sb) else (sb, sa)
    for i in range(len(longer)):
        if longer[:i] + longer[i + 1 :] == shorter:
            return True
    return False


def split_16_32(asns: Tuple[ASN, ...]) -> Tuple[Tuple[ASN, ...], Tuple[ASN, ...]]:
    """Partition a tuple of ASNs into (16-bit, 32-bit-only) tuples."""
    low = tuple(a for a in asns if is_16bit(a))
    high = tuple(a for a in asns if is_32bit_only(a))
    return low, high
