"""Day arithmetic for the longitudinal analyses.

Everything in this library that refers to time does so at *daily*
granularity, mirroring the paper: delegation files are published once a
day, and BGP activity is aggregated per day (§4.2).  To keep the hot
paths cheap, a day is represented as the proleptic Gregorian ordinal of
the calendar date (an ``int``, as returned by
:meth:`datetime.date.toordinal`).  This module holds the conversions and
bucketing helpers; the rest of the library passes bare ``int`` days
around and only converts at I/O boundaries.
"""

from __future__ import annotations

import datetime as _dt
from typing import Iterator, Tuple

__all__ = [
    "Day",
    "day",
    "from_iso",
    "to_date",
    "to_iso",
    "today_guard",
    "add_days",
    "year_of",
    "month_of",
    "quarter_of",
    "quarter_start",
    "month_start",
    "year_start",
    "days_between",
    "iter_days",
    "iter_quarters",
    "PAPER_START",
    "PAPER_END",
]

#: Alias used in signatures throughout the library: a proleptic
#: Gregorian ordinal, one per calendar day.
Day = int

#: First day of the paper's BGP observation window (2003-10-09, §3.2).
PAPER_START: Day = _dt.date(2003, 10, 9).toordinal()

#: Last day of the paper's observation window (2021-03-01, §3.1/§3.2).
PAPER_END: Day = _dt.date(2021, 3, 1).toordinal()


def day(year: int, month: int, dom: int) -> Day:
    """Return the ordinal day for a calendar date given as Y/M/D."""
    return _dt.date(year, month, dom).toordinal()


def from_iso(text: str) -> Day:
    """Parse an ISO ``YYYY-MM-DD`` date (the delegation-file format)."""
    return _dt.date.fromisoformat(text).toordinal()


def to_date(d: Day) -> _dt.date:
    """Return the :class:`datetime.date` for an ordinal day."""
    return _dt.date.fromordinal(d)


def to_iso(d: Day) -> str:
    """Format an ordinal day as ``YYYY-MM-DD``."""
    return _dt.date.fromordinal(d).isoformat()


def today_guard() -> None:
    """Raise: the library is deterministic and must not read the clock.

    Any code path tempted to call ``date.today()`` should call this
    instead so that the mistake surfaces loudly in tests.
    """
    raise RuntimeError(
        "repro is a deterministic simulation library; wall-clock access "
        "is forbidden. Pass explicit Day values instead."
    )


def add_days(d: Day, n: int) -> Day:
    """Return the day ``n`` days after ``d`` (``n`` may be negative)."""
    return d + n


def year_of(d: Day) -> int:
    """Return the calendar year containing day ``d``."""
    return _dt.date.fromordinal(d).year


def month_of(d: Day) -> Tuple[int, int]:
    """Return ``(year, month)`` for day ``d``."""
    dd = _dt.date.fromordinal(d)
    return dd.year, dd.month


def quarter_of(d: Day) -> Tuple[int, int]:
    """Return ``(year, quarter)`` for day ``d`` (quarters are 1..4)."""
    dd = _dt.date.fromordinal(d)
    return dd.year, (dd.month - 1) // 3 + 1


def quarter_start(year: int, quarter: int) -> Day:
    """Return the first day of quarter ``quarter`` (1..4) of ``year``."""
    if not 1 <= quarter <= 4:
        raise ValueError(f"quarter must be 1..4, got {quarter}")
    return _dt.date(year, 3 * (quarter - 1) + 1, 1).toordinal()


def month_start(year: int, month: int) -> Day:
    """Return the first day of the given month."""
    return _dt.date(year, month, 1).toordinal()


def year_start(year: int) -> Day:
    """Return January 1st of ``year`` as an ordinal day."""
    return _dt.date(year, 1, 1).toordinal()


def days_between(start: Day, end: Day) -> int:
    """Return the *inclusive* day count of the span ``[start, end]``.

    This is the paper's notion of lifetime duration: an ASN allocated
    and deallocated on the same day lived for one day.
    """
    if end < start:
        raise ValueError(f"end {to_iso(end)} precedes start {to_iso(start)}")
    return end - start + 1


def iter_days(start: Day, end: Day) -> Iterator[Day]:
    """Yield every day of the inclusive span ``[start, end]``."""
    return iter(range(start, end + 1))


def iter_quarters(start: Day, end: Day) -> Iterator[Tuple[int, int]]:
    """Yield ``(year, quarter)`` buckets covering ``[start, end]``."""
    year, quarter = quarter_of(start)
    last = quarter_of(end)
    while (year, quarter) <= last:
        yield year, quarter
        quarter += 1
        if quarter == 5:
            quarter = 1
            year += 1
