"""Closed integer intervals and disjoint interval sets.

Administrative and operational lifetimes are both *closed* day
intervals: ``Interval(start, end)`` covers every day from ``start`` to
``end`` inclusive.  :class:`IntervalSet` maintains a sorted, disjoint,
non-adjacent-merged collection of them and provides the algebra every
joint analysis in the paper needs — union, intersection, gaps, coverage
ratios, containment tests.

The joint analyses (§5, §6) are essentially interval algebra at scale,
so these types are deliberately small, immutable where cheap, and well
tested (including property-based tests against a brute-force day-set
model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from .dates import Day, to_iso

__all__ = ["Interval", "IntervalSet"]


@dataclass(frozen=True, order=True)
class Interval:
    """A closed day interval ``[start, end]`` (both inclusive)."""

    start: Day
    end: Day

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"interval end {to_iso(self.end)} precedes start {to_iso(self.start)}"
            )

    @property
    def duration(self) -> int:
        """Inclusive length in days; a single-day interval has duration 1."""
        return self.end - self.start + 1

    def __contains__(self, d: Day) -> bool:
        return self.start <= d <= self.end

    def contains_interval(self, other: "Interval") -> bool:
        """True when ``other`` lies entirely within this interval."""
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "Interval") -> bool:
        """True when the two closed intervals share at least one day."""
        return self.start <= other.end and other.start <= self.end

    def touches(self, other: "Interval") -> bool:
        """True when the intervals overlap or are adjacent (gap of 0 days)."""
        return self.start <= other.end + 1 and other.start <= self.end + 1

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """Return the shared span, or ``None`` when disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def gap_to(self, other: "Interval") -> int:
        """Days strictly between two disjoint intervals (0 when adjacent
        or overlapping).

        Used for the BGP inactivity-timeout segmentation (§4.2): two
        activity bursts belong to the same operational life when the gap
        between them does not exceed the timeout.
        """
        if self.overlaps(other):
            return 0
        if self.end < other.start:
            return other.start - self.end - 1
        return self.start - other.end - 1

    def shift(self, n: int) -> "Interval":
        """Return a copy moved ``n`` days (negative = earlier)."""
        return Interval(self.start + n, self.end + n)

    def clamp(self, lo: Day, hi: Day) -> Optional["Interval"]:
        """Clip to ``[lo, hi]``; ``None`` when nothing remains."""
        return self.intersection(Interval(lo, hi))

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{to_iso(self.start)} .. {to_iso(self.end)}]"


class IntervalSet:
    """A set of days stored as sorted, disjoint, merged closed intervals.

    Adjacent intervals are always coalesced, so the representation is
    canonical: two ``IntervalSet``s covering the same days compare
    equal.  All read operations are O(log n) or O(n); construction from
    an unsorted iterable is O(n log n).
    """

    __slots__ = ("_ivs",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._ivs: List[Interval] = self._normalize(intervals)

    @staticmethod
    def _normalize(intervals: Iterable[Interval]) -> List[Interval]:
        ivs = sorted(intervals, key=lambda iv: iv.start)
        merged: List[Interval] = []
        for iv in ivs:
            if merged and merged[-1].touches(iv):
                last = merged[-1]
                if iv.end > last.end:
                    merged[-1] = Interval(last.start, iv.end)
            else:
                merged.append(iv)
        return merged

    @classmethod
    def from_days(cls, days: Iterable[Day]) -> "IntervalSet":
        """Build from an iterable of individual days (need not be sorted).

        This is how daily BGP activity observations are turned into raw
        activity spans before timeout segmentation.
        """
        return cls.from_sorted_days(sorted(set(days)))

    @classmethod
    def from_sorted_days(cls, days: Sequence[Day]) -> "IntervalSet":
        """Build from days already in ascending order.

        Skips the ``sorted(set(...))`` pass of :meth:`from_days` — the
        per-day pipelines iterate days in order, so re-sorting their
        output is pure overhead at scale.  Duplicates are tolerated
        (adjacent equal days collapse); a descending pair raises.
        """
        out = cls()
        if not days:
            return out
        ivs: List[Interval] = []
        run_start = prev = days[0]
        for d in days[1:]:
            if d == prev or d == prev + 1:
                prev = d
                continue
            if d < prev:
                raise ValueError("from_sorted_days requires ascending days")
            ivs.append(Interval(run_start, prev))
            run_start = prev = d
        ivs.append(Interval(run_start, prev))
        out._ivs = ivs
        return out

    @classmethod
    def union_all(cls, sets: Iterable["IntervalSet"]) -> "IntervalSet":
        """Union of many sets in one k-way normalize.

        Folding ``a.union(b).union(c)...`` re-sorts and re-merges the
        accumulated intervals at every step (quadratic in the number of
        sets); collecting everything and normalizing once is a single
        O(n log n) pass.
        """
        ivs: List[Interval] = []
        for s in sets:
            ivs.extend(s._ivs)
        return cls(ivs)

    @classmethod
    def _from_flat(cls, flat: Tuple[Day, ...]) -> "IntervalSet":
        """Rebuild from the flat ``(start, end, start, end, ...)`` form.

        Pickle counterpart of :meth:`__reduce__`; trusts the encoded
        intervals to be canonical (they came from a live set) and skips
        normalization.
        """
        out = cls.__new__(cls)
        it = iter(flat)
        out._ivs = [Interval(s, e) for s, e in zip(it, it)]
        return out

    def __reduce__(self):
        # Pickle as a flat int tuple instead of a list of Interval
        # objects: dataset bundles hold tens of thousands of interval
        # sets, and skipping the per-Interval object overhead makes
        # cached artifacts ~2x smaller and measurably faster to load.
        flat: List[Day] = []
        for iv in self._ivs:
            flat.append(iv.start)
            flat.append(iv.end)
        return (IntervalSet._from_flat, (tuple(flat),))

    # -- basic protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._ivs)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._ivs)

    def __bool__(self) -> bool:
        return bool(self._ivs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._ivs == other._ivs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(str(iv) for iv in self._ivs)
        return f"IntervalSet({inner})"

    @property
    def intervals(self) -> Sequence[Interval]:
        """The sorted, disjoint intervals (read-only view)."""
        return tuple(self._ivs)

    @property
    def total_days(self) -> int:
        """Total number of distinct days covered."""
        return sum(iv.duration for iv in self._ivs)

    @property
    def span(self) -> Optional[Interval]:
        """Smallest single interval covering the whole set, or ``None``."""
        if not self._ivs:
            return None
        return Interval(self._ivs[0].start, self._ivs[-1].end)

    def __contains__(self, d: Day) -> bool:
        lo, hi = 0, len(self._ivs) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            iv = self._ivs[mid]
            if d < iv.start:
                hi = mid - 1
            elif d > iv.end:
                lo = mid + 1
            else:
                return True
        return False

    def covers(self, iv: Interval) -> bool:
        """True when every day of ``iv`` is in the set.

        Because the representation is merged, a covered span must lie
        inside a *single* stored interval, so this is one binary search
        — O(log n) against the O(duration) of a day-by-day membership
        scan.
        """
        lo, hi = 0, len(self._ivs) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            candidate = self._ivs[mid]
            if iv.start < candidate.start:
                hi = mid - 1
            elif iv.start > candidate.end:
                lo = mid + 1
            else:
                return iv.end <= candidate.end
        return False

    # -- algebra -------------------------------------------------------

    @staticmethod
    def _merge_sorted(a: Sequence[Interval], b: Sequence[Interval]) -> List[Interval]:
        """Linear merge of two already-canonical interval lists.

        Both inputs are sorted, disjoint and adjacency-merged (the
        class invariant), so a two-pointer walk with the same
        ``touches`` coalescing rule as :meth:`_normalize` produces the
        canonical union in O(n + m) — no re-sort.  The serve append
        path unions per-day activity sets repeatedly, which made the
        old concatenate-and-normalize union an O(n log n) hot spot.
        """
        out: List[Interval] = []
        i = j = 0
        while i < len(a) or j < len(b):
            if j >= len(b) or (i < len(a) and a[i].start <= b[j].start):
                iv = a[i]
                i += 1
            else:
                iv = b[j]
                j += 1
            if out and out[-1].touches(iv):
                last = out[-1]
                if iv.end > last.end:
                    out[-1] = Interval(last.start, iv.end)
            else:
                out.append(iv)
        return out

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Days in either set (linear merge of the two sorted lists)."""
        result = IntervalSet()
        result._ivs = self._merge_sorted(self._ivs, other._ivs)
        return result

    def add(self, iv: Interval) -> "IntervalSet":
        """Return a new set with ``iv`` merged in."""
        result = IntervalSet()
        result._ivs = self._merge_sorted(self._ivs, [iv])
        return result

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """Days in both sets (linear merge of the two sorted lists)."""
        out: List[Interval] = []
        i = j = 0
        a, b = self._ivs, other._ivs
        while i < len(a) and j < len(b):
            hit = a[i].intersection(b[j])
            if hit is not None:
                out.append(hit)
            if a[i].end < b[j].end:
                i += 1
            else:
                j += 1
        result = IntervalSet()
        result._ivs = out  # already sorted & disjoint
        return result

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        """Days in this set but not in ``other``."""
        out: List[Interval] = []
        j = 0
        b = other._ivs
        for iv in self._ivs:
            cur = iv.start
            while j < len(b) and b[j].end < cur:
                j += 1
            k = j
            while k < len(b) and b[k].start <= iv.end:
                blocker = b[k]
                if blocker.start > cur:
                    out.append(Interval(cur, blocker.start - 1))
                cur = max(cur, blocker.end + 1)
                if cur > iv.end:
                    break
                k += 1
            if cur <= iv.end:
                out.append(Interval(cur, iv.end))
        result = IntervalSet()
        result._ivs = result._normalize(out)
        return result

    def gaps(self) -> "IntervalSet":
        """The spans strictly between consecutive intervals.

        The distribution of per-ASN activity gaps (Fig. 3, red line) is
        computed from these.
        """
        out: List[Interval] = []
        for prev, nxt in zip(self._ivs, self._ivs[1:]):
            out.append(Interval(prev.end + 1, nxt.start - 1))
        result = IntervalSet()
        result._ivs = out
        return result

    def overlap_days(self, iv: Interval) -> int:
        """Number of covered days falling inside ``iv``."""
        total = 0
        for mine in self._ivs:
            hit = mine.intersection(iv)
            if hit is not None:
                total += hit.duration
            elif mine.start > iv.end:
                break
        return total

    def coverage_of(self, iv: Interval) -> float:
        """Fraction of ``iv`` covered by this set (0.0 .. 1.0).

        This is the paper's *utilization* of an administrative lifetime
        (Fig. 7) when the set holds the ASN's operational lifetimes.
        """
        return self.overlap_days(iv) / iv.duration

    def clamp(self, lo: Day, hi: Day) -> "IntervalSet":
        """Clip every interval to ``[lo, hi]``."""
        window = Interval(lo, hi)
        out: List[Interval] = []
        for iv in self._ivs:
            hit = iv.intersection(window)
            if hit is not None:
                out.append(hit)
        result = IntervalSet()
        result._ivs = out
        return result

    def merge_gaps(self, max_gap: int) -> "IntervalSet":
        """Coalesce intervals separated by gaps of at most ``max_gap`` days.

        This implements the §4.2 inactivity-timeout rule: with the
        paper's 30-day timeout, activity bursts less than or equal to 30
        days apart form a single operational lifetime.
        """
        if max_gap < 0:
            raise ValueError("max_gap must be >= 0")
        if not self._ivs:
            return IntervalSet()
        out: List[Interval] = [self._ivs[0]]
        for iv in self._ivs[1:]:
            last = out[-1]
            if iv.start - last.end - 1 <= max_gap:
                out[-1] = Interval(last.start, max(last.end, iv.end))
            else:
                out.append(iv)
        result = IntervalSet()
        result._ivs = out
        return result

    def days(self) -> Iterator[Day]:
        """Yield every covered day in ascending order."""
        for iv in self._ivs:
            yield from range(iv.start, iv.end + 1)

    def gap_lengths(self) -> List[int]:
        """Lengths (in days) of the gaps between consecutive intervals."""
        return [nxt.start - prev.end - 1 for prev, nxt in zip(self._ivs, self._ivs[1:])]
