"""Daily-granularity time substrate: day ordinals and interval algebra."""

from .dates import (
    PAPER_END,
    PAPER_START,
    Day,
    add_days,
    day,
    days_between,
    from_iso,
    iter_days,
    iter_quarters,
    month_of,
    month_start,
    quarter_of,
    quarter_start,
    to_date,
    to_iso,
    year_of,
    year_start,
)
from .intervals import Interval, IntervalSet

__all__ = [
    "Day",
    "day",
    "from_iso",
    "to_date",
    "to_iso",
    "add_days",
    "year_of",
    "month_of",
    "quarter_of",
    "quarter_start",
    "month_start",
    "year_start",
    "days_between",
    "iter_days",
    "iter_quarters",
    "Interval",
    "IntervalSet",
    "PAPER_START",
    "PAPER_END",
]
