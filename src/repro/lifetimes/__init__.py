"""Lifetime construction: administrative (§4.1) and operational (§4.2)."""

from .admin import admin_lifetimes_for_stints, build_admin_lifetimes
from .bgp import (
    DEFAULT_TIMEOUT,
    OperationalActivity,
    activity_from_elements,
    build_bgp_lifetimes,
    build_operational_dataset,
    lifetimes_from_activity,
)
from .io import (
    dump_admin_dataset,
    dump_bgp_dataset,
    load_admin_dataset,
    load_bgp_dataset,
)
from .prefix_aware import (
    PrefixedLifetime,
    build_prefix_aware_lifetimes,
    daily_prefixes_from_elements,
    jaccard,
    segment_prefix_aware,
)
from .records import AdminLifetime, BgpLifetime
from .sensitivity import (
    TimeoutSweep,
    fraction_one_or_less_op_life,
    gap_cdf,
    gap_distribution,
    sweep_timeouts,
)

__all__ = [
    "AdminLifetime",
    "BgpLifetime",
    "build_admin_lifetimes",
    "admin_lifetimes_for_stints",
    "OperationalActivity",
    "build_bgp_lifetimes",
    "build_operational_dataset",
    "lifetimes_from_activity",
    "activity_from_elements",
    "DEFAULT_TIMEOUT",
    "gap_distribution",
    "gap_cdf",
    "fraction_one_or_less_op_life",
    "TimeoutSweep",
    "sweep_timeouts",
    "dump_admin_dataset",
    "dump_bgp_dataset",
    "load_admin_dataset",
    "load_bgp_dataset",
    "PrefixedLifetime",
    "segment_prefix_aware",
    "build_prefix_aware_lifetimes",
    "daily_prefixes_from_elements",
    "jaccard",
]
