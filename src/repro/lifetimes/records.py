"""Lifetime record types — the paper's two published datasets.

Listing 1 of the paper shows one record of each:

.. code-block:: json

    {"ASN": 205334, "regDate": "2017-09-20", "startdate": "2017-09-20",
     "enddate": "2021-02-11", "status": "allocated", "registry": "ripencc"}

    {"ASN": 205334, "startdate": "2017-10-05", "enddate": "2017-10-23"}

``open_ended`` marks lifetimes still running on the last observed day;
duration statistics that would be censored (e.g. the §6.1.1 late-
deallocation delays) exclude them, as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..asn.numbers import ASN
from ..timeline.dates import Day, to_iso
from ..timeline.intervals import Interval

__all__ = ["AdminLifetime", "BgpLifetime"]


@dataclass(frozen=True)
class AdminLifetime:
    """One administrative lifetime of an ASN (§4.1).

    ``registries`` records the holding registry over time; inter-RIR
    transfers with no gap keep the lifetime whole (§4.1), so the tuple
    can have more than one element.  ``registry`` (the dataset field)
    is the registry holding the ASN at the end of the life.
    """

    asn: ASN
    start: Day
    end: Day
    reg_date: Day
    registries: Tuple[str, ...]
    cc: str = ""
    org_id: Optional[str] = None
    open_ended: bool = False
    via_nir: bool = False
    #: True when the ASN was already present in the registry's very
    #: first delegation file: the observed start is left-censored, and
    #: the lifetime has been back-dated to the registration date.
    left_censored: bool = False

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("lifetime ends before it starts")
        if not self.registries:
            raise ValueError("lifetime needs at least one registry")

    @property
    def registry(self) -> str:
        return self.registries[-1]

    @property
    def interval(self) -> Interval:
        return Interval(self.start, self.end)

    @property
    def duration(self) -> int:
        return self.end - self.start + 1

    @property
    def transferred(self) -> bool:
        return len(self.registries) > 1

    def to_json_dict(self) -> dict:
        """The Listing 1 administrative record."""
        return {
            "ASN": self.asn,
            "regDate": to_iso(self.reg_date),
            "startdate": to_iso(self.start),
            "enddate": to_iso(self.end),
            "status": "allocated",
            "registry": self.registry,
        }


@dataclass(frozen=True)
class BgpLifetime:
    """One operational (BGP) lifetime of an ASN (§4.2)."""

    asn: ASN
    start: Day
    end: Day
    open_ended: bool = False

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("lifetime ends before it starts")

    @property
    def interval(self) -> Interval:
        return Interval(self.start, self.end)

    @property
    def duration(self) -> int:
        return self.end - self.start + 1

    def to_json_dict(self) -> dict:
        """The Listing 1 operational record."""
        return {
            "ASN": self.asn,
            "startdate": to_iso(self.start),
            "enddate": to_iso(self.end),
        }
