"""Sensitivity analysis for the BGP inactivity timeout (Fig. 3, App. C).

Figure 3 overlays two curves against the candidate timeout value:

* the CDF of per-ASN activity gaps (what fraction of observed gaps a
  timeout would bridge) — the paper picks 30 days at the knee, covering
  70.1% of gaps;
* the fraction of administrative lifetimes containing at most one
  operational lifetime under that timeout — 83% at 30 days.

Appendix C re-runs the taxonomy under 15/30/50-day timeouts (Table 5);
the helpers here produce the per-timeout lifetime sets that feed it.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Mapping, Sequence

from ..asn.numbers import ASN
from ..timeline.dates import Day
from .bgp import OperationalActivity, build_bgp_lifetimes
from .records import AdminLifetime

__all__ = [
    "gap_distribution",
    "gap_cdf",
    "fraction_one_or_less_op_life",
    "TimeoutSweep",
    "sweep_timeouts",
]


def gap_distribution(
    activities: Mapping[ASN, OperationalActivity], *, min_peers: int = 2
) -> List[int]:
    """All per-ASN activity gap lengths, in days (Fig. 3 red line data)."""
    gaps: List[int] = []
    for activity in activities.values():
        gaps.extend(activity.active_days(min_peers=min_peers).gap_lengths())
    gaps.sort()
    return gaps


def gap_cdf(gaps: Sequence[int], timeout: int) -> float:
    """Fraction of gaps with length <= timeout (a point on the CDF)."""
    if not gaps:
        return 1.0
    return bisect_right(gaps, timeout) / len(gaps)


def fraction_one_or_less_op_life(
    admin_lives: Mapping[ASN, Sequence[AdminLifetime]],
    activities: Mapping[ASN, OperationalActivity],
    *,
    timeout: int,
    end_day: Day,
) -> float:
    """Fraction of administrative lifetimes containing <= 1 operational
    lifetime under the given timeout (Fig. 3 blue dotted line)."""
    total = contained = 0
    op_lives = build_bgp_lifetimes(activities, timeout=timeout, end_day=end_day)
    for asn, lives in admin_lives.items():
        ops = op_lives.get(asn, [])
        for admin in lives:
            total += 1
            inside = sum(
                1 for op in ops if admin.start <= op.start and op.end <= admin.end
            )
            if inside <= 1:
                contained += 1
    if total == 0:
        return 1.0
    return contained / total


@dataclass(frozen=True)
class TimeoutSweep:
    """One row of the sensitivity sweep."""

    timeout: int
    gap_coverage: float
    one_or_less_share: float
    total_op_lifetimes: int


def sweep_timeouts(
    admin_lives: Mapping[ASN, Sequence[AdminLifetime]],
    activities: Mapping[ASN, OperationalActivity],
    timeouts: Sequence[int],
    *,
    end_day: Day,
) -> List[TimeoutSweep]:
    """Evaluate candidate timeouts; feeds Fig. 3 and Table 5."""
    gaps = gap_distribution(activities)
    rows: List[TimeoutSweep] = []
    for timeout in timeouts:
        op_lives = build_bgp_lifetimes(activities, timeout=timeout, end_day=end_day)
        rows.append(
            TimeoutSweep(
                timeout=timeout,
                gap_coverage=gap_cdf(gaps, timeout),
                one_or_less_share=fraction_one_or_less_op_life(
                    admin_lives, activities, timeout=timeout, end_day=end_day
                ),
                total_op_lifetimes=sum(len(v) for v in op_lives.values()),
            )
        )
    return rows
