"""§4.1 administrative lifetime inference.

From the restored observation timeline, lifetimes are built with the
paper's rules:

* a lifetime starts when an ASN (re)appears delegated;
* it ends when the ASN becomes available, reserved, or disappears;
* an ASN reappearing **with the same registration date** was returned
  to its previous holder — the spans merge into one lifetime;
* **AfriNIC exception**: reserved then re-allocated *without passing
  through available* merges even with a fresh registration date;
* a registration date changing while the ASN stays delegated is an
  administrative correction, not a new lifetime;
* an inter-RIR transfer keeps the lifetime whole iff there is no gap
  between the two registries' delegations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..asn.numbers import ASN
from ..rir.archive import Stint
from ..rir.model import Status
from ..restoration.pipeline import RestoredDelegations
from ..runtime.executor import (
    DEFAULT_CHUNK_SIZE,
    ExecutorSpec,
    chunked,
    resolve_executor,
)
from ..timeline.dates import Day
from .records import AdminLifetime

__all__ = ["build_admin_lifetimes", "admin_lifetimes_for_stints"]


@dataclass
class _Run:
    """A maximal block of contiguous delegated days."""

    start: Day
    end: Day
    registries: List[str] = field(default_factory=list)
    first_reg_date: Optional[Day] = None
    last_reg_date: Optional[Day] = None
    cc: str = ""
    org_id: Optional[str] = None
    via_nir: bool = False

    def absorb(self, stint: Stint) -> None:
        self.end = max(self.end, stint.end)
        rec = stint.record
        if not self.registries or self.registries[-1] != rec.registry:
            self.registries.append(rec.registry)
        self.last_reg_date = rec.reg_date
        if rec.cc:
            self.cc = rec.cc
        if rec.opaque_id:
            self.org_id = rec.opaque_id


def _build_runs(stints: Sequence[Stint]) -> List[_Run]:
    runs: List[_Run] = []
    for stint in stints:
        if not stint.record.is_delegated:
            continue
        if runs and stint.start <= runs[-1].end + 1:
            runs[-1].absorb(stint)
            continue
        run = _Run(
            start=stint.start,
            end=stint.end,
            registries=[stint.record.registry],
            first_reg_date=stint.record.reg_date,
            last_reg_date=stint.record.reg_date,
            cc=stint.record.cc,
            org_id=stint.record.opaque_id,
        )
        runs.append(run)
    return runs


def _was_available_between(
    stints: Sequence[Stint], registry: str, start: Day, end: Day
) -> bool:
    """True when the ASN touched the *available* pool of ``registry``
    anywhere in (start, end) — which forbids the AfriNIC merge."""
    for stint in stints:
        if stint.record.registry != registry:
            continue
        if stint.record.status is not Status.AVAILABLE:
            continue
        if stint.start <= end and start <= stint.end:
            return True
    return False


def _should_merge(prev: _Run, nxt: _Run, stints: Sequence[Stint]) -> bool:
    if prev.registries[-1] != nxt.registries[0]:
        # cross-registry reappearance with a gap: distinct lifetimes
        # (gap-free transfers never split into two runs)
        return False
    if (
        prev.last_reg_date is not None
        and nxt.first_reg_date is not None
        and prev.last_reg_date == nxt.first_reg_date
    ):
        # same registration date: returned to the previous holder
        return True
    if prev.registries[-1] == "afrinic":
        # AfriNIC exception: merge if never available in between
        return not _was_available_between(
            stints, "afrinic", prev.end + 1, nxt.start - 1
        )
    return False


def admin_lifetimes_for_stints(
    asn: ASN, stints: Sequence[Stint], end_day: Day
) -> List[AdminLifetime]:
    """Lifetimes of a single ASN from its restored stint timeline."""
    runs = _build_runs(stints)
    if not runs:
        return []
    merged: List[List[_Run]] = [[runs[0]]]
    for run in runs[1:]:
        if _should_merge(merged[-1][-1], run, stints):
            merged[-1].append(run)
        else:
            merged.append([run])
    lifetimes: List[AdminLifetime] = []
    for group in merged:
        registries: List[str] = []
        for run in group:
            for registry in run.registries:
                if not registries or registries[-1] != registry:
                    registries.append(registry)
        first = group[0]
        last = group[-1]
        reg_date = first.first_reg_date if first.first_reg_date is not None else first.start
        lifetimes.append(
            AdminLifetime(
                asn=asn,
                start=first.start,
                end=last.end,
                reg_date=reg_date,
                registries=tuple(registries),
                cc=last.cc or first.cc,
                org_id=last.org_id or first.org_id,
                open_ended=last.end >= end_day,
                via_nir=first.via_nir,
            )
        )
    return lifetimes


def _admin_chunk_task(
    payload: Tuple[
        List[Tuple[ASN, List[Stint]]], Day, Mapping[str, Day]
    ],
) -> List[Tuple[ASN, List[AdminLifetime]]]:
    """Lifetimes for one contiguous chunk of (asn, stints) pairs.

    Module-level so process-pool backends can pickle it; pure in its
    payload so chunk results merge into the serial result exactly.
    """
    items, end_day, first_file_day = payload
    out: List[Tuple[ASN, List[AdminLifetime]]] = []
    for asn, stints in items:
        lifetimes = admin_lifetimes_for_stints(asn, stints, end_day)
        if not lifetimes:
            continue
        first = lifetimes[0]
        window_start = first_file_day.get(first.registries[0])
        if (
            window_start is not None
            and first.start == window_start
            and first.reg_date < first.start
        ):
            lifetimes[0] = replace(first, start=first.reg_date, left_censored=True)
        out.append((asn, lifetimes))
    return out


def build_admin_lifetimes(
    restored: RestoredDelegations,
    *,
    executor: ExecutorSpec = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Dict[ASN, List[AdminLifetime]]:
    """Administrative lifetimes for every ASN in the restored data.

    The paper derives 126,953 lifetimes over 106,873 ASNs from its full
    archive; the same construction here is linear in the number of
    stints.  Every ASN is independent, so the work fans out over
    ASN-sorted chunks; chunk boundaries depend only on the sorted ASN
    list and ``chunk_size``, and results merge in chunk order, so every
    backend produces the identical (ASN-sorted) mapping.

    Lifetimes whose first observation falls on a registry's very first
    delegation file are *left-censored*: the ASN was allocated before
    files existed (registration dates reach back to 1992, Appendix A),
    so the lifetime is back-dated to its registration date.  Without
    this, every pre-2004 network active at the window edge would be
    misclassified as a §6.2 "operational life starting before the
    allocation".
    """
    executor = resolve_executor(executor)
    first_file_day = {
        registry: view.first_day for registry, view in restored.views.items()
    }
    items = sorted(restored.stints.items())
    chunks = chunked(items, chunk_size)
    results = executor.map(
        _admin_chunk_task,
        [(chunk, restored.end_day, first_file_day) for chunk in chunks],
    )
    out: Dict[ASN, List[AdminLifetime]] = {}
    for result in results:
        out.update(result)
    return out
