"""JSON dataset I/O in the paper's published schema (Listing 1).

The paper publishes two JSON datasets — administrative and operational
lifetimes — for other works to build on.  These helpers write and read
the same shape, so our datasets are drop-in comparable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Union

from ..asn.numbers import ASN
from ..timeline.dates import from_iso
from .records import AdminLifetime, BgpLifetime

__all__ = [
    "dump_admin_dataset",
    "dump_bgp_dataset",
    "load_admin_dataset",
    "load_bgp_dataset",
]

PathLike = Union[str, Path]


def dump_admin_dataset(
    lifetimes: Mapping[ASN, Sequence[AdminLifetime]], path: PathLike
) -> int:
    """Write the administrative dataset; returns the record count."""
    records = [
        life.to_json_dict()
        for asn in sorted(lifetimes)
        for life in lifetimes[asn]
    ]
    Path(path).write_text(json.dumps(records, indent=1) + "\n")
    return len(records)


def dump_bgp_dataset(
    lifetimes: Mapping[ASN, Sequence[BgpLifetime]], path: PathLike
) -> int:
    """Write the operational dataset; returns the record count."""
    records = [
        life.to_json_dict()
        for asn in sorted(lifetimes)
        for life in lifetimes[asn]
    ]
    Path(path).write_text(json.dumps(records, indent=1) + "\n")
    return len(records)


def load_admin_dataset(path: PathLike) -> Dict[ASN, List[AdminLifetime]]:
    """Read an administrative dataset written by :func:`dump_admin_dataset`.

    Round-tripping loses the enrichment fields (country, org, transfer
    chain) that the published schema does not carry; ``registries``
    collapses to the single ``registry`` field.
    """
    out: Dict[ASN, List[AdminLifetime]] = {}
    for row in json.loads(Path(path).read_text()):
        life = AdminLifetime(
            asn=int(row["ASN"]),
            start=from_iso(row["startdate"]),
            end=from_iso(row["enddate"]),
            reg_date=from_iso(row["regDate"]),
            registries=(row["registry"],),
        )
        out.setdefault(life.asn, []).append(life)
    for lives in out.values():
        lives.sort(key=lambda l: l.start)
    return out


def load_bgp_dataset(path: PathLike) -> Dict[ASN, List[BgpLifetime]]:
    """Read an operational dataset written by :func:`dump_bgp_dataset`."""
    out: Dict[ASN, List[BgpLifetime]] = {}
    for row in json.loads(Path(path).read_text()):
        life = BgpLifetime(
            asn=int(row["ASN"]),
            start=from_iso(row["startdate"]),
            end=from_iso(row["enddate"]),
        )
        out.setdefault(life.asn, []).append(life)
    for lives in out.values():
        lives.sort(key=lambda l: l.start)
    return out
