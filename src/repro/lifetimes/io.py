"""JSON dataset I/O in the paper's published schema (Listing 1).

The paper publishes two JSON datasets — administrative and operational
lifetimes — for other works to build on.  These helpers write and read
the same shape, so our datasets are drop-in comparable.

Writes are atomic (unique temp file + ``os.replace``), so a crash mid
export can never leave a torn half-dataset where a consumer expects a
valid one — at worst the previous complete file survives.  Reads fail
with a typed :class:`DatasetIOError` naming the file and the defect,
instead of leaking a bare ``KeyError``/``JSONDecodeError`` from deep
inside the parser.
"""

from __future__ import annotations

import itertools
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Union

from ..asn.numbers import ASN
from ..timeline.dates import from_iso
from .records import AdminLifetime, BgpLifetime

__all__ = [
    "DatasetIOError",
    "dump_admin_dataset",
    "dump_bgp_dataset",
    "load_admin_dataset",
    "load_bgp_dataset",
]

PathLike = Union[str, Path]

#: Uniquifier for temp names: pid alone collides across threads.
_UNIQUE = itertools.count()


class DatasetIOError(ValueError):
    """A dataset file could not be parsed into lifetime records."""


def _atomic_write_text(path: PathLike, text: str) -> None:
    """Write a file atomically; on failure, no partial file remains."""
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}.{next(_UNIQUE)}")
    try:
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _load_rows(path: PathLike, dataset: str) -> List[Dict[str, Any]]:
    try:
        rows = json.loads(Path(path).read_text(encoding="utf-8"))
    except ValueError as exc:
        raise DatasetIOError(
            f"{dataset} dataset {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(rows, list):
        raise DatasetIOError(
            f"{dataset} dataset {path} must be a JSON array of records, "
            f"got {type(rows).__name__}"
        )
    return rows


def dump_admin_dataset(
    lifetimes: Mapping[ASN, Sequence[AdminLifetime]], path: PathLike
) -> int:
    """Write the administrative dataset; returns the record count."""
    records = [
        life.to_json_dict()
        for asn in sorted(lifetimes)
        for life in lifetimes[asn]
    ]
    _atomic_write_text(path, json.dumps(records, indent=1) + "\n")
    return len(records)


def dump_bgp_dataset(
    lifetimes: Mapping[ASN, Sequence[BgpLifetime]], path: PathLike
) -> int:
    """Write the operational dataset; returns the record count."""
    records = [
        life.to_json_dict()
        for asn in sorted(lifetimes)
        for life in lifetimes[asn]
    ]
    _atomic_write_text(path, json.dumps(records, indent=1) + "\n")
    return len(records)


def load_admin_dataset(path: PathLike) -> Dict[ASN, List[AdminLifetime]]:
    """Read an administrative dataset written by :func:`dump_admin_dataset`.

    Round-tripping loses the enrichment fields (country, org, transfer
    chain) that the published schema does not carry; ``registries``
    collapses to the single ``registry`` field.
    """
    out: Dict[ASN, List[AdminLifetime]] = {}
    for i, row in enumerate(_load_rows(path, "administrative")):
        try:
            life = AdminLifetime(
                asn=int(row["ASN"]),
                start=from_iso(row["startdate"]),
                end=from_iso(row["enddate"]),
                reg_date=from_iso(row["regDate"]),
                registries=(row["registry"],),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetIOError(
                f"administrative dataset {path}: record {i} is malformed "
                f"({type(exc).__name__}: {exc})"
            ) from exc
        out.setdefault(life.asn, []).append(life)
    for lives in out.values():
        lives.sort(key=lambda l: l.start)
    return out


def load_bgp_dataset(path: PathLike) -> Dict[ASN, List[BgpLifetime]]:
    """Read an operational dataset written by :func:`dump_bgp_dataset`."""
    out: Dict[ASN, List[BgpLifetime]] = {}
    for i, row in enumerate(_load_rows(path, "operational")):
        try:
            life = BgpLifetime(
                asn=int(row["ASN"]),
                start=from_iso(row["startdate"]),
                end=from_iso(row["enddate"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetIOError(
                f"operational dataset {path}: record {i} is malformed "
                f"({type(exc).__name__}: {exc})"
            ) from exc
        out.setdefault(life.asn, []).append(life)
    for lives in out.values():
        lives.sort(key=lambda l: l.start)
    return out
