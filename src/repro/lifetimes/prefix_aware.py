"""Prefix-aware operational lifetime segmentation (§8's improvement).

The paper's limitation section notes that its 30-day inactivity
timeout is blind to *what* an ASN announces: "Using prefixes, we could
consider both the inactivity period and the prefixes announced by the
ASN to decide whether to start a new operational lifespan or not."

This module implements that refinement.  Activity comes as per-day
announced prefix sets; two activity bursts merge into one lifetime only
if the gap is short **and** the announced prefixes look like the same
network (Jaccard similarity above a threshold).  A squatter reviving a
dormant ASN with entirely different prefixes therefore starts a new
lifetime even after a short gap — precisely the §6.1.2 disambiguation
the paper wants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Sequence

from ..asn.numbers import ASN
from ..net.prefix import Prefix
from ..timeline.dates import Day
from .records import BgpLifetime

__all__ = [
    "PrefixedLifetime",
    "jaccard",
    "segment_prefix_aware",
    "build_prefix_aware_lifetimes",
]

PrefixSet = FrozenSet[Prefix]


def jaccard(a: PrefixSet, b: PrefixSet) -> float:
    """Jaccard similarity of two prefix sets (1.0 for two empty sets)."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 1.0


@dataclass(frozen=True)
class PrefixedLifetime:
    """An operational lifetime annotated with its announced prefixes."""

    asn: ASN
    start: Day
    end: Day
    prefixes: PrefixSet

    @property
    def duration(self) -> int:
        return self.end - self.start + 1

    def to_bgp_lifetime(self, *, end_day: Day, timeout: int) -> BgpLifetime:
        return BgpLifetime(
            asn=self.asn,
            start=self.start,
            end=self.end,
            open_ended=self.end >= end_day - timeout,
        )


def segment_prefix_aware(
    asn: ASN,
    daily_prefixes: Mapping[Day, PrefixSet],
    *,
    timeout: int = 30,
    similarity_threshold: float = 0.2,
) -> List[PrefixedLifetime]:
    """Segment per-day prefix announcements into lifetimes.

    Consecutive active days always belong together.  Across a gap of
    1..``timeout`` days, the burst merges into the running lifetime
    only when the Jaccard similarity between the lifetime's accumulated
    prefixes and the new burst's first-day prefixes reaches
    ``similarity_threshold``; longer gaps always split, as in §4.2.
    """
    if timeout < 0:
        raise ValueError("timeout must be >= 0")
    days = sorted(d for d, prefixes in daily_prefixes.items() if prefixes)
    if not days:
        return []
    lifetimes: List[PrefixedLifetime] = []
    start = prev = days[0]
    seen: set = set(daily_prefixes[days[0]])
    for day in days[1:]:
        gap = day - prev - 1
        if gap == 0:
            seen |= daily_prefixes[day]
            prev = day
            continue
        similar = jaccard(frozenset(seen), frozenset(daily_prefixes[day]))
        if gap <= timeout and similar >= similarity_threshold:
            seen |= daily_prefixes[day]
            prev = day
            continue
        lifetimes.append(
            PrefixedLifetime(asn=asn, start=start, end=prev,
                             prefixes=frozenset(seen))
        )
        start = prev = day
        seen = set(daily_prefixes[day])
    lifetimes.append(
        PrefixedLifetime(asn=asn, start=start, end=prev, prefixes=frozenset(seen))
    )
    return lifetimes


def build_prefix_aware_lifetimes(
    daily_prefixes_by_asn: Mapping[ASN, Mapping[Day, PrefixSet]],
    *,
    timeout: int = 30,
    similarity_threshold: float = 0.2,
    end_day: Day,
) -> Dict[ASN, List[BgpLifetime]]:
    """Prefix-aware lifetimes for a population, in the standard shape.

    Drop-in alternative to
    :func:`repro.lifetimes.bgp.build_bgp_lifetimes` when per-day prefix
    sets are available (the message-level path provides them).
    """
    out: Dict[ASN, List[BgpLifetime]] = {}
    for asn, daily in daily_prefixes_by_asn.items():
        segments = segment_prefix_aware(
            asn, daily, timeout=timeout,
            similarity_threshold=similarity_threshold,
        )
        if segments:
            out[asn] = [
                s.to_bgp_lifetime(end_day=end_day, timeout=timeout)
                for s in segments
            ]
    return out


def daily_prefixes_from_elements(
    elements_by_day: Mapping[Day, Sequence],
) -> Dict[ASN, Dict[Day, PrefixSet]]:
    """Per-ASN per-day announced prefix sets from element streams.

    Only *origination* counts: the prefix belongs to the path's origin,
    not to the transit hops.
    """
    out: Dict[ASN, Dict[Day, set]] = {}
    for day, elements in elements_by_day.items():
        for element in elements:
            origin = element.origin
            if origin is None:
                continue
            out.setdefault(origin, {}).setdefault(day, set()).add(element.prefix)
    return {
        asn: {day: frozenset(prefixes) for day, prefixes in daily.items()}
        for asn, daily in out.items()
    }
