"""§4.2 operational (BGP) lifetime construction.

Daily activity observations are segmented into lifetimes with an
inactivity timeout: an ASN starts a new operational lifespan only after
more than ``timeout`` days (the paper picks 30) without being seen.

Activity comes in two layers, mirroring the 2-peer visibility rule:
``observed`` days (seen by at least two distinct collector peers after
sanitization) and ``single_peer`` days (seen by exactly one peer —
potential spurious data).  The paper's configuration uses only the
former; the ablation benchmark flips ``min_peers`` to 1 to measure what
the rule protects against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..asn.numbers import ASN
from ..bgp.activity import (
    DEFAULT_DAY_CHUNK,
    DEFAULT_REBUILD_FRACTION,
    build_world_activity_tables,
)
from ..bgp.messages import BgpElement
from ..bgp.records import (
    RECORDS_DAY_CHUNK,
    RecordSet,
    encode_world_records,
    records_day_classes,
    sanitize_reasons,
    sanitize_stats,
)
from ..bgp.sanitize import SanitizeStats, sanitize
from ..bgp.stream import SyntheticBgpStream
from ..bgp.visibility import peer_visibility
from ..runtime.cache import (
    ACTIVITY_TABLE_VERSION,
    BGP_RECORDS_VERSION,
    ArtifactCache,
)
from ..runtime.executor import (
    DEFAULT_CHUNK_SIZE,
    ExecutorSpec,
    chunked,
    resolve_executor,
)
from ..runtime.ledger import record_boundary
from ..runtime.profiling import PipelineStats
from ..timeline.dates import Day
from ..timeline.intervals import IntervalSet
from .records import BgpLifetime

__all__ = [
    "DEFAULT_TIMEOUT",
    "OperationalActivity",
    "build_bgp_lifetimes",
    "build_operational_dataset",
    "lifetimes_from_activity",
    "activity_from_elements",
]

#: The paper's BGP inactivity timeout (days).
DEFAULT_TIMEOUT = 30


def _attach(span, ledger_summary) -> None:
    """Put a boundary summary on a stage span (no-op when disabled)."""
    if ledger_summary is not None:
        span.set_attr("ledger", ledger_summary)


@dataclass
class OperationalActivity:
    """Per-ASN daily visibility, split by peer-visibility class."""

    asn: ASN
    observed: IntervalSet = field(default_factory=IntervalSet)
    single_peer: IntervalSet = field(default_factory=IntervalSet)

    def active_days(self, *, min_peers: int = 2) -> IntervalSet:
        """Days counting as active under a visibility threshold."""
        if min_peers < 1:
            raise ValueError("min_peers must be at least 1")
        if min_peers == 1:
            return self.observed.union(self.single_peer)
        return self.observed


def lifetimes_from_activity(
    asn: ASN,
    days: IntervalSet,
    *,
    timeout: int = DEFAULT_TIMEOUT,
    end_day: Day,
) -> List[BgpLifetime]:
    """Segment one ASN's active days into operational lifetimes."""
    segments = days.merge_gaps(timeout)
    return [
        BgpLifetime(
            asn=asn,
            start=iv.start,
            end=iv.end,
            open_ended=iv.end >= end_day - timeout,
        )
        for iv in segments
    ]


def _bgp_chunk_task(
    payload: Tuple[List[Tuple[ASN, OperationalActivity]], int, int, Day],
) -> List[Tuple[ASN, List[BgpLifetime]]]:
    """Segment one contiguous chunk of per-ASN activities.

    Module-level (picklable) and pure in its payload, like every
    pipeline fan-out task.
    """
    items, timeout, min_peers, end_day = payload
    out: List[Tuple[ASN, List[BgpLifetime]]] = []
    silent = 0
    for asn, activity in items:
        days = activity.active_days(min_peers=min_peers)
        if not days:
            silent += 1
            continue
        out.append(
            (asn, lifetimes_from_activity(asn, days, timeout=timeout, end_day=end_day))
        )
    # one aggregate ledger emission per chunk (never per record): every
    # activity table either yields lifetimes or is silent at this
    # min_peers threshold
    record_boundary(
        "bgp:segment",
        records_in=len(items),
        kept=len(out),
        dropped={"no_active_days": silent},
    )
    return out


def build_bgp_lifetimes(
    activities: Mapping[ASN, OperationalActivity],
    *,
    timeout: int = DEFAULT_TIMEOUT,
    min_peers: int = 2,
    end_day: Day,
    executor: ExecutorSpec = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Dict[ASN, List[BgpLifetime]]:
    """Operational lifetimes for every active ASN.

    A lifetime is ``open_ended`` when it could still be running: its
    last activity falls within ``timeout`` days of the window end, so
    the segmentation cannot yet declare it over.

    Per-ASN segmentation is independent, so the work fans out over
    ASN-sorted chunks under any backend; the merged mapping is
    ASN-sorted and identical across backends (see DESIGN.md).
    """
    executor = resolve_executor(executor)
    items = sorted(activities.items())
    chunks = chunked(items, chunk_size)
    results = executor.map(
        _bgp_chunk_task,
        [(chunk, timeout, min_peers, end_day) for chunk in chunks],
    )
    out: Dict[ASN, List[BgpLifetime]] = {}
    for result in results:
        out.update(result)
    return out


def _object_stream_tables(
    world,
    start: Day,
    end: Day,
    min_corroboration: int,
    stats: PipelineStats,
) -> Dict[ASN, OperationalActivity]:
    """The object-stream baseline: one day at a time, element objects.

    Algorithmically identical to streaming every day through
    :func:`repro.bgp.sanitize.sanitize` + :func:`activity_from_elements`
    (whose equivalence the property tests pin), but processed day by day
    so the window's elements never coexist in memory, and with the
    stream/sanitize/visibility stage costs timed separately.
    """
    stream = SyntheticBgpStream(
        world.topology, world.collectors, world.announcements_for_day
    )
    san_stats = SanitizeStats()
    observed_days: Dict[ASN, List[Day]] = {}
    single_days: Dict[ASN, List[Day]] = {}
    stream_seconds = sanitize_seconds = visibility_seconds = 0.0
    for day in range(start, end + 1):
        t0 = perf_counter()
        raw = list(stream.elements_for_day(day))
        t1 = perf_counter()
        kept = list(sanitize(raw, san_stats))
        t2 = perf_counter()
        for asn, peers in peer_visibility(kept).items():
            npeers = len(peers)
            if npeers >= min_corroboration:
                observed_days.setdefault(asn, []).append(day)
            elif npeers == 1:
                single_days.setdefault(asn, []).append(day)
        t3 = perf_counter()
        stream_seconds += t1 - t0
        sanitize_seconds += t2 - t1
        visibility_seconds += t3 - t2
    t0 = perf_counter()
    tables = {
        asn: OperationalActivity(
            asn=asn,
            observed=IntervalSet.from_sorted_days(observed_days.get(asn, [])),
            single_peer=IntervalSet.from_sorted_days(single_days.get(asn, [])),
        )
        for asn in set(observed_days) | set(single_days)
    }
    visibility_seconds += perf_counter() - t0
    span = stats.record("bgp:stream", stream_seconds, items=end - start + 1,
                        component="bgp", engine="object")
    _attach(span, record_boundary(
        "bgp:stream",
        records_in=san_stats.total_seen,
        kept=san_stats.total_seen,
        metrics=stats.metrics,
    ))
    span = stats.record("bgp:sanitize", sanitize_seconds,
                        items=san_stats.total_seen,
                        component="bgp", engine="object")
    _attach(span, record_boundary(
        "bgp:sanitize",
        records_in=san_stats.total_seen,
        kept=san_stats.kept,
        dropped=san_stats.dropped,
        metrics=stats.metrics,
    ))
    span = stats.record("bgp:visibility", visibility_seconds,
                        items=len(tables),
                        component="bgp", engine="object")
    # ASN-day conservation: every day bucketed per ASN must reappear in
    # exactly one interval of the built activity tables
    _attach(span, record_boundary(
        "bgp:visibility",
        records_in=sum(len(d) for d in observed_days.values())
        + sum(len(d) for d in single_days.values()),
        routed={
            "observed": sum(
                t.observed.total_days for t in tables.values()
            ),
            "single_peer": sum(
                t.single_peer.total_days for t in tables.values()
            ),
        },
        metrics=stats.metrics,
    ))
    stats.metrics.inc("bgp.elements", san_stats.total_seen)
    return tables


def _obtain_records(
    world,
    start: Day,
    end: Day,
    cache: Optional[ArtifactCache],
    records_path: Optional[Path],
) -> Tuple[RecordSet, str]:
    """Get the window's packed record set: mmap, cache, or encode.

    Priority: an existing ``records_path`` container is memory-mapped
    as-is; otherwise a verified raw cache entry is memory-mapped;
    otherwise the window is encoded once and persisted to whichever of
    the two destinations exist (the cached artifact file doubles as the
    mmap fan-out backing file).  Returns ``(record_set, source)`` with
    ``source`` one of ``"mmap"``/``"cache"``/``"encoded"``.
    """
    if records_path is not None:
        records_path = Path(records_path)
        if records_path.exists():
            return RecordSet.from_file(records_path), "mmap"
    key: Optional[str] = None
    if cache is not None:
        # min_corroboration is deliberately outside this key: records
        # are the pre-visibility element encoding, so one artifact
        # serves every threshold
        key = cache.key_for(
            artifact="bgp-records",
            records_version=BGP_RECORDS_VERSION,
            config=world.config,
            start=start,
            end=end,
        )
        cached = cache.load_raw_path(key)
        if cached is not None:
            rs = RecordSet.from_file(cached)
            if records_path is not None:
                rs.to_file(records_path)
            return rs, "cache"
    rs = encode_world_records(world, start, end)
    if records_path is not None:
        rs.to_file(records_path)
        rs.source = records_path
    if cache is not None and key is not None:
        stored = cache.store_raw(key, rs.to_bytes())
        if stored is not None and rs.source is None:
            rs.source = stored
    return rs, "encoded"


def _records_tables(
    world,
    start: Day,
    end: Day,
    min_corroboration: int,
    stats: PipelineStats,
    executor,
    cache: Optional[ArtifactCache],
    records_path: Optional[Path],
    records_fanout: str,
    day_chunk: int,
) -> Dict[ASN, OperationalActivity]:
    """The vectorized engine: packed columns, masks, mmap fan-out.

    Same three stage spans and ledger boundaries as the object baseline
    — ``bgp:stream`` is the encode (or zero-copy re-open), ``bgp:
    sanitize`` one vectorized mask pass, ``bgp:visibility`` the chunked
    per-day classification — so dashboards, the perf gate and
    ``check_ledger`` see the same shape whichever engine ran.
    """
    t0 = perf_counter()
    rs, source = _obtain_records(world, start, end, cache, records_path)
    if cache is not None:
        stats.drain_events_from(cache)
    span = stats.record("bgp:stream", perf_counter() - t0, items=len(rs),
                        component="bgp", engine="records", source=source)
    _attach(span, record_boundary(
        "bgp:stream",
        records_in=len(rs),
        kept=len(rs),
        metrics=stats.metrics,
    ))

    t0 = perf_counter()
    reasons = sanitize_reasons(rs)
    san_stats = sanitize_stats(reasons)
    span = stats.record("bgp:sanitize", perf_counter() - t0,
                        items=san_stats.total_seen,
                        component="bgp", engine="records")
    _attach(span, record_boundary(
        "bgp:sanitize",
        records_in=san_stats.total_seen,
        kept=san_stats.kept,
        dropped=san_stats.dropped,
        metrics=stats.metrics,
    ))

    t0 = perf_counter()
    run = records_day_classes(
        rs,
        min_corroboration=min_corroboration,
        executor=executor,
        day_chunk=day_chunk,
        fanout=records_fanout,
    )
    observed_days: Dict[ASN, List[Day]] = {}
    single_days: Dict[ASN, List[Day]] = {}
    # triples arrive day-ascending (chunk order), so per-ASN day lists
    # come out pre-sorted for interval construction
    for asn, day, cls in zip(
        run.asns.tolist(), run.days.tolist(), run.classes.tolist()
    ):
        bucket = observed_days if cls == 2 else single_days
        bucket.setdefault(asn, []).append(day)
    tables = {
        asn: OperationalActivity(
            asn=asn,
            observed=IntervalSet.from_sorted_days(observed_days.get(asn, [])),
            single_peer=IntervalSet.from_sorted_days(single_days.get(asn, [])),
        )
        for asn in set(observed_days) | set(single_days)
    }
    span = stats.record("bgp:visibility", perf_counter() - t0,
                        items=len(tables),
                        component="bgp", engine="records",
                        chunks=run.chunks, fanout=run.fanout)
    # ASN-day conservation: every classified (ASN, day) bucket must
    # reappear in exactly one interval of the built tables
    _attach(span, record_boundary(
        "bgp:visibility",
        records_in=len(run.asns),
        routed={
            "observed": sum(t.observed.total_days for t in tables.values()),
            "single_peer": sum(
                t.single_peer.total_days for t in tables.values()
            ),
        },
        metrics=stats.metrics,
    ))
    stats.metrics.inc("bgp.elements", len(rs))
    stats.metrics.inc("bgp.records_chunks", run.chunks)
    return tables


def build_operational_dataset(
    world,
    *,
    start: Optional[Day] = None,
    end: Optional[Day] = None,
    timeout: int = DEFAULT_TIMEOUT,
    min_peers: int = 2,
    min_corroboration: int = 2,
    engine: str = "columnar",
    executor: ExecutorSpec = None,
    cache: Union[ArtifactCache, str, Path, None] = None,
    cache_verify: str = "sha256",
    stats: Optional[PipelineStats] = None,
    day_chunk: Optional[int] = None,
    full_rebuild_fraction: float = DEFAULT_REBUILD_FRACTION,
    records_path: Union[str, Path, None] = None,
    records_fanout: str = "auto",
) -> Tuple[Dict[ASN, List[BgpLifetime]], Dict[ASN, OperationalActivity]]:
    """Message-level §3.2→§4.2: activity tables plus operational lives.

    Rebuilds per-ASN :class:`OperationalActivity` from the BGP message
    stream of ``world`` over ``[start, end]`` and segments it into
    lifetimes.  ``engine`` selects how the tables are built:

    ``"columnar"``
        The incremental engine (:mod:`repro.bgp.activity`): interned
        paths, peer-bitset counters, day diffing, executor fan-out over
        fixed day chunks.
    ``"records"``
        The vectorized engine (:mod:`repro.bgp.records`): the window's
        elements packed once into the ``bgp-records/v1`` columnar
        format (cached as a raw artifact and memory-mapped on later
        runs — ``records_path`` pins the container to an explicit
        file), sanitize/visibility as batch array ops, ``process:N``
        fan-out over ``(path, offset, length)`` mmap slices
        (``records_fanout``: ``"auto"``/``"mmap"``/``"pickle"``).
    ``"object"``
        The per-element baseline: one :class:`~repro.bgp.messages.
        BgpElement` per (collector, peer, announcement) per day.

    All engines produce byte-identical tables (and therefore
    byte-identical lifetimes); when ``cache`` is given, the tables are
    stored as an ``activity-table`` artifact keyed on the world config,
    the window and ``min_corroboration`` — *not* the engine — so a warm
    hit skips the stream/sanitize/visibility stages entirely, whichever
    engine ran first.  ``timeout``/``min_peers`` only shape the cheap
    segmentation stage and are deliberately outside the key.
    ``cache_verify`` selects the integrity mode when ``cache`` is a
    path (``"sha256"`` manifests, or ``"off"``).  ``day_chunk=None``
    picks each engine's tuned fan-out chunk (columnar: 512 days,
    records: 7); either way the chunking is a fixed constant, so
    output never depends on the executor.

    Returns ``(op_lives, tables)``.
    """
    if engine not in ("columnar", "object", "records"):
        raise ValueError(f"unknown BGP activity engine {engine!r}")
    start = world.config.start_day if start is None else start
    end = world.config.end_day if end is None else end
    if stats is None:
        stats = PipelineStats()
    if cache is not None and not isinstance(cache, ArtifactCache):
        cache = ArtifactCache(cache, verify=cache_verify)
    # resolve once so both the table build and the segmentation share
    # one pool, and retry/degradation events have a single source
    spec = executor
    executor = resolve_executor(spec)
    owns_executor = executor is not spec
    executor.instrument(stats.tracer, stats.metrics)

    try:
        tables: Optional[Dict[ASN, OperationalActivity]] = None
        key: Optional[str] = None
        if cache is not None:
            key = cache.key_for(
                artifact="activity-table",
                table_version=ACTIVITY_TABLE_VERSION,
                config=world.config,
                start=start,
                end=end,
                min_corroboration=min_corroboration,
            )
            with stats.stage("cache:lookup", component="cache") as timing:
                tables = cache.load(key)
                if tables is not None:
                    timing.items = len(tables)
                    timing.set_attr("cache", "hit")
                else:
                    timing.set_attr("cache", "miss")
            stats.drain_events_from(cache)

        if tables is None:
            if engine == "columnar":
                tables, report = build_world_activity_tables(
                    world,
                    start=start,
                    end=end,
                    min_corroboration=min_corroboration,
                    executor=executor,
                    day_chunk=(DEFAULT_DAY_CHUNK if day_chunk is None
                               else day_chunk),
                    full_rebuild_fraction=full_rebuild_fraction,
                )
                span = stats.record("bgp:stream", report.stream_seconds,
                                    items=report.changed_days,
                                    component="bgp", engine="columnar")
                _attach(span, record_boundary(
                    "bgp:stream",
                    records_in=report.elements,
                    kept=report.elements,
                    metrics=stats.metrics,
                ))
                span = stats.record("bgp:sanitize", report.sanitize_seconds,
                                    items=report.elements,
                                    component="bgp", engine="columnar")
                _attach(span, record_boundary(
                    "bgp:sanitize",
                    records_in=report.elements,
                    kept=report.kept,
                    dropped=report.dropped,
                    metrics=stats.metrics,
                ))
                span = stats.record("bgp:visibility", report.visibility_seconds,
                                    items=report.chunks,
                                    component="bgp", engine="columnar")
                # ASN-day conservation across the chunk-run merge: the
                # coalescing join must neither lose nor invent days
                _attach(span, record_boundary(
                    "bgp:visibility",
                    records_in=sum(report.class_days_in.values()),
                    routed=report.class_days,
                    metrics=stats.metrics,
                ))
                stats.metrics.inc("bgp.elements", report.elements)
                stats.metrics.inc("bgp.contributions", report.contributions)
                stats.metrics.inc("bgp.rebuilds", report.rebuilds)
            elif engine == "records":
                tables = _records_tables(
                    world,
                    start,
                    end,
                    min_corroboration,
                    stats,
                    executor,
                    cache,
                    Path(records_path) if records_path is not None else None,
                    records_fanout,
                    RECORDS_DAY_CHUNK if day_chunk is None else day_chunk,
                )
            else:
                tables = _object_stream_tables(
                    world, start, end, min_corroboration, stats
                )
            if cache is not None and key is not None:
                with stats.stage(
                    "cache:store", items=len(tables), component="cache"
                ):
                    cache.store(key, tables)
                stats.drain_events_from(cache)

        with stats.stage(
            "bgp:segment", component="bgp", engine=engine
        ) as timing:
            op_lives = build_bgp_lifetimes(
                tables,
                timeout=timeout,
                min_peers=min_peers,
                end_day=end,
                executor=executor,
            )
            timing.items = len(op_lives)
    finally:
        stats.drain_events_from(executor)
        if owns_executor:
            executor.close()
    return op_lives, tables


def activity_from_elements(
    elements_by_day: Mapping[Day, Iterable[BgpElement]],
    *,
    min_corroboration: int = 2,
) -> Dict[ASN, OperationalActivity]:
    """Build activity from message-level (sanitized) element streams.

    This is the slow, file-faithful path: per day, every ASN appearing
    in paths is bucketed by how many distinct peers shared it.  The
    fast path (the simulation emitting activity directly) is
    equivalence-tested against this in the integration tests.
    """
    out: Dict[ASN, OperationalActivity] = {}
    observed_days: Dict[ASN, List[Day]] = {}
    single_days: Dict[ASN, List[Day]] = {}
    # ascending day order makes the per-ASN day lists pre-sorted, so
    # interval construction below skips its sort pass
    for day in sorted(elements_by_day):
        for asn, peers in peer_visibility(elements_by_day[day]).items():
            if len(peers) >= min_corroboration:
                observed_days.setdefault(asn, []).append(day)
            elif len(peers) == 1:
                single_days.setdefault(asn, []).append(day)
    for asn in set(observed_days) | set(single_days):
        out[asn] = OperationalActivity(
            asn=asn,
            observed=IntervalSet.from_sorted_days(observed_days.get(asn, [])),
            single_peer=IntervalSet.from_sorted_days(single_days.get(asn, [])),
        )
    return out
