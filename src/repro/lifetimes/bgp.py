"""§4.2 operational (BGP) lifetime construction.

Daily activity observations are segmented into lifetimes with an
inactivity timeout: an ASN starts a new operational lifespan only after
more than ``timeout`` days (the paper picks 30) without being seen.

Activity comes in two layers, mirroring the 2-peer visibility rule:
``observed`` days (seen by at least two distinct collector peers after
sanitization) and ``single_peer`` days (seen by exactly one peer —
potential spurious data).  The paper's configuration uses only the
former; the ablation benchmark flips ``min_peers`` to 1 to measure what
the rule protects against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

from ..asn.numbers import ASN
from ..bgp.messages import BgpElement
from ..bgp.visibility import peer_visibility
from ..runtime.executor import (
    DEFAULT_CHUNK_SIZE,
    ExecutorSpec,
    chunked,
    resolve_executor,
)
from ..timeline.dates import Day
from ..timeline.intervals import IntervalSet
from .records import BgpLifetime

__all__ = [
    "DEFAULT_TIMEOUT",
    "OperationalActivity",
    "build_bgp_lifetimes",
    "lifetimes_from_activity",
    "activity_from_elements",
]

#: The paper's BGP inactivity timeout (days).
DEFAULT_TIMEOUT = 30


@dataclass
class OperationalActivity:
    """Per-ASN daily visibility, split by peer-visibility class."""

    asn: ASN
    observed: IntervalSet = field(default_factory=IntervalSet)
    single_peer: IntervalSet = field(default_factory=IntervalSet)

    def active_days(self, *, min_peers: int = 2) -> IntervalSet:
        """Days counting as active under a visibility threshold."""
        if min_peers < 1:
            raise ValueError("min_peers must be at least 1")
        if min_peers == 1:
            return self.observed.union(self.single_peer)
        return self.observed


def lifetimes_from_activity(
    asn: ASN,
    days: IntervalSet,
    *,
    timeout: int = DEFAULT_TIMEOUT,
    end_day: Day,
) -> List[BgpLifetime]:
    """Segment one ASN's active days into operational lifetimes."""
    segments = days.merge_gaps(timeout)
    return [
        BgpLifetime(
            asn=asn,
            start=iv.start,
            end=iv.end,
            open_ended=iv.end >= end_day - timeout,
        )
        for iv in segments
    ]


def _bgp_chunk_task(
    payload: Tuple[List[Tuple[ASN, OperationalActivity]], int, int, Day],
) -> List[Tuple[ASN, List[BgpLifetime]]]:
    """Segment one contiguous chunk of per-ASN activities.

    Module-level (picklable) and pure in its payload, like every
    pipeline fan-out task.
    """
    items, timeout, min_peers, end_day = payload
    out: List[Tuple[ASN, List[BgpLifetime]]] = []
    for asn, activity in items:
        days = activity.active_days(min_peers=min_peers)
        if not days:
            continue
        out.append(
            (asn, lifetimes_from_activity(asn, days, timeout=timeout, end_day=end_day))
        )
    return out


def build_bgp_lifetimes(
    activities: Mapping[ASN, OperationalActivity],
    *,
    timeout: int = DEFAULT_TIMEOUT,
    min_peers: int = 2,
    end_day: Day,
    executor: ExecutorSpec = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Dict[ASN, List[BgpLifetime]]:
    """Operational lifetimes for every active ASN.

    A lifetime is ``open_ended`` when it could still be running: its
    last activity falls within ``timeout`` days of the window end, so
    the segmentation cannot yet declare it over.

    Per-ASN segmentation is independent, so the work fans out over
    ASN-sorted chunks under any backend; the merged mapping is
    ASN-sorted and identical across backends (see DESIGN.md).
    """
    executor = resolve_executor(executor)
    items = sorted(activities.items())
    chunks = chunked(items, chunk_size)
    results = executor.map(
        _bgp_chunk_task,
        [(chunk, timeout, min_peers, end_day) for chunk in chunks],
    )
    out: Dict[ASN, List[BgpLifetime]] = {}
    for result in results:
        out.update(result)
    return out


def activity_from_elements(
    elements_by_day: Mapping[Day, Iterable[BgpElement]],
    *,
    min_corroboration: int = 2,
) -> Dict[ASN, OperationalActivity]:
    """Build activity from message-level (sanitized) element streams.

    This is the slow, file-faithful path: per day, every ASN appearing
    in paths is bucketed by how many distinct peers shared it.  The
    fast path (the simulation emitting activity directly) is
    equivalence-tested against this in the integration tests.
    """
    out: Dict[ASN, OperationalActivity] = {}
    observed_days: Dict[ASN, List[Day]] = {}
    single_days: Dict[ASN, List[Day]] = {}
    # ascending day order makes the per-ASN day lists pre-sorted, so
    # interval construction below skips its sort pass
    for day in sorted(elements_by_day):
        for asn, peers in peer_visibility(elements_by_day[day]).items():
            if len(peers) >= min_corroboration:
                observed_days.setdefault(asn, []).append(day)
            elif len(peers) == 1:
                single_days.setdefault(asn, []).append(day)
    for asn in set(observed_days) | set(single_days):
        out[asn] = OperationalActivity(
            asn=asn,
            observed=IntervalSet.from_sorted_days(observed_days.get(asn, [])),
            single_peer=IntervalSet.from_sorted_days(single_days.get(asn, [])),
        )
    return out
