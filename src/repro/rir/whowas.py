"""WhoWas: historical queries over expired delegations.

§6.3 leverages ARIN's WhoWas service — "which provides historical
information about expired allocations" — to show that organizations
whose short-lived 32-bit ASN allocations failed came back for 16-bit
numbers.  This module provides the equivalent query service over a
restored delegation history: who held an ASN when, what else an
organization held, and the 32-bit→16-bit retry pattern itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..asn.numbers import ASN, is_16bit, is_32bit_only
from ..lifetimes.records import AdminLifetime
from ..timeline.dates import Day, to_iso

__all__ = ["HoldingRecord", "WhoWas", "Retry32BitFinding"]


@dataclass(frozen=True)
class HoldingRecord:
    """One (organization, ASN, period) holding."""

    asn: ASN
    org_id: Optional[str]
    registry: str
    cc: str
    start: Day
    end: Day
    open_ended: bool

    def describe(self) -> str:
        who = self.org_id or "(unknown org)"
        return (
            f"AS{self.asn} held by {who} [{self.registry}/{self.cc or '??'}] "
            f"{to_iso(self.start)} .. {to_iso(self.end)}"
            + (" (ongoing)" if self.open_ended else "")
        )


@dataclass(frozen=True)
class Retry32BitFinding:
    """A failed 32-bit deployment followed by a 16-bit allocation.

    §6.3: 86% of the organizations behind ARIN's short-lived unused
    32-bit allocations "have been assigned 16-bit ASNs right after the
    end of the previous (short-lived) 32-bit ASN allocation".
    """

    org_id: str
    failed_asn: ASN
    failed_duration: int
    replacement_asn: ASN
    gap_days: int


class WhoWas:
    """Historical delegation query service over a lifetime dataset."""

    def __init__(
        self, admin_lives: Mapping[ASN, Sequence[AdminLifetime]]
    ) -> None:
        self._by_asn: Dict[ASN, List[HoldingRecord]] = {}
        self._by_org: Dict[str, List[HoldingRecord]] = {}
        for asn, lives in admin_lives.items():
            for life in lives:
                record = HoldingRecord(
                    asn=asn,
                    org_id=life.org_id,
                    registry=life.registry,
                    cc=life.cc,
                    start=life.start,
                    end=life.end,
                    open_ended=life.open_ended,
                )
                self._by_asn.setdefault(asn, []).append(record)
                if life.org_id is not None:
                    self._by_org.setdefault(life.org_id, []).append(record)
        for records in self._by_asn.values():
            records.sort(key=lambda r: r.start)
        for records in self._by_org.values():
            records.sort(key=lambda r: r.start)

    # -- lookups -----------------------------------------------------------

    def history_of(self, asn: ASN) -> List[HoldingRecord]:
        """Every holding of one ASN, oldest first."""
        return list(self._by_asn.get(asn, ()))

    def holder_on(self, asn: ASN, day: Day) -> Optional[HoldingRecord]:
        """Who held the ASN on a given day, if anyone."""
        for record in self._by_asn.get(asn, ()):
            if record.start <= day <= record.end:
                return record
        return None

    def holdings_of(self, org_id: str) -> List[HoldingRecord]:
        """Every ASN an organization ever held."""
        return list(self._by_org.get(org_id, ()))

    def expired_holdings(self, *, before: Optional[Day] = None) -> List[HoldingRecord]:
        """All ended holdings (the service's namesake query)."""
        out = [
            record
            for records in self._by_asn.values()
            for record in records
            if not record.open_ended and (before is None or record.end < before)
        ]
        out.sort(key=lambda r: (r.end, r.asn))
        return out

    # -- the §6.3 investigation --------------------------------------------

    def find_32bit_retries(
        self,
        *,
        max_failed_duration: int = 31,
        max_gap_days: int = 120,
        registry: Optional[str] = None,
    ) -> List[Retry32BitFinding]:
        """Organizations whose short 32-bit allocation ended and who
        received a 16-bit ASN shortly after — failed 32-bit deployments.
        """
        findings: List[Retry32BitFinding] = []
        for org_id, records in sorted(self._by_org.items()):
            for failed in records:
                if not is_32bit_only(failed.asn) or failed.open_ended:
                    continue
                duration = failed.end - failed.start + 1
                if duration > max_failed_duration:
                    continue
                if registry is not None and failed.registry != registry:
                    continue
                for replacement in records:
                    if not is_16bit(replacement.asn):
                        continue
                    gap = replacement.start - failed.end
                    if 0 <= gap <= max_gap_days:
                        findings.append(
                            Retry32BitFinding(
                                org_id=org_id,
                                failed_asn=failed.asn,
                                failed_duration=duration,
                                replacement_asn=replacement.asn,
                                gap_days=gap,
                            )
                        )
                        break
        return findings

    def reuse_chain(self, asn: ASN) -> List[Tuple[Optional[str], Day, Day]]:
        """The succession of holders of one ASN, as (org, start, end).

        Makes the §7 point concrete: with both dimensions, "it is
        possible to separate behaviors from different allocations of
        the same ASN".
        """
        return [
            (record.org_id, record.start, record.end)
            for record in self._by_asn.get(asn, ())
        ]
