"""Core data model for RIR delegation data.

Five Regional Internet Registries manage AS-number delegations (§2).
Each publishes daily "delegation files" listing the status of the
resources it is responsible for.  Two formats exist:

* the **regular** format (2004-) lists only *delegated* resources
  (status ``allocated``/``assigned``);
* the **extended** format (2008-2013 onward depending on the RIR) lists
  the registry's whole pool — ``available`` and ``reserved`` resources
  too — and adds an ``opaque_id`` identifying the holding organization
  within the file.

This module defines the record/snapshot value types shared by the
format codecs, the registry state machine, the pitfall injector, and
the restoration pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..asn.numbers import ASN
from ..timeline.dates import Day, from_iso, to_iso

__all__ = [
    "RIR_NAMES",
    "FIRST_REGULAR_FILE",
    "FIRST_EXTENDED_FILE",
    "ARIN_REGULAR_STOP",
    "Status",
    "DelegationRecord",
    "DelegationSnapshot",
]

#: Canonical lowercase registry identifiers, as used inside the files.
RIR_NAMES: Tuple[str, ...] = ("afrinic", "apnic", "arin", "lacnic", "ripencc")

#: First day a regular delegation file exists per RIR (paper Table 1).
FIRST_REGULAR_FILE: Dict[str, Day] = {
    "afrinic": from_iso("2005-02-18"),
    "apnic": from_iso("2003-10-09"),
    "arin": from_iso("2003-11-20"),
    "lacnic": from_iso("2004-01-01"),
    "ripencc": from_iso("2003-11-26"),
}

#: First day an extended delegation file exists per RIR (paper Table 1).
FIRST_EXTENDED_FILE: Dict[str, Day] = {
    "afrinic": from_iso("2012-10-02"),
    "apnic": from_iso("2008-02-14"),
    "arin": from_iso("2013-03-05"),
    "lacnic": from_iso("2012-06-28"),
    "ripencc": from_iso("2010-04-22"),
}

#: ARIN stopped publishing the regular file after this day (§3.1 fn. 3).
ARIN_REGULAR_STOP: Day = from_iso("2013-08-12")


class Status(enum.Enum):
    """Delegation status of a resource in a delegation file.

    ``ALLOCATED``/``ASSIGNED`` both mean "delegated to an organization";
    the distinction (direct vs. through an LIR) is irrelevant to the
    paper's lifetimes and both are treated as the administrative life
    being *on*.  ``AVAILABLE`` and ``RESERVED`` only appear in extended
    files.
    """

    ALLOCATED = "allocated"
    ASSIGNED = "assigned"
    AVAILABLE = "available"
    RESERVED = "reserved"

    @property
    def is_delegated(self) -> bool:
        """True for statuses that mean "held by an organization"."""
        return self in (Status.ALLOCATED, Status.ASSIGNED)

    @classmethod
    def parse(cls, text: str) -> "Status":
        try:
            return cls(text.strip().lower())
        except ValueError:
            raise ValueError(f"unknown delegation status {text!r}") from None


@dataclass(frozen=True)
class DelegationRecord:
    """One ASN row of a delegation file.

    ``reg_date`` is the registration date field; for ``available``
    records the real files leave it empty (``None`` here).  ``opaque_id``
    is only present in extended files.  ``cc`` is the ISO country code
    of the holding organization (empty for pool resources).
    """

    registry: str
    cc: str
    asn: ASN
    reg_date: Optional[Day]
    status: Status
    opaque_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.registry not in RIR_NAMES:
            raise ValueError(f"unknown registry {self.registry!r}")
        if self.status.is_delegated and self.reg_date is None:
            raise ValueError(f"delegated record for AS{self.asn} lacks a date")

    @property
    def is_delegated(self) -> bool:
        return self.status.is_delegated

    def with_date(self, reg_date: Optional[Day]) -> "DelegationRecord":
        """Copy with a different registration date (restoration step v)."""
        return replace(self, reg_date=reg_date)

    def with_status(self, status: Status) -> "DelegationRecord":
        """Copy with a different status (pitfall/restoration use)."""
        return replace(self, status=status)

    def key_fields(self) -> Tuple[str, str, Optional[Day], str, Optional[str]]:
        """Everything except the ASN, for run-length file compression."""
        return (self.registry, self.cc, self.reg_date, self.status.value, self.opaque_id)

    def describe(self) -> str:
        """Human-readable one-liner for reports and examples."""
        date = to_iso(self.reg_date) if self.reg_date is not None else "-"
        who = f" org={self.opaque_id}" if self.opaque_id else ""
        return f"AS{self.asn} {self.status.value} by {self.registry} ({self.cc or '??'}) reg {date}{who}"


@dataclass
class DelegationSnapshot:
    """The parsed content of one delegation file for one day.

    ``file_day`` is the day in the file header; ``serial`` a publication
    serial (the real files carry one; the §3.1 step (iii) "same day file
    update" tie-break uses the newest header).  ``extended`` tells which
    format the snapshot came from.  ``records`` holds only ASN records —
    the real files also carry IPv4/IPv6 rows, which the codec skips.
    """

    registry: str
    file_day: Day
    extended: bool
    records: List[DelegationRecord]
    serial: int = 0

    def __post_init__(self) -> None:
        if self.registry not in RIR_NAMES:
            raise ValueError(f"unknown registry {self.registry!r}")

    def asns(self) -> List[ASN]:
        """All ASNs mentioned, in file order (may contain duplicates —
        the AfriNIC duplicate-record pitfall of §3.1 step (iv))."""
        return [r.asn for r in self.records]

    def by_asn(self) -> Dict[ASN, List[DelegationRecord]]:
        """Index records by ASN, preserving duplicates."""
        out: Dict[ASN, List[DelegationRecord]] = {}
        for rec in self.records:
            out.setdefault(rec.asn, []).append(rec)
        return out

    def delegated_records(self) -> List[DelegationRecord]:
        """Only the rows with a delegated (allocated/assigned) status."""
        return [r for r in self.records if r.is_delegated]

    def count_by_status(self) -> Dict[Status, int]:
        out: Dict[Status, int] = {}
        for rec in self.records:
            out[rec.status] = out.get(rec.status, 0) + 1
        return out

    def sorted_records(self) -> List[DelegationRecord]:
        """Records in ascending ASN order (canonical file order)."""
        return sorted(self.records, key=lambda r: r.asn)


def summarize_counts(snapshots: Sequence[DelegationSnapshot]) -> Dict[str, int]:
    """Total ASN record count per registry across snapshots."""
    out: Dict[str, int] = {}
    for snap in snapshots:
        out[snap.registry] = out.get(snap.registry, 0) + len(snap.records)
    return out
