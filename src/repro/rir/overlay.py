"""Defect overlay applied on top of clean registry histories.

The §3.1 restoration effort exists because real delegation archives are
imperfect.  We reproduce that imperfection *separably*: registries emit
internally-consistent data, and an :class:`ArchiveOverlay` describes
the corruptions the archive layer applies when materializing files or
timelines.  Because the overlay is explicit, every experiment knows the
ground truth and the restoration pipeline can be scored.

Defect classes map one-to-one onto §3.1:

===========================  ==============================================
overlay primitive            paper defect (§3.1 step that repairs it)
===========================  ==============================================
``missing_days``             file absent from the FTP site (i)
``corrupt_days``             file unreadable/truncated (i)
``record_drops``             groups of ASNs vanishing for a few days (ii)
``stale_days``               regular/extended same-day divergence (iii)
``extra_records``            duplicate/stale/mistaken rows (iv, vi)
``date_overrides``           future/backward/placeholder reg dates (v)
===========================  ==============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..asn.numbers import ASN
from ..timeline.dates import Day
from ..timeline.intervals import Interval
from .model import DelegationRecord

__all__ = ["SourceKey", "REGULAR", "EXTENDED", "ArchiveOverlay"]

#: A data source is one registry's stream of one file kind.
SourceKey = Tuple[str, str]

REGULAR = "regular"
EXTENDED = "extended"


@dataclass
class ArchiveOverlay:
    """All injected defects, keyed by source.

    Instances are normally produced by
    :class:`repro.rir.pitfalls.PitfallInjector`, which also keeps the
    human-readable ground-truth log; building one by hand is supported
    for targeted tests.
    """

    missing_days: Dict[SourceKey, Set[Day]] = field(default_factory=dict)
    corrupt_days: Dict[SourceKey, Set[Day]] = field(default_factory=dict)
    stale_days: Dict[SourceKey, Set[Day]] = field(default_factory=dict)
    record_drops: Dict[SourceKey, Dict[ASN, List[Interval]]] = field(default_factory=dict)
    extra_records: Dict[SourceKey, Dict[ASN, List[Tuple[Interval, DelegationRecord]]]] = (
        field(default_factory=dict)
    )
    date_overrides: Dict[SourceKey, Dict[ASN, List[Tuple[Interval, Optional[Day]]]]] = (
        field(default_factory=dict)
    )

    # -- builders --------------------------------------------------------

    def mark_missing(self, source: SourceKey, day: Day) -> None:
        """The file for ``day`` never made it to the FTP site."""
        self.missing_days.setdefault(source, set()).add(day)

    def mark_corrupt(self, source: SourceKey, day: Day) -> None:
        """The file for ``day`` exists but cannot be parsed."""
        self.corrupt_days.setdefault(source, set()).add(day)

    def mark_stale(self, source: SourceKey, day: Day) -> None:
        """The file for ``day`` was not regenerated: it repeats the
        previous day's content (same-day regular/extended divergence)."""
        self.stale_days.setdefault(source, set()).add(day)

    def drop_record(self, source: SourceKey, asn: ASN, interval: Interval) -> None:
        """The ASN's row is absent from the files during ``interval``."""
        self.record_drops.setdefault(source, {}).setdefault(asn, []).append(interval)

    def add_record(
        self, source: SourceKey, interval: Interval, record: DelegationRecord
    ) -> None:
        """An extra (duplicate/stale/mistaken) row appears during
        ``interval``, alongside whatever legitimate row exists."""
        self.extra_records.setdefault(source, {}).setdefault(record.asn, []).append(
            (interval, record)
        )

    def override_date(
        self, source: SourceKey, asn: ASN, interval: Interval, date: Optional[Day]
    ) -> None:
        """The registration date shown during ``interval`` is wrong
        (future, placeholder, or travelled back in time)."""
        self.date_overrides.setdefault(source, {}).setdefault(asn, []).append(
            (interval, date)
        )

    # -- queries ---------------------------------------------------------

    def unavailable_days(self, source: SourceKey) -> Set[Day]:
        """Days with no usable file (missing or corrupt)."""
        return self.missing_days.get(source, set()) | self.corrupt_days.get(source, set())

    def is_empty(self) -> bool:
        return not any(
            (
                self.missing_days,
                self.corrupt_days,
                self.stale_days,
                self.record_drops,
                self.extra_records,
                self.date_overrides,
            )
        )

    def defect_count(self) -> int:
        """Total number of injected defect entries (for reports)."""
        total = sum(len(v) for v in self.missing_days.values())
        total += sum(len(v) for v in self.corrupt_days.values())
        total += sum(len(v) for v in self.stale_days.values())
        total += sum(len(ivs) for per in self.record_drops.values() for ivs in per.values())
        total += sum(len(rows) for per in self.extra_records.values() for rows in per.values())
        total += sum(len(ovr) for per in self.date_overrides.values() for ovr in per.values())
        return total
