"""Delegation archives: 17 years of daily files, materialized lazily.

A real archive is ~31,000 files (5 RIRs × 2 kinds × ~6,300 days).
Holding them all as text is wasteful, so the archive stores the per-ASN
*change points* produced by the registry state machines and materializes
either

* a :class:`~repro.rir.model.DelegationSnapshot` (or its exact NRO text)
  for any single day — the slow, file-faithful path used by tests,
  examples, and the format round-trip checks; or
* a per-ASN **stint timeline** for a whole source — the fast path the
  restoration pipeline and lifetime builders consume at scale.

Both paths apply the same :class:`~repro.rir.overlay.ArchiveOverlay`, so
they agree (equivalence-tested in ``tests/test_rir_archive.py``).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..asn.numbers import ASN
from ..timeline.dates import Day
from ..timeline.intervals import Interval
from .formats import serialize_snapshot
from .model import (
    ARIN_REGULAR_STOP,
    FIRST_EXTENDED_FILE,
    FIRST_REGULAR_FILE,
    DelegationRecord,
    DelegationSnapshot,
)
from .overlay import EXTENDED, REGULAR, ArchiveOverlay, SourceKey
from .registry import Registry

__all__ = ["FileState", "Stint", "SourceWindow", "DelegationArchive"]


class FileState:
    """Tri-state availability of one day's file."""

    PRESENT = "present"
    MISSING = "missing"
    CORRUPT = "corrupt"


@dataclass(frozen=True)
class Stint:
    """A maximal span of days during which one source showed the same
    row for one ASN.  ``record`` carries the row content."""

    start: Day
    end: Day
    record: DelegationRecord

    @property
    def interval(self) -> Interval:
        return Interval(self.start, self.end)

    @property
    def duration(self) -> int:
        return self.end - self.start + 1


@dataclass(frozen=True)
class SourceWindow:
    """Publication window of one source (first/last day a file exists)."""

    source: SourceKey
    first_day: Day
    last_day: Day

    def covers(self, day: Day) -> bool:
        return self.first_day <= day <= self.last_day


class DelegationArchive:
    """Lazy view over the delegation files of all five RIRs.

    Parameters
    ----------
    registries:
        The registry state machines whose histories back the archive.
        Their histories must be complete up to ``end_day``.
    end_day:
        Last day of the archive (the paper uses 2021-03-01).
    overlay:
        Injected defects; ``None`` means a pristine archive.
    """

    def __init__(
        self,
        registries: Mapping[str, Registry],
        end_day: Day,
        overlay: Optional[ArchiveOverlay] = None,
    ) -> None:
        self._registries = dict(registries)
        self._end_day = end_day
        self._overlay = overlay if overlay is not None else ArchiveOverlay()
        self._windows: Dict[SourceKey, SourceWindow] = {}
        for name in self._registries:
            reg_first = FIRST_REGULAR_FILE[name]
            reg_last = ARIN_REGULAR_STOP if name == "arin" else end_day
            self._windows[(name, REGULAR)] = SourceWindow(
                (name, REGULAR), reg_first, min(reg_last, end_day)
            )
            ext_first = FIRST_EXTENDED_FILE[name]
            if ext_first <= end_day:
                self._windows[(name, EXTENDED)] = SourceWindow(
                    (name, EXTENDED), ext_first, end_day
                )
        self._timeline_cache: Dict[SourceKey, Dict[ASN, List[Stint]]] = {}

    def __getstate__(self) -> dict:
        """Pickle without the memoized timelines.

        The cache is pure derived state: process-pool workers recompute
        exactly the timelines they need, and stripping it keeps both
        worker payloads and on-disk artifact-cache entries small.
        """
        state = self.__dict__.copy()
        state["_timeline_cache"] = {}
        return state

    # -- introspection -----------------------------------------------------

    @property
    def end_day(self) -> Day:
        return self._end_day

    @property
    def overlay(self) -> ArchiveOverlay:
        return self._overlay

    def registries(self) -> Sequence[str]:
        return tuple(sorted(self._registries))

    def sources(self) -> Sequence[SourceWindow]:
        """All published sources, regular before extended per registry."""
        return tuple(self._windows[k] for k in sorted(self._windows))

    def window(self, source: SourceKey) -> SourceWindow:
        return self._windows[source]

    def has_source(self, source: SourceKey) -> bool:
        return source in self._windows

    def file_state(self, source: SourceKey, day: Day) -> str:
        """PRESENT / MISSING / CORRUPT for a day inside the window."""
        window = self._windows[source]
        if not window.covers(day):
            raise ValueError(f"{source} publishes no file on day {day}")
        if day in self._overlay.missing_days.get(source, set()):
            return FileState.MISSING
        if day in self._overlay.corrupt_days.get(source, set()):
            return FileState.CORRUPT
        return FileState.PRESENT

    def unavailable_days(self, source: SourceKey) -> Set[Day]:
        """Days with no usable file inside the window."""
        window = self._windows[source]
        return {
            d
            for d in self._overlay.unavailable_days(source)
            if window.covers(d)
        }

    def file_count(self, registry: str) -> int:
        """Number of files the registry's FTP site holds (both kinds,
        missing days excluded) — the Table 1 'Number of files' column."""
        total = 0
        for kind in (REGULAR, EXTENDED):
            key = (registry, kind)
            if key not in self._windows:
                continue
            window = self._windows[key]
            span = window.last_day - window.first_day + 1
            total += span - len(
                {
                    d
                    for d in self._overlay.missing_days.get(key, set())
                    if window.covers(d)
                }
            )
        return total

    def day_count(self, registry: str) -> int:
        """Days with at least one usable file for the registry.

        This matches the paper's Table 1 "Number of files" semantics —
        the per-RIR totals there (5,791..6,345) equal the day coverage
        of each registry's archive, not the regular+extended file sum.
        """
        total = 0
        regular = (registry, REGULAR)
        extended = (registry, EXTENDED)
        windows = [self._windows[k] for k in (regular, extended) if k in self._windows]
        if not windows:
            return 0
        first = min(w.first_day for w in windows)
        last = max(w.last_day for w in windows)
        for day in range(first, last + 1):
            for key in (regular, extended):
                if key not in self._windows or not self._windows[key].covers(day):
                    continue
                if day not in self._overlay.unavailable_days(key):
                    total += 1
                    break
        return total

    # -- fast path: per-ASN stint timelines ---------------------------------

    def timeline(self, source: SourceKey) -> Dict[ASN, List[Stint]]:
        """Per-ASN stints for a source, with the overlay applied.

        Stints reflect *observation*: boundaries falling on missing or
        corrupt days are degraded to the nearest usable day, dropped
        records are punched out, extra records appear as additional
        (possibly overlapping) stints, and date overrides rewrite the
        registration date for their span — exactly what a day-by-day
        parse of the published files would yield.
        """
        if source in self._timeline_cache:
            return self._timeline_cache[source]
        if source not in self._windows:
            raise ValueError(f"source {source} is not published")
        registry_name, kind = source
        window = self._windows[source]
        registry = self._registries[registry_name]
        stale = self._overlay.stale_days.get(source, set())
        unavailable = self.unavailable_days(source)
        drops = self._overlay.record_drops.get(source, {})
        extras = self._overlay.extra_records.get(source, {})
        overrides = self._overlay.date_overrides.get(source, {})

        out: Dict[ASN, List[Stint]] = {}
        for asn, changes in registry.history.items():
            stints = self._base_stints(changes, kind, window, stale)
            if not stints and asn not in extras:
                continue
            if asn in overrides:
                stints = _apply_date_overrides(stints, overrides[asn])
            if asn in drops:
                stints = _punch_intervals(stints, drops[asn])
            stints = _degrade_boundaries(stints, unavailable, window)
            if asn in extras:
                stints = stints + _extra_stints(extras[asn], window, kind)
                stints.sort(key=lambda s: (s.start, s.end))
            if stints:
                out[asn] = stints
        # extras for ASNs the registry never touched (mistaken allocations)
        for asn, rows in extras.items():
            if asn in out or asn in registry.history:
                continue
            stints = _extra_stints(rows, window, kind)
            if stints:
                out[asn] = sorted(stints, key=lambda s: (s.start, s.end))
        self._timeline_cache[source] = out
        return out

    def _base_stints(
        self,
        changes: Sequence[Tuple[Day, Optional[DelegationRecord]]],
        kind: str,
        window: SourceWindow,
        stale: Set[Day],
    ) -> List[Stint]:
        """Turn raw change points into clamped stints for one kind."""
        stints: List[Stint] = []
        for idx, (day, record) in enumerate(changes):
            if stale:
                day = _effective_day(day, stale, window.last_day)
            next_day = (
                _effective_day(changes[idx + 1][0], stale, window.last_day)
                if idx + 1 < len(changes)
                else window.last_day + 1
            )
            if record is None:
                continue
            if kind == REGULAR and not record.is_delegated:
                continue
            if kind == REGULAR and record.opaque_id is not None:
                record = DelegationRecord(
                    registry=record.registry,
                    cc=record.cc,
                    asn=record.asn,
                    reg_date=record.reg_date,
                    status=record.status,
                    opaque_id=None,
                )
            start = max(day, window.first_day)
            end = min(next_day - 1, window.last_day)
            if start > end:
                continue
            if stints and stints[-1].end + 1 >= start and stints[-1].record == record:
                stints[-1] = Stint(stints[-1].start, end, record)
            else:
                stints.append(Stint(start, end, record))
        return stints

    # -- slow path: whole files ---------------------------------------------

    def snapshot(self, source: SourceKey, day: Day) -> Optional[DelegationSnapshot]:
        """Materialize one day's file; ``None`` when missing/corrupt.

        The snapshot is assembled from the timelines, so it reflects
        every overlay defect, including stale days (whose content and
        serial repeat the previous day's).
        """
        state = self.file_state(source, day)
        if state != FileState.PRESENT:
            return None
        registry_name, kind = source
        effective = day
        stale = self._overlay.stale_days.get(source, set())
        while effective in stale:
            effective -= 1
        records = [
            stint.record
            for stints in self.timeline(source).values()
            for stint in stints
            if stint.start <= effective <= stint.end
        ]
        records.sort(key=lambda r: (r.asn, r.status.value))
        return DelegationSnapshot(
            registry=registry_name,
            file_day=effective,
            extended=kind == EXTENDED,
            records=records,
            serial=effective,
        )

    def file_text(self, source: SourceKey, day: Day) -> Optional[str]:
        """The exact NRO text of one day's file.

        Returns ``None`` for missing days and deterministic garbage for
        corrupt days (a truncated render, which the parser rejects —
        letting end-to-end pipelines exercise the corrupt-file branch).
        """
        state = self.file_state(source, day)
        if state == FileState.MISSING:
            return None
        if state == FileState.CORRUPT:
            snap = DelegationSnapshot(
                registry=source[0],
                file_day=day,
                extended=source[1] == EXTENDED,
                records=[],
                serial=day,
            )
            text = serialize_snapshot(snap)
            cut = (zlib.crc32(f"{source}{day}".encode()) % 20) + 5
            return text[: max(len(text) - cut, 10)]
        snap = self.snapshot(source, day)
        assert snap is not None
        return serialize_snapshot(snap)

    def iter_days(self, source: SourceKey) -> Iterable[Day]:
        """Every day in the source's publication window."""
        window = self._windows[source]
        return range(window.first_day, window.last_day + 1)


# -- stint surgery helpers ----------------------------------------------


def _effective_day(day: Day, stale: Set[Day], last_day: Day) -> Day:
    """A change landing on a stale day only becomes visible on the next
    regenerated file."""
    while day in stale and day <= last_day:
        day += 1
    return day


def _apply_date_overrides(
    stints: List[Stint],
    overrides: Sequence[Tuple[Interval, Optional[Day]]],
) -> List[Stint]:
    out = stints
    for span, date in overrides:
        nxt: List[Stint] = []
        for stint in out:
            hit = stint.interval.intersection(span)
            if hit is None or not stint.record.is_delegated:
                nxt.append(stint)
                continue
            if stint.start < hit.start:
                nxt.append(Stint(stint.start, hit.start - 1, stint.record))
            if date is not None:
                nxt.append(Stint(hit.start, hit.end, stint.record.with_date(date)))
            else:
                nxt.append(Stint(hit.start, hit.end, stint.record))
            if hit.end < stint.end:
                nxt.append(Stint(hit.end + 1, stint.end, stint.record))
        out = nxt
    return out


def _punch_intervals(stints: List[Stint], holes: Sequence[Interval]) -> List[Stint]:
    out = stints
    for hole in holes:
        nxt: List[Stint] = []
        for stint in out:
            hit = stint.interval.intersection(hole)
            if hit is None:
                nxt.append(stint)
                continue
            if stint.start < hit.start:
                nxt.append(Stint(stint.start, hit.start - 1, stint.record))
            if hit.end < stint.end:
                nxt.append(Stint(hit.end + 1, stint.end, stint.record))
        out = nxt
    return out


def _degrade_boundaries(
    stints: List[Stint], unavailable: Set[Day], window: SourceWindow
) -> List[Stint]:
    """Move stint edges off missing/corrupt days.

    A row can only be *observed* on days with a usable file, so a stint
    that starts (ends) on an unusable day is first seen (last seen) on
    the nearest usable day inside it.  Stints fully inside an unusable
    span vanish.
    """
    if not unavailable:
        return stints
    out: List[Stint] = []
    for stint in stints:
        start, end = stint.start, stint.end
        while start <= end and start in unavailable:
            start += 1
        while end >= start and end in unavailable:
            end -= 1
        if start <= end:
            out.append(Stint(start, end, stint.record))
    return out


def _extra_stints(
    rows: Sequence[Tuple[Interval, DelegationRecord]],
    window: SourceWindow,
    kind: str,
) -> List[Stint]:
    out: List[Stint] = []
    for span, record in rows:
        if kind == REGULAR and not record.is_delegated:
            continue
        clipped = span.clamp(window.first_day, window.last_day)
        if clipped is not None:
            out.append(Stint(clipped.start, clipped.end, record))
    return out
