"""The RIR state machine that *emits* delegation data.

Rather than hand-writing delegation files, the simulation drives one
:class:`Registry` per RIR through the state transitions a real registry
performs — IANA block intake, allocation, deallocation into reserved
quarantine, release back to the available pool, returns to the previous
holder, internal and inter-RIR transfers, registration-date corrections
— and the delegation files are *snapshots* of the resulting state.
This guarantees archives are internally consistent, so every §3.1
defect found later is by construction an injected corruption whose
ground truth is known.

Every transition appends to a per-ASN history of
``(day, DelegationRecord)`` change points; the archive layer
materializes daily files (or per-ASN stint timelines) from these.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..asn.blocks import BlockDelegation, IanaLedger
from ..asn.numbers import ASN, is_16bit
from ..timeline.dates import Day
from .model import DelegationRecord, DelegationSnapshot, Status
from .policies import RirPolicy

__all__ = ["Allocation", "Reservation", "Registry", "RegistryError"]


class RegistryError(RuntimeError):
    """Raised when a transition is requested from the wrong state."""


@dataclass
class Allocation:
    """A live delegation of one ASN to one organization."""

    asn: ASN
    org_id: str
    cc: str
    reg_date: Day
    allocated_on: Day
    via_nir: bool = False


@dataclass
class Reservation:
    """An ASN sitting in reserved quarantine."""

    asn: ASN
    since: Day
    release_day: Day
    previous: Optional[Allocation] = None


@dataclass
class Registry:
    """State machine for one RIR's ASN pool.

    All mutating methods take the current simulation ``day`` explicitly;
    the registry never consults a clock.  Days must not go backwards.
    """

    name: str
    policy: RirPolicy
    ledger: IanaLedger
    #: Fresh (never-delegated) and recycled (returned) available pools,
    #: kept apart so callers can express the registry's reuse eagerness
    #: (§5: ARIN and RIPE NCC re-allocate far more than the others).
    fresh16: List[ASN] = field(default_factory=list)  # min-heap
    fresh32: List[ASN] = field(default_factory=list)  # min-heap
    recycled16: List[ASN] = field(default_factory=list)  # min-heap
    recycled32: List[ASN] = field(default_factory=list)  # min-heap
    allocated: Dict[ASN, Allocation] = field(default_factory=dict)
    reserved: Dict[ASN, Reservation] = field(default_factory=dict)
    #: per-ASN change points: (day, record) — record reflects the row the
    #: *extended* file would carry from that day on; ``None`` means the
    #: ASN left this registry's pool entirely (transfer out).
    history: Dict[ASN, List[Tuple[Day, Optional[DelegationRecord]]]] = field(
        default_factory=dict
    )
    _available_set: set = field(default_factory=set)
    _ever_delegated: set = field(default_factory=set)
    _last_day: Day = 0

    # -- invariant helpers ----------------------------------------------

    def _advance(self, day: Day) -> None:
        if day < self._last_day:
            raise RegistryError(
                f"{self.name}: day went backwards ({day} < {self._last_day})"
            )
        self._last_day = day

    def _record(self, day: Day, rec: DelegationRecord) -> None:
        self.history.setdefault(rec.asn, []).append((day, rec))

    def _record_gone(self, day: Day, asn: ASN) -> None:
        self.history.setdefault(asn, []).append((day, None))

    # -- pool intake ------------------------------------------------------

    def add_block(self, block: BlockDelegation, day: Day) -> int:
        """Take delivery of an IANA block into the available pool.

        Returns the number of delegable ASNs added (bogons are skipped).
        """
        self._advance(day)
        count = 0
        for asn in block.asns():
            self._push_available(asn, day)
            count += 1
        return count

    def request_block(self, day: Day, *, thirty_two_bit: bool) -> Optional[BlockDelegation]:
        """Ask IANA for one more block and absorb it; ``None`` if exhausted."""
        self._advance(day)
        block = (
            self.ledger.delegate_32bit(self.name, day)
            if thirty_two_bit
            else self.ledger.delegate_16bit(self.name, day)
        )
        if block is not None:
            self.add_block(block, day)
        return block

    def _push_available(self, asn: ASN, day: Day) -> None:
        if asn in self._available_set or asn in self.allocated or asn in self.reserved:
            raise RegistryError(f"{self.name}: AS{asn} already in a pool")
        if asn in self._ever_delegated:
            heap = self.recycled16 if is_16bit(asn) else self.recycled32
        else:
            heap = self.fresh16 if is_16bit(asn) else self.fresh32
        heapq.heappush(heap, asn)
        self._available_set.add(asn)
        self._record(
            day,
            DelegationRecord(
                registry=self.name,
                cc="",
                asn=asn,
                reg_date=None,
                status=Status.AVAILABLE,
            ),
        )

    def _pop_available(
        self, *, thirty_two_bit: bool, prefer_recycled: bool = False
    ) -> Optional[ASN]:
        if thirty_two_bit:
            heaps = [self.recycled32, self.fresh32] if prefer_recycled else [self.fresh32, self.recycled32]
        else:
            heaps = [self.recycled16, self.fresh16] if prefer_recycled else [self.fresh16, self.recycled16]
        for heap in heaps:
            while heap:
                asn = heapq.heappop(heap)
                if asn in self._available_set:
                    self._available_set.discard(asn)
                    return asn
        return None

    def available_count(self, *, thirty_two_bit: Optional[bool] = None) -> int:
        """Size of the available pool (optionally one bit class only)."""
        if thirty_two_bit is None:
            return len(self._available_set)
        return sum(1 for a in self._available_set if is_16bit(a) != thirty_two_bit)

    # -- allocation lifecycle ---------------------------------------------

    def allocate(
        self,
        day: Day,
        org_id: str,
        cc: str,
        *,
        thirty_two_bit: bool,
        reg_date: Optional[Day] = None,
        via_nir: bool = False,
        prefer_recycled: bool = False,
    ) -> Allocation:
        """Delegate the lowest available ASN of the requested class.

        ``prefer_recycled`` draws from the returned-ASN pool first
        (falling back to fresh numbers), modelling the reuse practices
        that differ so much between registries (§5).  Requests a fresh
        IANA block transparently when both pools are dry.  ``reg_date``
        defaults to ``day``; the simulator may push it a few days
        earlier to model registration-to-publication lag.
        """
        self._advance(day)
        asn = self._pop_available(
            thirty_two_bit=thirty_two_bit, prefer_recycled=prefer_recycled
        )
        if asn is None:
            block = self.request_block(day, thirty_two_bit=thirty_two_bit)
            if block is None:
                raise RegistryError(
                    f"{self.name}: IANA pool exhausted for "
                    f"{'32' if thirty_two_bit else '16'}-bit ASNs"
                )
            asn = self._pop_available(thirty_two_bit=thirty_two_bit)
            if asn is None:
                raise RegistryError(f"{self.name}: fresh block yielded no ASNs")
        return self._allocate_specific(day, asn, org_id, cc, reg_date, via_nir)

    def _allocate_specific(
        self,
        day: Day,
        asn: ASN,
        org_id: str,
        cc: str,
        reg_date: Optional[Day],
        via_nir: bool,
    ) -> Allocation:
        alloc = Allocation(
            asn=asn,
            org_id=org_id,
            cc=cc,
            reg_date=day if reg_date is None else reg_date,
            allocated_on=day,
            via_nir=via_nir,
        )
        self.allocated[asn] = alloc
        self._ever_delegated.add(asn)
        self._record(
            day,
            DelegationRecord(
                registry=self.name,
                cc=cc,
                asn=asn,
                reg_date=alloc.reg_date,
                status=Status.ALLOCATED,
                opaque_id=org_id,
            ),
        )
        return alloc

    def deallocate(self, day: Day, asn: ASN) -> Reservation:
        """End a delegation: the ASN enters reserved quarantine."""
        self._advance(day)
        alloc = self.allocated.pop(asn, None)
        if alloc is None:
            raise RegistryError(f"{self.name}: AS{asn} is not allocated")
        res = Reservation(
            asn=asn,
            since=day,
            release_day=day + self.policy.quarantine_days,
            previous=alloc,
        )
        self.reserved[asn] = res
        self._record(
            day,
            DelegationRecord(
                registry=self.name,
                cc="",
                asn=asn,
                reg_date=None,
                status=Status.RESERVED,
            ),
        )
        return res

    def reserve_for_issue(self, day: Day, asn: ASN) -> Reservation:
        """Move an allocated ASN to reserved over an administrative issue
        (§4.1: "administrative issues with the organization holding it").

        Unlike :meth:`deallocate`, the expectation is that the ASN may
        return to the same holder; the previous allocation is kept.
        """
        return self.deallocate(day, asn)

    def tick(self, day: Day) -> List[ASN]:
        """Release quarantined ASNs whose reservation expired.

        Returns the ASNs that moved back to the available pool.  Call
        once per simulated day (idempotent within a day).
        """
        self._advance(day)
        due = [asn for asn, res in self.reserved.items() if res.release_day <= day]
        for asn in due:
            del self.reserved[asn]
            self._push_available(asn, day)
        return due

    def return_to_owner(self, day: Day, asn: ASN) -> Allocation:
        """Re-allocate a reserved ASN to its previous holder.

        Registration date follows policy: kept everywhere except
        AfriNIC, which issues a fresh one (§2, §4.1).
        """
        self._advance(day)
        res = self.reserved.pop(asn, None)
        if res is None or res.previous is None:
            raise RegistryError(f"{self.name}: AS{asn} has no previous holder to return to")
        prev = res.previous
        reg_date = prev.reg_date if self.policy.keeps_regdate_on_return else day
        return self._allocate_specific(day, asn, prev.org_id, prev.cc, reg_date, prev.via_nir)

    def internal_transfer(self, day: Day, asn: ASN, new_org: str, new_cc: str) -> Allocation:
        """Move a live delegation to another organization in-region.

        RIPE NCC and APNIC keep the registration date; the others issue
        a fresh one (§2).
        """
        self._advance(day)
        alloc = self.allocated.get(asn)
        if alloc is None:
            raise RegistryError(f"{self.name}: AS{asn} is not allocated")
        reg_date = alloc.reg_date if self.policy.keeps_regdate_on_internal_transfer else day
        return self._allocate_specific(day, asn, new_org, new_cc, reg_date, alloc.via_nir)

    def correct_regdate(self, day: Day, asn: ASN, new_date: Day) -> Allocation:
        """Administrative correction of the registration date (§4.1:
        "Allocated ASN suddenly changing registration date")."""
        self._advance(day)
        alloc = self.allocated.get(asn)
        if alloc is None:
            raise RegistryError(f"{self.name}: AS{asn} is not allocated")
        return self._allocate_specific(
            day, asn, alloc.org_id, alloc.cc, new_date, alloc.via_nir
        )

    # -- inter-registry movement -------------------------------------------

    def transfer_out(self, day: Day, asn: ASN) -> Allocation:
        """Release a live delegation for transfer to another registry."""
        self._advance(day)
        alloc = self.allocated.pop(asn, None)
        if alloc is None:
            raise RegistryError(f"{self.name}: AS{asn} is not allocated")
        self._record_gone(day, asn)
        return alloc

    def transfer_in(
        self,
        day: Day,
        alloc: Allocation,
        *,
        keep_regdate: bool = True,
        reg_date_override: Optional[Day] = None,
    ) -> Allocation:
        """Accept an allocation transferred from another registry.

        ERX transfers (§3.1 step v) kept — or were supposed to keep —
        the original registration date; ``reg_date_override`` lets the
        simulator model the RIPE NCC placeholder-date defect.
        """
        self._advance(day)
        if alloc.asn in self.allocated or alloc.asn in self.reserved or alloc.asn in self._available_set:
            raise RegistryError(f"{self.name}: AS{alloc.asn} already present")
        if reg_date_override is not None:
            reg_date = reg_date_override
        elif keep_regdate:
            reg_date = alloc.reg_date
        else:
            reg_date = day
        return self._allocate_specific(
            day, alloc.asn, alloc.org_id, alloc.cc, reg_date, alloc.via_nir
        )

    def allocate_nir_block(
        self, day: Day, nir_org: str, cc: str, count: int
    ) -> List[Allocation]:
        """APNIC-style block allocation to a National Internet Registry.

        All ``count`` ASNs become allocated at once under the NIR's
        opaque id; end-user hand-out inside the block is invisible to
        delegation files (§4.1), which is precisely the uncertainty the
        paper describes.
        """
        self._advance(day)
        if not self.policy.uses_nir_blocks:
            raise RegistryError(f"{self.name} does not delegate to NIRs")
        thirty_two = day >= self.policy.default_32bit_from
        return [
            self.allocate(day, nir_org, cc, thirty_two_bit=thirty_two, via_nir=True)
            for _ in range(count)
        ]

    # -- snapshots ---------------------------------------------------------

    def current_records(self, *, extended: bool) -> List[DelegationRecord]:
        """The rows a delegation file generated *now* would contain."""
        records: List[DelegationRecord] = []
        for asn, alloc in self.allocated.items():
            records.append(
                DelegationRecord(
                    registry=self.name,
                    cc=alloc.cc,
                    asn=asn,
                    reg_date=alloc.reg_date,
                    status=Status.ALLOCATED,
                    opaque_id=alloc.org_id if extended else None,
                )
            )
        if extended:
            for asn in self.reserved:
                records.append(
                    DelegationRecord(
                        registry=self.name, cc="", asn=asn,
                        reg_date=None, status=Status.RESERVED,
                    )
                )
            for asn in self._available_set:
                records.append(
                    DelegationRecord(
                        registry=self.name, cc="", asn=asn,
                        reg_date=None, status=Status.AVAILABLE,
                    )
                )
        records.sort(key=lambda r: r.asn)
        return records

    def snapshot(self, day: Day, *, extended: bool, serial: int = 0) -> DelegationSnapshot:
        """Materialize the delegation file for ``day`` from current state."""
        return DelegationSnapshot(
            registry=self.name,
            file_day=day,
            extended=extended,
            records=self.current_records(extended=extended),
            serial=serial,
        )

    # -- views -------------------------------------------------------------

    def alive_count(self) -> int:
        """Number of currently allocated ASNs."""
        return len(self.allocated)

    def holdings(self) -> Iterable[ASN]:
        """Every ASN currently in any of this registry's pools."""
        yield from self.allocated
        yield from self.reserved
        yield from self._available_set

    def check_invariants(self) -> None:
        """Assert the pools are disjoint (used by tests and the simulator)."""
        a, r, v = set(self.allocated), set(self.reserved), set(self._available_set)
        if a & r or a & v or r & v:
            raise AssertionError(f"{self.name}: pools overlap")
