"""Codec for the NRO delegation-file format (regular and extended).

The on-disk format is pipe-separated text (one resource per line, runs
of contiguous equal resources compressed via the ``value`` field):

.. code-block:: text

    2.3|ripencc|19700101|3|20031126|20210301|+0000
    ripencc|*|asn|*|3|summary
    ripencc|FR|asn|2200|1|20010101|allocated|ORG-0001
    ripencc||asn|2201|2||available

Line 1 is the header (``version|registry|serial|records|startdate|
enddate|UTCoffset``); the version is ``2`` for regular files and
``2.3`` for the extended format.  Summary lines follow, then records:
``registry|cc|type|start|value|date|status[|opaque-id]``.  The real
files also carry ``ipv4``/``ipv6`` rows; the parser skips them since
the paper's pipeline only consumes ASN rows.

The parser is deliberately forgiving about cosmetic noise (comments,
blank lines) but strict about structural damage, raising
:class:`DelegationFileError` so that corrupted files can be detected
and handled by the restoration pipeline, as §3.1 requires.
"""

from __future__ import annotations

import datetime as _dt
from typing import List, Optional, Tuple

from ..asn.numbers import AS32_MAX
from ..timeline.dates import Day
from .model import DelegationRecord, DelegationSnapshot, Status

__all__ = [
    "DelegationFileError",
    "REGULAR_VERSION",
    "EXTENDED_VERSION",
    "serialize_snapshot",
    "parse_snapshot",
    "compress_records",
]

REGULAR_VERSION = "2"
EXTENDED_VERSION = "2.3"


class DelegationFileError(ValueError):
    """Raised when a delegation file is structurally corrupt."""


def _day_to_field(d: Optional[Day]) -> str:
    if d is None:
        return ""
    return _dt.date.fromordinal(d).strftime("%Y%m%d")


def _field_to_day(text: str) -> Optional[Day]:
    text = text.strip()
    if not text or text == "00000000":
        return None
    if len(text) != 8 or not text.isdigit():
        raise DelegationFileError(f"bad date field {text!r}")
    try:
        return _dt.date(int(text[:4]), int(text[4:6]), int(text[6:8])).toordinal()
    except ValueError as exc:
        raise DelegationFileError(f"bad date field {text!r}: {exc}") from None


def compress_records(
    records: List[DelegationRecord],
) -> List[Tuple[DelegationRecord, int]]:
    """Run-length compress sorted records into (first record, count) runs.

    Contiguous ASNs sharing country, date, status, and opaque id
    collapse into one line, exactly as the real files compress the
    large ``available``/``reserved`` pool ranges.
    """
    runs: List[Tuple[DelegationRecord, int]] = []
    for rec in sorted(records, key=lambda r: (r.asn, r.status.value)):
        if runs:
            head, count = runs[-1]
            if rec.asn == head.asn + count and rec.key_fields() == head.key_fields():
                runs[-1] = (head, count + 1)
                continue
        runs.append((rec, 1))
    return runs


def serialize_snapshot(snapshot: DelegationSnapshot) -> str:
    """Render a snapshot in the NRO text format.

    The record count in the header and the summary line are computed
    from the actual content, so a serialized file always satisfies the
    parser's consistency checks.
    """
    runs = compress_records(snapshot.records)
    version = EXTENDED_VERSION if snapshot.extended else REGULAR_VERSION
    lines = [
        "|".join(
            [
                version,
                snapshot.registry,
                str(snapshot.serial),
                str(len(runs)),
                _day_to_field(snapshot.file_day),
                _day_to_field(snapshot.file_day),
                "+0000",
            ]
        ),
        f"{snapshot.registry}|*|asn|*|{len(runs)}|summary",
    ]
    for rec, count in runs:
        fields = [
            rec.registry,
            rec.cc,
            "asn",
            str(rec.asn),
            str(count),
            _day_to_field(rec.reg_date),
            rec.status.value,
        ]
        if snapshot.extended:
            fields.append(rec.opaque_id or "")
        lines.append("|".join(fields))
    return "\n".join(lines) + "\n"


def parse_snapshot(text: str) -> DelegationSnapshot:
    """Parse delegation-file text into a :class:`DelegationSnapshot`.

    Raises :class:`DelegationFileError` for structural corruption: a
    missing or malformed header, record lines with the wrong number of
    fields, unparsable numbers or dates, or a header record count that
    does not match the body (truncated download — one of the §3.1
    defect classes).
    """
    lines = [
        line
        for line in (raw.strip() for raw in text.splitlines())
        if line and not line.startswith("#")
    ]
    if not lines:
        raise DelegationFileError("empty delegation file")

    header = lines[0].split("|")
    if len(header) != 7:
        raise DelegationFileError(f"malformed header: {lines[0]!r}")
    version, registry, serial_s, records_s, start_s, _end_s, _offset = header
    if version not in (REGULAR_VERSION, EXTENDED_VERSION):
        raise DelegationFileError(f"unknown format version {version!r}")
    extended = version == EXTENDED_VERSION
    try:
        serial = int(serial_s)
        declared = int(records_s)
    except ValueError:
        raise DelegationFileError(f"non-numeric header counts in {lines[0]!r}") from None
    file_day = _field_to_day(start_s)
    if file_day is None:
        raise DelegationFileError("header lacks a start date")

    records: List[DelegationRecord] = []
    body_lines = 0
    for line in lines[1:]:
        fields = line.split("|")
        if len(fields) == 6 and fields[5] == "summary":
            continue
        rtype = fields[2] if len(fields) > 2 else ""
        if rtype in ("ipv4", "ipv6"):
            body_lines += 1
            continue
        if rtype != "asn":
            raise DelegationFileError(f"unrecognized record line {line!r}")
        # extended files may omit the trailing opaque id on pool rows
        allowed = (7, 8) if extended else (7,)
        if len(fields) not in allowed:
            raise DelegationFileError(f"wrong field count in {line!r}")
        body_lines += 1
        reg, cc, _rtype, start_s, value_s, date_s, status_s = fields[:7]
        opaque = fields[7] if len(fields) == 8 else None
        try:
            start = int(start_s)
            value = int(value_s)
        except ValueError:
            raise DelegationFileError(f"non-numeric ASN fields in {line!r}") from None
        if value < 1 or start < 0 or start + value - 1 > AS32_MAX:
            raise DelegationFileError(f"ASN range out of bounds in {line!r}")
        try:
            status = Status.parse(status_s)
        except ValueError as exc:
            raise DelegationFileError(str(exc)) from None
        if not extended and not status.is_delegated:
            raise DelegationFileError(
                f"status {status.value!r} not allowed in regular files: {line!r}"
            )
        reg_date = _field_to_day(date_s)
        try:
            for offset in range(value):
                records.append(
                    DelegationRecord(
                        registry=reg,
                        cc=cc,
                        asn=start + offset,
                        reg_date=reg_date,
                        status=status,
                        opaque_id=opaque or None,
                    )
                )
        except DelegationFileError:
            raise
        except ValueError as exc:
            raise DelegationFileError(f"invalid record in {line!r}: {exc}") from None

    if body_lines != declared:
        raise DelegationFileError(
            f"header declares {declared} records but file has {body_lines} "
            "(truncated or corrupted file)"
        )
    try:
        return DelegationSnapshot(
            registry=registry,
            file_day=file_day,
            extended=extended,
            records=records,
            serial=serial,
        )
    except DelegationFileError:
        raise
    except ValueError as exc:
        raise DelegationFileError(str(exc)) from None
