"""Injection of the real-world defects §3.1 documents.

The paper spends a whole section restoring 17 years of delegation
files: files go missing or arrive corrupted, groups of ASNs vanish from
extended files for a few days, regular and extended files published the
same day disagree, AfriNIC carries contradictory duplicate rows, and
registration dates jump to the future, to the past, or to the
placeholder ``1993-09-01`` left behind by the ERX transfers.

:class:`PitfallInjector` reproduces every one of those defect classes
on top of a clean simulated archive, with a seeded RNG and a
ground-truth log (:class:`InjectedDefect`) so that the restoration
pipeline (:mod:`repro.restoration`) can be *scored*, not just run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..timeline.dates import Day, from_iso
from ..timeline.intervals import Interval
from ..asn.numbers import ASN
from .model import DelegationRecord, Status
from .overlay import EXTENDED, REGULAR, ArchiveOverlay, SourceKey
from .registry import Registry

__all__ = [
    "ERX_PLACEHOLDER_DATE",
    "TransferRecord",
    "InjectedDefect",
    "PitfallConfig",
    "PitfallInjector",
]

#: The placeholder registration date §3.1(v) finds on >800 RIPE NCC
#: records affected by the ERX project.
ERX_PLACEHOLDER_DATE: Day = from_iso("1993-09-01")


@dataclass(frozen=True)
class TransferRecord:
    """An inter-RIR ASN transfer performed by the simulation.

    ``original_reg_date`` is the registration date the resource held at
    the origin registry; ``erx`` marks transfers belonging to the ERX
    ("early registration") project.
    """

    asn: ASN
    day: Day
    from_rir: str
    to_rir: str
    original_reg_date: Day
    erx: bool = False


@dataclass(frozen=True)
class InjectedDefect:
    """Ground-truth record of one injected corruption."""

    kind: str
    source: Optional[SourceKey]
    asn: Optional[ASN]
    span: Optional[Interval]
    note: str = ""


@dataclass(frozen=True)
class PitfallConfig:
    """Rates and sizes for the injected defect classes.

    Defaults approximate the paper's findings: <1% of days missing
    (longest run 7 days, RIPE NCC), 1.8% of days with same-day
    regular/extended divergence (never AfriNIC), 16 AfriNIC duplicate
    ASNs, a handful of future dates, >800 ERX placeholder dates, and
    some 450 ASNs with inter-RIR overlaps.
    """

    missing_file_rate: float = 0.004
    corrupt_file_rate: float = 0.0015
    longest_missing_run: int = 7
    stale_day_rate: float = 0.018
    record_drop_events_per_source: int = 2
    record_drop_group: Tuple[int, int] = (40, 300)
    record_drop_days: Tuple[int, int] = (1, 3)
    afrinic_duplicate_count: int = 16
    afrinic_duplicate_max_days: int = 180
    future_regdate_count: int = 4
    future_regdate_max_days: int = 6
    erx_placeholder_share: float = 0.85
    stale_transfer_share: float = 0.35
    stale_transfer_days: Tuple[int, int] = (10, 260)
    mistaken_allocation_count: int = 5
    mistaken_allocation_days: Tuple[int, int] = (20, 250)


@dataclass
class PitfallInjector:
    """Builds an :class:`ArchiveOverlay` full of realistic defects.

    Parameters
    ----------
    registries:
        The clean registry state machines (read-only access).
    end_day:
        Last day of the archive.
    seed:
        Seed for the injector's private RNG.
    config:
        Defect rates; see :class:`PitfallConfig`.
    """

    registries: Mapping[str, Registry]
    end_day: Day
    seed: int = 0
    config: PitfallConfig = field(default_factory=PitfallConfig)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self.overlay = ArchiveOverlay()
        self.truth: List[InjectedDefect] = []

    # -- public API --------------------------------------------------------

    def inject_all(
        self,
        windows: Mapping[SourceKey, Tuple[Day, Day]],
        transfers: Sequence[TransferRecord] = (),
    ) -> ArchiveOverlay:
        """Run every defect class and return the finished overlay."""
        self.inject_file_level_defects(windows)
        self.inject_stale_days(windows)
        self.inject_record_drops(windows)
        self.inject_afrinic_duplicates(windows)
        self.inject_future_regdates(windows)
        self.inject_erx_placeholders(windows, transfers)
        self.inject_stale_transfer_records(windows, transfers)
        self.inject_mistaken_allocations(windows)
        return self.overlay

    # -- (i) missing / corrupt files ----------------------------------------

    def inject_file_level_defects(
        self, windows: Mapping[SourceKey, Tuple[Day, Day]]
    ) -> None:
        """Sprinkle missing and corrupt days over every source, plus one
        long consecutive missing run on the RIPE NCC regular feed (the
        paper's worst case is 7 days, RIPE)."""
        cfg = self.config
        for source, (first, last) in sorted(windows.items()):
            # never corrupt a window's first or last file: the paper's
            # observation window is anchored on days with usable data
            lo, hi = first + 1, last - 1
            if lo > hi:
                continue
            span_days = hi - lo + 1
            n_missing = int(span_days * cfg.missing_file_rate)
            n_corrupt = int(span_days * cfg.corrupt_file_rate)
            for day in self._rng.sample(range(lo, hi + 1), min(n_missing, span_days)):
                self.overlay.mark_missing(source, day)
                self.truth.append(
                    InjectedDefect("missing_file", source, None, Interval(day, day))
                )
            for day in self._rng.sample(range(lo, hi + 1), min(n_corrupt, span_days)):
                if day in self.overlay.missing_days.get(source, set()):
                    continue
                self.overlay.mark_corrupt(source, day)
                self.truth.append(
                    InjectedDefect("corrupt_file", source, None, Interval(day, day))
                )
        ripe_reg = ("ripencc", REGULAR)
        if ripe_reg in windows and cfg.longest_missing_run > 1:
            first, last = windows[ripe_reg]
            run_len = cfg.longest_missing_run
            start = self._rng.randint(first + 30, max(first + 31, last - run_len - 31))
            for day in range(start, start + run_len):
                self.overlay.mark_missing(ripe_reg, day)
            self.truth.append(
                InjectedDefect(
                    "missing_file_run",
                    ripe_reg,
                    None,
                    Interval(start, start + run_len - 1),
                    note=f"longest consecutive missing run ({run_len} days)",
                )
            )

    # -- (iii) same-day regular/extended divergence --------------------------

    def inject_stale_days(self, windows: Mapping[SourceKey, Tuple[Day, Day]]) -> None:
        """On ~1.8% of days the regular file is not regenerated and
        repeats the previous day's content (all RIRs except AfriNIC)."""
        cfg = self.config
        for source, (first, last) in sorted(windows.items()):
            registry, kind = source
            if kind != REGULAR or registry == "afrinic":
                continue
            ext = (registry, EXTENDED)
            if ext not in windows:
                continue
            ext_first, ext_last = windows[ext]
            lo, hi = max(first, ext_first) + 1, min(last, ext_last)
            if lo >= hi:
                continue
            n = int((hi - lo + 1) * cfg.stale_day_rate)
            for day in self._rng.sample(range(lo, hi + 1), min(n, hi - lo + 1)):
                self.overlay.mark_stale(source, day)
                self.truth.append(
                    InjectedDefect("stale_day", source, None, Interval(day, day))
                )

    # -- (ii) record drops ----------------------------------------------------

    def inject_record_drops(self, windows: Mapping[SourceKey, Tuple[Day, Day]]) -> None:
        """Groups of allocated ASNs vanish from the *extended* file for
        one to a few days while the regular file still carries them.

        AfriNIC is spared: the paper finds its two feeds never diverge
        (§3.1 step iii), so its extended archive gets no drops either.
        """
        cfg = self.config
        for source, (first, last) in sorted(windows.items()):
            registry, kind = source
            if kind != EXTENDED or registry == "afrinic":
                continue
            asns = sorted(self.registries[registry].history)
            if len(asns) < 10:
                continue
            for _ in range(cfg.record_drop_events_per_source):
                day = self._rng.randint(first + 10, last - 10)
                length = self._rng.randint(*cfg.record_drop_days)
                group_size = min(
                    self._rng.randint(*cfg.record_drop_group), len(asns) // 2
                )
                start_idx = self._rng.randint(0, len(asns) - group_size)
                span = Interval(day, min(day + length - 1, last))
                for asn in asns[start_idx : start_idx + group_size]:
                    self.overlay.drop_record(source, asn, span)
                self.truth.append(
                    InjectedDefect(
                        "record_drop",
                        source,
                        None,
                        span,
                        note=f"{group_size} ASNs dropped",
                    )
                )

    # -- (iv) AfriNIC duplicate records ---------------------------------------

    def inject_afrinic_duplicates(
        self, windows: Mapping[SourceKey, Tuple[Day, Day]]
    ) -> None:
        """A handful of AfriNIC ASNs carry a second, contradictory row
        (e.g. both allocated and reserved) for up to six months."""
        source = ("afrinic", EXTENDED)
        if source not in windows:
            return
        first, last = windows[source]
        registry = self.registries["afrinic"]
        allocated = [
            asn
            for asn, changes in registry.history.items()
            if any(rec is not None and rec.is_delegated for _, rec in changes)
        ]
        if not allocated:
            return
        count = min(self.config.afrinic_duplicate_count, len(allocated))
        for asn in self._rng.sample(sorted(allocated), count):
            day = self._rng.randint(first, max(first, last - 30))
            length = self._rng.randint(5, self.config.afrinic_duplicate_max_days)
            span = Interval(day, min(day + length - 1, last))
            ghost = DelegationRecord(
                registry="afrinic",
                cc="",
                asn=asn,
                reg_date=None,
                status=Status.RESERVED,
            )
            self.overlay.add_record(source, span, ghost)
            self.truth.append(
                InjectedDefect("duplicate_record", source, asn, span,
                               note="contradictory reserved duplicate")
            )

    # -- (v) registration-date defects ----------------------------------------

    def inject_future_regdates(
        self, windows: Mapping[SourceKey, Tuple[Day, Day]]
    ) -> None:
        """A few AfriNIC records show a registration date a few days in
        the *future* relative to the file date."""
        for kind in (EXTENDED, REGULAR):
            source = ("afrinic", kind)
            if source in windows:
                break
        else:
            return
        first, last = windows[source]
        registry = self.registries["afrinic"]
        candidates = []
        for asn, changes in registry.history.items():
            for day, rec in changes:
                if rec is not None and rec.is_delegated and first <= day <= last - 30:
                    candidates.append((asn, day, rec))
                    break
        count = min(self.config.future_regdate_count, len(candidates))
        for asn, day, rec in self._rng.sample(sorted(candidates, key=lambda c: c[0]), count):
            offset = self._rng.randint(1, self.config.future_regdate_max_days)
            span = Interval(day, day + offset + 3)
            wrong = day + offset
            for s in (("afrinic", REGULAR), ("afrinic", EXTENDED)):
                if s in windows:
                    self.overlay.override_date(s, asn, span, wrong)
            self.truth.append(
                InjectedDefect(
                    "future_regdate", source, asn, span,
                    note=f"date {offset} days in the future",
                )
            )

    def inject_erx_placeholders(
        self,
        windows: Mapping[SourceKey, Tuple[Day, Day]],
        transfers: Sequence[TransferRecord],
    ) -> None:
        """RIPE NCC ERX transfers lose their original registration date
        to the 1993-09-01 placeholder (the date "travels back in time")."""
        for transfer in transfers:
            if not transfer.erx or transfer.to_rir != "ripencc":
                continue
            if self._rng.random() > self.config.erx_placeholder_share:
                continue
            for kind in (REGULAR, EXTENDED):
                source = ("ripencc", kind)
                if source not in windows:
                    continue
                first, last = windows[source]
                start = max(transfer.day, first)
                if start > last:
                    continue
                self.overlay.override_date(
                    source, transfer.asn, Interval(start, last), ERX_PLACEHOLDER_DATE
                )
            self.truth.append(
                InjectedDefect(
                    "placeholder_regdate",
                    ("ripencc", REGULAR),
                    transfer.asn,
                    None,
                    note=f"true date {transfer.original_reg_date}",
                )
            )

    # -- (vi) inter-RIR inconsistencies ----------------------------------------

    def inject_stale_transfer_records(
        self,
        windows: Mapping[SourceKey, Tuple[Day, Day]],
        transfers: Sequence[TransferRecord],
    ) -> None:
        """After a transfer, the origin RIR sometimes fails to remove
        the ASN from its files for a while, so the ASN appears allocated
        in two registries simultaneously."""
        cfg = self.config
        for transfer in transfers:
            if self._rng.random() > cfg.stale_transfer_share:
                continue
            length = self._rng.randint(*cfg.stale_transfer_days)
            origin = self.registries.get(transfer.from_rir)
            if origin is None:
                continue
            ghost_rec = self._last_delegated_record(origin, transfer.asn)
            if ghost_rec is None:
                continue
            span = Interval(transfer.day, transfer.day + length)
            for kind in (REGULAR, EXTENDED):
                source = (transfer.from_rir, kind)
                if source not in windows:
                    continue
                first, last = windows[source]
                clipped = span.clamp(first, last)
                if clipped is not None:
                    self.overlay.add_record(source, clipped, ghost_rec)
            self.truth.append(
                InjectedDefect(
                    "stale_transfer_record",
                    (transfer.from_rir, EXTENDED),
                    transfer.asn,
                    span,
                    note=f"transferred to {transfer.to_rir}",
                )
            )

    def inject_mistaken_allocations(
        self, windows: Mapping[SourceKey, Tuple[Day, Day]]
    ) -> None:
        """A registry (apparently) allocates ASNs from blocks IANA never
        delegated to it, overlapping the legitimate holder's records."""
        cfg = self.config
        names = sorted(self.registries)
        if len(names) < 2:
            return
        ledger = next(iter(self.registries.values())).ledger
        allocated_pairs = []
        for name, registry in sorted(self.registries.items()):
            for asn in sorted(registry.allocated):
                allocated_pairs.append((name, asn))
        if not allocated_pairs:
            return
        count = min(cfg.mistaken_allocation_count, len(allocated_pairs))
        for owner, asn in self._rng.sample(allocated_pairs, count):
            culprit = self._rng.choice([n for n in names if n != owner])
            length = self._rng.randint(*cfg.mistaken_allocation_days)
            ghost = DelegationRecord(
                registry=culprit,
                cc="ZZ",
                asn=asn,
                reg_date=self.end_day - length,
                status=Status.ALLOCATED,
                opaque_id=f"GHOST-{culprit}-{asn}",
            )
            span = Interval(self.end_day - length, self.end_day)
            for kind in (REGULAR, EXTENDED):
                source = (culprit, kind)
                if source not in windows:
                    continue
                first, last = windows[source]
                clipped = span.clamp(first, last)
                if clipped is not None:
                    self.overlay.add_record(source, clipped, ghost)
            self.truth.append(
                InjectedDefect(
                    "mistaken_allocation",
                    (culprit, EXTENDED),
                    asn,
                    span,
                    note=f"block belongs to {ledger.rir_of(asn) or owner}",
                )
            )

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _last_delegated_record(
        registry: Registry, asn: ASN
    ) -> Optional[DelegationRecord]:
        for day, rec in reversed(registry.history.get(asn, [])):
            if rec is not None and rec.is_delegated:
                return rec
        return None

    def defects_by_kind(self) -> Dict[str, int]:
        """Ground-truth defect counts, for reports and scoring."""
        out: Dict[str, int] = {}
        for defect in self.truth:
            out[defect.kind] = out.get(defect.kind, 0) + 1
        return out
