"""Per-RIR allocation policies and reporting practices.

Appendix B of the paper documents how the five registries differ in
eligibility, deallocation/reuse, 32-bit rollout, and delegation-file
bookkeeping.  These differences *shape the data*: the §4.1 lifetime
rules branch on them (e.g. the AfriNIC registration-date exception),
and the §5 per-RIR contrasts (reallocation rates, 32-bit ramp-up) only
emerge if the simulated registries behave differently.

The values here are the library's defaults; the world simulator takes a
:class:`RirPolicy` per registry so experiments can ablate any of them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..timeline.dates import Day, from_iso
from .model import RIR_NAMES

__all__ = ["RirPolicy", "DEFAULT_POLICIES", "default_policy"]


@dataclass(frozen=True)
class RirPolicy:
    """Tunable policy knobs for one registry.

    Attributes
    ----------
    name:
        Registry identifier (``afrinic`` .. ``ripencc``).
    quarantine_days:
        Days an ASN sits in ``reserved`` after deallocation before
        returning to the available pool (§2: "quarantined for some time
        in reserved status").
    keeps_regdate_on_return:
        When a reserved ASN goes back to the *same* organization, every
        RIR except AfriNIC keeps the original registration date (§2).
        AfriNIC issues a fresh date — the §4.1 "AfriNIC exception".
    keeps_regdate_on_internal_transfer:
        RIPE NCC and APNIC do not touch the registration date when an
        ASN is transferred inside the registry (§2); the others reset it.
    reclaim_delay_days:
        Median administrative lag between the end of BGP activity and
        deallocation.  The paper (§6.1.1) measures ~6 months for APNIC
        and 10-18 months elsewhere; the simulator draws around this.
    allocation_publish_lag_max:
        Upper bound, in days, of the lag between the registration date
        and the ASN first appearing in the delegation file.  90.1%
        (AfriNIC) to 99.35% (ARIN) of ASNs appear within one day (§4.1
        fn. 6); the tail goes up to this bound.
    same_or_next_day_share:
        The share of allocations that appear in the files within one
        day of registration (drives the lag distribution).
    active_recovery_start:
        Day the registry began actively reclaiming unused/out-of-
        compliance resources (ARIN/LACNIC/RIPE NCC 2010, App. B), or
        ``None`` when the registry only reuses returned resources.
    uses_nir_blocks:
        APNIC delegates whole blocks to National Internet Registries;
        in delegation files the entire block appears allocated at once,
        blurring the true start of end-user administrative lives (§4.1).
    first_32bit_allocation:
        First day the registry hands out a 32-bit ASN (2007, except a
        first RIPE NCC delegation in December 2006 — App. B).
    default_32bit_from:
        From this day 32-bit numbers are the default unless the
        applicant requests 16-bit (2009 policy change).
    sixteen_bit_share_after_default:
        Fraction of post-default allocations still made from the 16-bit
        pool (ARIN kept ~30% even in 2020; younger RIRs 1-1.7% — §5).
    reuse_preference:
        Probability a new allocation draws from the recycled pool when
        one is available.  ARIN and RIPE NCC re-allocate "significantly
        more than the other RIRs" (§5, Table 2) thanks to their more
        aggressive reuse practices.
    """

    name: str
    quarantine_days: int
    keeps_regdate_on_return: bool
    keeps_regdate_on_internal_transfer: bool
    reclaim_delay_days: int
    allocation_publish_lag_max: int
    same_or_next_day_share: float
    active_recovery_start: Optional[Day]
    uses_nir_blocks: bool
    first_32bit_allocation: Day
    default_32bit_from: Day
    sixteen_bit_share_after_default: float
    reuse_preference: float = 0.2

    def __post_init__(self) -> None:
        if self.name not in RIR_NAMES:
            raise ValueError(f"unknown registry {self.name!r}")
        if self.quarantine_days < 1:
            raise ValueError("quarantine_days must be positive")
        if not 0.0 <= self.same_or_next_day_share <= 1.0:
            raise ValueError("same_or_next_day_share must be a fraction")
        if not 0.0 <= self.sixteen_bit_share_after_default <= 1.0:
            raise ValueError("sixteen_bit_share_after_default must be a fraction")
        if not 0.0 <= self.reuse_preference <= 1.0:
            raise ValueError("reuse_preference must be a fraction")
        if self.default_32bit_from < self.first_32bit_allocation:
            raise ValueError("32-bit default precedes first 32-bit allocation")

    def with_overrides(self, **changes) -> "RirPolicy":
        """Copy with some knobs changed (for ablation experiments)."""
        return replace(self, **changes)


def _mk(
    name: str,
    *,
    quarantine_days: int,
    keeps_regdate_on_return: bool,
    keeps_regdate_on_internal_transfer: bool,
    reclaim_delay_days: int,
    same_or_next_day_share: float,
    active_recovery_start: Optional[str],
    uses_nir_blocks: bool,
    first_32bit: str,
    default_32bit: str,
    sixteen_bit_share_after_default: float,
    reuse_preference: float,
) -> RirPolicy:
    return RirPolicy(
        name=name,
        quarantine_days=quarantine_days,
        keeps_regdate_on_return=keeps_regdate_on_return,
        keeps_regdate_on_internal_transfer=keeps_regdate_on_internal_transfer,
        reclaim_delay_days=reclaim_delay_days,
        allocation_publish_lag_max=30,
        same_or_next_day_share=same_or_next_day_share,
        active_recovery_start=(
            from_iso(active_recovery_start) if active_recovery_start else None
        ),
        uses_nir_blocks=uses_nir_blocks,
        first_32bit_allocation=from_iso(first_32bit),
        default_32bit_from=from_iso(default_32bit),
        sixteen_bit_share_after_default=sixteen_bit_share_after_default,
        reuse_preference=reuse_preference,
    )


#: Default per-registry policies, mirroring Appendix B.
DEFAULT_POLICIES: Dict[str, RirPolicy] = {
    "afrinic": _mk(
        "afrinic",
        quarantine_days=180,
        keeps_regdate_on_return=False,  # the AfriNIC exception (§4.1)
        keeps_regdate_on_internal_transfer=False,
        reclaim_delay_days=530,  # median ≈ 1.5 years (§6.1.1)
        same_or_next_day_share=0.901,
        active_recovery_start=None,
        uses_nir_blocks=False,
        first_32bit="2007-04-02",
        default_32bit="2009-07-01",
        sixteen_bit_share_after_default=0.015,
        reuse_preference=0.08,
    ),
    "apnic": _mk(
        "apnic",
        quarantine_days=90,
        keeps_regdate_on_return=True,
        keeps_regdate_on_internal_transfer=True,
        reclaim_delay_days=190,  # median > 6 months (§6.1.1)
        same_or_next_day_share=0.97,
        active_recovery_start="2004-01-01",  # always recovered actively
        uses_nir_blocks=True,
        first_32bit="2007-01-15",
        default_32bit="2009-06-01",  # strict 32-bit policy from mid-2009
        sixteen_bit_share_after_default=0.01,
        reuse_preference=0.12,
    ),
    "arin": _mk(
        "arin",
        quarantine_days=120,
        keeps_regdate_on_return=True,
        keeps_regdate_on_internal_transfer=False,
        reclaim_delay_days=320,
        same_or_next_day_share=0.9935,
        active_recovery_start="2010-01-01",  # out-of-compliance reclaims
        uses_nir_blocks=False,
        first_32bit="2007-03-01",
        # ARIN only ramps up 32-bit allocations around 2014, years
        # after the other registries (§5, Fig. 12)
        default_32bit="2014-06-01",
        sixteen_bit_share_after_default=0.30,  # ~30% 16-bit still in 2020 (§5)
        reuse_preference=0.85,
    ),
    "lacnic": _mk(
        "lacnic",
        quarantine_days=150,
        keeps_regdate_on_return=True,
        keeps_regdate_on_internal_transfer=False,
        reclaim_delay_days=330,
        same_or_next_day_share=0.96,
        active_recovery_start="2010-06-01",
        uses_nir_blocks=False,
        first_32bit="2007-02-01",
        default_32bit="2009-01-01",
        sixteen_bit_share_after_default=0.017,
        reuse_preference=0.03,
    ),
    "ripencc": _mk(
        "ripencc",
        quarantine_days=90,
        keeps_regdate_on_return=True,
        keeps_regdate_on_internal_transfer=True,
        reclaim_delay_days=310,
        same_or_next_day_share=0.98,
        active_recovery_start="2010-01-01",
        uses_nir_blocks=False,
        first_32bit="2006-12-12",  # the one 2006 delegation (App. B)
        default_32bit="2009-01-01",
        sixteen_bit_share_after_default=0.08,
        reuse_preference=0.38,
    ),
}


def default_policy(name: str) -> RirPolicy:
    """Return the library default policy for a registry."""
    try:
        return DEFAULT_POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown registry {name!r}") from None
