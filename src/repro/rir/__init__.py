"""RIR substrate: delegation records, file formats, registry state
machines, per-RIR policies, archives, and defect injection."""

from .archive import DelegationArchive, FileState, SourceWindow, Stint
from .ftp import MirrorReader, export_archive, file_name
from .formats import (
    EXTENDED_VERSION,
    REGULAR_VERSION,
    DelegationFileError,
    compress_records,
    parse_snapshot,
    serialize_snapshot,
)
from .model import (
    ARIN_REGULAR_STOP,
    FIRST_EXTENDED_FILE,
    FIRST_REGULAR_FILE,
    RIR_NAMES,
    DelegationRecord,
    DelegationSnapshot,
    Status,
)
from .overlay import EXTENDED, REGULAR, ArchiveOverlay, SourceKey
from .pitfalls import (
    ERX_PLACEHOLDER_DATE,
    InjectedDefect,
    PitfallConfig,
    PitfallInjector,
    TransferRecord,
)
from .policies import DEFAULT_POLICIES, RirPolicy, default_policy
from .whowas import HoldingRecord, Retry32BitFinding, WhoWas
from .registry import Allocation, Registry, RegistryError, Reservation

__all__ = [
    "RIR_NAMES",
    "FIRST_REGULAR_FILE",
    "FIRST_EXTENDED_FILE",
    "ARIN_REGULAR_STOP",
    "Status",
    "DelegationRecord",
    "DelegationSnapshot",
    "DelegationFileError",
    "REGULAR_VERSION",
    "EXTENDED_VERSION",
    "serialize_snapshot",
    "parse_snapshot",
    "compress_records",
    "RirPolicy",
    "DEFAULT_POLICIES",
    "default_policy",
    "Registry",
    "RegistryError",
    "Allocation",
    "Reservation",
    "ArchiveOverlay",
    "SourceKey",
    "REGULAR",
    "EXTENDED",
    "DelegationArchive",
    "FileState",
    "SourceWindow",
    "Stint",
    "PitfallInjector",
    "PitfallConfig",
    "InjectedDefect",
    "TransferRecord",
    "ERX_PLACEHOLDER_DATE",
    "MirrorReader",
    "export_archive",
    "file_name",
    "WhoWas",
    "HoldingRecord",
    "Retry32BitFinding",
]
