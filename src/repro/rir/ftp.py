"""On-disk archive layout mirroring the RIR FTP sites.

The paper collects files from five FTP sites whose layout is
``<root>/<registry>/delegated-<registry>-<YYYYMMDD>`` plus
``delegated-<registry>-extended-<YYYYMMDD>`` for the extended format.
This module materializes a :class:`~repro.rir.archive.DelegationArchive`
into that layout and reads one back, so pipelines can run against a
directory exactly as they would against a mirrored FTP tree.

Corrupt days are written as truncated files (the parser rejects them),
missing days are simply absent — faithfully reproducing what a mirror
of a flaky archive looks like.
"""

from __future__ import annotations

import datetime as _dt
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..timeline.dates import Day, to_iso
from .archive import DelegationArchive
from .formats import DelegationFileError, parse_snapshot
from .model import DelegationSnapshot
from .overlay import EXTENDED, REGULAR, SourceKey

__all__ = ["file_name", "export_archive", "MirrorReader"]

PathLike = Union[str, Path]


def file_name(source: SourceKey, day: Day) -> str:
    """The FTP-style file name for one day's delegation file."""
    registry, kind = source
    stamp = _dt.date.fromordinal(day).strftime("%Y%m%d")
    if kind == EXTENDED:
        return f"delegated-{registry}-extended-{stamp}"
    return f"delegated-{registry}-{stamp}"


def export_archive(
    archive: DelegationArchive,
    root: PathLike,
    *,
    start: Optional[Day] = None,
    end: Optional[Day] = None,
    registries: Optional[List[str]] = None,
) -> int:
    """Write an archive (or a day range of it) as an FTP-style tree.

    Returns the number of files written.  Corrupt days produce
    deliberately truncated files; missing days produce nothing.
    """
    root = Path(root)
    written = 0
    for window in archive.sources():
        registry, _kind = window.source
        if registries is not None and registry not in registries:
            continue
        directory = root / registry
        directory.mkdir(parents=True, exist_ok=True)
        lo = window.first_day if start is None else max(start, window.first_day)
        hi = window.last_day if end is None else min(end, window.last_day)
        for day in range(lo, hi + 1):
            text = archive.file_text(window.source, day)
            if text is None:
                continue
            (directory / file_name(window.source, day)).write_text(text, encoding="utf-8")
            written += 1
    return written


class MirrorReader:
    """Read a directory tree written by :func:`export_archive`.

    Provides day iteration and parsed snapshots with the same
    missing/corrupt semantics the in-memory archive exposes, so the
    restoration pipeline's inputs can come from disk.
    """

    def __init__(self, root: PathLike) -> None:
        self._root = Path(root)
        if not self._root.is_dir():
            raise FileNotFoundError(f"no archive mirror at {self._root}")
        self._index: Dict[SourceKey, Dict[Day, Path]] = {}
        self._scan()

    def _scan(self) -> None:
        for registry_dir in sorted(self._root.iterdir()):
            if not registry_dir.is_dir():
                continue
            registry = registry_dir.name
            for path in sorted(registry_dir.iterdir()):
                parsed = self._parse_name(registry, path.name)
                if parsed is None:
                    continue
                source, day = parsed
                self._index.setdefault(source, {})[day] = path

    @staticmethod
    def _parse_name(registry: str, name: str) -> Optional[Tuple[SourceKey, Day]]:
        prefix_ext = f"delegated-{registry}-extended-"
        prefix_reg = f"delegated-{registry}-"
        if name.startswith(prefix_ext):
            kind, stamp = EXTENDED, name[len(prefix_ext):]
        elif name.startswith(prefix_reg):
            kind, stamp = REGULAR, name[len(prefix_reg):]
        else:
            return None
        if len(stamp) != 8 or not stamp.isdigit():
            return None
        try:
            day = _dt.date(int(stamp[:4]), int(stamp[4:6]), int(stamp[6:8])).toordinal()
        except ValueError:
            return None
        return (registry, kind), day

    def sources(self) -> List[SourceKey]:
        return sorted(self._index)

    def days(self, source: SourceKey) -> List[Day]:
        """Days with a file on disk, ascending."""
        return sorted(self._index.get(source, ()))

    def missing_days(self, source: SourceKey) -> List[Day]:
        """Days inside the observed span with no file (gaps)."""
        days = self.days(source)
        if not days:
            return []
        present = set(days)
        return [d for d in range(days[0], days[-1] + 1) if d not in present]

    def read(self, source: SourceKey, day: Day) -> Optional[DelegationSnapshot]:
        """Parse one day's file; ``None`` when absent.

        Raises :class:`DelegationFileError` for corrupt files — the
        §3.1 restoration treats those like missing days.
        """
        path = self._index.get(source, {}).get(day)
        if path is None:
            return None
        return parse_snapshot(path.read_text(encoding="utf-8"))

    def iter_snapshots(
        self, source: SourceKey
    ) -> Iterator[Tuple[Day, Optional[DelegationSnapshot]]]:
        """Yield (day, snapshot-or-None) over the observed span.

        Corrupt files yield ``None`` (with the day still reported), so
        consumers see the §3.1 "empty or missing file" picture.
        """
        for day in self.days(source):
            try:
                yield day, self.read(source, day)
            except DelegationFileError:
                yield day, None

    def describe(self) -> str:
        """Inventory summary, one line per source."""
        lines = []
        for source in self.sources():
            days = self.days(source)
            missing = len(self.missing_days(source))
            lines.append(
                f"{source[0]}/{source[1]}: {len(days)} files, "
                f"{to_iso(days[0])} .. {to_iso(days[-1])}, {missing} gaps"
            )
        return "\n".join(lines)
