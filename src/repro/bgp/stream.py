"""Synthetic BGPStream: daily RIB and update elements from a scenario.

The real pipeline reads RouteViews/RIS dumps through CAIDA BGPStream;
ours reads a *routing scenario*: a callable mapping each day to the set
of announcements active that day.  Route propagation over the static
AS topology turns announcements into per-peer AS paths; the stream then
yields one RIB element per (collector, peer, announcement) plus
announce/withdraw updates on inter-day changes — the same element
stream shape §3.2 consumes.

Path computation is the hot spot, so :class:`PathOracle` runs the
valley-free sweep once per announcer (the topology is static) and keeps
only the vantage ASes' paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..asn.numbers import ASN
from ..net.prefix import Prefix
from ..timeline.dates import Day
from .collector import Collector, all_peer_asns
from .messages import ANNOUNCE, RIB, WITHDRAW, BgpElement, distinct_path_asns, path_has_loop
from .routing import Path, best_paths
from .topology import AsTopology

__all__ = [
    "Announcement",
    "PathTable",
    "PathOracle",
    "SyntheticBgpStream",
    "decorate_path",
]


@dataclass(frozen=True)
class Announcement:
    """One (announcer, prefix) pair active on a day.

    ``forged_origin`` appends a different origin ASN behind the
    announcer — this single mechanism covers both ASN squatting
    (§6.1.2: the hijacker forges a dormant origin and appears as its
    transit) and fat-finger origins (§6.4: a typo of the first hop).
    ``only_peer`` makes the announcement visible through exactly one
    collector peer, modelling the spurious low-visibility data the
    2-peer rule exists to reject.  ``corrupt_loop`` mangles the path to
    contain a loop, exercising the sanitizer.
    """

    announcer: ASN
    prefix: Prefix
    forged_origin: Optional[ASN] = None
    prepend: int = 0
    only_peer: Optional[ASN] = None
    corrupt_loop: bool = False

    @property
    def origin(self) -> ASN:
        """The origin ASN observers will attribute the prefix to."""
        return self.forged_origin if self.forged_origin is not None else self.announcer

    def key(self) -> Tuple[ASN, Prefix, Optional[ASN]]:
        """Identity for day-over-day diffing (updates)."""
        return (self.announcer, self.prefix, self.forged_origin)


def decorate_path(path: Path, ann: "Announcement") -> Path:
    """Apply an announcement's path decorations (forged origin, prepend,
    loop corruption) to a propagated path.

    Shared by the object stream and the columnar activity engine so the
    two produce byte-identical paths for the same announcement.
    """
    if ann.forged_origin is not None:
        path = path + (ann.forged_origin,)
    if ann.prepend:
        path = path + (path[-1],) * ann.prepend
    if ann.corrupt_loop and len(path) >= 2:
        # repeat the first hop behind the origin: a non-adjacent
        # duplicate, i.e. a loop the sanitizer must reject
        path = path + (path[0],)
    return path


class PathTable:
    """Interns AS paths to dense integer ids with precomputed facts.

    The columnar activity engine never carries path tuples through its
    hot loops: a path is interned once, and everything the §3.2
    pipeline derives from it — the distinct ASNs it makes visible and
    whether the sanitizer rejects it as a loop — is computed at intern
    time and read back by id.  ``paths[i]``, ``distinct[i]`` and
    ``has_loop[i]`` are parallel columns over path ids.
    """

    __slots__ = ("_ids", "paths", "distinct", "has_loop")

    def __init__(self) -> None:
        self._ids: Dict[Path, int] = {}
        self.paths: List[Path] = []
        self.distinct: List[Tuple[ASN, ...]] = []
        self.has_loop: List[bool] = []

    def intern(self, path: Path) -> int:
        """Return the id of ``path``, assigning the next id when new."""
        pid = self._ids.get(path)
        if pid is None:
            pid = len(self.paths)
            self._ids[path] = pid
            self.paths.append(path)
            self.distinct.append(distinct_path_asns(path))
            self.has_loop.append(path_has_loop(path))
        return pid

    def __len__(self) -> int:
        return len(self.paths)

    def column_arrays(self) -> Dict[str, "object"]:
        """The table's columns as packed little-endian numpy arrays.

        Variable-length columns come out in CSR form over path ids:
        ``path_indptr``/``path_flat`` hold the raw path tuples (id ``i``
        spans ``flat[indptr[i]:indptr[i+1]]``), ``vis_indptr``/
        ``vis_flat`` the distinct ASNs each path makes visible (first-
        appearance order, matching :func:`distinct_path_asns`), and
        ``has_loop`` the per-id sanitizer verdict.  This is the side-
        table half of the ``bgp-records/v1`` packed format (see
        :mod:`repro.bgp.records`).
        """
        import numpy as np

        n = len(self.paths)
        path_indptr = np.zeros(n + 1, dtype=np.dtype("<i8"))
        np.cumsum([len(p) for p in self.paths], out=path_indptr[1:])
        vis_indptr = np.zeros(n + 1, dtype=np.dtype("<i8"))
        np.cumsum([len(d) for d in self.distinct], out=vis_indptr[1:])
        path_flat = np.fromiter(
            (asn for p in self.paths for asn in p),
            dtype=np.dtype("<u4"),
            count=int(path_indptr[-1]),
        )
        vis_flat = np.fromiter(
            (asn for d in self.distinct for asn in d),
            dtype=np.dtype("<u4"),
            count=int(vis_indptr[-1]),
        )
        has_loop = np.asarray(self.has_loop, dtype=np.uint8)
        return {
            "path_indptr": path_indptr,
            "path_flat": path_flat,
            "vis_indptr": vis_indptr,
            "vis_flat": vis_flat,
            "has_loop": has_loop,
        }


class PathOracle:
    """Caches best valley-free paths from vantage ASes to announcers.

    Besides the tuple-level cache the oracle keeps a :class:`PathTable`
    interning every vantage path once, so columnar consumers work with
    dense path ids instead of per-element tuples.
    """

    def __init__(
        self,
        topology: AsTopology,
        vantages: Set[ASN],
        table: Optional[PathTable] = None,
    ) -> None:
        self._topology = topology
        self._vantages = set(vantages)
        self._cache: Dict[ASN, Dict[ASN, Path]] = {}
        self.table = table if table is not None else PathTable()
        self._ids_cache: Dict[ASN, Dict[ASN, int]] = {}

    def paths_for(self, announcer: ASN) -> Dict[ASN, Path]:
        """Vantage → path map for one announcer (cached)."""
        cached = self._cache.get(announcer)
        if cached is None:
            full = best_paths(self._topology, announcer)
            cached = {v: p for v, p in full.items() if v in self._vantages}
            self._cache[announcer] = cached
        return cached

    def path_ids_for(self, announcer: ASN) -> Dict[ASN, int]:
        """Vantage → interned path id for one announcer (cached)."""
        cached = self._ids_cache.get(announcer)
        if cached is None:
            intern = self.table.intern
            cached = {v: intern(p) for v, p in self.paths_for(announcer).items()}
            self._ids_cache[announcer] = cached
        return cached


class SyntheticBgpStream:
    """Iterator factory over synthetic BGP elements.

    Parameters
    ----------
    topology:
        The static AS graph routes propagate over.
    collectors:
        Collecting infrastructure (peer sets define visibility).
    day_source:
        Callable returning the active announcements for a day.
    """

    def __init__(
        self,
        topology: AsTopology,
        collectors: Sequence[Collector],
        day_source: Callable[[Day], Sequence[Announcement]],
    ) -> None:
        self._collectors = list(collectors)
        self._day_source = day_source
        self._oracle = PathOracle(topology, all_peer_asns(collectors))

    def elements_for_day(
        self, day: Day, previous: Optional[Sequence[Announcement]] = None
    ) -> Iterator[BgpElement]:
        """All elements of one day: a RIB pass plus updates vs. ``previous``."""
        current = list(self._day_source(day))
        sequence = 0
        for ann in current:
            for element in self._emit(ann, day, sequence, RIB):
                yield element
            sequence += 1
        if previous is not None:
            prev_keys = {a.key(): a for a in previous}
            cur_keys = {a.key() for a in current}
            for ann in current:
                if ann.key() not in prev_keys:
                    for element in self._emit(ann, day, sequence, ANNOUNCE):
                        yield element
                    sequence += 1
            for key, ann in prev_keys.items():
                if key not in cur_keys:
                    for element in self._emit_withdraw(ann, day, sequence):
                        yield element
                    sequence += 1

    def elements(self, start_day: Day, end_day: Day) -> Iterator[BgpElement]:
        """Stream every element of the inclusive day range, in order."""
        previous: Optional[List[Announcement]] = None
        for day in range(start_day, end_day + 1):
            yield from self.elements_for_day(day, previous)
            previous = list(self._day_source(day))

    # -- internals ---------------------------------------------------------

    def _emit(
        self, ann: Announcement, day: Day, sequence: int, elem_type: str
    ) -> Iterator[BgpElement]:
        paths = self._oracle.paths_for(ann.announcer)
        for collector in self._collectors:
            for peer in collector.peer_asns:
                if ann.only_peer is not None and peer != ann.only_peer:
                    continue
                path = paths.get(peer)
                if path is None:
                    if ann.only_peer is not None and peer == ann.only_peer:
                        # spurious data: the peer leaks a path nobody
                        # else can corroborate
                        path = (peer, ann.announcer)
                    else:
                        continue
                path = self._decorate(path, ann)
                yield BgpElement(
                    elem_type=elem_type,
                    day=day,
                    sequence=sequence,
                    project=collector.project,
                    collector=collector.name,
                    peer_asn=peer,
                    prefix=ann.prefix,
                    as_path=path,
                )

    def _emit_withdraw(
        self, ann: Announcement, day: Day, sequence: int
    ) -> Iterator[BgpElement]:
        paths = self._oracle.paths_for(ann.announcer)
        for collector in self._collectors:
            for peer in collector.peer_asns:
                if ann.only_peer is not None and peer != ann.only_peer:
                    continue
                if peer not in paths and ann.only_peer is None:
                    continue
                yield BgpElement(
                    elem_type=WITHDRAW,
                    day=day,
                    sequence=sequence,
                    project=collector.project,
                    collector=collector.name,
                    peer_asn=peer,
                    prefix=ann.prefix,
                )

    _decorate = staticmethod(decorate_path)
