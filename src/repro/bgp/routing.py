"""Valley-free route propagation (Gao-Rexford model).

Collectors see AS paths, so the substrate must produce realistic ones.
We implement the standard three-phase propagation model: an AS exports
customer routes to everyone but peer/provider routes only to customers,
and prefers customer over peer over provider routes, breaking ties by
path length and then lowest next hop (deterministic).

:func:`best_paths` computes, for one announcing AS, the best AS path
from *every* AS in the topology to the announcer — one O(V+E) sweep per
announcement, which is what makes materializing collector RIBs cheap
enough to run daily snapshots.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Sequence, Tuple

from ..asn.numbers import ASN
from .topology import AsTopology

__all__ = ["ROUTE_CUSTOMER", "ROUTE_PEER", "ROUTE_PROVIDER", "best_paths", "as_path_to"]

#: Route preference classes, in decreasing preference.
ROUTE_CUSTOMER = 0
ROUTE_PEER = 1
ROUTE_PROVIDER = 2

Path = Tuple[ASN, ...]


def _better(
    cls_a: int, path_a: Path, cls_b: Optional[int], path_b: Optional[Path]
) -> bool:
    """True when route (cls_a, path_a) beats the incumbent (cls_b, path_b)."""
    if cls_b is None or path_b is None:
        return True
    if cls_a != cls_b:
        return cls_a < cls_b
    if len(path_a) != len(path_b):
        return len(path_a) < len(path_b)
    return path_a < path_b


def best_paths(topo: AsTopology, announcer: ASN) -> Dict[ASN, Path]:
    """Best valley-free AS path from every AS to ``announcer``.

    The returned path for AS ``x`` starts at ``x`` and ends at
    ``announcer``; the announcer itself maps to the one-element path.
    ASes with no valley-free route to the announcer are absent.
    """
    if announcer not in topo:
        return {}
    route_class: Dict[ASN, int] = {announcer: ROUTE_CUSTOMER}
    route_path: Dict[ASN, Path] = {announcer: (announcer,)}

    # Phase 1 — customer routes climb provider links (BFS = shortest).
    queue = deque([announcer])
    while queue:
        current = queue.popleft()
        path = route_path[current]
        for provider in sorted(topo.providers(current)):
            candidate = (provider,) + path
            if _better(
                ROUTE_CUSTOMER,
                candidate,
                route_class.get(provider),
                route_path.get(provider),
            ):
                route_class[provider] = ROUTE_CUSTOMER
                route_path[provider] = candidate
                queue.append(provider)

    # Phase 2 — one lateral peer hop over ASes holding customer routes.
    with_customer_route = [
        asn for asn, cls in route_class.items() if cls == ROUTE_CUSTOMER
    ]
    for asn in sorted(with_customer_route, key=lambda a: (len(route_path[a]), a)):
        path = route_path[asn]
        for peer in sorted(topo.peers(asn)):
            candidate = (peer,) + path
            if _better(
                ROUTE_PEER, candidate, route_class.get(peer), route_path.get(peer)
            ):
                route_class[peer] = ROUTE_PEER
                route_path[peer] = candidate

    # Phase 3 — descend customer links; provider routes propagate down.
    queue = deque(sorted(route_class, key=lambda a: (len(route_path[a]), a)))
    while queue:
        current = queue.popleft()
        path = route_path[current]
        for customer in sorted(topo.customers(current)):
            candidate = (customer,) + path
            if _better(
                ROUTE_PROVIDER,
                candidate,
                route_class.get(customer),
                route_path.get(customer),
            ):
                route_class[customer] = ROUTE_PROVIDER
                route_path[customer] = candidate
                queue.append(customer)

    return route_path


def as_path_to(
    paths: Dict[ASN, Path],
    vantage: ASN,
    *,
    forged_origin: Optional[ASN] = None,
    prepend: int = 0,
) -> Optional[Path]:
    """The AS path a vantage AS would report for this announcement.

    ``forged_origin`` appends a squatted origin ASN behind the real
    announcer (the §6.1.2 attack: the hijacker "disguises itself as
    their transit" by forging the origin).  ``prepend`` repeats the
    origin, modelling AS-path prepending.
    """
    path = paths.get(vantage)
    if path is None:
        return None
    if forged_origin is not None:
        path = path + (forged_origin,)
    if prepend:
        path = path + (path[-1],) * prepend
    return path


def validate_valley_free(topo: AsTopology, path: Sequence[ASN]) -> bool:
    """Check the Gao-Rexford valley-free property of a path.

    Traversing from origin to vantage (i.e. reversed reported order), a
    path must go up (customer→provider) zero or more times, cross at
    most one peer link, then go down (provider→customer).  Used by the
    tests as an oracle over :func:`best_paths` output.
    """
    hops = list(reversed(path))  # origin .. vantage
    phase = "up"
    for a, b in zip(hops, hops[1:]):
        if b in topo.providers(a):
            step = "up"
        elif b in topo.peers(a):
            step = "peer"
        elif b in topo.customers(a):
            step = "down"
        else:
            return False
        if phase == "up":
            phase = step
        elif phase == "peer":
            if step != "down":
                return False
            phase = "down"
        elif phase == "down":
            if step != "down":
                return False
    return True
