"""BGP substrate: topology, routing, collectors, streams, sanitization,
visibility accounting, and anomaly events."""

from .anomalies import (
    DANGLING,
    NOISE_ORIGIN,
    FAT_FINGER_DIGIT,
    FAT_FINGER_PREPEND,
    INTERNAL_LEAK,
    MALICIOUS_KINDS,
    MISCONFIG_KINDS,
    SQUAT_DORMANT,
    SQUAT_POST_DEALLOC,
    AnomalyEvent,
)
from .collector import (
    RIPE_RIS,
    ROUTEVIEWS,
    Collector,
    all_peer_asns,
    build_collectors,
)
from .messages import ANNOUNCE, RIB, WITHDRAW, BgpElement, path_has_loop
from .moas import (
    MoasConflict,
    MoasDetector,
    SubMoasConflict,
    find_moas,
    find_submoas,
)
from .dumps import dump_file_name, materialize_collector_dumps
from .mrt import MrtError, dump_day, load_day, read_elements, write_elements
from .routing import (
    ROUTE_CUSTOMER,
    ROUTE_PEER,
    ROUTE_PROVIDER,
    as_path_to,
    best_paths,
    validate_valley_free,
)
from .sanitize import SanitizeStats, sanitize
from .stream import Announcement, PathOracle, SyntheticBgpStream
from .topology import P2C, P2P, AsTopology, generate_topology
from .visibility import DEFAULT_MIN_PEERS, active_asns, peer_visibility

__all__ = [
    "AsTopology",
    "generate_topology",
    "P2C",
    "P2P",
    "best_paths",
    "as_path_to",
    "validate_valley_free",
    "ROUTE_CUSTOMER",
    "ROUTE_PEER",
    "ROUTE_PROVIDER",
    "Collector",
    "build_collectors",
    "all_peer_asns",
    "ROUTEVIEWS",
    "RIPE_RIS",
    "BgpElement",
    "path_has_loop",
    "RIB",
    "ANNOUNCE",
    "WITHDRAW",
    "Announcement",
    "PathOracle",
    "SyntheticBgpStream",
    "SanitizeStats",
    "sanitize",
    "peer_visibility",
    "active_asns",
    "DEFAULT_MIN_PEERS",
    "AnomalyEvent",
    "SQUAT_DORMANT",
    "SQUAT_POST_DEALLOC",
    "FAT_FINGER_PREPEND",
    "FAT_FINGER_DIGIT",
    "INTERNAL_LEAK",
    "DANGLING",
    "NOISE_ORIGIN",
    "MALICIOUS_KINDS",
    "MISCONFIG_KINDS",
    "MoasConflict",
    "SubMoasConflict",
    "MoasDetector",
    "find_moas",
    "find_submoas",
    "MrtError",
    "write_elements",
    "read_elements",
    "dump_day",
    "dump_file_name",
    "materialize_collector_dumps",
    "load_day",
]
