"""Per-collector MRT dump materialization.

RouteViews and RIPE RIS publish their RIB/update dumps *per collector*;
the paper's pipeline pulls "one full RIB dump per collector and all
update dumps available" per day (§3.2).  This module materializes that
layout from a simulated world: one directory per collector, one
MRT-style file per day, e.g. ``<out>/route-views/rib.20200101.mrt``.

Each collector's dump stream is completely independent of every other
collector's (they share the topology and the day's announcements, but
write disjoint files), which makes this the third natural fan-out axis
of the pipeline — one :class:`~repro.runtime.executor.PipelineExecutor`
task per collector.  The announcement schedule is precomputed once in
the driver so workers receive plain data, and each worker runs its own
:class:`~repro.bgp.stream.SyntheticBgpStream` restricted to a single
collector — path propagation is deterministic, so per-collector output
is bit-identical to what a serial all-collector run would have written
for that collector.
"""

from __future__ import annotations

import datetime as _dt
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..timeline.dates import Day
from ..runtime.executor import ExecutorSpec, resolve_executor
from .collector import Collector
from .mrt import dump_day
from .stream import Announcement, SyntheticBgpStream
from .topology import AsTopology

__all__ = ["dump_file_name", "materialize_collector_dumps"]

PathLike = Union[str, Path]


def dump_file_name(day: Day) -> str:
    """RouteViews-style file name for one day's RIB+updates dump."""
    return f"rib.{_dt.date.fromordinal(day).strftime('%Y%m%d')}.mrt"


def _collector_dump_task(
    payload: Tuple[
        AsTopology,
        Collector,
        Dict[Day, List[Announcement]],
        Day,
        Day,
        str,
    ],
) -> Tuple[str, int, int]:
    """Write one collector's dump files for a day range.

    Returns (collector name, files written, elements written).
    """
    topology, collector, announcements, start, end, out_root = payload
    directory = Path(out_root) / collector.name
    directory.mkdir(parents=True, exist_ok=True)
    stream = SyntheticBgpStream(
        topology, [collector], lambda day: announcements.get(day, [])
    )
    files = elements = 0
    previous: Optional[List[Announcement]] = None
    for day in range(start, end + 1):
        day_elements = list(stream.elements_for_day(day, previous))
        previous = announcements.get(day, [])
        elements += dump_day(day_elements, directory / dump_file_name(day))
        files += 1
    return collector.name, files, elements


def materialize_collector_dumps(
    topology: AsTopology,
    collectors: Sequence[Collector],
    announcements_by_day: Mapping[Day, Sequence[Announcement]],
    out_root: PathLike,
    *,
    start: Day,
    end: Day,
    executor: ExecutorSpec = None,
) -> Dict[str, Tuple[int, int]]:
    """Materialize per-collector MRT dumps for a day range.

    Parameters
    ----------
    topology, collectors:
        The collecting infrastructure (from a simulated
        :class:`~repro.simulation.world.World`).
    announcements_by_day:
        Day → active announcements; typically precomputed from
        ``world.announcements_for_day`` so workers get plain data.
    out_root:
        Directory receiving one sub-directory per collector.
    start, end:
        Inclusive day range.
    executor:
        Execution backend (or spec); one task per collector.

    Returns
    -------
    collector name → (files written, elements written), in collector
    order.
    """
    if end < start:
        raise ValueError("end day precedes start day")
    spec = executor
    executor = resolve_executor(spec)
    schedule: Dict[Day, List[Announcement]] = {
        day: list(announcements_by_day.get(day, []))
        for day in range(start, end + 1)
    }
    payloads = [
        (topology, collector, schedule, start, end, str(out_root))
        for collector in collectors
    ]
    try:
        results = executor.map(_collector_dump_task, payloads)
    finally:
        if executor is not spec:
            executor.close()
    return {name: (files, elements) for name, files, elements in results}
