"""Collector infrastructure: RouteViews and RIPE RIS vantage points.

Both projects operate collectors that full-feed BGP sessions with
volunteer peer ASes; an element's provenance is (project, collector,
peer).  The paper's activity rule — an ASN is active on a day only if
*more than one distinct peer* shares paths containing it (§3.2) —
makes the peer set the load-bearing part of this model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ..asn.numbers import ASN
from .topology import AsTopology

__all__ = ["ROUTEVIEWS", "RIPE_RIS", "Collector", "build_collectors", "all_peer_asns"]

ROUTEVIEWS = "routeviews"
RIPE_RIS = "ris"


@dataclass(frozen=True)
class Collector:
    """One collector and the peer ASes feeding it."""

    name: str
    project: str
    peer_asns: Tuple[ASN, ...]

    def __post_init__(self) -> None:
        if self.project not in (ROUTEVIEWS, RIPE_RIS):
            raise ValueError(f"unknown project {self.project!r}")
        if len(set(self.peer_asns)) != len(self.peer_asns):
            raise ValueError(f"duplicate peers on {self.name}")


def build_collectors(
    topology: AsTopology,
    *,
    seed: int = 0,
    routeviews_count: int = 3,
    ris_count: int = 3,
    peers_per_collector: int = 6,
) -> List[Collector]:
    """Attach collectors to well-connected ASes of a topology.

    Real collector peers are mostly transit networks (stubs rarely run
    full feeds), so peers are drawn from the non-stub ASes, weighted
    toward high degree; collectors may share peers, as in reality.
    """
    rng = random.Random(seed)
    candidates = sorted(
        (asn for asn in topology.asns() if not topology.is_stub(asn)),
        key=lambda a: (-topology.degree(a), a),
    )
    if not candidates:
        raise ValueError("topology has no transit ASes to peer with")
    pool = candidates[: max(len(candidates) // 2, peers_per_collector * 2)]
    collectors = []
    specs = [(ROUTEVIEWS, f"route-views{i or ''}") for i in range(routeviews_count)]
    specs += [(RIPE_RIS, f"rrc{i:02d}") for i in range(ris_count)]
    for project, name in specs:
        k = min(peers_per_collector, len(pool))
        peers = tuple(sorted(rng.sample(pool, k)))
        collectors.append(Collector(name=name, project=project, peer_asns=peers))
    return collectors


def all_peer_asns(collectors: Sequence[Collector]) -> Set[ASN]:
    """The union of peer ASes across the collecting infrastructure."""
    out: Set[ASN] = set()
    for collector in collectors:
        out.update(collector.peer_asns)
    return out


def peers_by_collector(collectors: Sequence[Collector]) -> Dict[str, Tuple[ASN, ...]]:
    """Map collector name to its peer tuple."""
    return {c.name: c.peer_asns for c in collectors}
