"""BGP record types, shaped after CAIDA BGPStream elements.

The paper processes "one full RIB dump per collector and all update
dumps available" per day through BGPStream (§3.2).  Our synthetic
stream yields the same element shape: RIB entries (``R``), announcements
(``A``) and withdrawals (``W``), each tagged with the project/collector
/peer that observed it.

Times are day ordinals plus an intra-day sequence number — the entire
analysis is daily, so sub-day timing only needs to be ordered, not
realistic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..asn.numbers import ASN
from ..net.prefix import Prefix
from ..timeline.dates import Day

__all__ = [
    "RIB",
    "ANNOUNCE",
    "WITHDRAW",
    "BgpElement",
    "path_has_loop",
    "distinct_path_asns",
]

RIB = "R"
ANNOUNCE = "A"
WITHDRAW = "W"


def path_has_loop(as_path: Tuple[ASN, ...]) -> bool:
    """True when an ASN repeats non-consecutively in the path.

    Consecutive repetitions are legitimate AS-path prepending; the same
    ASN appearing again after a different hop indicates a routing loop,
    which §3.2 discards as "often related to misconfigurations".
    """
    seen = set()
    previous: Optional[ASN] = None
    for asn in as_path:
        if asn == previous:
            continue
        if asn in seen:
            return True
        seen.add(asn)
        previous = asn
    return False


def distinct_path_asns(as_path: Tuple[ASN, ...]) -> Tuple[ASN, ...]:
    """Distinct ASNs of a path, in order of first appearance.

    Shared by :meth:`BgpElement.path_asns` and the columnar activity
    engine's path table, which precomputes this once per interned path.
    """
    out = []
    seen = set()
    for asn in as_path:
        if asn not in seen:
            seen.add(asn)
            out.append(asn)
    return tuple(out)


@dataclass(frozen=True)
class BgpElement:
    """One observed BGP element, as a BGPStream consumer would see it."""

    elem_type: str  # RIB / ANNOUNCE / WITHDRAW
    day: Day
    sequence: int
    project: str
    collector: str
    peer_asn: ASN
    prefix: Prefix
    as_path: Tuple[ASN, ...] = ()

    def __post_init__(self) -> None:
        if self.elem_type not in (RIB, ANNOUNCE, WITHDRAW):
            raise ValueError(f"unknown element type {self.elem_type!r}")
        if self.elem_type != WITHDRAW and not self.as_path:
            raise ValueError("RIB/announce elements need an AS path")

    @property
    def origin(self) -> Optional[ASN]:
        """The origin ASN (last hop of the path); ``None`` on withdrawals."""
        return self.as_path[-1] if self.as_path else None

    @property
    def has_loop(self) -> bool:
        cached = self.__dict__.get("_has_loop")
        if cached is None:
            cached = path_has_loop(self.as_path)
            object.__setattr__(self, "_has_loop", cached)
        return cached

    def path_asns(self) -> Tuple[ASN, ...]:
        """Distinct ASNs on the path, in order of first appearance.

        Every ASN in the path counts as "seen in BGP" that day (§3.2
        tracks "ASNs that appear in BGP paths", transit included).
        Memoized per element: sanitization, visibility accounting, and
        the role analyses all decode the same path, and the element is
        frozen, so the decode is paid once.
        """
        cached = self.__dict__.get("_path_asns")
        if cached is None:
            cached = distinct_path_asns(self.as_path)
            object.__setattr__(self, "_path_asns", cached)
        return cached

    def describe(self) -> str:
        """Compact human-readable rendering for examples and logs."""
        path = " ".join(str(a) for a in self.as_path) or "-"
        return (
            f"{self.elem_type}|{self.collector}|peer {self.peer_asn}|"
            f"{self.prefix}|{path}"
        )
