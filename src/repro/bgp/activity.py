"""Columnar BGP activity engine: interned paths, peer bitsets, day diffs.

The object pipeline (§3.2 → §4.2) materializes one :class:`BgpElement`
per (collector, peer, announcement) per day and rebuilds
``Dict[ASN, Set[ASN]]`` visibility maps from scratch every day, even
though consecutive days share almost all announcements.  This engine
exploits that redundancy the way long-lived BGP studies diff snapshots
instead of re-reading them:

* **Path interning** — every propagated AS path is interned once in a
  :class:`~repro.bgp.stream.PathTable`; the distinct ASNs it makes
  visible and its sanitizer verdict (loop) are computed at intern time
  and read back by dense id.
* **Contribution interning** — an announcement's entire sanitized
  element fan-out (which (path id, peer) pairs survive §3.2, how many
  elements each drop reason removes) is a pure function of the
  announcement under a static topology, so it is computed once and
  replayed as flat integer arrays.
* **Incremental day diffing** — each day's announcement multiset is
  diffed against the previous day's; only the (path, peer) pairs that
  appear or disappear touch the counters, and only ASNs whose
  supporting paths changed have their visibility class re-derived.
  When a day replaces more than ``full_rebuild_fraction`` of the live
  announcements (a topology-scale shift), the engine falls back to a
  full recompute of the counters — by construction this yields the
  same classes, so the fallback is a performance valve, not a
  semantics switch.
* **Peer bitset counters** — per-ASN visibility is an integer row of
  live-pair counts per peer slot plus a running visible-peer count; a
  day is classified (observed / single-peer / silent) by comparing
  that count to the threshold, with no set churn.

Output is **byte-identical** to the object path: for every day in the
window, the engine's per-ASN classes equal what
``peer_visibility(sanitize(stream.elements_for_day(day)))`` derives
(announce updates duplicate RIB pairs and withdrawals carry no path,
so only the RIB pass shapes visibility).  The equivalence is pinned by
property tests and by the scaling benchmark's determinism asserts.

Per-day/per-chunk work fans out over the :mod:`repro.runtime`
executors under the usual determinism contract: the day range is split
into fixed-size chunks (boundaries never depend on the worker count),
each worker replays its chunk from the announcement multiset live at
the chunk's first day, and per-ASN activity runs are merged back in
chunk order, coalescing runs that span a boundary.
"""

from __future__ import annotations

from array import array
from collections import Counter
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..asn.numbers import ASN
from ..runtime.executor import ExecutorSpec, resolve_executor
from ..runtime.ledger import ledger_enabled
from ..timeline.dates import Day
from ..timeline.intervals import Interval, IntervalSet
from .collector import Collector, all_peer_asns
from .messages import BgpElement  # noqa: F401  (re-exported shape reference)
from .sanitize import REASON_LOOP, REASON_PREFIX_LENGTH
from .stream import Announcement, PathOracle, PathTable, decorate_path
from .topology import AsTopology
from .visibility import DEFAULT_MIN_PEERS

__all__ = [
    "DEFAULT_DAY_CHUNK",
    "DEFAULT_REBUILD_FRACTION",
    "Contribution",
    "ContributionIndex",
    "ActivityEngine",
    "ActivityReport",
    "AnnouncementSchedule",
    "DayVisibility",
    "day_visibility",
    "schedule_from_day_source",
    "schedule_from_world",
    "build_activity_tables",
    "build_world_activity_tables",
]

#: Days per executor chunk.  Fixed (never derived from the worker
#: count) so chunk boundaries — and therefore the merged output — are
#: identical under every backend.
DEFAULT_DAY_CHUNK = 512

#: When one day's diff replaces more than this fraction of the live
#: announcement multiset, rebuild the counters from scratch instead of
#: applying the diff (see the module docstring).
DEFAULT_REBUILD_FRACTION = 0.5

#: Multiset as (announcement, count) pairs — the picklable form used in
#: schedules and executor payloads.
_Items = List[Tuple[Announcement, int]]

#: Engine run class → ledger bucket name (class 2 = observed by ≥
#: ``min_corroboration`` peers, class 1 = single-peer).
_CLASS_NAMES = {2: "observed", 1: "single_peer"}


@dataclass(frozen=True)
class Contribution:
    """One announcement's sanitized element fan-out, computed once.

    ``pairs`` holds the surviving (path id, peer index) pairs packed as
    ``pid * n_peers + peer_index`` — distinct and sorted, since
    visibility is idempotent in duplicate elements.  ``kept`` and
    ``dropped`` count the elements one RIB pass of the object stream
    would have materialized, so sanitize accounting stays exact.
    """

    pairs: Tuple[int, ...]
    kept: int
    dropped: Tuple[Tuple[str, int], ...]

    @property
    def elements(self) -> int:
        """Elements of one RIB pass (kept + dropped)."""
        return self.kept + sum(n for _, n in self.dropped)


class ContributionIndex:
    """announcement → :class:`Contribution`, interned once each.

    Replicates ``SyntheticBgpStream._emit`` + :func:`sanitize` exactly:
    per collector peer, the propagated path is looked up (or the
    spurious single-peer path synthesized), decorated, and checked
    against the §3.2 prefix-length and loop rules.  All of it happens
    once per unique announcement; afterwards a day's worth of elements
    is a handful of integer reads.
    """

    def __init__(
        self,
        topology: AsTopology,
        collectors: Sequence[Collector],
        table: Optional[PathTable] = None,
    ) -> None:
        self._collectors = list(collectors)
        self._oracle = PathOracle(topology, all_peer_asns(collectors), table=table)
        self.peers: List[ASN] = sorted(all_peer_asns(collectors))
        self._peer_index: Dict[ASN, int] = {p: i for i, p in enumerate(self.peers)}
        self._cache: Dict[Announcement, Contribution] = {}
        #: Wall time spent computing new contributions (the columnar
        #: equivalent of the object path's stream + sanitize work).
        self.compute_seconds = 0.0

    @property
    def n_peers(self) -> int:
        return len(self.peers)

    def __len__(self) -> int:
        """Unique announcements interned so far."""
        return len(self._cache)

    @property
    def table(self) -> PathTable:
        return self._oracle.table

    def contribution(self, ann: Announcement) -> Contribution:
        cached = self._cache.get(ann)
        if cached is None:
            start = perf_counter()
            cached = self._compute(ann)
            self.compute_seconds += perf_counter() - start
            self._cache[ann] = cached
        return cached

    def _compute(self, ann: Announcement) -> Contribution:
        table = self._oracle.table
        raw_ids = self._oracle.path_ids_for(ann.announcer)
        routable = ann.prefix.is_globally_routable_length()
        plain = (
            ann.forged_origin is None
            and not ann.prepend
            and not ann.corrupt_loop
        )
        n_peers = len(self.peers)
        peer_index = self._peer_index
        pairs: Set[int] = set()
        kept = 0
        dropped_prefix = 0
        dropped_loop = 0
        for collector in self._collectors:
            for peer in collector.peer_asns:
                if ann.only_peer is not None and peer != ann.only_peer:
                    continue
                pid = raw_ids.get(peer)
                if pid is None:
                    if ann.only_peer is not None and peer == ann.only_peer:
                        # spurious data: the peer leaks a path nobody
                        # else can corroborate
                        pid = table.intern((peer, ann.announcer))
                    else:
                        continue
                if not plain:
                    pid = table.intern(decorate_path(table.paths[pid], ann))
                if not routable:
                    dropped_prefix += 1
                    continue
                if table.has_loop[pid]:
                    dropped_loop += 1
                    continue
                kept += 1
                pairs.add(pid * n_peers + peer_index[peer])
        dropped: List[Tuple[str, int]] = []
        if dropped_loop:
            dropped.append((REASON_LOOP, dropped_loop))
        if dropped_prefix:
            dropped.append((REASON_PREFIX_LENGTH, dropped_prefix))
        return Contribution(
            pairs=tuple(sorted(pairs)), kept=kept, dropped=tuple(dropped)
        )


class ActivityEngine:
    """Incremental per-day visibility classifier over announcement diffs.

    Feed it ascending-day multiset diffs via :meth:`apply`; it maintains
    live (path, peer) pair counts, per-ASN peer-bitset counter rows, and
    open activity runs, and closes runs only when an ASN's visibility
    class actually changes.  :meth:`finish` returns the per-ASN runs
    ``[(class, start, end), ...]`` where class 2 = observed (≥
    ``min_corroboration`` peers) and class 1 = single-peer.
    """

    def __init__(
        self,
        topology: AsTopology,
        collectors: Sequence[Collector],
        *,
        min_corroboration: int = DEFAULT_MIN_PEERS,
        full_rebuild_fraction: float = DEFAULT_REBUILD_FRACTION,
        table: Optional[PathTable] = None,
    ) -> None:
        if min_corroboration < 1:
            raise ValueError("min_corroboration must be at least 1")
        self._index = ContributionIndex(topology, collectors, table=table)
        self._min_corr = min_corroboration
        self._rebuild_fraction = full_rebuild_fraction
        self._n_peers = self._index.n_peers
        self._zero_row = array("i", bytes(4 * (self._n_peers + 1)))
        # live state
        self._live: Counter = Counter()
        self._live_total = 0
        self._pair_count: Dict[int, int] = {}
        self._rows: Dict[ASN, array] = {}
        # run bookkeeping
        self._run_class: Dict[ASN, int] = {}
        self._run_start: Dict[ASN, Day] = {}
        self._runs: Dict[ASN, List[Tuple[int, Day, Day]]] = {}
        self._last_day: Optional[Day] = None
        # sanitize accounting: current per-day rates and day-weighted totals
        self._rate_kept = 0
        self._rate_dropped: Counter = Counter()
        self.kept = 0
        self.dropped: Counter = Counter()
        self.rebuilds = 0

    @property
    def index(self) -> ContributionIndex:
        return self._index

    @property
    def peers(self) -> List[ASN]:
        return self._index.peers

    @property
    def elements(self) -> int:
        """Day-weighted element count the object stream would have built."""
        return self.kept + sum(self.dropped.values())

    # -- per-day driving ---------------------------------------------------

    def apply(
        self,
        day: Day,
        added: Iterable[Announcement] = (),
        removed: Iterable[Announcement] = (),
    ) -> None:
        """Apply one day's announcement diff (multisets; ascending days)."""
        if self._last_day is not None and day <= self._last_day:
            raise ValueError("apply() days must be strictly ascending")
        self._advance(day)
        added = added if isinstance(added, Counter) else Counter(added)
        removed = removed if isinstance(removed, Counter) else Counter(removed)
        change = sum(added.values()) + sum(removed.values())
        if not change:
            return
        for ann, count in removed.items():
            left = self._live[ann] - count
            if left < 0:
                raise ValueError(f"removing more {ann!r} than live")
            if left:
                self._live[ann] = left
            else:
                del self._live[ann]
        self._live.update(added)
        self._live_total += sum(added.values()) - sum(removed.values())
        touched: Set[ASN] = set()
        if change > self._rebuild_fraction * max(1, self._live_total):
            self._rebuild(touched)
        else:
            for ann, count in removed.items():
                self._apply_contribution(ann, -count, touched)
            for ann, count in added.items():
                self._apply_contribution(ann, count, touched)
        self._commit(day, touched)

    def finish(self, end: Day) -> Dict[ASN, List[Tuple[int, Day, Day]]]:
        """Close all open runs at ``end`` and return the per-ASN runs."""
        self._advance(end + 1)
        for asn, cls in self._run_class.items():
            self._runs.setdefault(asn, []).append((cls, self._run_start[asn], end))
        self._run_class.clear()
        self._run_start.clear()
        return self._runs

    # -- internals ---------------------------------------------------------

    def _advance(self, day: Day) -> None:
        """Accumulate day-weighted sanitize totals up to (excluding) ``day``."""
        if self._last_day is not None:
            span = day - self._last_day
            self.kept += self._rate_kept * span
            for reason, n in self._rate_dropped.items():
                if n:
                    self.dropped[reason] += n * span
        self._last_day = day

    def _apply_contribution(
        self, ann: Announcement, delta: int, touched: Set[ASN]
    ) -> None:
        contrib = self._index.contribution(ann)
        self._rate_kept += delta * contrib.kept
        for reason, n in contrib.dropped:
            self._rate_dropped[reason] += delta * n
        n_peers = self._n_peers
        pair_count = self._pair_count
        distinct = self._index.table.distinct
        rows = self._rows
        zero = self._zero_row
        for key in contrib.pairs:
            old = pair_count.get(key, 0)
            new = old + delta
            if new:
                pair_count[key] = new
            else:
                del pair_count[key]
            if (old == 0) == (new == 0):
                continue  # pair liveness unchanged
            live_delta = 1 if old == 0 else -1
            pid, peer = divmod(key, n_peers)
            for asn in distinct[pid]:
                row = rows.get(asn)
                if row is None:
                    row = array("i", zero)
                    rows[asn] = row
                count = row[peer] + live_delta
                row[peer] = count
                if count == (1 if live_delta > 0 else 0):
                    row[n_peers] += live_delta
                    touched.add(asn)

    def _rebuild(self, touched: Set[ASN]) -> None:
        """Full recompute of the counters from the live multiset."""
        self.rebuilds += 1
        previously_visible = set(self._rows)
        self._pair_count = {}
        self._rows = {}
        self._rate_kept = 0
        self._rate_dropped = Counter()
        for ann, count in self._live.items():
            self._apply_contribution(ann, count, touched)
        touched.update(previously_visible)

    def _commit(self, day: Day, touched: Set[ASN]) -> None:
        """Open/close activity runs for ASNs whose class changed today."""
        n_peers = self._n_peers
        min_corr = self._min_corr
        for asn in touched:
            row = self._rows.get(asn)
            visible = row[n_peers] if row is not None else 0
            new_class = 2 if visible >= min_corr else (1 if visible == 1 else 0)
            old_class = self._run_class.get(asn, 0)
            if new_class == old_class:
                continue
            if old_class:
                self._runs.setdefault(asn, []).append(
                    (old_class, self._run_start[asn], day - 1)
                )
            if new_class:
                self._run_class[asn] = new_class
                self._run_start[asn] = day
            else:
                del self._run_class[asn]
                del self._run_start[asn]


class DayVisibility:
    """Columnar view of one day's visibility counters.

    Duck-types the shim protocol of :func:`repro.bgp.visibility.
    peer_visibility` / ``active_asns``: passing this object where an
    element iterable is expected answers from the bitset counters
    without materializing any :class:`BgpElement`.
    """

    def __init__(self, peers: Sequence[ASN], rows: Mapping[ASN, array]) -> None:
        self._peers = list(peers)
        self._rows = rows

    def peer_visibility(self) -> Dict[ASN, Set[ASN]]:
        """Materialize the legacy asn → peer-set mapping."""
        n = len(self._peers)
        peers = self._peers
        return {
            asn: {peers[i] for i in range(n) if row[i]}
            for asn, row in self._rows.items()
            if row[n]
        }

    def active_asns(self, min_peers: int = DEFAULT_MIN_PEERS) -> Set[ASN]:
        """ASNs visible through at least ``min_peers`` distinct peers."""
        n = len(self._peers)
        return {asn for asn, row in self._rows.items() if row[n] >= min_peers}


def day_visibility(
    topology: AsTopology,
    collectors: Sequence[Collector],
    announcements: Iterable[Announcement],
) -> DayVisibility:
    """One day's visibility, computed columnar (no element objects)."""
    engine = ActivityEngine(topology, collectors)
    engine.apply(0, Counter(announcements))
    return DayVisibility(engine.peers, engine._rows)


# -- schedules --------------------------------------------------------------


@dataclass
class AnnouncementSchedule:
    """Event-compressed announcement timeline for a day window.

    ``base`` is the announcement multiset live on ``start``;
    ``changes`` lists, for the (strictly ascending) days in
    ``(start, end]`` where the multiset changes, the added and removed
    announcement multisets.  This is the engine's native input: days
    absent from ``changes`` cost nothing at all.
    """

    start: Day
    end: Day
    base: _Items = field(default_factory=list)
    changes: List[Tuple[Day, _Items, _Items]] = field(default_factory=list)

    @property
    def changed_days(self) -> int:
        return len(self.changes)


def schedule_from_day_source(
    day_source: Callable[[Day], Sequence[Announcement]],
    start: Day,
    end: Day,
) -> AnnouncementSchedule:
    """Diff per-day announcement lists into a schedule.

    The generic adapter for arbitrary scenarios: each day's list is
    materialized once and diffed (as a multiset) against the previous
    day's.  Identical consecutive lists short-circuit before counting.
    """
    if end < start:
        raise ValueError("end day precedes start day")
    schedule = AnnouncementSchedule(start=start, end=end)
    prev_list: Optional[List[Announcement]] = None
    prev: Counter = Counter()
    for day in range(start, end + 1):
        cur_list = list(day_source(day))
        if prev_list is not None and cur_list == prev_list:
            continue
        cur = Counter(cur_list)
        if prev_list is None:
            schedule.base = list(cur.items())
        else:
            added = cur - prev
            removed = prev - cur
            if added or removed:
                schedule.changes.append(
                    (day, list(added.items()), list(removed.items()))
                )
        prev_list, prev = cur_list, cur
    return schedule


def schedule_from_world(world, start: Day, end: Day) -> AnnouncementSchedule:
    """Build the schedule straight from a simulated world's intervals.

    Equivalent to diffing ``world.announcements_for_day`` over every
    day (the equivalence tests pin this), but built from the interval
    endpoints directly: legitimate activity, anomaly events, and
    spurious single-peer observations each contribute constant
    announcements over known day spans, so no per-day list is ever
    materialized.
    """
    if end < start:
        raise ValueError("end day precedes start day")
    base: Counter = Counter()
    adds: Dict[Day, List[Announcement]] = {}
    removes: Dict[Day, List[Announcement]] = {}

    def span(ann: Announcement, first: Day, last: Day) -> None:
        if first == start:
            base[ann] += 1
        else:
            adds.setdefault(first, []).append(ann)
        if last < end:
            removes.setdefault(last + 1, []).append(ann)

    for asn, days in world.legit_activity.items():
        prefix = world.prefixes.own_prefix(asn)
        for iv in days.clamp(start, end):
            span(Announcement(asn, prefix), iv.start, iv.end)
    for event in world.events:
        window = event.interval.clamp(start, end)
        if window is None:
            continue
        for ann in event.announcements(window.start):
            span(ann, window.start, window.end)
    for asn, activity in world.activities.items():
        spurious = activity.single_peer.clamp(start, end)
        if not spurious:
            continue
        peer = world.collectors[0].peer_asns[0]
        ann = Announcement(asn, world.prefixes.own_prefix(asn), only_peer=peer)
        for iv in spurious:
            span(ann, iv.start, iv.end)

    schedule = AnnouncementSchedule(start=start, end=end, base=list(base.items()))
    for day in sorted(set(adds) | set(removes)):
        schedule.changes.append(
            (
                day,
                list(Counter(adds.get(day, ())).items()),
                list(Counter(removes.get(day, ())).items()),
            )
        )
    return schedule


# -- chunked execution ------------------------------------------------------


@dataclass
class ActivityReport:
    """What one activity-table build processed (for profiling and docs)."""

    days: int
    changed_days: int
    chunks: int
    elements: int
    kept: int
    dropped: Dict[str, int]
    rebuilds: int
    #: Unique announcement contributions interned across all chunks
    #: (each is one sanitized fan-out computed exactly once).
    contributions: int = 0
    stream_seconds: float = 0.0
    sanitize_seconds: float = 0.0
    visibility_seconds: float = 0.0
    #: ASN-day totals per visibility class *before* the cross-chunk run
    #: merge (ledger input side).  Empty when the ledger is disabled.
    class_days_in: Dict[str, int] = field(default_factory=dict)
    #: The same totals *after* run coalescing; the merge must conserve
    #: them exactly (coalescing joins contiguous runs, never day counts).
    class_days: Dict[str, int] = field(default_factory=dict)


def _activity_chunk_task(payload):
    """Replay one contiguous day chunk of a schedule.

    Module-level (picklable) and pure in its payload, like every
    pipeline fan-out task.  Returns the chunk's per-ASN runs plus its
    sanitize accounting.
    """
    (
        topology,
        collectors,
        base,
        changes,
        chunk_start,
        chunk_end,
        min_corr,
        rebuild_fraction,
    ) = payload
    engine = ActivityEngine(
        topology,
        collectors,
        min_corroboration=min_corr,
        full_rebuild_fraction=rebuild_fraction,
    )
    engine.apply(chunk_start, Counter(dict(base)))
    for day, added, removed in changes:
        engine.apply(day, Counter(dict(added)), Counter(dict(removed)))
    runs = engine.finish(chunk_end)
    return (
        runs,
        engine.kept,
        dict(engine.dropped),
        engine.rebuilds,
        len(engine.index),
        engine.index.compute_seconds,
    )


def _run_schedule(
    topology: AsTopology,
    collectors: Sequence[Collector],
    schedule: AnnouncementSchedule,
    *,
    min_corroboration: int,
    executor: ExecutorSpec,
    day_chunk: int,
    full_rebuild_fraction: float,
) -> Tuple[Dict[ASN, List[Tuple[int, Day, Day]]], ActivityReport]:
    """Fan a schedule out over fixed day chunks and merge the runs."""
    if day_chunk < 1:
        raise ValueError("day_chunk must be >= 1")
    start, end = schedule.start, schedule.end
    chunk_starts = list(range(start, end + 1, day_chunk))

    def apply_items(live: Counter, added: _Items, removed: _Items) -> None:
        for ann, count in added:
            live[ann] += count
        for ann, count in removed:
            left = live[ann] - count
            if left:
                live[ann] = left
            else:
                del live[ann]

    # One linear replay of the (event-compressed) change list yields
    # every chunk's base multiset and its in-chunk changes.
    collectors = list(collectors)
    task_payloads = []
    live: Counter = Counter(dict(schedule.base))
    changes = schedule.changes
    idx, n_changes = 0, len(changes)
    for chunk_start in chunk_starts:
        chunk_end = min(chunk_start + day_chunk - 1, end)
        # a change landing exactly on the chunk's first day folds into
        # its base (the worker's first apply() is that day)
        while idx < n_changes and changes[idx][0] <= chunk_start:
            apply_items(live, changes[idx][1], changes[idx][2])
            idx += 1
        base = list(live.items())
        chunk_changes: List[Tuple[Day, _Items, _Items]] = []
        while idx < n_changes and changes[idx][0] <= chunk_end:
            chunk_changes.append(changes[idx])
            apply_items(live, changes[idx][1], changes[idx][2])
            idx += 1
        task_payloads.append(
            (
                topology,
                collectors,
                base,
                chunk_changes,
                chunk_start,
                chunk_end,
                min_corroboration,
                full_rebuild_fraction,
            )
        )

    spec = executor
    executor = resolve_executor(spec)
    try:
        results = executor.map(_activity_chunk_task, task_payloads)
    finally:
        if executor is not spec:
            executor.close()

    merged: Dict[ASN, List[Tuple[int, Day, Day]]] = {}
    kept = 0
    dropped: Counter = Counter()
    rebuilds = 0
    contributions = 0
    sanitize_seconds = 0.0
    account_days = ledger_enabled()
    class_days_in: Counter = Counter()
    for (
        runs,
        chunk_kept,
        chunk_dropped,
        chunk_rebuilds,
        chunk_contributions,
        compute_seconds,
    ) in results:
        kept += chunk_kept
        rebuilds += chunk_rebuilds
        contributions += chunk_contributions
        sanitize_seconds += compute_seconds
        dropped.update(chunk_dropped)
        for asn, runs_for_asn in runs.items():
            dst = merged.setdefault(asn, [])
            for run in runs_for_asn:
                if account_days:
                    class_days_in[_CLASS_NAMES[run[0]]] += run[2] - run[1] + 1
                if dst and dst[-1][0] == run[0] and dst[-1][2] + 1 == run[1]:
                    dst[-1] = (run[0], dst[-1][1], run[2])
                else:
                    dst.append(run)

    class_days: Counter = Counter()
    if account_days:
        for asn_runs in merged.values():
            for cls, run_start_day, run_end_day in asn_runs:
                class_days[_CLASS_NAMES[cls]] += run_end_day - run_start_day + 1

    report = ActivityReport(
        days=end - start + 1,
        changed_days=schedule.changed_days,
        chunks=len(chunk_starts),
        elements=kept + sum(dropped.values()),
        kept=kept,
        dropped=dropped,
        rebuilds=rebuilds,
        contributions=contributions,
        sanitize_seconds=sanitize_seconds,
        class_days_in=class_days_in,
        class_days=class_days,
    )
    return merged, report


def _tables_from_runs(runs: Dict[ASN, List[Tuple[int, Day, Day]]]):
    """Per-ASN runs → ``OperationalActivity`` tables."""
    # Deferred import: repro.lifetimes.bgp imports this module at load
    # time; the reverse edge must stay call-time only.
    from ..lifetimes.bgp import OperationalActivity

    tables = {}
    for asn, asn_runs in runs.items():
        observed = [Interval(s, e) for cls, s, e in asn_runs if cls == 2]
        single = [Interval(s, e) for cls, s, e in asn_runs if cls == 1]
        tables[asn] = OperationalActivity(
            asn=asn,
            observed=IntervalSet(observed),
            single_peer=IntervalSet(single),
        )
    return tables


def build_activity_tables(
    topology: AsTopology,
    collectors: Sequence[Collector],
    day_source: Callable[[Day], Sequence[Announcement]],
    start: Day,
    end: Day,
    *,
    min_corroboration: int = DEFAULT_MIN_PEERS,
    executor: ExecutorSpec = None,
    day_chunk: int = DEFAULT_DAY_CHUNK,
    full_rebuild_fraction: float = DEFAULT_REBUILD_FRACTION,
):
    """Columnar §3.2 activity tables from a per-day announcement source.

    Returns ``(tables, report)`` where ``tables`` maps every ASN ever
    visible in a sanitized path to its
    :class:`~repro.lifetimes.bgp.OperationalActivity`, byte-identical
    to what the object stream pipeline derives.
    """
    stream_start = perf_counter()
    schedule = schedule_from_day_source(day_source, start, end)
    stream_seconds = perf_counter() - stream_start

    run_start = perf_counter()
    runs, report = _run_schedule(
        topology,
        collectors,
        schedule,
        min_corroboration=min_corroboration,
        executor=executor,
        day_chunk=day_chunk,
        full_rebuild_fraction=full_rebuild_fraction,
    )
    tables = _tables_from_runs(runs)
    run_seconds = perf_counter() - run_start
    report.stream_seconds = stream_seconds
    report.visibility_seconds = max(0.0, run_seconds - report.sanitize_seconds)
    return tables, report


def build_world_activity_tables(
    world,
    *,
    start: Optional[Day] = None,
    end: Optional[Day] = None,
    min_corroboration: int = DEFAULT_MIN_PEERS,
    executor: ExecutorSpec = None,
    day_chunk: int = DEFAULT_DAY_CHUNK,
    full_rebuild_fraction: float = DEFAULT_REBUILD_FRACTION,
):
    """Columnar activity tables for a simulated world's window.

    Uses the event-compressed schedule (interval endpoints, no per-day
    list materialization); otherwise identical to
    :func:`build_activity_tables` over ``world.announcements_for_day``.
    """
    start = world.config.start_day if start is None else start
    end = world.config.end_day if end is None else end
    stream_start = perf_counter()
    schedule = schedule_from_world(world, start, end)
    stream_seconds = perf_counter() - stream_start

    run_start = perf_counter()
    runs, report = _run_schedule(
        world.topology,
        world.collectors,
        schedule,
        min_corroboration=min_corroboration,
        executor=executor,
        day_chunk=day_chunk,
        full_rebuild_fraction=full_rebuild_fraction,
    )
    tables = _tables_from_runs(runs)
    run_seconds = perf_counter() - run_start
    report.stream_seconds = stream_seconds
    report.visibility_seconds = max(0.0, run_seconds - report.sanitize_seconds)
    return tables, report
