"""Per-day ASN visibility accounting.

§3.2: "we only consider an ASN to be active in BGP in a given day if in
that day its visibility is strictly more than 1 peer, i.e., two or more
distinct ASes that peer with the collector infrastructure share BGP
announcements with that ASN in the path that day."

This module turns one day's (sanitized) element stream into the set of
active ASNs under a configurable peer threshold, so that the ablation
benchmark can contrast ``min_peers=1`` (spurious data leaks in) against
the paper's ``min_peers=2``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from ..asn.numbers import ASN
from .messages import WITHDRAW, BgpElement

__all__ = ["peer_visibility", "active_asns", "DEFAULT_MIN_PEERS"]

#: The paper's visibility threshold (strictly more than one peer).
DEFAULT_MIN_PEERS = 2


def peer_visibility(elements: Iterable[BgpElement]) -> Dict[ASN, Set[ASN]]:
    """Map every ASN appearing in a path to the set of peers that
    shared paths containing it.

    Every ASN on the path counts — origin and transit hops alike — as
    the paper tracks "ASNs that appear in BGP paths".
    """
    seen: Dict[ASN, Set[ASN]] = {}
    for element in elements:
        if element.elem_type == WITHDRAW:
            continue
        for asn in element.path_asns():
            seen.setdefault(asn, set()).add(element.peer_asn)
    return seen


def active_asns(
    elements: Iterable[BgpElement],
    *,
    min_peers: int = DEFAULT_MIN_PEERS,
) -> Set[ASN]:
    """ASNs considered active for the day under the visibility rule."""
    if min_peers < 1:
        raise ValueError("min_peers must be at least 1")
    return {
        asn
        for asn, peers in peer_visibility(elements).items()
        if len(peers) >= min_peers
    }
