"""Per-day ASN visibility accounting.

§3.2: "we only consider an ASN to be active in BGP in a given day if in
that day its visibility is strictly more than 1 peer, i.e., two or more
distinct ASes that peer with the collector infrastructure share BGP
announcements with that ASN in the path that day."

This module turns one day's (sanitized) element stream into the set of
active ASNs under a configurable peer threshold, so that the ablation
benchmark can contrast ``min_peers=1`` (spurious data leaks in) against
the paper's ``min_peers=2``.

Both entry points also accept a columnar day view (anything exposing
``peer_visibility()`` / ``active_asns(min_peers)`` methods, such as
:class:`repro.bgp.activity.DayVisibility`): the signatures are
unchanged, but a columnar caller skips the per-element object loop
entirely and reads the bitset counters instead.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from ..asn.numbers import ASN
from .messages import WITHDRAW, BgpElement

__all__ = ["peer_visibility", "active_asns", "DEFAULT_MIN_PEERS"]

#: The paper's visibility threshold (strictly more than one peer).
DEFAULT_MIN_PEERS = 2


def peer_visibility(elements: Iterable[BgpElement]) -> Dict[ASN, Set[ASN]]:
    """Map every ASN appearing in a path to the set of peers that
    shared paths containing it.

    Every ASN on the path counts — origin and transit hops alike — as
    the paper tracks "ASNs that appear in BGP paths".
    """
    shim = getattr(elements, "peer_visibility", None)
    if callable(shim):
        return shim()
    # Hot loop: bind the dict lookup locally and branch on a missing
    # entry instead of paying setdefault's per-call set() allocation;
    # withdrawals short-circuit before any path decode.
    seen: Dict[ASN, Set[ASN]] = {}
    get = seen.get
    for element in elements:
        if element.elem_type == WITHDRAW:
            continue
        peer = element.peer_asn
        for asn in element.path_asns():
            peers = get(asn)
            if peers is None:
                seen[asn] = {peer}
            else:
                peers.add(peer)
    return seen


def active_asns(
    elements: Iterable[BgpElement],
    *,
    min_peers: int = DEFAULT_MIN_PEERS,
) -> Set[ASN]:
    """ASNs considered active for the day under the visibility rule."""
    if min_peers < 1:
        raise ValueError("min_peers must be at least 1")
    shim = getattr(elements, "active_asns", None)
    if callable(shim):
        return shim(min_peers)
    return {
        asn
        for asn, peers in peer_visibility(elements).items()
        if len(peers) >= min_peers
    }
