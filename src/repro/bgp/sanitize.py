"""§3.2 BGP data sanitization.

The paper discards (i) paths to prefixes outside the globally-routable
length bounds (/8../24 for IPv4, /8../64 for IPv6) and (ii) paths with
loops.  This module applies the same filters and keeps counts per drop
reason so pipelines can report exactly what was removed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from .messages import WITHDRAW, BgpElement

__all__ = [
    "SanitizeStats",
    "sanitize",
    "drop_reason",
    "REASON_PREFIX_LENGTH",
    "REASON_LOOP",
]

REASON_PREFIX_LENGTH = "prefix_length"
REASON_LOOP = "as_path_loop"


@dataclass
class SanitizeStats:
    """Counters filled in by :func:`sanitize`.

    ``dropped`` is a :class:`collections.Counter` keyed by drop reason
    (still a plain ``Dict[str, int]`` to every consumer), so chunked
    fan-outs can :meth:`merge` per-chunk stats without reimplementing
    the accumulation.
    """

    kept: int = 0
    dropped: Counter = field(default_factory=Counter)

    def drop(self, reason: str) -> None:
        self.dropped[reason] += 1

    def merge(self, other: "SanitizeStats") -> "SanitizeStats":
        """Fold another stats object into this one (chunk merge).

        Associative and order-insensitive, so merging per-chunk stats
        in any order equals the single-pass counts — the property test
        pins this for the records fan-out.
        """
        self.kept += other.kept
        self.dropped.update(other.dropped)
        return self

    @property
    def total_dropped(self) -> int:
        return sum(self.dropped.values())

    @property
    def total_seen(self) -> int:
        return self.kept + self.total_dropped


def drop_reason(element: BgpElement) -> Optional[str]:
    """The paper's drop decision for one element, or ``None`` to keep.

    The prefix-length bound is checked before the loop check (matching
    the drop-reason attribution of :func:`sanitize`); withdrawals carry
    no path and can only fail the prefix rule.  The columnar activity
    engine applies the same decision per interned (prefix, path) pair
    instead of per element.
    """
    if not element.prefix.is_globally_routable_length():
        return REASON_PREFIX_LENGTH
    if element.elem_type != WITHDRAW and element.has_loop:
        return REASON_LOOP
    return None


def sanitize(
    elements: Iterable[BgpElement],
    stats: SanitizeStats | None = None,
) -> Iterator[BgpElement]:
    """Yield only elements that pass the paper's sanitization rules.

    Withdrawals carry no path and are passed through unchanged if their
    prefix is plausible; RIB entries and announcements are checked for
    both prefix-length bounds and AS-path loops.
    """
    if stats is None:
        stats = SanitizeStats()
    for element in elements:
        reason = drop_reason(element)
        if reason is not None:
            stats.drop(reason)
            continue
        stats.kept += 1
        yield element
