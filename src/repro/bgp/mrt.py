"""Binary dump codec in the spirit of MRT (RFC 6396).

RouteViews and RIPE RIS publish RIB and update dumps as MRT files;
BGPStream decodes them into the element stream the paper consumes.
This module closes that loop for the synthetic substrate: elements
serialize into a compact binary format with MRT's framing — a common
header of ``timestamp | type | subtype | length`` followed by a typed
payload — and parse back losslessly.

Record types mirror MRT's numbering: ``13`` (TABLE_DUMP_V2) for RIB
entries and ``16`` (BGP4MP) for updates, with AS numbers always 4 bytes
(the AS4 variants).  The payload layout is simplified (single-peer
records, one NLRI each) but keeps the wire-level concerns real:
network byte order, variable-length prefix encoding, AS_PATH segments,
and length-prefixed framing that a reader must validate.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, Iterator, List, Tuple

from ..asn.numbers import ASN
from ..net.prefix import Prefix
from ..timeline.dates import Day
from .messages import ANNOUNCE, RIB, WITHDRAW, BgpElement

__all__ = ["MrtError", "write_elements", "read_elements", "dump_day", "load_day"]

#: MRT record types (RFC 6396 §4).
TYPE_TABLE_DUMP_V2 = 13
TYPE_BGP4MP = 16

#: Subtypes: RIB entries by address family; BGP4MP AS4 messages.
SUBTYPE_RIB_IPV4 = 2
SUBTYPE_RIB_IPV6 = 4
SUBTYPE_BGP4MP_MESSAGE_AS4 = 4

#: Payload markers for the update direction.
_UPDATE_ANNOUNCE = 1
_UPDATE_WITHDRAW = 2

#: AS_PATH segment type (RFC 4271): an ordered AS_SEQUENCE.
_AS_SEQUENCE = 2

_HEADER = struct.Struct("!IHHI")
_SECONDS_PER_DAY = 86_400
#: Proleptic-Gregorian ordinal of the Unix epoch (1970-01-01); MRT
#: timestamps are 32-bit Unix seconds, day ordinals are not.
_EPOCH_ORDINAL = 719_163


class MrtError(ValueError):
    """Raised on malformed or truncated MRT data."""


def _encode_prefix(prefix: Prefix) -> bytes:
    """AFI byte, mask length byte, then the minimal network bytes
    (MRT/BGP NLRI encoding pads to whole octets)."""
    octets = (prefix.length + 7) // 8
    width = 4 if prefix.version == 4 else 16
    raw = prefix.network.to_bytes(width, "big")[:octets]
    return bytes([prefix.version, prefix.length]) + raw


def _decode_prefix(payload: bytes, offset: int) -> Tuple[Prefix, int]:
    if offset + 2 > len(payload):
        raise MrtError("truncated prefix header")
    version, length = payload[offset], payload[offset + 1]
    if version not in (4, 6):
        raise MrtError(f"bad AFI byte {version}")
    octets = (length + 7) // 8
    end = offset + 2 + octets
    if end > len(payload):
        raise MrtError("truncated prefix body")
    width = 4 if version == 4 else 16
    raw = payload[offset + 2 : end] + b"\x00" * (width - octets)
    return Prefix(version, int.from_bytes(raw, "big"), length), end


def _encode_path(as_path: Tuple[ASN, ...]) -> bytes:
    """One AS_SEQUENCE segment: type, hop count, 4-byte ASNs."""
    if len(as_path) > 255:
        raise MrtError("AS path longer than one segment supports")
    out = bytes([_AS_SEQUENCE, len(as_path)])
    for asn in as_path:
        out += struct.pack("!I", asn)
    return out


def _decode_path(payload: bytes, offset: int) -> Tuple[Tuple[ASN, ...], int]:
    if offset + 2 > len(payload):
        raise MrtError("truncated AS path header")
    segment_type, count = payload[offset], payload[offset + 1]
    if segment_type != _AS_SEQUENCE:
        raise MrtError(f"unsupported path segment type {segment_type}")
    end = offset + 2 + 4 * count
    if end > len(payload):
        raise MrtError("truncated AS path body")
    hops = struct.unpack(f"!{count}I", payload[offset + 2 : end])
    return tuple(hops), end


def _element_payload(element: BgpElement) -> Tuple[int, int, bytes]:
    """(type, subtype, payload) for one element.

    The intra-day sequence number rides in the payload (real MRT keeps
    sub-second ordering in an extension field) so that the 32-bit
    header timestamp only needs day resolution."""
    body = struct.pack("!II", element.sequence, element.peer_asn)
    body += _encode_prefix(element.prefix)
    if element.elem_type == RIB:
        body += _encode_path(element.as_path)
        subtype = SUBTYPE_RIB_IPV4 if element.prefix.version == 4 else SUBTYPE_RIB_IPV6
        return TYPE_TABLE_DUMP_V2, subtype, body
    direction = _UPDATE_ANNOUNCE if element.elem_type == ANNOUNCE else _UPDATE_WITHDRAW
    body += bytes([direction])
    if element.elem_type == ANNOUNCE:
        body += _encode_path(element.as_path)
    return TYPE_BGP4MP, SUBTYPE_BGP4MP_MESSAGE_AS4, body


def write_elements(elements: Iterable[BgpElement], fileobj: BinaryIO) -> int:
    """Serialize elements to a binary stream; returns the record count."""
    count = 0
    for element in elements:
        rtype, subtype, payload = _element_payload(element)
        timestamp = (element.day - _EPOCH_ORDINAL) * _SECONDS_PER_DAY
        if not 0 <= timestamp <= 0xFFFFFFFF:
            raise MrtError(f"day {element.day} outside the 32-bit MRT range")
        fileobj.write(_HEADER.pack(timestamp, rtype, subtype, len(payload)))
        fileobj.write(payload)
        count += 1
    return count


def read_elements(
    fileobj: BinaryIO,
    *,
    project: str,
    collector: str,
) -> Iterator[BgpElement]:
    """Parse a binary stream back into elements.

    ``project``/``collector`` identify the dump's provenance — real MRT
    files carry that in their file name, not in the records.  Raises
    :class:`MrtError` on truncation or malformed framing.
    """
    while True:
        header = fileobj.read(_HEADER.size)
        if not header:
            return
        if len(header) < _HEADER.size:
            raise MrtError("truncated MRT header")
        timestamp, rtype, subtype, length = _HEADER.unpack(header)
        payload = fileobj.read(length)
        if len(payload) < length:
            raise MrtError("truncated MRT payload")
        day = timestamp // _SECONDS_PER_DAY + _EPOCH_ORDINAL
        if len(payload) < 4:
            raise MrtError("payload lacks a sequence field")
        (sequence,) = struct.unpack("!I", payload[:4])
        payload = payload[4:]
        if rtype == TYPE_TABLE_DUMP_V2:
            if subtype not in (SUBTYPE_RIB_IPV4, SUBTYPE_RIB_IPV6):
                raise MrtError(f"unknown TABLE_DUMP_V2 subtype {subtype}")
            yield _decode_rib(payload, day, sequence, project, collector)
        elif rtype == TYPE_BGP4MP:
            if subtype != SUBTYPE_BGP4MP_MESSAGE_AS4:
                raise MrtError(f"unknown BGP4MP subtype {subtype}")
            yield _decode_update(payload, day, sequence, project, collector)
        else:
            raise MrtError(f"unknown MRT record type {rtype}")


def _decode_rib(
    payload: bytes, day: Day, sequence: int, project: str, collector: str
) -> BgpElement:
    if len(payload) < 4:
        raise MrtError("truncated RIB record")
    (peer,) = struct.unpack("!I", payload[:4])
    prefix, offset = _decode_prefix(payload, 4)
    path, offset = _decode_path(payload, offset)
    if offset != len(payload):
        raise MrtError("trailing bytes in RIB record")
    return BgpElement(RIB, day, sequence, project, collector, peer, prefix, path)


def _decode_update(
    payload: bytes, day: Day, sequence: int, project: str, collector: str
) -> BgpElement:
    if len(payload) < 4:
        raise MrtError("truncated update record")
    (peer,) = struct.unpack("!I", payload[:4])
    prefix, offset = _decode_prefix(payload, 4)
    if offset >= len(payload):
        raise MrtError("update record lacks a direction byte")
    direction = payload[offset]
    offset += 1
    if direction == _UPDATE_WITHDRAW:
        if offset != len(payload):
            raise MrtError("trailing bytes in withdraw record")
        return BgpElement(
            WITHDRAW, day, sequence, project, collector, peer, prefix
        )
    if direction != _UPDATE_ANNOUNCE:
        raise MrtError(f"unknown update direction {direction}")
    path, offset = _decode_path(payload, offset)
    if offset != len(payload):
        raise MrtError("trailing bytes in announce record")
    return BgpElement(ANNOUNCE, day, sequence, project, collector, peer, prefix, path)


def dump_day(elements: Iterable[BgpElement], path) -> int:
    """Write one day's elements to an MRT-style file on disk."""
    with open(path, "wb") as fileobj:
        return write_elements(elements, fileobj)


def load_day(path, *, project: str, collector: str) -> List[BgpElement]:
    """Read an MRT-style file back into a list of elements."""
    with open(path, "rb") as fileobj:
        return list(read_elements(fileobj, project=project, collector=collector))
