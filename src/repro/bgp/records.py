"""Zero-copy columnar BGP record format (``bgp-records/v1``).

The object pipeline materializes one :class:`~repro.bgp.messages.
BgpElement` per (collector, peer, announcement) per day and re-derives
everything §3.2 needs — prefix-length bounds, loop verdicts, peer
visibility — one Python object at a time.  This module replaces that
representation with a packed numpy structured array (one fixed-width
row per element) plus interned side tables, so the three hot stages
become batch array operations:

* **Encoding** (``bgp:stream``) happens once, at materialization time:
  every AS path is interned in a :class:`~repro.bgp.stream.PathTable`
  and referenced by dense id; prefixes are packed as ``(family,
  addr_hi, addr_lo, plen)`` integer columns; peer/origin/day/elem_type
  are plain integer columns.  Per-announcement element fan-outs are
  computed once as row *templates* and replayed per day with a single
  vectorized gather, so no element objects ever exist.
* **Sanitization** (``bgp:sanitize``) is two boolean masks: the §3.2
  prefix-length bounds read straight off the ``family``/``plen``
  columns, and the loop rule is one fancy-index into a per-path-id
  loop table computed at intern time.  Drop-reason attribution is
  element-for-element identical to :func:`repro.bgp.sanitize.
  drop_reason` (prefix rule first, loop second, withdrawals exempt
  from the loop check) — the property tests pin this.
* **Visibility** (``bgp:visibility``) expands kept rows to their
  distinct path ASNs through a CSR table and counts distinct
  ``(asn, peer)`` pairs per day with sort/unique — no per-element set
  churn.

A record set serializes to a single self-describing container file
(json header + 64-byte-aligned little-endian array sections) that is
**memory-mapped** on later runs: a warm run never re-parses the dump,
it just maps the file and runs the masks.  ``process:N`` fan-out hands
workers ``(path, lo, hi)`` row slices of that file instead of pickled
element lists; each worker maps the file once per process, so the
payload cost is a few integers per chunk.

The serial-vs-parallel byte-identity contract holds by construction:
chunk boundaries are derived from the day range and the fixed
``day_chunk`` (never the worker count), the chunk task is a pure
function of ``(file, lo, hi)``, and chunk outputs are concatenated in
chunk order.
"""

from __future__ import annotations

import json
import mmap as _mmap
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from ..asn.numbers import ASN
from ..net.prefix import (
    GLOBAL_V4_MAX_LEN,
    GLOBAL_V4_MIN_LEN,
    GLOBAL_V6_MAX_LEN,
    GLOBAL_V6_MIN_LEN,
    Prefix,
)
from ..runtime.executor import ExecutorSpec, per_process, resolve_executor
from ..timeline.dates import Day
from .collector import Collector, all_peer_asns
from .messages import ANNOUNCE, RIB, WITHDRAW, BgpElement
from .sanitize import REASON_LOOP, REASON_PREFIX_LENGTH, SanitizeStats
from .stream import Announcement, PathOracle, PathTable, decorate_path
from .topology import AsTopology

__all__ = [
    "RECORDS_FORMAT",
    "RECORDS_DAY_CHUNK",
    "RECORD_DTYPE",
    "KEEP",
    "DROP_PREFIX_LENGTH",
    "DROP_LOOP",
    "RecordSet",
    "RecordEncoder",
    "records_from_elements",
    "encode_world_records",
    "sanitize_reasons",
    "sanitize_stats",
    "reason_names",
    "records_peer_visibility",
    "records_active_asns",
    "day_class_arrays",
    "day_slices",
    "records_day_classes",
]

#: Format tag of the packed container (also its cache-key version).
RECORDS_FORMAT = "bgp-records/v1"

#: Default day span per classification chunk.  Much smaller than the
#: columnar engine's 512: the vectorized pass sorts packed keys whose
#: working set grows with the chunk's distinct (day, path, peer) rows,
#: and week-sized chunks keep that sort inside cache (~5x faster than
#: one whole-window chunk on a 6-month window; gains flatten below a
#: week).  A fixed constant — never derived from the worker count — so
#: chunk boundaries, and therefore output, are identical under any
#: executor.
RECORDS_DAY_CHUNK = 7

_MAGIC = b"BGPREC01"

#: Element-type codes in the ``elem_type`` column.
_TYPE_CODES = {RIB: 0, ANNOUNCE: 1, WITHDRAW: 2}
_CODE_TYPES = {v: k for k, v in _TYPE_CODES.items()}
_W_CODE = _TYPE_CODES[WITHDRAW]

#: Packed per-element row.  Field offsets are pinned explicitly (not
#: left to platform alignment rules) so the on-disk layout is identical
#: everywhere; every multi-byte field is little-endian.
RECORD_DTYPE = np.dtype(
    {
        "names": [
            "day", "sequence", "peer", "origin", "path",
            "collector", "elem_type", "family",
            "addr_hi", "addr_lo", "plen",
        ],
        "formats": [
            "<i4", "<i4", "<u4", "<u4", "<i4",
            "<u2", "u1", "u1",
            "<u8", "<u8", "u1",
        ],
        "offsets": [0, 4, 8, 12, 16, 20, 22, 23, 24, 32, 40],
        "itemsize": 48,
    }
)

#: Sanitize verdict codes (the ``reasons`` array of
#: :func:`sanitize_reasons`).  ``KEEP`` is zero so a kept row is falsy.
KEEP = 0
DROP_PREFIX_LENGTH = 1
DROP_LOOP = 2

_REASON_NAMES = {
    KEEP: None,
    DROP_PREFIX_LENGTH: REASON_PREFIX_LENGTH,
    DROP_LOOP: REASON_LOOP,
}

#: Visibility classes in the per-day class arrays (matching the
#: activity engine: 2 = observed, 1 = single-peer).
_OBSERVED = 2
_SINGLE = 1


def reason_names(reasons: np.ndarray) -> List[Optional[str]]:
    """Per-row drop-reason strings (``None`` = kept), for test oracles."""
    return [_REASON_NAMES[int(code)] for code in reasons]


def _sorted_unique(a: np.ndarray) -> np.ndarray:
    """Sorted distinct values via an explicit sort.

    Equivalent to :func:`np.unique` on integer keys, but always takes
    the sort path — the hash-based fast path of recent numpy is an
    order of magnitude slower on these packed-u64 key arrays.
    """
    if len(a) == 0:
        return a
    a = np.sort(a)
    keep = np.empty(len(a), dtype=bool)
    keep[0] = True
    np.not_equal(a[1:], a[:-1], out=keep[1:])
    return a[keep]


def _csr_gather(
    indptr: np.ndarray, flat: np.ndarray, ids: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate the CSR rows selected by ``ids``.

    Returns ``(values, lengths)`` where ``values`` is the concatenation
    of ``flat[indptr[i]:indptr[i+1]]`` for each id, in id order.
    """
    starts = indptr[ids]
    lens = (indptr[ids + 1] - starts).astype(np.int64)
    total = int(lens.sum())
    if total == 0:
        return flat[:0], lens
    offsets = np.zeros(len(lens), dtype=np.int64)
    np.cumsum(lens[:-1], out=offsets[1:])
    idx = np.repeat(starts - offsets, lens) + np.arange(total, dtype=np.int64)
    return flat[idx], lens


def _pack_prefix(prefix: Prefix) -> Tuple[int, int, int, int]:
    """``(family, addr_hi, addr_lo, plen)`` columns for one prefix."""
    if prefix.version == 4:
        return 4, 0, prefix.network, prefix.length
    return (
        6,
        prefix.network >> 64,
        prefix.network & 0xFFFFFFFFFFFFFFFF,
        prefix.length,
    )


def _unpack_prefix(family: int, addr_hi: int, addr_lo: int, plen: int) -> Prefix:
    if family == 4:
        return Prefix(4, addr_lo, plen)
    return Prefix(6, (addr_hi << 64) | addr_lo, plen)


class RecordSet:
    """A packed element batch: row array + interned path side tables.

    ``rows`` is a :data:`RECORD_DTYPE` structured array (possibly a
    read-only memory-mapped view); paths live in two CSR tables over
    dense path ids — the raw path tuples (``path_indptr``/``path_flat``,
    for decoding) and the distinct ASNs each path makes visible
    (``vis_indptr``/``vis_flat``, for visibility counting) — plus a
    per-path-id loop verdict (``path_loop``).  ``collectors`` maps the
    ``collector`` column to ``(project, name)`` pairs.
    """

    def __init__(
        self,
        rows: np.ndarray,
        *,
        path_indptr: np.ndarray,
        path_flat: np.ndarray,
        vis_indptr: np.ndarray,
        vis_flat: np.ndarray,
        path_loop: np.ndarray,
        collectors: Sequence[Tuple[str, str]],
        day_sorted: bool = False,
        source: Optional[Path] = None,
        _mmap_obj=None,
    ) -> None:
        self.rows = rows
        self.path_indptr = path_indptr
        self.path_flat = path_flat
        self.vis_indptr = vis_indptr
        self.vis_flat = vis_flat
        self.path_loop = path_loop
        self.collectors = [tuple(c) for c in collectors]
        self.day_sorted = day_sorted
        #: The container file backing this set, when it has one (mmap
        #: fan-out needs it; in-memory sets have ``None``).
        self.source = source
        # The mmap (or buffer) owning the row memory.  Arrays built on
        # it are views; keeping the reference here pins the mapping for
        # the lifetime of the RecordSet (see DESIGN.md §8 on lifetime).
        self._mmap_obj = _mmap_obj

    # -- basic shape ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def n_paths(self) -> int:
        return len(self.path_indptr) - 1

    @property
    def nbytes(self) -> int:
        """Payload bytes across the row and side-table arrays."""
        return sum(
            a.nbytes
            for a in (
                self.rows, self.path_indptr, self.path_flat,
                self.vis_indptr, self.vis_flat, self.path_loop,
            )
        )

    # -- decoding (test oracles, interop) ------------------------------

    def path_tuple(self, pid: int) -> Tuple[ASN, ...]:
        lo, hi = int(self.path_indptr[pid]), int(self.path_indptr[pid + 1])
        return tuple(int(a) for a in self.path_flat[lo:hi])

    def element_at(self, i: int) -> BgpElement:
        """Decode one row back to the object representation."""
        r = self.rows[i]
        project, collector = self.collectors[int(r["collector"])]
        pid = int(r["path"])
        return BgpElement(
            elem_type=_CODE_TYPES[int(r["elem_type"])],
            day=int(r["day"]),
            sequence=int(r["sequence"]),
            project=project,
            collector=collector,
            peer_asn=int(r["peer"]),
            prefix=_unpack_prefix(
                int(r["family"]), int(r["addr_hi"]),
                int(r["addr_lo"]), int(r["plen"]),
            ),
            as_path=() if pid < 0 else self.path_tuple(pid),
        )

    def elements(self) -> Iterator[BgpElement]:
        """Decode every row, in row order."""
        for i in range(len(self.rows)):
            yield self.element_at(i)

    # -- serialization -------------------------------------------------

    def _sections(self) -> List[Tuple[str, np.ndarray]]:
        return [
            ("rows", self.rows),
            ("path_indptr", self.path_indptr),
            ("path_flat", self.path_flat),
            ("vis_indptr", self.vis_indptr),
            ("vis_flat", self.vis_flat),
            ("path_loop", self.path_loop),
        ]

    def to_bytes(self) -> bytes:
        """Serialize to the single-file container format.

        Layout: 8-byte magic, ``<u4`` header length, json header, then
        each array section padded to a 64-byte boundary.  All sections
        are little-endian by dtype construction, so the container is
        byte-identical across platforms.
        """
        sections = self._sections()
        header: Dict[str, object] = {
            "format": RECORDS_FORMAT,
            "collectors": [list(c) for c in self.collectors],
            "day_sorted": bool(self.day_sorted),
            "n_records": len(self.rows),
            "n_paths": self.n_paths,
            "sections": [],
        }
        # Two passes: the header length shifts offsets, so reserve a
        # fixed-point by serializing with final offsets computed after
        # sizing a draft header.
        def layout(header_len: int) -> List[int]:
            offsets = []
            pos = 8 + 4 + header_len
            for _, arr in sections:
                pos = (pos + 63) & ~63
                offsets.append(pos)
                pos += arr.nbytes
            return offsets

        def render(offsets: List[int]) -> bytes:
            header["sections"] = [
                {
                    "name": name,
                    "dtype": arr.dtype.descr if arr.dtype.names else str(arr.dtype),
                    "count": len(arr),
                    "offset": off,
                }
                for (name, arr), off in zip(sections, offsets)
            ]
            return json.dumps(header, sort_keys=True).encode("utf-8")

        blob = render(layout(0))
        # growing the header can only grow offsets; re-render until the
        # header length is stable (second pass suffices in practice)
        while True:
            new_blob = render(layout(len(blob)))
            if len(new_blob) == len(blob):
                blob = new_blob
                break
            blob = new_blob

        offsets = layout(len(blob))
        total = offsets[-1] + sections[-1][1].nbytes if sections else 12 + len(blob)
        out = bytearray(total)
        out[0:8] = _MAGIC
        out[8:12] = len(blob).to_bytes(4, "little")
        out[12:12 + len(blob)] = blob
        for (_, arr), off in zip(sections, offsets):
            raw = arr.tobytes()
            out[off:off + len(raw)] = raw
        return bytes(out)

    def to_file(self, path: Union[str, Path]) -> Path:
        """Atomically write the container next to ``path`` and rename."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_bytes(self.to_bytes())
        os.replace(tmp, path)
        return path

    @classmethod
    def _from_buffer(
        cls, buf, *, source: Optional[Path] = None, mmap_obj=None
    ) -> "RecordSet":
        if bytes(buf[0:8]) != _MAGIC:
            raise ValueError("not a bgp-records container (bad magic)")
        header_len = int.from_bytes(bytes(buf[8:12]), "little")
        header = json.loads(bytes(buf[12:12 + header_len]).decode("utf-8"))
        if header.get("format") != RECORDS_FORMAT:
            raise ValueError(
                f"unsupported records format {header.get('format')!r}"
            )
        arrays: Dict[str, np.ndarray] = {}
        for sec in header["sections"]:
            descr = sec["dtype"]
            dtype = np.dtype(
                [tuple(f) for f in descr] if isinstance(descr, list) else descr
            )
            count = int(sec["count"])
            off = int(sec["offset"])
            arrays[sec["name"]] = np.frombuffer(
                buf, dtype=dtype, count=count, offset=off
            )
        return cls(
            arrays["rows"],
            path_indptr=arrays["path_indptr"],
            path_flat=arrays["path_flat"],
            vis_indptr=arrays["vis_indptr"],
            vis_flat=arrays["vis_flat"],
            path_loop=arrays["path_loop"],
            collectors=[tuple(c) for c in header["collectors"]],
            day_sorted=bool(header["day_sorted"]),
            source=source,
            _mmap_obj=mmap_obj,
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "RecordSet":
        return cls._from_buffer(blob)

    @classmethod
    def from_file(cls, path: Union[str, Path], *, mmap: bool = True) -> "RecordSet":
        """Open a container file; ``mmap=True`` maps it zero-copy.

        The mapping is held by the returned :class:`RecordSet` — slices
        handed to workers must not outlive it (see DESIGN.md §8).
        """
        path = Path(path)
        if not mmap:
            return cls._from_buffer(path.read_bytes(), source=path)
        with open(path, "rb") as fh:
            mm = _mmap.mmap(fh.fileno(), 0, access=_mmap.ACCESS_READ)
        return cls._from_buffer(memoryview(mm), source=path, mmap_obj=mm)

    # -- views ---------------------------------------------------------

    def peer_visibility(
        self, reasons: Optional[np.ndarray] = None
    ) -> Dict[ASN, Set[ASN]]:
        """Legacy asn → peer-set map (duck-types the visibility shim)."""
        return records_peer_visibility(self, reasons=reasons)

    def active_asns(self, min_peers: int = 2) -> Set[ASN]:
        """Duck-types :func:`repro.bgp.visibility.active_asns`."""
        return records_active_asns(self, min_peers=min_peers)


# -- sanitization ------------------------------------------------------------


def sanitize_reasons(
    rs: RecordSet, lo: int = 0, hi: Optional[int] = None
) -> np.ndarray:
    """Per-row §3.2 verdicts over ``rows[lo:hi]`` as one mask pass.

    Matches :func:`repro.bgp.sanitize.drop_reason` element for element:
    the prefix-length bound is attributed first, the loop rule second,
    and withdrawals (no path) are exempt from the loop check.
    """
    rows = rs.rows[lo:hi]
    plen = rows["plen"]
    ok_len = np.where(
        rows["family"] == 4,
        (plen >= GLOBAL_V4_MIN_LEN) & (plen <= GLOBAL_V4_MAX_LEN),
        (plen >= GLOBAL_V6_MIN_LEN) & (plen <= GLOBAL_V6_MAX_LEN),
    )
    reasons = np.zeros(len(rows), dtype=np.uint8)
    reasons[~ok_len] = DROP_PREFIX_LENGTH
    check_loop = ok_len & (rows["elem_type"] != _W_CODE)
    idx = np.flatnonzero(check_loop)
    if len(idx):
        looped = rs.path_loop[rows["path"][idx]].astype(bool)
        reasons[idx[looped]] = DROP_LOOP
    return reasons


def sanitize_stats(reasons: np.ndarray) -> SanitizeStats:
    """Fold a verdict array into the classic :class:`SanitizeStats`."""
    counts = np.bincount(reasons, minlength=3)
    stats = SanitizeStats(kept=int(counts[KEEP]))
    if counts[DROP_PREFIX_LENGTH]:
        stats.dropped[REASON_PREFIX_LENGTH] = int(counts[DROP_PREFIX_LENGTH])
    if counts[DROP_LOOP]:
        stats.dropped[REASON_LOOP] = int(counts[DROP_LOOP])
    return stats


# -- visibility --------------------------------------------------------------


def records_peer_visibility(
    rs: RecordSet,
    *,
    reasons: Optional[np.ndarray] = None,
) -> Dict[ASN, Set[ASN]]:
    """asn → distinct-peer set over the whole batch (day-agnostic).

    ``reasons=None`` counts every non-withdrawal row, mirroring
    :func:`repro.bgp.visibility.peer_visibility` over the raw element
    list; pass a verdict array to count only sanitized rows.

    Duplicate ``(path, peer)`` rows collapse *before* the CSR
    expansion to path ASNs — element streams repeat the same few pairs
    day after day, so the expansion runs over the handful of distinct
    pairs instead of every element occurrence.
    """
    rows = rs.rows
    if reasons is None:
        use = rows["elem_type"] != _W_CODE
    else:
        use = (reasons == KEEP) & (rows["elem_type"] != _W_CODE)
    pids = rows["path"][use].astype(np.int64)
    peers = rows["peer"][use]
    if len(pids) == 0:
        return {}
    upeers, peer_idx = np.unique(peers, return_inverse=True)
    n_peers = len(upeers)
    u_pair = _sorted_unique(pids * n_peers + peer_idx)
    u_pid, u_pi = np.divmod(u_pair, n_peers)
    asns, lens = _csr_gather(rs.vis_indptr, rs.vis_flat, u_pid)
    e_pi = np.repeat(u_pi, lens)
    # peer indices fit 32 bits by construction, so (asn, peer) packs u64
    akey = _sorted_unique(
        (asns.astype(np.uint64) << np.uint64(32)) | e_pi.astype(np.uint64)
    )
    out: Dict[ASN, Set[ASN]] = {}
    peer_list = upeers.tolist()
    for key in akey.tolist():
        out.setdefault(key >> 32, set()).add(int(peer_list[key & 0xFFFFFFFF]))
    return out


def records_active_asns(rs: RecordSet, *, min_peers: int = 2) -> Set[ASN]:
    """Day-agnostic active set under the visibility threshold."""
    if min_peers < 1:
        raise ValueError("min_peers must be at least 1")
    return {
        asn
        for asn, peers in records_peer_visibility(rs).items()
        if len(peers) >= min_peers
    }


def day_class_arrays(
    rs: RecordSet,
    *,
    min_corroboration: int = 2,
    lo: int = 0,
    hi: Optional[int] = None,
    reasons: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-day visibility classes of ``rows[lo:hi]`` as flat arrays.

    Returns ``(asns, days, classes)`` where each entry is one
    (ASN, day) bucket: class 2 when the ASN was shared by at least
    ``min_corroboration`` distinct peers that day, class 1 when by
    exactly one (and that misses the threshold).  Entries are ordered
    by ASN, then day — a fixed order, so per-chunk outputs depend only
    on the chunk's rows and concatenating them in chunk order keeps
    ``process:N`` byte-identical to serial.

    The counting collapses duplicate ``(day, path, peer)`` rows before
    the CSR expansion to path ASNs (element streams repeat the same
    pairs day after day), then dedupes ``(asn, day, peer)`` triples
    with one packed-u64 sort and reads distinct-peer counts off the
    run lengths.
    """
    if min_corroboration < 1:
        raise ValueError("min_corroboration must be at least 1")
    rows = rs.rows[lo:hi]
    if reasons is None:
        reasons = sanitize_reasons(rs, lo, hi)
    use = (reasons == KEEP) & (rows["elem_type"] != _W_CODE)
    days = rows["day"][use].astype(np.int64)
    pids = rows["path"][use].astype(np.int64)
    peers = rows["peer"][use]

    def empty_result():
        return (
            np.empty(0, dtype=np.uint32),
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.uint8),
        )

    if len(days) == 0:
        return empty_result()
    day0 = int(days.min())
    day_idx = days - day0
    day_span = int(day_idx.max()) + 1
    upeers, peer_idx = np.unique(peers, return_inverse=True)
    n_peers = len(upeers)
    # the vis CSR is what pids index (chunk payloads ship only it)
    n_paths = len(rs.vis_indptr) - 1
    # row-level dedupe: one u64 key per (day, path, peer) occurrence
    if day_span * n_paths * n_peers >= 2**63:  # pragma: no cover
        raise OverflowError("record window too large for packed day keys")
    u_row = _sorted_unique((day_idx * n_paths + pids) * n_peers + peer_idx)
    u_day, rem = np.divmod(u_row, n_paths * n_peers)
    u_pid, u_pi = np.divmod(rem, n_peers)
    # expand the distinct rows to their paths' distinct ASNs, then
    # dedupe (asn, day, peer) triples: high 32 bits ASN, low 32 bits
    # (day, peer) — sorted output groups by ASN, then day, then peer
    if day_span * n_peers >= 2**32:  # pragma: no cover
        raise OverflowError("day x peer space too large for packed keys")
    asns, lens = _csr_gather(rs.vis_indptr, rs.vis_flat, u_pid)
    if len(asns) == 0:
        return empty_result()
    e_low = np.repeat(u_day * n_peers + u_pi, lens)
    tkey = _sorted_unique(
        (asns.astype(np.uint64) << np.uint64(32)) | e_low.astype(np.uint64)
    )
    t_asn = (tkey >> np.uint64(32)).astype(np.uint32)
    t_day = ((tkey & np.uint64(0xFFFFFFFF)).astype(np.int64)) // n_peers
    # distinct-peer counts per (asn, day) are the run lengths of the
    # sorted (asn, day) pairs (triples are unique, so each run entry is
    # one distinct peer)
    gkey = (t_asn.astype(np.uint64) << np.uint64(32)) | t_day.astype(np.uint64)
    starts = np.flatnonzero(np.concatenate(([True], gkey[1:] != gkey[:-1])))
    counts = np.diff(np.append(starts, len(gkey)))
    observed = counts >= min_corroboration
    single = (counts == 1) & ~observed
    keep = observed | single
    out_asns = t_asn[starts][keep]
    out_days = (t_day[starts][keep] + day0).astype(np.int32)
    out_cls = np.where(observed[keep], _OBSERVED, _SINGLE).astype(np.uint8)
    return out_asns, out_days, out_cls


# -- encoding ----------------------------------------------------------------


class RecordEncoder:
    """Vectorized element materialization from announcements.

    Replicates ``SyntheticBgpStream._emit`` / ``_emit_withdraw``
    exactly, but computes each announcement's per-peer element fan-out
    once as a row *template* (day/sequence/elem_type left blank) and
    assembles whole windows with one vectorized gather over the
    template pool — the byte-level analogue of the columnar engine's
    :class:`~repro.bgp.activity.Contribution` interning, kept
    pre-sanitization so the packed rows still carry every element the
    object stream would have yielded.
    """

    def __init__(
        self,
        topology: AsTopology,
        collectors: Sequence[Collector],
        table: Optional[PathTable] = None,
    ) -> None:
        self._collectors = list(collectors)
        self._oracle = PathOracle(topology, all_peer_asns(collectors), table=table)
        self._templates: Dict[Announcement, int] = {}
        self._withdraw_templates: Dict[Announcement, int] = {}
        self._pool: List[np.ndarray] = []

    @property
    def table(self) -> PathTable:
        return self._oracle.table

    def __len__(self) -> int:
        """Unique (announcement, kind) templates interned so far."""
        return len(self._templates) + len(self._withdraw_templates)

    def _add_template(self, rows: List[Tuple[int, int, int]], ann: Announcement):
        """Pack (collector idx, peer, path id) rows plus the prefix."""
        arr = np.zeros(len(rows), dtype=RECORD_DTYPE)
        family, addr_hi, addr_lo, plen = _pack_prefix(ann.prefix)
        arr["family"] = family
        arr["addr_hi"] = addr_hi
        arr["addr_lo"] = addr_lo
        arr["plen"] = plen
        table = self._oracle.table
        for i, (ci, peer, pid) in enumerate(rows):
            arr[i]["collector"] = ci
            arr[i]["peer"] = peer
            arr[i]["path"] = pid
            arr[i]["origin"] = table.paths[pid][-1] if pid >= 0 else 0
        self._pool.append(arr)
        return len(self._pool) - 1

    def _template_id(self, ann: Announcement) -> int:
        tid = self._templates.get(ann)
        if tid is None:
            table = self._oracle.table
            raw = self._oracle.path_ids_for(ann.announcer)
            plain = (
                ann.forged_origin is None
                and not ann.prepend
                and not ann.corrupt_loop
            )
            rows: List[Tuple[int, int, int]] = []
            for ci, collector in enumerate(self._collectors):
                for peer in collector.peer_asns:
                    if ann.only_peer is not None and peer != ann.only_peer:
                        continue
                    pid = raw.get(peer)
                    if pid is None:
                        if ann.only_peer is not None and peer == ann.only_peer:
                            # spurious data: the peer leaks a path
                            # nobody else can corroborate
                            pid = table.intern((peer, ann.announcer))
                        else:
                            continue
                    if not plain:
                        pid = table.intern(decorate_path(table.paths[pid], ann))
                    rows.append((ci, peer, pid))
            tid = self._add_template(rows, ann)
            self._templates[ann] = tid
        return tid

    def _withdraw_template_id(self, ann: Announcement) -> int:
        tid = self._withdraw_templates.get(ann)
        if tid is None:
            paths = self._oracle.paths_for(ann.announcer)
            rows: List[Tuple[int, int, int]] = []
            for ci, collector in enumerate(self._collectors):
                for peer in collector.peer_asns:
                    if ann.only_peer is not None and peer != ann.only_peer:
                        continue
                    if peer not in paths and ann.only_peer is None:
                        continue
                    rows.append((ci, peer, -1))
            tid = self._add_template(rows, ann)
            self._withdraw_templates[ann] = tid
        return tid

    def _assemble(
        self, emissions: List[Tuple[int, Day, int, int]]
    ) -> np.ndarray:
        """One gather: emissions ``(tid, day, seq, etype)`` → row array."""
        if not emissions:
            return np.empty(0, dtype=RECORD_DTYPE)
        pool = (
            np.concatenate(self._pool)
            if self._pool
            else np.empty(0, dtype=RECORD_DTYPE)
        )
        indptr = np.zeros(len(self._pool) + 1, dtype=np.int64)
        np.cumsum([len(t) for t in self._pool], out=indptr[1:])
        em = np.asarray(emissions, dtype=np.int64)
        idx, lens = _csr_gather(indptr, np.arange(len(pool), dtype=np.int64), em[:, 0])
        rows = pool[idx]
        rows["day"] = np.repeat(em[:, 1], lens)
        rows["sequence"] = np.repeat(em[:, 2], lens)
        rows["elem_type"] = np.repeat(em[:, 3], lens)
        return rows

    def _finish(self, rows: np.ndarray) -> RecordSet:
        table = self._oracle.table
        cols = table.column_arrays()
        return RecordSet(
            rows,
            path_indptr=cols["path_indptr"],
            path_flat=cols["path_flat"],
            vis_indptr=cols["vis_indptr"],
            vis_flat=cols["vis_flat"],
            path_loop=cols["has_loop"],
            collectors=[(c.project, c.name) for c in self._collectors],
            day_sorted=True,
        )

    def encode_window(
        self,
        day_source: Callable[[Day], Sequence[Announcement]],
        start: Day,
        end: Day,
        *,
        updates: bool = False,
    ) -> RecordSet:
        """Pack the window's element stream into one record set.

        ``updates=False`` emits each day's RIB pass only (what the
        activity pipeline consumes: announce updates duplicate RIB
        pairs and withdrawals carry no path).  ``updates=True`` also
        emits the inter-day announce/withdraw diffs, byte-identical to
        ``SyntheticBgpStream.elements(start, end)``.
        """
        if end < start:
            raise ValueError("end day precedes start day")
        emissions: List[Tuple[int, Day, int, int]] = []
        previous: Optional[List[Announcement]] = None
        for day in range(start, end + 1):
            current = list(day_source(day))
            seq = 0
            for ann in current:
                emissions.append((self._template_id(ann), day, seq, _TYPE_CODES[RIB]))
                seq += 1
            if updates and previous is not None:
                prev_keys = {a.key(): a for a in previous}
                cur_keys = {a.key() for a in current}
                for ann in current:
                    if ann.key() not in prev_keys:
                        emissions.append(
                            (self._template_id(ann), day, seq, _TYPE_CODES[ANNOUNCE])
                        )
                        seq += 1
                for key, ann in prev_keys.items():
                    if key not in cur_keys:
                        emissions.append(
                            (
                                self._withdraw_template_id(ann),
                                day, seq, _TYPE_CODES[WITHDRAW],
                            )
                        )
                        seq += 1
            previous = current
        return self._finish(self._assemble(emissions))


def encode_world_records(
    world,
    start: Day,
    end: Day,
    *,
    updates: bool = False,
) -> RecordSet:
    """Pack a simulated world's message-level window (see the encoder)."""
    encoder = RecordEncoder(world.topology, world.collectors)
    return encoder.encode_window(
        world.announcements_for_day, start, end, updates=updates
    )


def records_from_elements(elements: Iterable[BgpElement]) -> RecordSet:
    """Pack an arbitrary element iterable (row order preserved).

    The generic adapter for already-materialized element lists —
    property tests and MRT-style consumers.  Paths are interned into a
    fresh :class:`~repro.bgp.stream.PathTable`; the collector table is
    built in first-appearance order.
    """
    elements = list(elements)
    table = PathTable()
    collectors: Dict[Tuple[str, str], int] = {}
    rows = np.zeros(len(elements), dtype=RECORD_DTYPE)
    day_sorted = True
    prev_day: Optional[int] = None
    for i, element in enumerate(elements):
        ckey = (element.project, element.collector)
        ci = collectors.get(ckey)
        if ci is None:
            ci = len(collectors)
            collectors[ckey] = ci
        family, addr_hi, addr_lo, plen = _pack_prefix(element.prefix)
        row = rows[i]
        row["day"] = element.day
        row["sequence"] = element.sequence
        row["peer"] = element.peer_asn
        row["collector"] = ci
        row["elem_type"] = _TYPE_CODES[element.elem_type]
        row["family"] = family
        row["addr_hi"] = addr_hi
        row["addr_lo"] = addr_lo
        row["plen"] = plen
        if element.as_path:
            pid = table.intern(element.as_path)
            row["path"] = pid
            row["origin"] = element.as_path[-1]
        else:
            row["path"] = -1
            row["origin"] = 0
        if prev_day is not None and element.day < prev_day:
            day_sorted = False
        prev_day = element.day
    cols = table.column_arrays()
    return RecordSet(
        rows,
        path_indptr=cols["path_indptr"],
        path_flat=cols["path_flat"],
        vis_indptr=cols["vis_indptr"],
        vis_flat=cols["vis_flat"],
        path_loop=cols["has_loop"],
        collectors=list(collectors),
        day_sorted=day_sorted,
    )


# -- chunked fan-out ---------------------------------------------------------


def day_slices(
    rs: RecordSet, day_chunk: int
) -> List[Tuple[int, int]]:
    """Row ranges covering fixed ``day_chunk`` day windows.

    Boundaries are derived from the window's day range and the chunk
    size — never from the worker count — so serial and ``process:N``
    runs split identically (the determinism contract).  Requires a
    day-sorted set (every encoder output is).
    """
    if day_chunk < 1:
        raise ValueError("day_chunk must be >= 1")
    if not rs.day_sorted:
        raise ValueError("day_slices needs a day-sorted record set")
    n = len(rs.rows)
    if n == 0:
        return []
    days = rs.rows["day"]
    first, last = int(days[0]), int(days[-1])
    starts = list(range(first, last + 1, day_chunk))
    cut_days = np.asarray([s + day_chunk for s in starts], dtype=days.dtype)
    cuts = np.searchsorted(days, cut_days, side="left")
    out: List[Tuple[int, int]] = []
    lo = 0
    for hi in cuts.tolist():
        if hi > lo:
            out.append((lo, hi))
        lo = hi
    return out


def _records_chunk_task(payload):
    """Classify one row slice (module-level, picklable, pure).

    Two payload shapes: ``("mmap", path, lo, hi, min_corr)`` re-opens
    the container file once per worker process and reads the slice
    zero-copy; ``("arrays", rows, vis_indptr, vis_flat, path_loop,
    min_corr)`` carries the pickled slice itself (the pre-mmap
    baseline, kept for the scaling benchmark's comparison row).
    Returns the slice's ``(asns, days, classes)`` arrays plus its
    :class:`SanitizeStats` for the chunk-merge accounting.
    """
    mode = payload[0]
    if mode == "mmap":
        _, path, lo, hi, min_corr = payload
        rs = per_process(("bgp-records", str(path)), lambda: RecordSet.from_file(path))
        reasons = sanitize_reasons(rs, lo, hi)
        asns, days, classes = day_class_arrays(
            rs, min_corroboration=min_corr, lo=lo, hi=hi, reasons=reasons
        )
    else:
        _, rows, vis_indptr, vis_flat, path_loop, min_corr = payload
        rs = RecordSet(
            rows,
            path_indptr=np.zeros(1, dtype=np.int64),
            path_flat=np.empty(0, dtype=np.uint32),
            vis_indptr=vis_indptr,
            vis_flat=vis_flat,
            path_loop=path_loop,
            collectors=[],
            day_sorted=True,
        )
        reasons = sanitize_reasons(rs)
        asns, days, classes = day_class_arrays(
            rs, min_corroboration=min_corr, reasons=reasons
        )
    return asns, days, classes, sanitize_stats(reasons)


@dataclass
class RecordsRun:
    """What one records-engine visibility pass produced."""

    asns: np.ndarray
    days: np.ndarray
    classes: np.ndarray
    #: Chunk-merged sanitize accounting (equals the single-pass stats;
    #: the property tests pin the merge).
    stats: SanitizeStats = field(default_factory=SanitizeStats)
    chunks: int = 0
    fanout: str = "inline"


def records_day_classes(
    rs: RecordSet,
    *,
    min_corroboration: int = 2,
    executor: ExecutorSpec = None,
    day_chunk: int = RECORDS_DAY_CHUNK,
    fanout: str = "auto",
) -> RecordsRun:
    """Classify the whole set per day, fanned out over day chunks.

    ``fanout`` picks the worker payload: ``"mmap"`` ships ``(path, lo,
    hi)`` slices of the backing file (requires one — see
    :attr:`RecordSet.source`); ``"pickle"`` ships the row arrays
    themselves; ``"auto"`` uses mmap when a backing file exists and the
    executor is parallel, pickle otherwise.  All modes (and serial
    inline execution) produce byte-identical output because chunk
    boundaries and per-chunk results are executor-independent.
    """
    if fanout not in ("auto", "mmap", "pickle"):
        raise ValueError(f"unknown fan-out mode {fanout!r}")
    spec = executor
    executor = resolve_executor(spec)
    parallel = executor.jobs > 1
    if fanout == "mmap" and rs.source is None:
        raise ValueError("mmap fan-out needs a file-backed record set")
    use_mmap = fanout == "mmap" or (
        fanout == "auto" and parallel and rs.source is not None
    )
    slices = day_slices(rs, day_chunk)
    if use_mmap:
        payloads = [
            ("mmap", rs.source, lo, hi, min_corroboration) for lo, hi in slices
        ]
    else:
        payloads = [
            (
                "arrays",
                np.asarray(rs.rows[lo:hi]),
                rs.vis_indptr,
                rs.vis_flat,
                rs.path_loop,
                min_corroboration,
            )
            for lo, hi in slices
        ]
    try:
        results = executor.map(_records_chunk_task, payloads)
    finally:
        if executor is not spec:
            executor.close()
    stats = SanitizeStats()
    for _, _, _, chunk_stats in results:
        stats.merge(chunk_stats)
    if results:
        asns = np.concatenate([r[0] for r in results])
        days = np.concatenate([r[1] for r in results])
        classes = np.concatenate([r[2] for r in results])
    else:
        asns = np.empty(0, dtype=np.uint32)
        days = np.empty(0, dtype=np.int32)
        classes = np.empty(0, dtype=np.uint8)
    return RecordsRun(
        asns=asns,
        days=days,
        classes=classes,
        stats=stats,
        chunks=len(slices),
        fanout="mmap" if use_mmap else ("pickle" if parallel else "inline"),
    )


def ensure_backing_file(rs: RecordSet, path: Optional[Path] = None) -> Path:
    """Give an in-memory set a container file (for mmap fan-out).

    Writes to ``path`` when given, else a temp file; updates
    :attr:`RecordSet.source` and returns the path.  Callers own the
    file's lifetime (the cache-backed pipeline path never needs this —
    its artifact file doubles as the backing file).
    """
    if rs.source is not None:
        return rs.source
    if path is None:
        fd, name = tempfile.mkstemp(suffix=".bgprec")
        os.close(fd)
        path = Path(name)
    rs.to_file(path)
    rs.source = path
    return path
