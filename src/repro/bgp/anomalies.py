"""Anomalous BGP behaviors the paper discovers, as injectable events.

§6 catalogues behaviors visible only through the joint admin/BGP lens:
squatting of dormant ASNs used for prefix hijacks (§6.1.2), squatting
of freshly *deallocated* ASNs (§6.4), fat-finger origin typos — failed
prepends and one-digit MOAS partners (§6.4), internal numbering leaks
of huge unallocated ASNs (§6.4), and benign dangling announcements
after deallocation (§6.2).

The simulation schedules these as :class:`AnomalyEvent` ground truth;
on any given day an event expands into the BGP announcements that
realize it.  The §6 detectors are then scored against the event log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..asn.numbers import ASN
from ..net.prefix import Prefix
from ..timeline.dates import Day
from ..timeline.intervals import Interval
from .stream import Announcement

__all__ = [
    "SQUAT_DORMANT",
    "SQUAT_POST_DEALLOC",
    "FAT_FINGER_PREPEND",
    "FAT_FINGER_DIGIT",
    "INTERNAL_LEAK",
    "DANGLING",
    "MALICIOUS_KINDS",
    "MISCONFIG_KINDS",
    "AnomalyEvent",
]

#: A dormant-but-allocated ASN wakes up to originate hijacked prefixes.
SQUAT_DORMANT = "squat_dormant"
#: A recently deallocated ASN is squatted for hijacks (§6.4).
SQUAT_POST_DEALLOC = "squat_post_dealloc"
#: Failed AS-path prepend: origin is the first hop's digits repeated.
FAT_FINGER_PREPEND = "fat_finger_prepend"
#: Origin one digit away from the victim's ASN, causing a MOAS.
FAT_FINGER_DIGIT = "fat_finger_digit"
#: A huge internally-used (never-allocated) ASN leaks to the Internet.
INTERNAL_LEAK = "internal_leak"
#: Announcements persisting after deallocation (benign, §6.2).
DANGLING = "dangling"
#: Short appearances of never-allocated ASNs with no identified cause —
#: the unexplained bulk of the §6.4 never-allocated population.
NOISE_ORIGIN = "noise_origin"

MALICIOUS_KINDS = frozenset({SQUAT_DORMANT, SQUAT_POST_DEALLOC})
MISCONFIG_KINDS = frozenset({FAT_FINGER_PREPEND, FAT_FINGER_DIGIT, INTERNAL_LEAK})


@dataclass(frozen=True)
class AnomalyEvent:
    """One scheduled anomalous episode.

    ``origin`` is the origin ASN observers will see in paths; when it
    differs from ``announcer`` (the actual BGP speaker), the speaker is
    forging — exactly how squatting and fat-finger origins appear in
    the wild.  ``victim`` is the legitimate party, when one exists (the
    MOAS counterpart, or the prefix holder being hijacked).
    """

    kind: str
    interval: Interval
    origin: ASN
    announcer: ASN
    prefixes: Tuple[Prefix, ...]
    victim: Optional[ASN] = None
    note: str = ""
    #: Side announcements emitted alongside the event — e.g. the
    #: covering aggregate a large operator legitimately announces while
    #: an internal ASN leaks a more-specific inside it (§6.4).
    extra_announcements: Tuple[Announcement, ...] = ()

    def __post_init__(self) -> None:
        if not self.prefixes:
            raise ValueError(f"{self.kind} event needs at least one prefix")

    @property
    def is_forged(self) -> bool:
        """True when the visible origin is not the actual speaker."""
        return self.origin != self.announcer

    @property
    def is_malicious(self) -> bool:
        return self.kind in MALICIOUS_KINDS

    @property
    def is_misconfiguration(self) -> bool:
        return self.kind in MISCONFIG_KINDS

    def active_on(self, day: Day) -> bool:
        return day in self.interval

    def announcements(self, day: Day) -> List[Announcement]:
        """The BGP announcements this event contributes on ``day``."""
        if not self.active_on(day):
            return []
        forged = self.origin if self.is_forged else None
        out = [
            Announcement(announcer=self.announcer, prefix=prefix, forged_origin=forged)
            for prefix in self.prefixes
        ]
        out.extend(self.extra_announcements)
        return out

    def describe(self) -> str:
        return (
            f"{self.kind}: origin AS{self.origin} via AS{self.announcer}, "
            f"{len(self.prefixes)} prefix(es), days "
            f"[{self.interval.start}..{self.interval.end}]"
            + (f", victim AS{self.victim}" if self.victim is not None else "")
        )
