"""MOAS and SubMOAS conflict detection.

§6.1.2's hijack case studies hinge on Multiple-Origin-AS events: the
squatted AS10512 "suddenly originated 60 /16 prefixes ... also causing
(Sub)MOAS conflicts" with Spectrum's legitimate announcements, and the
§6.4 digit typos show up as months-long MOAS with the victim.

A MOAS conflict is two or more origins announcing the *same* prefix; a
SubMOAS is an origin announcing a more-specific prefix inside another
origin's less-specific one.  The detector consumes one day's sanitized
element stream and reports both kinds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..asn.numbers import ASN
from ..net.prefix import Prefix
from .messages import BgpElement

__all__ = ["MoasConflict", "SubMoasConflict", "find_moas", "find_submoas", "MoasDetector"]


@dataclass(frozen=True)
class MoasConflict:
    """One prefix announced by multiple origins."""

    prefix: Prefix
    origins: FrozenSet[ASN]

    def involves(self, asn: ASN) -> bool:
        return asn in self.origins


@dataclass(frozen=True)
class SubMoasConflict:
    """A more-specific prefix originated inside another origin's block."""

    covering_prefix: Prefix
    covering_origin: ASN
    specific_prefix: Prefix
    specific_origin: ASN


def _origins_by_prefix(elements: Iterable[BgpElement]) -> Dict[Prefix, Set[ASN]]:
    out: Dict[Prefix, Set[ASN]] = {}
    for element in elements:
        origin = element.origin
        if origin is None:
            continue
        out.setdefault(element.prefix, set()).add(origin)
    return out


def find_moas(elements: Iterable[BgpElement]) -> List[MoasConflict]:
    """All same-prefix multi-origin conflicts in an element stream."""
    conflicts = [
        MoasConflict(prefix=prefix, origins=frozenset(origins))
        for prefix, origins in _origins_by_prefix(elements).items()
        if len(origins) > 1
    ]
    conflicts.sort(key=lambda c: (c.prefix.version, c.prefix.network, c.prefix.length))
    return conflicts


def find_submoas(elements: Iterable[BgpElement]) -> List[SubMoasConflict]:
    """All strict-containment multi-origin conflicts.

    Pairs where the covering and specific origins coincide are not
    conflicts (an operator deaggregating its own block is normal).
    """
    table = _origins_by_prefix(elements)
    prefixes = sorted(table, key=lambda p: (p.version, p.length, p.network))
    out: List[SubMoasConflict] = []
    for i, covering in enumerate(prefixes):
        for specific in prefixes[i + 1 :]:
            if not covering.strictly_contains(specific):
                continue
            for covering_origin in sorted(table[covering]):
                for specific_origin in sorted(table[specific]):
                    if covering_origin == specific_origin:
                        continue
                    out.append(
                        SubMoasConflict(
                            covering_prefix=covering,
                            covering_origin=covering_origin,
                            specific_prefix=specific,
                            specific_origin=specific_origin,
                        )
                    )
    return out


class MoasDetector:
    """Stateful day-over-day MOAS tracking.

    Feeding one day at a time, the detector reports *new* conflicts
    (appearing today) and resolved ones — the paper's case narratives
    ("between Nov 2017 and Sep 2018, AS419333 caused a MOAS with
    AS41933") are timelines of exactly these transitions.
    """

    def __init__(self) -> None:
        self._active: Dict[Prefix, FrozenSet[ASN]] = {}

    @property
    def active(self) -> Dict[Prefix, FrozenSet[ASN]]:
        """Currently ongoing conflicts (prefix → origins)."""
        return dict(self._active)

    def feed(
        self, elements: Iterable[BgpElement]
    ) -> Tuple[List[MoasConflict], List[MoasConflict]]:
        """Process one day; returns (new conflicts, resolved conflicts)."""
        today = {
            conflict.prefix: conflict.origins
            for conflict in find_moas(elements)
        }
        new = [
            MoasConflict(prefix, origins)
            for prefix, origins in sorted(
                today.items(), key=lambda kv: (kv[0].version, kv[0].network)
            )
            if self._active.get(prefix) != origins
        ]
        resolved = [
            MoasConflict(prefix, origins)
            for prefix, origins in sorted(
                self._active.items(), key=lambda kv: (kv[0].version, kv[0].network)
            )
            if prefix not in today
        ]
        self._active = today
        return new, resolved
