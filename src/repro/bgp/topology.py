"""AS-level Internet topology with business relationships.

The BGP substrate needs a topology to propagate routes over: which AS
buys transit from which (provider-customer, "p2c") and which ASes peer
settlement-free ("p2p").  The §6.2 analysis additionally needs CAIDA
ASRank-style *customer cones* — the set of ASes reachable by following
only customer links — to show that dangling announcements come from
small networks ("95% of them have no customers").

:class:`AsTopology` stores the graph (networkx underneath) and computes
cones; :func:`generate_topology` builds a deterministic three-tier
hierarchy (clique of tier-1s, mid-tier transits, stub edge networks)
that mimics the Internet's structure closely enough for path shapes
and cone-size distributions to be meaningful.

Two alternative recipes serve the scenario layer
(:mod:`repro.scenario`): :func:`generate_ixp_topology` wires a flat
exchange-dominated mesh (small transit core, dense lateral peering
among exchange co-members), and :func:`generate_regional_topology`
builds loosely-interconnected regional islands.  :func:`build_topology`
dispatches on the recipe name a :class:`~repro.simulation.config.
WorldConfig` carries.  All three are order-deterministic for a given
seed, and every recipe keeps a non-stub transit core so collectors
always find full-feed peers.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set

import networkx as nx

from ..asn.numbers import ASN

__all__ = [
    "P2C",
    "P2P",
    "AsTopology",
    "generate_topology",
    "generate_ixp_topology",
    "generate_regional_topology",
    "build_topology",
]

#: Edge relationship labels.
P2C = "p2c"  # provider-to-customer
P2P = "p2p"  # settlement-free peering


class AsTopology:
    """An annotated AS graph.

    Provider-customer edges are stored directed provider→customer in a
    DiGraph; peering links are kept symmetric.  Mutation happens through
    :meth:`add_p2c` / :meth:`add_p2p`, which maintain the inverse
    indexes the routing code relies on.
    """

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._providers: Dict[ASN, Set[ASN]] = {}
        self._customers: Dict[ASN, Set[ASN]] = {}
        self._peers: Dict[ASN, Set[ASN]] = {}

    # -- construction ------------------------------------------------------

    def add_asn(self, asn: ASN) -> None:
        """Ensure an AS exists (isolated until links are added)."""
        if asn not in self._graph:
            self._graph.add_node(asn)
            self._providers.setdefault(asn, set())
            self._customers.setdefault(asn, set())
            self._peers.setdefault(asn, set())

    def add_p2c(self, provider: ASN, customer: ASN) -> None:
        """Add a provider→customer (transit) relationship."""
        if provider == customer:
            raise ValueError("an AS cannot be its own provider")
        self.add_asn(provider)
        self.add_asn(customer)
        self._graph.add_edge(provider, customer, rel=P2C)
        self._customers[provider].add(customer)
        self._providers[customer].add(provider)

    def add_p2p(self, a: ASN, b: ASN) -> None:
        """Add a settlement-free peering relationship (symmetric)."""
        if a == b:
            raise ValueError("an AS cannot peer with itself")
        self.add_asn(a)
        self.add_asn(b)
        self._peers[a].add(b)
        self._peers[b].add(a)

    # -- queries -----------------------------------------------------------

    def __contains__(self, asn: ASN) -> bool:
        return asn in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def asns(self) -> Iterable[ASN]:
        return self._graph.nodes

    def providers(self, asn: ASN) -> FrozenSet[ASN]:
        return frozenset(self._providers.get(asn, ()))

    def customers(self, asn: ASN) -> FrozenSet[ASN]:
        return frozenset(self._customers.get(asn, ()))

    def peers(self, asn: ASN) -> FrozenSet[ASN]:
        return frozenset(self._peers.get(asn, ()))

    def degree(self, asn: ASN) -> int:
        """Total relationship count (providers + customers + peers)."""
        return (
            len(self._providers.get(asn, ()))
            + len(self._customers.get(asn, ()))
            + len(self._peers.get(asn, ()))
        )

    def is_stub(self, asn: ASN) -> bool:
        """True for ASes with no customers (the edge of the Internet)."""
        return not self._customers.get(asn)

    def customer_cone(self, asn: ASN) -> FrozenSet[ASN]:
        """ASRank-style customer cone: ``asn`` plus every AS reachable
        by repeatedly following customer links (§6.2 / [48])."""
        seen: Set[ASN] = {asn}
        stack = [asn]
        while stack:
            current = stack.pop()
            for customer in self._customers.get(current, ()):
                if customer not in seen:
                    seen.add(customer)
                    stack.append(customer)
        return frozenset(seen)

    def cone_size(self, asn: ASN) -> int:
        """Customer-cone size, counting the AS itself."""
        return len(self.customer_cone(asn))

    def tier1s(self) -> FrozenSet[ASN]:
        """ASes with no providers (the top of the hierarchy)."""
        return frozenset(
            asn for asn in self._graph.nodes if not self._providers.get(asn)
        )

    def to_networkx(self) -> nx.DiGraph:
        """A copy of the underlying provider→customer digraph, with
        peering links attached as ``rel='p2p'`` edges in both directions."""
        graph = self._graph.copy()
        for a, peers in self._peers.items():
            for b in peers:
                graph.add_edge(a, b, rel=P2P)
        return graph


def generate_topology(
    asns: Sequence[ASN],
    *,
    seed: int = 0,
    tier1_count: int = 8,
    transit_share: float = 0.12,
    stub_extra_provider_prob: float = 0.35,
    peering_prob: float = 0.08,
) -> AsTopology:
    """Build a deterministic three-tier topology over the given ASNs.

    * the first ``tier1_count`` ASNs form a full peering clique (tier 1);
    * the next ``transit_share`` fraction become mid-tier transit
      providers, each buying from 1-2 tier 1s and peering laterally;
    * the rest are stubs buying transit from 1-2 mid-tier providers
      (multi-homing with probability ``stub_extra_provider_prob``).

    The construction is order-deterministic for a given ``seed``.
    """
    if len(asns) < tier1_count + 2:
        raise ValueError("need more ASNs than tier-1 slots")
    rng = random.Random(seed)
    topo = AsTopology()
    ordered = list(asns)
    tier1 = ordered[:tier1_count]
    transit_count = max(1, int(len(ordered) * transit_share))
    transits = ordered[tier1_count : tier1_count + transit_count]
    stubs = ordered[tier1_count + transit_count :]

    for a_idx, a in enumerate(tier1):
        topo.add_asn(a)
        for b in tier1[a_idx + 1 :]:
            topo.add_p2p(a, b)

    for t in transits:
        for provider in rng.sample(tier1, rng.randint(1, 2)):
            topo.add_p2c(provider, t)
    for idx, t in enumerate(transits):
        for other in transits[idx + 1 :]:
            if rng.random() < peering_prob:
                topo.add_p2p(t, other)

    for s in stubs:
        providers = rng.sample(transits, min(len(transits), 1))
        if rng.random() < stub_extra_provider_prob and len(transits) > 1:
            extra = rng.choice(transits)
            if extra not in providers:
                providers.append(extra)
        for p in providers:
            topo.add_p2c(p, s)
    return topo


def generate_ixp_topology(
    asns: Sequence[ASN],
    *,
    seed: int = 0,
    ixp_count: int = 4,
    tier1_count: int = 8,
    transit_share: float = 0.12,
    peering_prob: float = 0.08,
    stub_extra_provider_prob: float = 0.35,
) -> AsTopology:
    """A flat, exchange-dominated Internet (the seed-emulator shape).

    A small tier-1 clique and a thin transit layer survive (somebody
    has to sell transit and feed the collectors), but most
    connectivity is lateral: every transit and a majority of stubs
    join 1-2 of ``ixp_count`` exchanges, and co-members of an exchange
    peer settlement-free with a probability that scales with
    ``peering_prob`` well above the hierarchical recipe's.  The result
    is short valley-free paths, small customer cones, and visibility
    that depends on peering fabric rather than provider chains.
    """
    if len(asns) < tier1_count + 2:
        raise ValueError("need more ASNs than tier-1 slots")
    rng = random.Random(seed)
    topo = AsTopology()
    ordered = list(asns)
    tier1 = ordered[:tier1_count]
    transit_count = max(1, int(len(ordered) * transit_share))
    transits = ordered[tier1_count : tier1_count + transit_count]
    stubs = ordered[tier1_count + transit_count :]

    for a_idx, a in enumerate(tier1):
        topo.add_asn(a)
        for b in tier1[a_idx + 1 :]:
            topo.add_p2p(a, b)
    for t in transits:
        for provider in rng.sample(tier1, rng.randint(1, 2)):
            topo.add_p2c(provider, t)
    for s in stubs:
        providers = rng.sample(transits, min(len(transits), 1))
        if rng.random() < stub_extra_provider_prob and len(transits) > 1:
            extra = rng.choice(transits)
            if extra not in providers:
                providers.append(extra)
        for p in providers:
            topo.add_p2c(p, s)

    # exchange membership: transits are anchor members of every IXP
    # they land in; stubs mostly join one
    members: List[List[ASN]] = [[] for _ in range(ixp_count)]
    for t in transits:
        for ixp in rng.sample(range(ixp_count), min(2, ixp_count)):
            members[ixp].append(t)
    for s in stubs:
        if rng.random() < 0.7:
            members[rng.randrange(ixp_count)].append(s)
    # dense lateral peering inside each exchange; cap the per-member
    # fan-out so a big IXP stays O(members), not O(members^2)
    lateral_prob = min(1.0, peering_prob * 4)
    for fabric in members:
        for idx, a in enumerate(fabric):
            partners = fabric[idx + 1 :]
            budget = min(len(partners), 12)
            for b in rng.sample(partners, budget):
                if rng.random() < lateral_prob:
                    topo.add_p2p(a, b)
    return topo


def generate_regional_topology(
    asns: Sequence[ASN],
    *,
    seed: int = 0,
    regional_clusters: int = 4,
    hub_count: int = 3,
    transit_share: float = 0.12,
    peering_prob: float = 0.08,
    stub_extra_provider_prob: float = 0.35,
) -> AsTopology:
    """Loosely-interconnected regional islands.

    Each region is a miniature hierarchy — ``hub_count`` regional hubs
    in a peering clique, regional transits buying from the hubs, stubs
    buying from the transits — and regions touch only through sparse
    hub-to-hub peering plus one transit backbone chain, so paths
    between regions are long and inter-region visibility is thin.
    ``hub_count`` doubles as the per-region tier-1 slot count.
    """
    needed = regional_clusters * (hub_count + 2)
    if len(asns) < needed:
        raise ValueError(
            f"need at least {needed} ASNs for {regional_clusters} regions"
        )
    rng = random.Random(seed)
    topo = AsTopology()
    ordered = list(asns)
    regions: List[List[ASN]] = [
        ordered[idx::regional_clusters] for idx in range(regional_clusters)
    ]

    region_hubs: List[List[ASN]] = []
    for region in regions:
        hubs = region[:hub_count]
        transit_count = max(1, int(len(region) * transit_share))
        transits = region[hub_count : hub_count + transit_count]
        stubs = region[hub_count + transit_count :]
        region_hubs.append(hubs)

        for a_idx, a in enumerate(hubs):
            topo.add_asn(a)
            for b in hubs[a_idx + 1 :]:
                topo.add_p2p(a, b)
        for t in transits:
            for provider in rng.sample(hubs, rng.randint(1, min(2, len(hubs)))):
                topo.add_p2c(provider, t)
        for idx, t in enumerate(transits):
            for other in transits[idx + 1 :]:
                if rng.random() < peering_prob:
                    topo.add_p2p(t, other)
        for s in stubs:
            providers = rng.sample(transits, min(len(transits), 1))
            if rng.random() < stub_extra_provider_prob and len(transits) > 1:
                extra = rng.choice(transits)
                if extra not in providers:
                    providers.append(extra)
            for p in providers:
                topo.add_p2c(p, s)

    # sparse inter-region fabric: a backbone chain through the first
    # hub of each region plus a few random hub-to-hub shortcuts
    for idx in range(len(region_hubs) - 1):
        topo.add_p2p(region_hubs[idx][0], region_hubs[idx + 1][0])
    shortcuts = max(1, regional_clusters // 2)
    for _ in range(shortcuts):
        a_region, b_region = rng.sample(range(regional_clusters), 2)
        a = rng.choice(region_hubs[a_region])
        b = rng.choice(region_hubs[b_region])
        if a != b and b not in topo.peers(a):
            topo.add_p2p(a, b)
    return topo


def build_topology(asns: Sequence[ASN], config, *, seed: int) -> AsTopology:
    """Dispatch on a :class:`~repro.simulation.config.WorldConfig`'s
    ``topology_recipe`` — the one entry point the world simulator uses.
    """
    if config.topology_recipe == "ixp-heavy":
        return generate_ixp_topology(
            asns,
            seed=seed,
            ixp_count=config.ixp_count,
            tier1_count=config.tier1_count,
            transit_share=config.transit_share,
            peering_prob=config.peering_prob,
            stub_extra_provider_prob=config.stub_extra_provider_prob,
        )
    if config.topology_recipe == "regional":
        return generate_regional_topology(
            asns,
            seed=seed,
            regional_clusters=config.regional_clusters,
            hub_count=config.tier1_count,
            transit_share=config.transit_share,
            peering_prob=config.peering_prob,
            stub_extra_provider_prob=config.stub_extra_provider_prob,
        )
    if config.topology_recipe == "transit-hierarchy":
        return generate_topology(
            asns,
            seed=seed,
            tier1_count=config.tier1_count,
            transit_share=config.transit_share,
            peering_prob=config.peering_prob,
            stub_extra_provider_prob=config.stub_extra_provider_prob,
        )
    raise ValueError(f"unknown topology recipe {config.topology_recipe!r}")
