"""Organizations holding ASN allocations.

Organizations matter to three analyses: the opaque id in extended files
groups an org's resources; *sibling* ASNs (an org holding several)
explain both sporadic BGP activity and a slice of the never-used
population (§6.1.1, §6.3); and a few *hoarders* (the US DoD / Verisign
/ France Telecom pattern) hold large blocks they mostly never announce.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..asn.numbers import ASN

__all__ = ["Organization", "OrgDirectory"]


@dataclass
class Organization:
    """One resource-holding organization."""

    org_id: str
    registry: str
    cc: str
    asns: List[ASN] = field(default_factory=list)
    is_hoarder: bool = False
    is_nir: bool = False
    is_conference_network: bool = False

    @property
    def is_sibling_org(self) -> bool:
        """True when the org holds more than one ASN."""
        return len(self.asns) > 1


class OrgDirectory:
    """Registry of organizations, with deterministic id generation."""

    def __init__(self) -> None:
        self._orgs: Dict[str, Organization] = {}
        self._counter = 0
        self._by_registry: Dict[str, List[str]] = {}

    def __len__(self) -> int:
        return len(self._orgs)

    def get(self, org_id: str) -> Organization:
        return self._orgs[org_id]

    def __contains__(self, org_id: str) -> bool:
        return org_id in self._orgs

    def new_org(
        self,
        registry: str,
        cc: str,
        *,
        hoarder: bool = False,
        nir: bool = False,
        conference: bool = False,
    ) -> Organization:
        self._counter += 1
        prefix = "NIR" if nir else "ORG"
        org = Organization(
            org_id=f"{prefix}-{registry.upper()[:2]}{self._counter:06d}",
            registry=registry,
            cc=cc,
            is_hoarder=hoarder,
            is_nir=nir,
            is_conference_network=conference,
        )
        self._orgs[org.org_id] = org
        self._by_registry.setdefault(registry, []).append(org.org_id)
        return org

    def random_existing(
        self, registry: str, rng: random.Random
    ) -> Optional[Organization]:
        """A uniformly random org of the registry (for sibling growth)."""
        ids = self._by_registry.get(registry)
        if not ids:
            return None
        return self._orgs[rng.choice(ids)]

    def attach(self, org: Organization, asn: ASN) -> None:
        org.asns.append(asn)

    def sibling_map(self) -> Dict[str, List[ASN]]:
        """org id → held ASNs, the §6.3 sibling-analysis input."""
        return {org_id: list(org.asns) for org_id, org in self._orgs.items()}

    def hoarders(self) -> List[Organization]:
        return [o for o in self._orgs.values() if o.is_hoarder]

    def organizations(self) -> List[Organization]:
        return list(self._orgs.values())
