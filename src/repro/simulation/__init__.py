"""The synthetic Internet that substitutes for the paper's data feeds."""

from .anomalies import AnomalyPlanner, DormantTarget
from .behavior import BehaviorModel, LifeBehavior, Profile
from .config import WorldConfig, bench, tiny
from .countries import country_for
from .datasets import DatasetBundle, build_datasets
from .growth import daily_birth_rate, draw_lifetime_days, poisson, yearly_births
from .organizations import Organization, OrgDirectory
from .prefixes import PrefixPlan
from .world import TrueLife, World, WorldSimulator, simulate

__all__ = [
    "WorldConfig",
    "tiny",
    "bench",
    "WorldSimulator",
    "World",
    "TrueLife",
    "simulate",
    "DatasetBundle",
    "build_datasets",
    "BehaviorModel",
    "LifeBehavior",
    "Profile",
    "AnomalyPlanner",
    "DormantTarget",
    "Organization",
    "OrgDirectory",
    "PrefixPlan",
    "country_for",
    "yearly_births",
    "daily_birth_rate",
    "draw_lifetime_days",
    "poisson",
]
