"""End-to-end dataset construction: world → archive → restore → lifetimes.

:func:`build_datasets` runs the whole pipeline of the paper's Fig. 1:
the simulated world substitutes for the RIR FTP sites and the BGP
collectors, the pitfall injector corrupts the archive the way reality
does, the §3.1 restoration undoes it, and the §4 builders emit the two
lifetime datasets.  The returned bundle carries every intermediate
artifact plus the ground truth, so analyses can be validated and not
just run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..asn.numbers import ASN
from ..core.joint import JointAnalysis
from ..lifetimes.admin import build_admin_lifetimes
from ..lifetimes.bgp import build_bgp_lifetimes
from ..lifetimes.records import AdminLifetime, BgpLifetime
from ..restoration.pipeline import RestoredDelegations, restore_archive
from ..restoration.report import RestorationReport
from ..rir.archive import DelegationArchive
from ..rir.pitfalls import InjectedDefect, PitfallConfig, PitfallInjector
from .config import WorldConfig, tiny
from .world import World, WorldSimulator

__all__ = ["DatasetBundle", "build_datasets"]


@dataclass
class DatasetBundle:
    """Everything one experiment run produces."""

    world: World
    archive: DelegationArchive
    injected_defects: List[InjectedDefect]
    restored: RestoredDelegations
    restoration_report: RestorationReport
    admin_lives: Dict[ASN, List[AdminLifetime]]
    op_lives: Dict[ASN, List[BgpLifetime]]
    joint: JointAnalysis = field(init=False)

    def __post_init__(self) -> None:
        self.joint = JointAnalysis(
            admin_lives=self.admin_lives,
            op_lives=self.op_lives,
            end_day=self.world.end_day,
            topology=self.world.topology,
            siblings=self.world.orgs.sibling_map(),
            truth=self.world.events,
        )

    def registry_of(self) -> Dict[ASN, str]:
        """ASN → final registry (for the per-RIR tables)."""
        return {
            asn: lives[-1].registry
            for asn, lives in self.admin_lives.items()
            if lives
        }

    def rebuild_op_lives(
        self, *, timeout: int, min_peers: int = 2
    ) -> Dict[ASN, List[BgpLifetime]]:
        """Re-segment operational lifetimes under different parameters
        (Table 5 / the visibility ablation) without re-simulating."""
        return build_bgp_lifetimes(
            self.world.activities,
            timeout=timeout,
            min_peers=min_peers,
            end_day=self.world.end_day,
        )


def build_datasets(
    config: Optional[WorldConfig] = None,
    *,
    inject_pitfalls: bool = True,
    pitfall_config: Optional[PitfallConfig] = None,
    timeout: int = 30,
    min_peers: int = 2,
) -> DatasetBundle:
    """Run the full pipeline for one world configuration."""
    if config is None:
        config = tiny()
    world = WorldSimulator(config).run()

    clean = DelegationArchive(world.registries, config.end_day)
    windows = {w.source: (w.first_day, w.last_day) for w in clean.sources()}
    defects: List[InjectedDefect] = []
    if inject_pitfalls:
        injector = PitfallInjector(
            world.registries,
            config.end_day,
            seed=config.seed + 6,
            config=pitfall_config if pitfall_config is not None else PitfallConfig(),
        )
        overlay = injector.inject_all(windows, world.transfers)
        defects = injector.truth
        archive = DelegationArchive(world.registries, config.end_day, overlay)
    else:
        archive = clean

    restored, report = restore_archive(
        archive, erx_reference=world.erx_reference, ledger=world.ledger
    )
    admin_lives = build_admin_lifetimes(restored)
    op_lives = build_bgp_lifetimes(
        world.activities, timeout=timeout, min_peers=min_peers,
        end_day=config.end_day,
    )
    return DatasetBundle(
        world=world,
        archive=archive,
        injected_defects=defects,
        restored=restored,
        restoration_report=report,
        admin_lives=admin_lives,
        op_lives=op_lives,
    )
